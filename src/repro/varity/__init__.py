"""Varity-style random test generation.

Reimplements the generation approach of Laguna's Varity framework (IPDPS
2020) as extended by the paper: random numerical kernels covering the
grammar of Table III (FP32/FP64 arithmetic over ``+ - * /``, C math-library
calls, nested ``for`` loops bounded by an int parameter, ``if`` conditions
with boolean expressions, scalar/array parameters, temporary variables) plus
random inputs biased toward the exceptional-value ranges the paper hunts
(§II-B1: values that can produce NaN, ±Inf, and subnormals).
"""

from repro.varity.config import GeneratorConfig, InputClassWeights
from repro.varity.grammar import GrammarWeights
from repro.varity.generator import ProgramGenerator
from repro.varity.inputs import InputGenerator, InputVector
from repro.varity.testcase import TestCase
from repro.varity.corpus import build_corpus, Corpus

__all__ = [
    "GeneratorConfig",
    "InputClassWeights",
    "GrammarWeights",
    "ProgramGenerator",
    "InputGenerator",
    "InputVector",
    "TestCase",
    "build_corpus",
    "Corpus",
]
