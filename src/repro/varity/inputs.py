"""Random input generation (§II-B1 value classes).

For each kernel parameter an :class:`InputVector` carries one value:
float for FLOAT, int for INT (the loop bound), and a float *fill value*
for FLOAT_PTR parameters (Varity's ``main()`` initializes every array
element with the scalar read from the input line — visible in Fig. 4,
where the ``double*`` parameter receives ``+0.0``).

Float values are drawn from exceptional-value classes (±0, subnormal,
near-minimum-normal, huge, moderate, small) and then *round-tripped
through the Varity literal format*, because the real harness passes inputs
as decimal text on the command line — the value a test consumes is the
parsed text, identically on both platforms.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

from repro.fp.literals import parse_varity_literal
from repro.ir.program import Kernel
from repro.ir.types import IRType
from repro.varity.config import GeneratorConfig

__all__ = ["InputVector", "InputGenerator"]

Value = Union[float, int]


@dataclass(frozen=True)
class InputVector:
    """One test input: positional values plus their text form.

    ``texts`` is the exact whitespace-separated input line of the Fig. 4
    style metadata; values are derived from the texts, never the other way
    round, so save/load cycles are bit-stable.
    """

    values: Tuple[Value, ...]
    texts: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.values) != len(self.texts):
            raise ValueError("values/texts length mismatch")

    @property
    def line(self) -> str:
        """The input rendered as a Varity input line."""
        return " ".join(self.texts)

    @classmethod
    def from_texts(cls, texts: Sequence[str], kernel: Kernel) -> "InputVector":
        """Parse an input line against a kernel signature."""
        if len(texts) != len(kernel.params):
            raise ValueError(
                f"{len(texts)} inputs for {len(kernel.params)} parameters"
            )
        values: List[Value] = []
        for text, param in zip(texts, kernel.params):
            if param.type is IRType.INT:
                values.append(int(text))
            else:
                values.append(float(parse_varity_literal(text, kernel.fptype)))
        return cls(tuple(values), tuple(texts))


class InputGenerator:
    """Draws input vectors for a kernel signature."""

    def __init__(self, config: GeneratorConfig) -> None:
        self.config = config

    def generate(self, kernel: Kernel, seed: int) -> InputVector:
        rng = random.Random(seed)
        texts: List[str] = []
        for param in kernel.params:
            if param.type is IRType.INT:
                texts.append(str(rng.randint(self.config.min_loop_bound, self.config.max_loop_bound)))
            else:
                texts.append(self._float_text(rng))
        return InputVector.from_texts(texts, kernel)

    def generate_many(self, kernel: Kernel, root_seed: int, count: int) -> List[InputVector]:
        from repro.utils.rng import derive_seed

        return [
            self.generate(kernel, derive_seed(root_seed, "input", index))
            for index in range(count)
        ]

    # ----------------------------------------------------------------- float
    def _float_text(self, rng: random.Random) -> str:
        cfg = self.config
        classes = cfg.inputs.as_dict()
        klass = rng.choices(list(classes), weights=list(classes.values()), k=1)[0]
        sign = "-" if rng.random() < 0.5 else "+"
        if klass == "zero":
            return f"{sign}0.0"
        lo, hi = cfg.exponent_range(klass)
        exponent = rng.randint(lo, hi)
        mantissa = rng.uniform(1.0, 9.9999)
        digits = cfg.literal_mantissa_digits
        text = f"{sign}{mantissa:.{digits}f}E{exponent}"
        # Clamp pathological roundings (mantissa 9.99995 → "10.0000").
        if text[1:3] == "10":
            text = f"{sign}9.{'9' * digits}E{exponent}"
        return text
