"""Production weights of the program grammar.

Table III of the paper describes the program family; the exact production
probabilities are Varity implementation details, so they are exposed here
as a tunable dataclass with defaults calibrated to produce programs shaped
like the paper's figures (Figs. 2, 4, 6): a handful of statements, an
``if`` guard, a ``var_1``-bounded loop, one or two math calls, heavy use of
the accumulator idiom ``comp += …``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["GrammarWeights"]


def _normalized(weights: Dict[str, float]) -> Dict[str, float]:
    total = sum(weights.values())
    if total <= 0:
        raise ValueError("weights must have positive total")
    return {k: v / total for k, v in weights.items()}


@dataclass
class GrammarWeights:
    """Probabilities steering random program structure."""

    # -- statement mix (top level) -------------------------------------------
    p_if_block: float = 0.55
    p_loop: float = 0.70
    p_nested_loop: float = 0.25  # probability an inner loop nests once more
    p_decl: float = 0.60  # probability of at least one temporary

    # -- expression interior productions ---------------------------------------
    expr_interior: Dict[str, float] = field(
        default_factory=lambda: {
            "binop": 0.58,
            "call": 0.24,
            "unop": 0.06,
            "leaf": 0.12,
        }
    )
    binop_ops: Dict[str, float] = field(
        default_factory=lambda: {"+": 0.30, "-": 0.25, "*": 0.25, "/": 0.20}
    )
    #: accumulator statement operator mix (comp ?= expr)
    aug_ops: Dict[str, float] = field(
        default_factory=lambda: {"+": 0.70, "-": 0.20, "*": 0.10}
    )
    expr_leaves: Dict[str, float] = field(
        default_factory=lambda: {"const": 0.40, "var": 0.45, "array": 0.15}
    )
    compare_ops: Dict[str, float] = field(
        default_factory=lambda: {
            "<": 0.2, "<=": 0.15, ">": 0.2, ">=": 0.25, "==": 0.15, "!=": 0.05,
        }
    )
    p_bool_connective: float = 0.15  # cond is `a && b` / `a || b`

    #: math functions the generator may emit, with weights; the default mix
    #: leans on the functions the paper's case studies exercise.
    math_functions: Dict[str, float] = field(
        default_factory=lambda: {
            "cos": 1.0,
            "sin": 1.0,
            "tan": 0.4,
            "exp": 0.8,
            "log": 0.8,
            "sqrt": 1.2,
            "cosh": 0.6,
            "sinh": 0.4,
            "tanh": 0.4,
            "fabs": 0.8,
            "ceil": 0.7,
            "floor": 0.5,
            "fmod": 0.9,
            "pow": 0.5,
            "fmin": 0.3,
            "fmax": 0.3,
            "atan": 0.3,
            "asin": 0.2,
            "acos": 0.2,
            "log10": 0.3,
            "exp2": 0.2,
        }
    )

    def normalized_interior(self) -> Dict[str, float]:
        return _normalized(self.expr_interior)

    def normalized_leaves(self) -> Dict[str, float]:
        return _normalized(self.expr_leaves)

    def validate(self) -> None:
        for name, table in (
            ("expr_interior", self.expr_interior),
            ("binop_ops", self.binop_ops),
            ("aug_ops", self.aug_ops),
            ("expr_leaves", self.expr_leaves),
            ("compare_ops", self.compare_ops),
            ("math_functions", self.math_functions),
        ):
            if not table:
                raise ValueError(f"{name} is empty")
            if any(w < 0 for w in table.values()):
                raise ValueError(f"{name} has negative weights")
            if sum(table.values()) <= 0:
                raise ValueError(f"{name} weights sum to zero")
        for p_name in ("p_if_block", "p_loop", "p_nested_loop", "p_decl", "p_bool_connective"):
            p = getattr(self, p_name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{p_name} must be a probability, got {p}")
