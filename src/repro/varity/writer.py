"""Write a corpus to disk as Varity-style test directories.

The real Varity campaign produces, per test, a source file (``.cu`` /
``.hip``), the input lines it was run with, and campaign-level metadata.
This module materializes the same artifact tree, which is what you would
hand to a vendor with a bug report (§I: "the tests can be provided to
vendors for further investigation — they are self-contained"):

    outdir/
      manifest.json
      prog-fp64-000000/
        prog-fp64-000000.cu
        prog-fp64-000000.hip
        prog-fp64-000000.hipify.hip     (when requested)
        prog-fp64-000000.c
        inputs.txt
      prog-fp64-000001/
        ...
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.codegen.c import render_c
from repro.codegen.cuda import render_cuda
from repro.codegen.hip import render_hip
from repro.hipify.translator import hipify_source
from repro.utils.jsonio import dump_json
from repro.varity.corpus import Corpus
from repro.varity.testcase import TestCase

__all__ = ["write_test", "write_corpus", "WrittenTest"]


@dataclass(frozen=True)
class WrittenTest:
    """Paths of one materialized test."""

    test_id: str
    directory: Path
    cuda_path: Path
    hip_path: Path
    c_path: Path
    inputs_path: Path
    hipify_path: Optional[Path] = None


def write_test(
    test: TestCase,
    outdir: Union[str, Path],
    *,
    include_hipify: bool = False,
    include_c: bool = True,
) -> WrittenTest:
    """Materialize one test case under ``outdir/<test_id>/``."""
    directory = Path(outdir) / test.test_id
    directory.mkdir(parents=True, exist_ok=True)

    cuda_src = render_cuda(test.program)
    cuda_path = directory / f"{test.test_id}.cu"
    cuda_path.write_text(cuda_src, encoding="utf-8")

    hip_path = directory / f"{test.test_id}.hip"
    hip_path.write_text(render_hip(test.program), encoding="utf-8")

    c_path = directory / f"{test.test_id}.c"
    if include_c:
        c_path.write_text(render_c(test.program), encoding="utf-8")

    inputs_path = directory / "inputs.txt"
    inputs_path.write_text(
        "".join(vec.line + "\n" for vec in test.inputs), encoding="utf-8"
    )

    hipify_path: Optional[Path] = None
    if include_hipify:
        hipify_path = directory / f"{test.test_id}.hipify.hip"
        hipify_path.write_text(hipify_source(cuda_src), encoding="utf-8")

    return WrittenTest(
        test_id=test.test_id,
        directory=directory,
        cuda_path=cuda_path,
        hip_path=hip_path,
        c_path=c_path,
        inputs_path=inputs_path,
        hipify_path=hipify_path,
    )


def write_corpus(
    corpus: Corpus,
    outdir: Union[str, Path],
    *,
    include_hipify: bool = False,
    include_c: bool = True,
) -> List[WrittenTest]:
    """Materialize a whole corpus plus a ``manifest.json``.

    The manifest stores everything needed to rebuild the corpus in-process
    (seeds + input lines), mirroring the metadata half of Fig. 3.
    """
    outdir = Path(outdir)
    written = [
        write_test(t, outdir, include_hipify=include_hipify, include_c=include_c)
        for t in corpus
    ]
    manifest: Dict[str, object] = {
        "fptype": corpus.fptype.value,
        "root_seed": corpus.root_seed,
        "inputs_per_program": corpus.config.inputs_per_program,
        "n_programs": corpus.n_programs,
        "tests": [t.to_meta_dict() for t in corpus],
        "files": {
            w.test_id: {
                "cu": w.cuda_path.name,
                "hip": w.hip_path.name,
                "c": w.c_path.name if include_c else None,
                "hipify": w.hipify_path.name if w.hipify_path else None,
            }
            for w in written
        },
    }
    dump_json(manifest, outdir / "manifest.json")
    return written
