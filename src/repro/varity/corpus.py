"""Corpus construction: programs × inputs, fully seeded.

A corpus is the generated half of a campaign.  Everything is derived from
``(config, root_seed)`` with identity-based seed derivation, so a corpus
can be *recreated* on another system from the metadata alone — the
property the paper's Fig. 3 workflow depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.fp.types import FPType
from repro.utils.rng import derive_seed
from repro.varity.config import GeneratorConfig
from repro.varity.generator import ProgramGenerator
from repro.varity.inputs import InputGenerator
from repro.varity.testcase import TestCase

__all__ = ["Corpus", "build_corpus", "regenerate_test"]


@dataclass
class Corpus:
    """A generated test population for one precision."""

    config: GeneratorConfig
    root_seed: int
    tests: Tuple[TestCase, ...]

    @property
    def fptype(self) -> FPType:
        return self.config.fptype

    @property
    def n_programs(self) -> int:
        return len(self.tests)

    @property
    def n_runs_per_option_per_compiler(self) -> int:
        return sum(len(t.inputs) for t in self.tests)

    def __iter__(self) -> Iterator[TestCase]:
        return iter(self.tests)

    def __len__(self) -> int:
        return len(self.tests)

    def hipified(self) -> "Corpus":
        """The HIPIFY-converted twin corpus (same programs and inputs)."""
        return Corpus(
            config=self.config,
            root_seed=self.root_seed,
            tests=tuple(t.hipified() for t in self.tests),
        )

    def iter_with_hipified(self) -> Iterator[Tuple[TestCase, TestCase]]:
        """Yield ``(native, hipified-twin)`` pairs, lazily.

        The campaign engine's fused fp64 + fp64_hipify execution walks the
        corpus once and runs each program's twin right after the native
        test, so the per-program nvcc run cache stays a single test wide
        instead of materializing a whole converted corpus up front.
        """
        for t in self.tests:
            yield t, t.hipified()


def build_corpus(
    config: GeneratorConfig,
    n_programs: int,
    root_seed: int,
    prefix: str = "prog",
) -> Corpus:
    """Generate ``n_programs`` tests, each with ``config.inputs_per_program``
    input vectors."""
    return build_corpus_slice(config, 0, n_programs, root_seed, prefix)


def build_corpus_slice(
    config: GeneratorConfig,
    start: int,
    stop: int,
    root_seed: int,
    prefix: str = "prog",
) -> Corpus:
    """Generate the [start, stop) index slice of a corpus.

    Seeds are derived from absolute indices, so the union of slices equals
    the full corpus — this is what lets campaign workers regenerate their
    own chunks instead of receiving pickled programs.
    """
    config.validate()
    program_gen = ProgramGenerator(config)
    input_gen = InputGenerator(config)
    tests: List[TestCase] = []
    for index in range(start, stop):
        program_seed = derive_seed(root_seed, "program", config.fptype.value, index)
        pid = f"{prefix}-{config.fptype.value}-{index:06d}"
        program = program_gen.generate(program_seed, program_id=pid)
        input_seed = derive_seed(root_seed, "inputs", config.fptype.value, index)
        inputs = input_gen.generate_many(
            program.kernel, input_seed, config.inputs_per_program
        )
        tests.append(TestCase(program, inputs))
    return Corpus(config=config, root_seed=root_seed, tests=tuple(tests))


def regenerate_test(
    config: GeneratorConfig,
    seed: int,
    test_id: str,
    input_texts: Sequence[Sequence[str]],
    via_hipify: bool = False,
) -> TestCase:
    """Rebuild a test from metadata (the System-2 side of Fig. 3).

    ``seed`` is the stored per-program seed; inputs come back as the exact
    text lines that ran on System 1.
    """
    from repro.varity.inputs import InputVector

    program = ProgramGenerator(config).generate(seed, program_id=test_id)
    if via_hipify:
        program = program.marked_hipify()
    inputs = [InputVector.from_texts(texts, program.kernel) for texts in input_texts]
    return TestCase(program, inputs)
