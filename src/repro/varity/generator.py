"""Random program generation.

Produces :class:`repro.ir.program.Program` objects shaped like the paper's
figures: a ``compute`` kernel with the canonical Varity signature
(``comp``, ``var_1``, ``var_2…var_N``), straight-line accumulator updates,
an optional ``if`` guard, optional (possibly nested) ``var_1``-bounded
loops with array writes, and math-library calls.  Generation is correct by
construction (every program passes :func:`repro.ir.validate.validate_kernel`)
and fully determined by ``(config, seed)``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.errors import GenerationError
from repro.ir.nodes import (
    ArrayRef,
    Assign,
    AugAssign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    Decl,
    Expr,
    For,
    If,
    Stmt,
    UnOp,
    VarRef,
)
from repro.ir.program import Kernel, Param, Program
from repro.ir.types import IRType
from repro.ir.validate import validate_kernel
from repro.varity.config import GeneratorConfig

__all__ = ["ProgramGenerator"]

_LOOP_VARS = ("i", "j", "k")


def _weighted_choice(rng: random.Random, table: Dict[str, float]) -> str:
    names = list(table.keys())
    weights = list(table.values())
    return rng.choices(names, weights=weights, k=1)[0]


class _GenState:
    """Names visible while generating one program."""

    def __init__(self) -> None:
        self.float_scalars: List[str] = ["comp"]
        self.arrays: List[str] = []
        self.loop_stack: List[str] = []
        self.tmp_counter: int = 0

    def fresh_tmp(self) -> str:
        self.tmp_counter += 1
        return f"tmp_{self.tmp_counter}"


class ProgramGenerator:
    """Generates random Varity-style programs."""

    def __init__(self, config: Optional[GeneratorConfig] = None) -> None:
        self.config = config or GeneratorConfig()
        self.config.validate()

    # ------------------------------------------------------------------ API
    def generate(self, seed: int, program_id: Optional[str] = None) -> Program:
        """Generate one program, deterministically from ``seed``."""
        cfg = self.config
        rng = random.Random(seed)
        state = _GenState()

        params = self._make_signature(rng, state)
        body = self._make_body(rng, state)
        kernel = Kernel(params, body, cfg.fptype)

        pid = program_id or f"prog-{cfg.fptype.value}-{seed & 0xFFFFFFFF:08x}"
        program = Program(program_id=pid, kernel=kernel, seed=seed, source_note="varity")

        issues = validate_kernel(kernel)
        if issues:  # pragma: no cover - correct-by-construction guard
            raise GenerationError(
                f"generated program {pid} failed validation: "
                + "; ".join(str(i) for i in issues[:3])
            )
        return program

    def generate_many(self, root_seed: int, count: int, prefix: str = "prog") -> List[Program]:
        """Generate ``count`` programs with ids ``{prefix}-{fptype}-{index:06d}``."""
        from repro.utils.rng import derive_seed

        out = []
        for index in range(count):
            seed = derive_seed(root_seed, "program", self.config.fptype.value, index)
            pid = f"{prefix}-{self.config.fptype.value}-{index:06d}"
            out.append(self.generate(seed, program_id=pid))
        return out

    # ------------------------------------------------------------ signature
    def _make_signature(self, rng: random.Random, state: _GenState) -> List[Param]:
        cfg = self.config
        n_float = rng.randint(cfg.min_float_params, cfg.max_float_params)
        params = [Param("comp", IRType.FLOAT), Param("var_1", IRType.INT)]
        # Arrays only make sense inside loops; decide loops first.
        self._will_have_loop = rng.random() < cfg.grammar.p_loop
        for k in range(n_float):
            name = f"var_{k + 2}"
            if self._will_have_loop and rng.random() < cfg.p_array_param:
                params.append(Param(name, IRType.FLOAT_PTR))
                state.arrays.append(name)
            else:
                params.append(Param(name, IRType.FLOAT))
                state.float_scalars.append(name)
        return params

    # ----------------------------------------------------------------- body
    def _make_body(self, rng: random.Random, state: _GenState) -> List[Stmt]:
        cfg = self.config
        g = cfg.grammar
        stmts: List[Stmt] = []

        if rng.random() < g.p_decl:
            name = state.fresh_tmp()
            stmts.append(Decl(name, self._expr(rng, state, cfg.max_expr_depth)))
            state.float_scalars.append(name)

        n_top = rng.randint(cfg.min_top_statements, cfg.max_top_statements)
        loop_budget = cfg.max_loop_depth if self._will_have_loop else 0
        wrapped_in_if = rng.random() < g.p_if_block

        core: List[Stmt] = []
        made_loop = False
        for _ in range(n_top):
            roll = rng.random()
            if loop_budget > 0 and not made_loop and roll < 0.5:
                core.append(self._loop(rng, state, depth=0))
                made_loop = True
            elif roll < 0.85 or made_loop:
                core.append(self._aug_comp(rng, state))
            else:
                core.append(self._aug_comp(rng, state))
        if loop_budget > 0 and not made_loop:
            core.append(self._loop(rng, state, depth=0))

        if wrapped_in_if:
            stmts.append(If(self._condition(rng, state), core))
        else:
            stmts.extend(core)

        # Guarantee at least one observable accumulator update outside any
        # guard, so the printed value is rarely just the raw input.
        if wrapped_in_if and rng.random() < 0.5:
            stmts.append(self._aug_comp(rng, state))
        return stmts

    def _loop(self, rng: random.Random, state: _GenState, depth: int) -> For:
        cfg = self.config
        var = _LOOP_VARS[depth]
        state.loop_stack.append(var)
        n = rng.randint(cfg.min_block_statements, cfg.max_block_statements)
        body: List[Stmt] = []
        for _ in range(n):
            if state.arrays and rng.random() < 0.45:
                body.append(self._array_assign(rng, state))
            else:
                body.append(self._aug_comp(rng, state))
        if (
            depth + 1 < cfg.max_loop_depth
            and rng.random() < cfg.grammar.p_nested_loop
        ):
            body.append(self._loop(rng, state, depth + 1))
        if not any(isinstance(s, (AugAssign, For)) for s in body):
            body.append(self._aug_comp(rng, state))
        state.loop_stack.pop()
        return For(var, VarRef("var_1"), body)

    def _array_assign(self, rng: random.Random, state: _GenState) -> Assign:
        arr = rng.choice(state.arrays)
        index = VarRef(state.loop_stack[-1])
        return Assign(ArrayRef(arr, index), self._expr(rng, state, self.config.max_expr_depth))

    def _aug_comp(self, rng: random.Random, state: _GenState) -> AugAssign:
        op = _weighted_choice(rng, self.config.grammar.aug_ops)
        return AugAssign(VarRef("comp"), op, self._expr(rng, state, self.config.max_expr_depth))

    # ---------------------------------------------------------- expressions
    def _expr(self, rng: random.Random, state: _GenState, depth: int) -> Expr:
        g = self.config.grammar
        if depth <= 0:
            return self._leaf(rng, state)
        production = _weighted_choice(rng, g.normalized_interior())
        if production == "binop":
            op = _weighted_choice(rng, g.binop_ops)
            return BinOp(op, self._expr(rng, state, depth - 1), self._expr(rng, state, depth - 1))
        if production == "call":
            return self._call(rng, state, depth)
        if production == "unop":
            return UnOp("-", self._expr(rng, state, depth - 1))
        return self._leaf(rng, state)

    def _call(self, rng: random.Random, state: _GenState, depth: int) -> Call:
        from repro.devices.mathlib.base import BINARY_FUNCTIONS

        func = _weighted_choice(rng, self.config.grammar.math_functions)
        nargs = 2 if func in BINARY_FUNCTIONS else 1
        args = [self._expr(rng, state, depth - 1) for _ in range(nargs)]
        return Call(func, args)

    def _leaf(self, rng: random.Random, state: _GenState) -> Expr:
        g = self.config.grammar
        choice = _weighted_choice(rng, g.normalized_leaves())
        if choice == "array" and state.arrays and state.loop_stack:
            return ArrayRef(rng.choice(state.arrays), VarRef(state.loop_stack[-1]))
        if choice == "var" or (choice == "array" and (not state.arrays or not state.loop_stack)):
            return VarRef(rng.choice(state.float_scalars))
        return self._literal(rng)

    def _literal(self, rng: random.Random) -> Const:
        cfg = self.config
        lo, hi = cfg.literal_exponent_range
        exponent = rng.randint(lo, hi)
        mantissa = rng.uniform(1.0, 9.9999)
        sign = "-" if rng.random() < 0.5 else "+"
        digits = cfg.literal_mantissa_digits
        body = f"{mantissa:.{digits}f}"
        suffix = cfg.fptype.literal_suffix
        text = f"{sign}{body}E{exponent}{suffix}" if exponent else f"{sign}{body}{suffix}"
        numeric = float(f"{sign}{body}E{exponent}")
        return Const(numeric, text)

    def _condition(self, rng: random.Random, state: _GenState) -> Expr:
        g = self.config.grammar
        cond: Expr = self._compare(rng, state)
        if rng.random() < g.p_bool_connective:
            other = self._compare(rng, state)
            op = "&&" if rng.random() < 0.5 else "||"
            cond = BoolOp(op, cond, other)
        return cond

    def _compare(self, rng: random.Random, state: _GenState) -> Compare:
        g = self.config.grammar
        op = _weighted_choice(rng, g.compare_ops)
        depth = max(1, self.config.max_expr_depth - 1)
        return Compare(op, self._expr(rng, state, depth), self._expr(rng, state, depth))
