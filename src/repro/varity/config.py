"""Generator configuration.

Bundles the grammar weights with structural limits (parameter counts, loop
nesting, expression depth) and the input-class mix.  The defaults generate
programs the size and shape of the paper's figures; `paper_scale()` in
:mod:`repro.harness.campaign` controls *how many* are generated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import GrammarError
from repro.fp.types import FPType
from repro.varity.grammar import GrammarWeights

__all__ = ["GeneratorConfig", "InputClassWeights"]


@dataclass
class InputClassWeights:
    """Mix of the random-input value classes (§II-B1).

    Varity biases inputs toward ranges that can trigger exceptional
    quantities; the classes and default weights here are calibrated to the
    input vectors shown in the paper's case studies (many ±0, subnormals,
    near-minimum normals, and near-overflow magnitudes).
    """

    zero: float = 0.16  # ±0.0
    subnormal: float = 0.20  # below the smallest normal
    near_min_normal: float = 0.16  # just above the smallest normal
    huge: float = 0.16  # within a few decades of overflow
    moderate: float = 0.18  # |x| in [1e-3, 1e3]
    small: float = 0.14  # |x| in [1e-30, 1e-4] (fp64) / [1e-20, 1e-4] (fp32)

    def as_dict(self) -> Dict[str, float]:
        return {
            "zero": self.zero,
            "subnormal": self.subnormal,
            "near_min_normal": self.near_min_normal,
            "huge": self.huge,
            "moderate": self.moderate,
            "small": self.small,
        }

    def validate(self) -> None:
        table = self.as_dict()
        if any(w < 0 for w in table.values()):
            raise GrammarError("input class weights must be non-negative")
        if sum(table.values()) <= 0:
            raise GrammarError("input class weights sum to zero")


@dataclass
class GeneratorConfig:
    """Everything the program generator needs besides a seed."""

    fptype: FPType = FPType.FP64
    grammar: GrammarWeights = field(default_factory=GrammarWeights)
    inputs: InputClassWeights = field(default_factory=InputClassWeights)

    # -- structural limits ------------------------------------------------------
    min_float_params: int = 5
    max_float_params: int = 9
    p_array_param: float = 0.22  # chance a float param is an array
    max_loop_depth: int = 3  # Table III: nesting L1 > L2 > … > LN
    min_top_statements: int = 2
    max_top_statements: int = 4
    min_block_statements: int = 1
    max_block_statements: int = 3
    max_expr_depth: int = 3

    # -- inputs -----------------------------------------------------------------
    inputs_per_program: int = 7  # ≈ the paper's runs/programs ratio
    min_loop_bound: int = 2
    max_loop_bound: int = 8

    # -- literal constants --------------------------------------------------------
    literal_mantissa_digits: int = 4  # Varity prints 4 fractional digits

    def validate(self) -> None:
        self.grammar.validate()
        self.inputs.validate()
        if not 1 <= self.min_float_params <= self.max_float_params:
            raise GrammarError("bad float-param range")
        if not 0.0 <= self.p_array_param <= 1.0:
            raise GrammarError("p_array_param must be a probability")
        if self.max_loop_depth < 0:
            raise GrammarError("max_loop_depth must be >= 0")
        if not 1 <= self.min_top_statements <= self.max_top_statements:
            raise GrammarError("bad top-statement range")
        if not 1 <= self.min_block_statements <= self.max_block_statements:
            raise GrammarError("bad block-statement range")
        if self.max_expr_depth < 1:
            raise GrammarError("max_expr_depth must be >= 1")
        if self.inputs_per_program < 1:
            raise GrammarError("inputs_per_program must be >= 1")
        if not 1 <= self.min_loop_bound <= self.max_loop_bound:
            raise GrammarError("bad loop-bound range")

    @classmethod
    def fp64(cls, **overrides) -> "GeneratorConfig":
        return cls(fptype=FPType.FP64, **overrides)

    @classmethod
    def fp32(cls, **overrides) -> "GeneratorConfig":
        return cls(fptype=FPType.FP32, **overrides)

    @classmethod
    def fp16(cls, **overrides) -> "GeneratorConfig":
        return cls(fptype=FPType.FP16, **overrides)

    #: Exponent ranges (decimal) per input class and precision; the fp64
    #: numbers mirror the case-study vectors (e.g. +1.7612E-322, -1.3680E306).
    #: The fp16 ranges are compressed into binary16's five exponent bits:
    #: subnormals live below 6.10E-5, and ``huge`` stays under HALF_MAX
    #: (65504) so inputs parse finite — a single multiplication away from
    #: overflow, which is the half lane's whole point.
    _EXPONENT_RANGES = {
        FPType.FP64: {
            "subnormal": (-322, -309),
            "near_min_normal": (-308, -290),
            "huge": (300, 306),
            "moderate": (-3, 3),
            "small": (-30, -4),
        },
        FPType.FP32: {
            "subnormal": (-44, -39),
            "near_min_normal": (-38, -31),
            "huge": (34, 37),  # 9.9999E37 < FLT_MAX: inputs stay finite
            "moderate": (-3, 3),
            "small": (-20, -4),
        },
        FPType.FP16: {
            "subnormal": (-7, -6),  # 1.0E-7 > 5.96E-8, 9.9999E-6 < 6.10E-5
            "near_min_normal": (-4, -3),
            "huge": (2, 3),  # 9.9999E3 < HALF_MAX: inputs stay finite
            "moderate": (-2, 2),
            "small": (-5, -3),
        },
    }

    def exponent_range(self, klass: str) -> Tuple[int, int]:
        try:
            table = self._EXPONENT_RANGES[self.fptype]
        except KeyError:
            raise GrammarError(
                f"no input exponent ranges for {self.fptype!r}"
            ) from None
        try:
            return table[klass]
        except KeyError:
            raise GrammarError(f"input class {klass!r} has no exponent range") from None

    #: Constant literals in program text span nearly the whole representable
    #: range (Fig. 4 contains +1.7085E-315 and -1.9289E305 side by side).
    @property
    def literal_exponent_range(self) -> Tuple[int, int]:
        table = {
            FPType.FP64: (-320, 306),
            FPType.FP32: (-44, 37),
            FPType.FP16: (-7, 3),
        }
        try:
            return table[self.fptype]
        except KeyError:
            raise GrammarError(
                f"no literal exponent range for {self.fptype!r}"
            ) from None
