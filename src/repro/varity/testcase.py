"""Test cases: a program plus its input vectors.

This is the unit the harness runs and the metadata store (Fig. 3)
round-trips between "clusters".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.fp.types import FPType
from repro.ir.program import Program
from repro.varity.inputs import InputVector

__all__ = ["TestCase"]


@dataclass
class TestCase:
    """One generated program with its generated inputs."""

    #: keep pytest from trying to collect this class as a test suite
    __test__ = False

    program: Program
    inputs: Tuple[InputVector, ...]

    def __init__(self, program: Program, inputs: Sequence[InputVector]) -> None:
        self.program = program
        self.inputs = tuple(inputs)
        if not self.inputs:
            raise ValueError("a test case needs at least one input vector")
        nparams = len(program.kernel.params)
        for vec in self.inputs:
            if len(vec.values) != nparams:
                raise ValueError(
                    f"input vector arity {len(vec.values)} != {nparams} params"
                )

    @property
    def test_id(self) -> str:
        return self.program.program_id

    @property
    def fptype(self) -> FPType:
        return self.program.fptype

    @property
    def n_runs_per_compiler_per_option(self) -> int:
        return len(self.inputs)

    def hipified(self) -> "TestCase":
        """The HIPIFY-converted twin of this test (same inputs)."""
        return TestCase(self.program.marked_hipify(), self.inputs)

    # -- metadata (de)serialization ---------------------------------------------
    def to_meta_dict(self) -> Dict[str, object]:
        """The JSON-able record stored in campaign metadata.

        Programs are regenerated from their seed on the destination system
        (deterministic generation), so only identity + inputs are stored —
        mirroring how the paper ships test files + a JSON of inputs.
        """
        return {
            "test_id": self.test_id,
            "seed": self.program.seed,
            "fptype": self.fptype.value,
            "via_hipify": self.program.via_hipify,
            "inputs": [list(vec.texts) for vec in self.inputs],
        }
