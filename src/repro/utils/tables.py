"""Plain-text table rendering.

The benchmark harness prints the paper's tables (IV through X and Table I)
as aligned ASCII tables so ``pytest benchmarks/ --benchmark-only`` output can
be compared side-by-side with the paper.  Kept dependency-free on purpose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Union

__all__ = ["Table", "format_table"]

Cell = Union[str, int, float]


def _fmt_cell(value: Cell) -> str:
    if isinstance(value, float):
        # Counts and percentages; keep short but unambiguous.
        return f"{value:.2f}" if abs(value) >= 0.01 or value == 0 else f"{value:.3g}"
    return str(value)


@dataclass
class Table:
    """A titled grid of cells with a header row.

    >>> t = Table(title="demo", headers=["a", "b"])
    >>> t.add_row([1, 2.5])
    >>> print(t.render())  # doctest: +SKIP
    """

    title: str
    headers: Sequence[str]
    rows: List[List[str]] = field(default_factory=list)
    footers: List[List[str]] = field(default_factory=list)

    def add_row(self, cells: Iterable[Cell]) -> None:
        row = [_fmt_cell(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def add_footer(self, cells: Iterable[Cell]) -> None:
        row = [_fmt_cell(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"footer has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.footers.append(row)

    def render(self) -> str:
        return format_table(
            self.title, self.headers, self.rows, footers=self.footers
        )

    def __str__(self) -> str:
        return self.render()


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    footers: Optional[Sequence[Sequence[Cell]]] = None,
) -> str:
    """Render a grid with a title, a rule under the header, and a footer rule."""
    footers = footers or []
    str_rows = [[_fmt_cell(c) for c in row] for row in rows]
    str_footers = [[_fmt_cell(c) for c in row] for row in footers]
    all_rows = [list(map(str, headers))] + str_rows + str_footers
    ncols = len(headers)
    widths = [0] * ncols
    for row in all_rows:
        if len(row) != ncols:
            raise ValueError("ragged table")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()

    rule = "-" * (sum(widths) + 2 * (ncols - 1))
    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * max(len(title), len(rule) // 2))
    out.append(line(list(map(str, headers))))
    out.append(rule)
    out.extend(line(r) for r in str_rows)
    if str_footers:
        out.append(rule)
        out.extend(line(r) for r in str_footers)
    return "\n".join(out)
