"""JSON helpers that round-trip floating-point payloads exactly.

Campaign metadata (Fig. 3 of the paper) stores test inputs and observed
outputs.  Those values include NaN, infinities, negative zero, and
subnormals; all of them must survive a save/load cycle bit-exactly or the
"re-run the same tests on the other cluster" workflow breaks.  Finite floats
are stored via ``repr`` (shortest round-trip in Python 3); non-finite values
are stored as tagged strings because strict JSON has no literal for them.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Union

import numpy as np

__all__ = ["encode_float", "decode_float", "dump_json", "load_json", "json_default"]

_NAN_TAG = "__nan__"
_NEG_NAN_TAG = "__-nan__"
_INF_TAG = "__inf__"
_NEG_INF_TAG = "__-inf__"


def encode_float(value: float) -> Union[float, str]:
    """Encode one float as a JSON-safe value (tagged string if non-finite)."""
    value = float(value)
    if math.isnan(value):
        return _NEG_NAN_TAG if math.copysign(1.0, value) < 0 else _NAN_TAG
    if math.isinf(value):
        return _INF_TAG if value > 0 else _NEG_INF_TAG
    return value


def decode_float(value: Union[float, int, str]) -> float:
    """Inverse of :func:`encode_float`."""
    if isinstance(value, str):
        if value == _NAN_TAG:
            return math.nan
        if value == _NEG_NAN_TAG:
            return -math.nan
        if value == _INF_TAG:
            return math.inf
        if value == _NEG_INF_TAG:
            return -math.inf
        # Fall back to parsing: lets hand-edited metadata use plain strings.
        return float(value)
    return float(value)


def json_default(obj: Any) -> Any:
    """``default=`` hook understanding numpy scalars and dataclass-likes."""
    if isinstance(obj, (np.floating,)):
        return encode_float(float(obj))
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, np.ndarray):
        return [json_default(x) if isinstance(x, np.generic) else x for x in obj.tolist()]
    if hasattr(obj, "to_json_dict"):
        return obj.to_json_dict()
    raise TypeError(f"cannot serialize {type(obj).__name__} to JSON")


def dump_json(data: Any, path: Union[str, Path], *, indent: int = 2) -> None:
    """Write ``data`` to ``path`` as strict JSON (no NaN literals)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=indent, allow_nan=False, default=json_default)
        fh.write("\n")


def load_json(path: Union[str, Path]) -> Any:
    """Read strict JSON written by :func:`dump_json`."""
    with Path(path).open("r", encoding="utf-8") as fh:
        return json.load(fh)
