"""Append-only JSONL checkpoint files with fingerprint headers.

Both resumable surfaces of the system — the campaign engine's plan-step
checkpoint and the fuzzer's findings ledger — share the same crash-safe
file discipline:

* line 1 is a ``{"kind": "header", "fingerprint": ...}`` record; a file
  written under one configuration refuses to resume under another;
* every subsequent line is one JSON record, flushed as it is appended,
  so a hard kill loses at most the line being written;
* a torn final line (killed mid-append) is skipped on read and trimmed
  before the next append, so the work it described simply re-runs.

This module owns that discipline once; the campaign checkpoint and the
fuzz ledger subclass it with their own record vocabularies.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, IO, Iterator, Optional, Union

from repro.errors import HarnessError

__all__ = ["JsonlCheckpoint"]


class JsonlCheckpoint:
    """One append-only JSONL file with a config-fingerprint header."""

    #: how error messages name the file ("checkpoint", "ledger", ...).
    noun = "checkpoint"
    #: how error messages name the writer ("a campaign", "a fuzz session").
    writer = "a run"

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh: Optional[IO[str]] = None

    # ------------------------------------------------------------------ read
    def iter_records(self, fingerprint: Dict[str, object]) -> Iterator[Dict[str, object]]:
        """Yield the data records, validating the header against ``fingerprint``.

        Raises :class:`~repro.errors.HarnessError` when the file is
        missing, empty, headerless, or was written under a different
        configuration.  Unparseable lines (a run killed mid-write leaves
        a torn final line) are skipped; the work they described re-runs.
        """
        if not self.path.exists():
            raise HarnessError(
                f"cannot resume: {self.noun} {self.path} does not exist"
            )
        header_seen = False
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not header_seen:
                    if data.get("kind") != "header":
                        raise HarnessError(
                            f"{self.noun} {self.path} has no header line"
                        )
                    if data.get("fingerprint") != fingerprint:
                        raise HarnessError(
                            f"{self.noun} {self.path} was written by {self.writer} "
                            "with a different configuration; refusing to resume"
                        )
                    header_seen = True
                    continue
                yield data
        if not header_seen:
            raise HarnessError(f"{self.noun} {self.path} is empty")

    # ----------------------------------------------------------------- write
    def open_for_append(self, fingerprint: Dict[str, object], fresh: bool) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if fresh or not self.path.exists():
            with self.path.open("w", encoding="utf-8") as fh:
                fh.write(
                    json.dumps({"kind": "header", "fingerprint": fingerprint}) + "\n"
                )
        else:
            self._trim_torn_tail()
        self._fh = self.path.open("a", encoding="utf-8")

    def _trim_torn_tail(self) -> None:
        """Drop a half-written final line so the next append starts clean."""
        data = self.path.read_bytes()
        if data and not data.endswith(b"\n"):
            with self.path.open("wb") as fh:
                fh.write(data[: data.rfind(b"\n") + 1])

    def append_record(self, record: Dict[str, object]) -> None:
        assert self._fh is not None
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
