"""Seed management.

Campaigns generate thousands of programs, each with several inputs, and the
whole tree must be reproducible from one root seed (the paper re-runs the
exact same tests on a second cluster from saved metadata; see Fig. 3).  We
derive child seeds with :func:`repro.utils.hashing.stable_hash` rather than
with ``numpy.random.SeedSequence.spawn`` so a test's seed can be recomputed
from its *identity* (program index, input index) without replaying the
spawn order.
"""

from __future__ import annotations

import random
from typing import Optional

import numpy as np

from repro.utils.hashing import stable_hash

__all__ = ["derive_seed", "SeedSequenceFactory"]


def derive_seed(root_seed: int, *path: object) -> int:
    """Derive a 64-bit child seed from a root seed and an identity path.

    Example::

        seed = derive_seed(campaign_seed, "program", 137)
        seed = derive_seed(campaign_seed, "input", 137, 4)
    """
    return stable_hash(*path, seed=root_seed)


class SeedSequenceFactory:
    """Produces independent RNG streams addressed by identity paths.

    Both :mod:`random` (used by the program generator, which mostly makes
    structural choices) and :mod:`numpy.random` (used by the input
    generator, which needs raw 64-bit draws) streams are provided.
    """

    def __init__(self, root_seed: int) -> None:
        if not isinstance(root_seed, int):
            raise TypeError("root_seed must be an int")
        self.root_seed = root_seed & 0xFFFFFFFFFFFFFFFF

    def seed_for(self, *path: object) -> int:
        return derive_seed(self.root_seed, *path)

    def py_rng(self, *path: object) -> random.Random:
        return random.Random(self.seed_for(*path))

    def np_rng(self, *path: object) -> np.random.Generator:
        return np.random.default_rng(self.seed_for(*path))

    def child(self, *path: object) -> "SeedSequenceFactory":
        return SeedSequenceFactory(self.seed_for(*path))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedSequenceFactory(root_seed={self.root_seed:#018x})"


#: Default root seed used when the caller does not provide one.
DEFAULT_SEED = 0x5EED_2024


def default_factory(seed: Optional[int] = None) -> SeedSequenceFactory:
    """Factory with an explicit seed, or the library default."""
    return SeedSequenceFactory(DEFAULT_SEED if seed is None else seed)
