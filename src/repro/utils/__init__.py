"""Shared low-level utilities (hashing, RNG, tables, JSON I/O)."""

from repro.utils.hashing import (
    splitmix64,
    hash_bytes,
    hash_floats,
    stable_hash,
)
from repro.utils.rng import SeedSequenceFactory, derive_seed
from repro.utils.tables import Table, format_table
from repro.utils.jsonio import dump_json, load_json, json_default

__all__ = [
    "splitmix64",
    "hash_bytes",
    "hash_floats",
    "stable_hash",
    "SeedSequenceFactory",
    "derive_seed",
    "Table",
    "format_table",
    "dump_json",
    "load_json",
    "json_default",
]
