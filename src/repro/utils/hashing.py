"""Deterministic 64-bit hashing.

The vendor math-library models need a *reproducible* pseudo-random decision
per ``(vendor, function, operand bits)`` triple: whether this operand lands
on one of the inputs where the vendor's polynomial is off by an ULP, and in
which direction.  Python's builtin ``hash`` is salted per process, so we use
a small splitmix64-based construction that is stable across runs, platforms,
and Python versions.
"""

from __future__ import annotations

import struct
from typing import Iterable

__all__ = ["splitmix64", "hash_bytes", "hash_floats", "stable_hash"]

_MASK = 0xFFFFFFFFFFFFFFFF


def splitmix64(x: int) -> int:
    """One round of the splitmix64 mixer.

    Maps a 64-bit integer to a well-scrambled 64-bit integer.  This is the
    finalizer used by many PRNGs; it passes strict avalanche tests, which is
    what we need for bit-keyed error placement.
    """
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
    return (z ^ (z >> 31)) & _MASK


def hash_bytes(data: bytes, seed: int = 0) -> int:
    """Hash a byte string to 64 bits, deterministically.

    A simple multiply-xor sponge over 8-byte lanes finished with splitmix64.
    Not cryptographic; collision behaviour is more than adequate for error
    placement and test-id derivation.
    """
    h = splitmix64(seed & _MASK)
    # Process full 8-byte words.
    n = len(data)
    for off in range(0, n - n % 8, 8):
        (word,) = struct.unpack_from("<Q", data, off)
        h = splitmix64(h ^ word)
    tail = data[n - n % 8 :]
    if tail:
        word = int.from_bytes(tail, "little")
        h = splitmix64(h ^ word ^ (len(tail) << 56))
    # Fold in the length so prefixes do not collide.
    return splitmix64(h ^ n)


def hash_floats(values: Iterable[float], seed: int = 0) -> int:
    """Hash a sequence of Python floats by their IEEE-754 bit patterns."""
    h = splitmix64(seed & _MASK)
    count = 0
    for v in values:
        (bits,) = struct.unpack("<Q", struct.pack("<d", float(v)))
        h = splitmix64(h ^ bits)
        count += 1
    return splitmix64(h ^ count)


def stable_hash(*parts: object, seed: int = 0) -> int:
    """Hash a heterogeneous tuple of ints / floats / strings / bytes.

    Each part is tagged by type before hashing so ``1`` and ``1.0`` and
    ``"1"`` produce distinct digests.
    """
    h = splitmix64(seed & _MASK)
    for part in parts:
        if isinstance(part, bool):  # before int: bool is an int subclass
            h = hash_bytes(b"b" + bytes([part]), h)
        elif isinstance(part, int):
            h = hash_bytes(b"i" + part.to_bytes(16, "little", signed=True), h)
        elif isinstance(part, float):
            h = hash_bytes(b"f" + struct.pack("<d", part), h)
        elif isinstance(part, str):
            h = hash_bytes(b"s" + part.encode("utf-8"), h)
        elif isinstance(part, bytes):
            h = hash_bytes(b"y" + part, h)
        elif part is None:
            h = hash_bytes(b"n", h)
        else:
            raise TypeError(f"stable_hash cannot digest {type(part).__name__}")
    return h
