"""Metamorphic-relation oracle — single-stack numerical defect detection.

The differential harness needs two vendor stacks to disagree before it
can flag anything; ``repro.oracle`` detects defects *within one
execution model* by checking metamorphic relations: program transforms
whose effect on the result is provable (exact, or ULP-bounded), executed
through the shared :mod:`repro.exec` service so variants are
content-cached and deduped.  See :mod:`repro.oracle.relations` for the
relation catalogue and the soundness argument of each bound.
"""

from repro.oracle.engine import (
    OracleConfig,
    OracleResult,
    oracle_check_outcomes,
    oracle_requests_for,
    oracle_violation_table,
    run_oracle,
)
from repro.oracle.ledger import OracleLedger, OracleLedgerState
from repro.oracle.relations import (
    RELATION_NAMES,
    RELATIONS,
    Relation,
    RelationViolation,
    check_relation,
    resolve_relations,
)

__all__ = [
    "OracleConfig",
    "OracleResult",
    "run_oracle",
    "oracle_requests_for",
    "oracle_check_outcomes",
    "oracle_violation_table",
    "OracleLedger",
    "OracleLedgerState",
    "Relation",
    "RelationViolation",
    "RELATIONS",
    "RELATION_NAMES",
    "resolve_relations",
    "check_relation",
]
