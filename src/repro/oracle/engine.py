"""The metamorphic-oracle session engine.

For every corpus program the engine builds one execution-service chunk:
each applicable relation contributes a request for the *base* program
(when its checker reads the base sweep) plus one request per transformed
variant.  Relations deliberately re-request the base rather than sharing
a reference — the service's content-keyed dedup collapses those
duplicates to a single execution and counts them
(:attr:`repro.exec.service.ExecMetrics.deduped`), which is the proof
that cache-hit variants execute zero redundant runs (surfaced by
``repro-oracle --report``).

Determinism: site choices derive from
``derive_seed(config.seed, "oracle-site", relation, index)``, chunk
composition depends only on the config, and the service returns chunk
outcomes in submission order at every worker count — so a seeded session
writes a byte-identical ledger at workers 0, 2, or 4, and ``--resume``
continues from the first unrecorded corpus index.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.compilers.options import OptSetting, PAPER_OPT_SETTINGS
from repro.errors import HarnessError
from repro.exec import (
    CHUNK_CACHE,
    ExecutionService,
    SweepOutcome,
    SweepRequest,
    resolve_backend,
)
from repro.exec.units import RunnerSpec
from repro.fp.types import FPType
from repro.harness.runner import PairResult
from repro.stacks import DEFAULT_STACK_PAIR, get_stack
from repro.oracle.ledger import OracleLedger, OracleLedgerState
from repro.oracle.relations import (
    FastMathFlag,
    Relation,
    RelationViolation,
    RELATION_NAMES,
    resolve_relations,
)
from repro.telemetry.spans import get_tracer
from repro.utils.rng import derive_seed
from repro.utils.tables import Table
from repro.varity.config import GeneratorConfig
from repro.varity.corpus import build_corpus
from repro.varity.testcase import TestCase

__all__ = [
    "OracleConfig",
    "OracleResult",
    "run_oracle",
    "oracle_requests_for",
    "oracle_check_outcomes",
    "oracle_violation_table",
]


@dataclass(frozen=True)
class OracleConfig:
    """Size and shape of one oracle session."""

    seed: int = 2024
    #: FP32 by default: fast-math/FTZ relations only have teeth there.
    fptype: FPType = FPType.FP32
    n_programs: int = 40
    inputs_per_program: int = 3
    opts: Tuple[OptSetting, ...] = PAPER_OPT_SETTINGS
    relations: Tuple[str, ...] = RELATION_NAMES
    #: Num/Num drift budget (ULPs) for approximate relations; exact
    #: relations ignore it, class flips always violate.
    ulp_bound: int = 4
    #: the (lhs, rhs) stack pair every base/variant sweep runs on —
    #: relations are single-stack oracles, so each selected stack is
    #: checked independently against its own base.
    stacks: Tuple[str, str] = DEFAULT_STACK_PAIR
    workers: int = 0
    #: Execution backend (None = worker-count rule; "serial"/"pool"/
    #: "bridge").  Pure scheduling, like ``workers`` — excluded from the
    #: fingerprint.
    backend: Optional[str] = None
    bridge_url: Optional[str] = None

    def __post_init__(self) -> None:
        if self.n_programs < 1:
            raise HarnessError("n_programs must be >= 1")
        if self.workers < 0:
            raise HarnessError("workers must be >= 0")
        if not self.relations:
            raise HarnessError("at least one relation is required")
        try:
            resolve_relations(self.relations)
        except ValueError as exc:
            raise HarnessError(str(exc)) from None
        if len(self.stacks) != 2 or self.stacks[0] == self.stacks[1]:
            raise HarnessError("stacks must name two distinct stacks")
        for name in self.stacks:
            get_stack(name)  # raises HarnessError on unknown names

    @property
    def corpus_seed(self) -> int:
        return derive_seed(self.seed, "oracle-corpus", self.fptype.value)

    def generator_config(self) -> GeneratorConfig:
        cfg = GeneratorConfig(
            fptype=self.fptype, inputs_per_program=self.inputs_per_program
        )
        cfg.validate()
        return cfg

    def fingerprint(self) -> Dict[str, object]:
        """The result-determining identity of this config.

        ``workers`` is excluded (pure scheduling, like the campaign
        checkpoint and fuzz ledger).  ``n_programs`` is excluded too: the
        corpus stream is a pure function of (generator config, corpus
        seed, index), so the program count only says where to stop — a
        ledger written with ``--programs 20`` resumes under
        ``--programs 40`` to check the remaining 20, the oracle analogue
        of the fuzz ledger's budget rule.

        The ``stacks`` key is emitted only for non-default pairs (the
        conditional-key compat rule shared with the campaign checkpoint
        and fuzz ledger), so pre-registry oracle ledgers still resume.
        """
        fp: Dict[str, object] = {
            "format": 1,
            "seed": self.seed,
            "fptype": self.fptype.value,
            "inputs_per_program": self.inputs_per_program,
            "opts": [o.label for o in self.opts],
            "relations": list(self.relations),
            "ulp_bound": self.ulp_bound,
        }
        if tuple(self.stacks) != DEFAULT_STACK_PAIR:
            fp["stacks"] = list(self.stacks)
        return fp


@dataclass
class OracleResult:
    """Everything one oracle session checked and found."""

    config: OracleConfig
    violations: List[RelationViolation]
    programs_checked: int
    resumed_programs: int = 0
    checked_by_relation: Dict[str, int] = field(default_factory=dict)
    pair_runs: int = 0
    elapsed_seconds: float = 0.0
    #: :meth:`repro.exec.ExecutionService.stats` of the executed work —
    #: ``deduped`` is the zero-redundant-runs proof.
    exec_metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def violations_by_relation(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for v in self.violations:
            out[v.relation] = out.get(v.relation, 0) + 1
        return out

    @property
    def violated_programs(self) -> int:
        return len({v.test_id for v in self.violations})

    def table(self) -> Table:
        return oracle_violation_table(
            self.checked_by_relation, self.violations, self.config.relations
        )


def oracle_violation_table(
    checked_by_relation: Dict[str, int],
    violations: List[RelationViolation],
    relation_order: Tuple[str, ...] = RELATION_NAMES,
    title: str = "Metamorphic-relation violations",
) -> Table:
    """Per-relation violation accounting (CLI and campaign report)."""
    by_relation: Dict[str, List[RelationViolation]] = {}
    for v in violations:
        by_relation.setdefault(v.relation, []).append(v)
    table = Table(
        title=title,
        headers=["Relation", "Programs checked", "Violations", "Programs", "Platforms"],
    )
    for name in relation_order:
        vs = by_relation.get(name, [])
        platforms = sorted({v.platform for v in vs})
        table.add_row(
            [
                name,
                checked_by_relation.get(name, 0),
                len(vs),
                len({v.test_id for v in vs}),
                ", ".join(platforms) or "—",
            ]
        )
    return table


# ---------------------------------------------------------------------------
# Chunk construction / checking (shared with the campaign's oracle arm)
# ---------------------------------------------------------------------------


@dataclass
class _ProgramPlan:
    """One program's oracle work: its chunk and how to interpret it."""

    index: int
    test: TestCase
    requests: List[SweepRequest]
    #: names of the relations applicable to this program, registry order.
    checked: List[str]


def relation_applicable(
    rel: Relation,
    variants: List[Tuple[str, TestCase]],
    opts: Tuple[OptSetting, ...],
) -> bool:
    """Whether a relation has anything to check on this program.

    The base-sweep-only ``fastmath-flag`` relation applies whenever both
    of its sweep columns are in the session's opts; every transforming
    relation applies when it found a site.  The one place this policy
    lives — the oracle engine and the fuzz evaluator both build their
    requests through :func:`build_relation_requests`.
    """
    if isinstance(rel, FastMathFlag):
        labels = {o.label for o in opts}
        return rel.plain_label in labels and rel.fm_label in labels
    return bool(variants)


def build_relation_requests(
    test: TestCase,
    tag_head: object,
    seed: int,
    rng_token: object,
    relations: List[Relation],
    opts: Tuple[OptSetting, ...],
    stacks: Tuple[str, str] = DEFAULT_STACK_PAIR,
) -> Tuple[List[SweepRequest], List[str]]:
    """Per-relation base + variant requests for one program.

    Tags are ``(tag_head, relation, label)`` — the oracle engine passes
    the corpus index as ``tag_head``, the fuzz evaluator the literal
    ``"oracle"``.  ``rng_token`` addresses the site-choice RNG
    (``derive_seed(seed, "oracle-site", relation, token)``): a corpus
    index or a content-stable test id, so either caller rebuilds
    identical variants on resume.  ``stacks`` selects the pair the
    sweeps run on; relations check each of its stacks independently.
    Every base-reading relation issues its own base request; the service
    dedups the copies (same content, opts, runner) down to one
    execution, which is what makes the per-relation accounting free.
    """
    runner = RunnerSpec(stacks=tuple(stacks))
    requests: List[SweepRequest] = []
    checked: List[str] = []
    for rel in relations:
        rng = random.Random(derive_seed(seed, "oracle-site", rel.name, rng_token))
        variants = rel.variants(test, rng)
        if not relation_applicable(rel, variants, opts):
            continue
        checked.append(rel.name)
        if rel.needs_base:
            requests.append(
                SweepRequest(
                    test=test,
                    opts=opts,
                    tag=(tag_head, rel.name, "base"),
                    cache=CHUNK_CACHE,
                    runner=runner,
                )
            )
        for label, variant in variants:
            requests.append(
                SweepRequest(
                    test=variant,
                    opts=opts,
                    tag=(tag_head, rel.name, label),
                    cache=CHUNK_CACHE,
                    runner=runner,
                )
            )
    return requests, checked


def oracle_requests_for(
    test: TestCase,
    index: int,
    seed: int,
    relations: List[Relation],
    opts: Tuple[OptSetting, ...],
    stacks: Tuple[str, str] = DEFAULT_STACK_PAIR,
) -> _ProgramPlan:
    """Build one program's chunk (see :func:`build_relation_requests`)."""
    requests, checked = build_relation_requests(
        test, index, seed, index, relations, opts, stacks
    )
    return _ProgramPlan(index=index, test=test, requests=requests, checked=checked)


def check_relation_outcomes(
    outcomes: List[SweepOutcome],
    relations: List[Relation],
    fptype: FPType,
    ulp_bound: int,
    test_id: Optional[str] = None,
) -> List[RelationViolation]:
    """Fold one program's oracle outcomes through the relation checkers.

    Outcomes carry ``(_, relation, label)`` tags; each relation's base
    and variant sweeps are regrouped and checked in registry order, so
    the violation list is deterministic.  A relation with no recorded
    outcomes (not applicable on this program) contributes nothing —
    presence in the outcome stream IS the applicability record.

    ``test_id`` names the checked program; checkers that compare two
    *variants* (``demote-roundtrip``) read a variant's synthetic content
    id off the run records, so every violation is normalized to the
    program's own id — one program, one id, however many relations flag
    it.
    """
    base_by_rel: Dict[str, Dict[str, PairResult]] = {}
    variants_by_rel: Dict[str, Dict[str, Dict[str, PairResult]]] = {}
    for outcome in outcomes:
        _, rel_name, label = outcome.tag
        if label == "base":
            base_by_rel[str(rel_name)] = outcome.pairs
        else:
            variants_by_rel.setdefault(str(rel_name), {})[str(label)] = outcome.pairs
    tracer = get_tracer()
    violations: List[RelationViolation] = []
    for rel in relations:
        base = base_by_rel.get(rel.name, {})
        variants = variants_by_rel.get(rel.name, {})
        if rel.needs_base and not base:
            continue
        if not base and not variants:
            continue
        t0 = time.perf_counter_ns() if tracer.enabled else 0
        found = rel.check(fptype, base, variants, ulp_bound)
        if tracer.enabled:
            tracer.record(
                "oracle.relation",
                t0,
                time.perf_counter_ns(),
                relation=rel.name,
                violations=len(found),
            )
        violations.extend(found)
    if test_id is not None:
        violations = [
            replace(v, test_id=test_id) if v.test_id != test_id else v
            for v in violations
        ]
    return violations


def oracle_check_outcomes(
    plan: _ProgramPlan,
    outcomes: List[SweepOutcome],
    relations: List[Relation],
    ulp_bound: int,
) -> Tuple[List[RelationViolation], int]:
    """One chunk's violations plus its executed (non-deduped) pair count."""
    runs = sum(o.pair_runs for o in outcomes if not o.deduped)
    violations = check_relation_outcomes(
        outcomes, relations, plan.test.fptype, ulp_bound, plan.test.test_id
    )
    return violations, runs


# ---------------------------------------------------------------------------
# The session
# ---------------------------------------------------------------------------


def run_oracle(
    config: Optional[OracleConfig] = None,
    *,
    ledger: Optional[Union[str, Path]] = None,
    resume: Union[bool, str] = False,
    progress=None,
) -> OracleResult:
    """Run one oracle session; returns violations and accounting.

    ``ledger`` names the JSONL file; ``resume=True`` reloads a matching
    ledger (fingerprint must agree) and continues from the first
    unrecorded corpus index; ``resume="auto"`` starts fresh when the
    ledger is missing or mismatched.  ``progress`` is an optional
    ``(phase, done, total)`` callable.
    """
    config = config or OracleConfig()
    if resume and ledger is None:
        raise HarnessError("resume requires a ledger path")
    t0 = time.perf_counter()

    relations = resolve_relations(config.relations)
    corpus = build_corpus(
        config.generator_config(), config.n_programs, config.corpus_seed, prefix="oracle"
    )

    book: Optional[OracleLedger] = None
    state = OracleLedgerState()
    resuming = bool(resume)
    if ledger is not None:
        book = OracleLedger(ledger)
        if resume:
            try:
                state = book.load(config.fingerprint())
            except HarnessError:
                if resume != "auto":
                    raise
                state = OracleLedgerState()
                resuming = False
        book.open_for_append(config.fingerprint(), fresh=not resuming)

    # A ledger may already record more programs than this session asks
    # for (resume under a smaller --programs); the reloaded violations
    # and per-relation counts cover the recorded extent, so the session
    # reports that extent rather than under-claiming its own numbers.
    start = min(state.programs_done, config.n_programs)
    programs_total = max(state.programs_done, config.n_programs)
    violations: List[RelationViolation] = list(state.violations)
    checked_by_relation: Dict[str, int] = dict(state.checked_by_relation)
    pair_runs = state.pair_runs

    if config.backend is None:
        service = ExecutionService.for_workers(config.workers)
    else:
        service = ExecutionService(
            backend=resolve_backend(
                config.backend, config.workers, config.bridge_url
            )
        )
    try:
        plans = [
            oracle_requests_for(
                corpus.tests[index],
                index,
                config.seed,
                relations,
                config.opts,
                config.stacks,
            )
            for index in range(start, config.n_programs)
        ]
        chunk_iter = service.run_sweeps(p.requests for p in plans if p.requests)
        for plan in plans:
            outcomes: List[SweepOutcome] = []
            if plan.requests:
                outcomes = next(chunk_iter)
            found, runs = oracle_check_outcomes(
                plan, outcomes, relations, config.ulp_bound
            )
            violations.extend(found)
            pair_runs += runs
            for name in plan.checked:
                checked_by_relation[name] = checked_by_relation.get(name, 0) + 1
            if book is not None:
                book.append_program(
                    plan.index, plan.test.test_id, plan.checked, runs, found
                )
            if progress is not None:
                progress("oracle", plan.index + 1, config.n_programs)
        exec_metrics = service.stats()
    finally:
        service.close()
        if book is not None:
            book.close()

    return OracleResult(
        config=config,
        violations=violations,
        programs_checked=programs_total,
        resumed_programs=start,
        checked_by_relation=checked_by_relation,
        pair_runs=pair_runs,
        elapsed_seconds=time.perf_counter() - t0,
        exec_metrics=exec_metrics,
    )
