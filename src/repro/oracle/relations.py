"""Metamorphic relations — single-stack numerical oracles.

The differential campaigns only flag a bug when the two vendor stacks
*disagree*; a defect both models share (or one present when only one
toolchain is available) is invisible to them.  A metamorphic relation is
an oracle that needs no second stack: it transforms a program in a way
whose effect on the result is *provable within the model* — exactly
preserved, or preserved within a small ULP budget — executes base and
variant on the SAME platform, and reports a violation when the observed
drift exceeds what the transformation can explain.

Soundness of the shipped bounds (why a violation is a real signal):

* ``mul-one`` — ``e * 1.0`` is exact in IEEE-754, every precision, every
  rounding mode.  Any difference means the stack did something to the
  multiply that is not IEEE multiplication (in the modeled stacks:
  fast-math FTZ flushing a subnormal product that the unwrapped site
  kept — a genuine fast-math hazard, and hipcc's model fires it because
  only nvcc's folds ``x*1`` away before execution).  Multiplies sitting
  in FMA-contractible ``a*b ± c`` positions are excluded as wrap
  targets: there the wrapper changes the contraction shape — a legal
  one-rounding drift that ``fma-rewrite`` budgets, not a defect (see
  :class:`MulOne`).
* ``commute-swap`` — IEEE ``+`` and ``*`` are commutative bit-for-bit
  (NaN payloads are not modeled; ±0 sums agree), and ``fmin``/``fmax``
  are symmetric.  A violation means compilation is *shape-sensitive*:
  the modeled hipcc contracts ``a*b + c`` but not ``c + a*b``, so the
  swap toggles FMA contraction and moves the result — a single-stack
  reading of the paper's contraction-asymmetry mechanism.
* ``fma-rewrite`` — contracting ``a*b ± c`` to a fused operation removes
  one rounding; the two forms agree in outcome class and differ by at
  most a few ULPs *unless* the intermediate rounding was load-bearing
  (cancellation, overflow boundary).  The checker allows
  ``config.ulp_bound`` ULPs of Num/Num drift and flags class flips —
  the cases the paper's Tables V/VII attribute to contraction.
* ``fmod-identity`` — ``fmod(fmod(x, y), y) == fmod(x, y)`` exactly: a
  correct truncated remainder satisfies ``|r| < |y|``, and fmod is the
  identity on in-range arguments in both vendor models.  A violation
  means the inner fmod returned an out-of-range remainder (the classic
  reduction-loop defect class; the paper's Case Study 1 is an fmod
  reduction drift).  The textbook residual identity
  ``fmod(x,y) + y*trunc(x/y) ≈ x`` is deliberately NOT used as the
  check: its inherent slack is ~1 ULP of *x*, which for the interesting
  huge-``x/y`` inputs is astronomically larger than any plausible
  defect in the remainder (below 1 ULP of *y*), so it can never fire.
* ``demote-roundtrip`` — rounding to binary16 is idempotent:
  ``demote(demote(e)) == demote(e)`` for every input, because the first
  result is exactly representable in binary16.  (Idempotence is the
  observable fragment of round-trip *monotonicity*: a monotone rounding
  is necessarily idempotent.)  A violation means the stack's
  ``__half`` conversion double-rounds or otherwise perturbs.
* ``fastmath-flag`` — compiling with and without the fast-math flag may
  legally move a Number by the documented approximation error, but an
  outcome-*class* flip (Num→NaN, Num→Zero, Inf→Num, …) at the same
  optimization level is the paper's own definition of a reportable
  inconsistency, here observed within one stack.  This relation
  transforms nothing: it compares two columns of the base sweep, so it
  costs zero extra runs.

Relations transform the *typed IR* and execute through
``repro.exec.ExecutionService``; variant programs carry content-derived
ids so identical variants (and re-requests of the base) are deduped and
content-cached.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.devices.mathlib.base import DEMOTE_FP16
from repro.exec.content import content_id, content_text
from repro.fp.classify import classify_value
from repro.fp.types import FPType
from repro.fp.ulp import ulp_distance
from repro.harness.outcomes import RunRecord
from repro.harness.runner import PairResult
from repro.ir.nodes import BinOp, Call, Const, Expr, FMA, UnOp
from repro.ir.program import Program
from repro.ir.rewrite import float_sites, replace_site
from repro.varity.testcase import TestCase

__all__ = [
    "RelationViolation",
    "Relation",
    "RELATIONS",
    "RELATION_NAMES",
    "resolve_relations",
    "check_relation",
]

#: Calls whose argument order is semantically irrelevant (IEEE symmetric).
_SYMMETRIC_CALLS = ("fmin", "fmax")

#: Historical platform keys; kept for callers that predate the stack
#: registry.  Relation checking itself iterates each ``PairResult``'s own
#: :attr:`~repro.harness.runner.PairResult.stacks`, so oracle sessions
#: over any stack pair (``repro-oracle --stacks nvcc,cpu``) attribute
#: violations to the stacks that actually ran.
_PLATFORMS = ("nvcc", "hipcc")


@dataclass(frozen=True)
class RelationViolation:
    """One metamorphic-relation violation on one platform.

    ``base_printed`` / ``variant_printed`` are the two ``%.17g`` results
    the relation says should have agreed (exactly, or within the ULP
    budget); for the ``fastmath-flag`` relation they are the plain-O3 and
    O3_FM results and ``variant`` is the flag label.
    """

    relation: str
    platform: str  # "nvcc" | "hipcc"
    test_id: str
    variant: str
    opt_label: str
    input_index: int
    base_printed: str
    variant_printed: str
    base_outcome: str
    variant_outcome: str
    #: ULP distance for Num/Num violations; None for class flips.
    ulp_distance: Optional[int] = None

    def describe(self) -> str:
        drift = (
            f"{self.ulp_distance} ULPs"
            if self.ulp_distance is not None
            else f"{self.base_outcome}->{self.variant_outcome}"
        )
        return (
            f"{self.relation}[{self.variant}] on {self.platform} "
            f"@ {self.opt_label}#{self.input_index}: {drift} "
            f"({self.base_printed} vs {self.variant_printed})"
        )

    def to_json_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "relation": self.relation,
            "platform": self.platform,
            "test_id": self.test_id,
            "variant": self.variant,
            "opt": self.opt_label,
            "input_index": self.input_index,
            "base": self.base_printed,
            "value": self.variant_printed,
            "base_outcome": self.base_outcome,
            "outcome": self.variant_outcome,
        }
        if self.ulp_distance is not None:
            data["ulps"] = self.ulp_distance
        return data

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "RelationViolation":
        return cls(
            relation=str(data["relation"]),
            platform=str(data["platform"]),
            test_id=str(data["test_id"]),
            variant=str(data["variant"]),
            opt_label=str(data["opt"]),
            input_index=int(data["input_index"]),  # type: ignore[arg-type]
            base_printed=str(data["base"]),
            variant_printed=str(data["value"]),
            base_outcome=str(data["base_outcome"]),
            variant_outcome=str(data["outcome"]),
            ulp_distance=int(data["ulps"]) if "ulps" in data else None,  # type: ignore[arg-type]
        )


def _variant_test(base: TestCase, relation: str, label: str, body) -> TestCase:
    """Package a transformed kernel as a runnable test (same inputs).

    The program id is content-derived so the execution service dedupes
    and caches variants by what actually runs, exactly like fuzz mutants.
    """
    kernel = base.program.kernel.with_body(body)
    content = content_text(kernel, base.inputs)
    program = Program(
        program_id=content_id(base.fptype, content, prefix="oracle"),
        kernel=kernel,
        seed=base.program.seed,
        source_note=f"oracle {relation}:{label}",
    )
    return TestCase(program, base.inputs)


class Relation(abc.ABC):
    """One metamorphic relation.

    ``variants`` builds the transformed programs to execute (empty for
    relations that only re-read the base sweep); ``check`` compares the
    executed sweeps platform-by-platform and returns violations.  Site
    choices draw from ``rng`` only, so a relation applied with the same
    seed produces the same variants — the ledger's determinism rests on
    that.
    """

    #: registry name (stable; appears in ledgers and signatures).
    name: str = "abstract"
    doc: str = ""
    #: True = bit-exact equality required; False = the session's Num/Num
    #: ULP budget applies (class flips always violate).
    exact: bool = True
    #: whether :meth:`check` reads the base program's sweep (relations
    #: that only compare variants against each other set this False, and
    #: the engine skips their base request).
    needs_base: bool = True

    @abc.abstractmethod
    def variants(
        self, test: TestCase, rng: random.Random
    ) -> List[Tuple[str, TestCase]]:
        """Transformed (label, test) pairs, or [] when not applicable.

        Relations that compare within the base sweep itself return [];
        their applicability is decided by the engines'
        :func:`repro.oracle.engine.relation_applicable` policy.
        """

    def check(
        self,
        fptype: FPType,
        base: Dict[str, PairResult],
        variants: Dict[str, Dict[str, PairResult]],
        ulp_bound: int,
    ) -> List[RelationViolation]:
        """Default checker: every variant must match the base per
        (platform, opt, input) — exactly, or within ``ulp_bound`` ULPs of
        Num/Num drift for approximate relations."""
        out: List[RelationViolation] = []
        bound = None if self.exact else ulp_bound
        for label, pairs in variants.items():
            out.extend(
                _compare_sweeps(self.name, label, base, pairs, bound, fptype)
            )
        return out


def _records_by_input(pair: PairResult, platform: str) -> Dict[int, RunRecord]:
    """One side's records, addressed by the pair's own stack names."""
    if platform == pair.stacks[0]:
        runs = pair.lhs_runs
    elif platform == pair.stacks[1]:
        runs = pair.rhs_runs
    else:
        runs = []
    return {r.input_index: r for r in runs}


def _compare_records(
    relation: str,
    variant: str,
    base_rec: RunRecord,
    var_rec: RunRecord,
    bound: Optional[int],
    fptype: FPType,
    platform: str,
    opt_label: str,
) -> Optional[RelationViolation]:
    """One (platform, opt, input) cell: equal, within budget, or violation."""
    if base_rec.printed == var_rec.printed:
        return None
    b_cls, v_cls = classify_value(base_rec.value), classify_value(var_rec.value)
    if b_cls is v_cls and b_cls.value == "Num":
        if float(base_rec.value) == float(var_rec.value):
            return None  # -0.0 printed differently can't happen for Num, but be safe
        ulps = ulp_distance(base_rec.value, var_rec.value, fptype)
        if bound is not None and ulps <= bound:
            return None
        return RelationViolation(
            relation=relation,
            platform=platform,
            test_id=base_rec.test_id,
            variant=variant,
            opt_label=opt_label,
            input_index=base_rec.input_index,
            base_printed=base_rec.printed,
            variant_printed=var_rec.printed,
            base_outcome=b_cls.value,
            variant_outcome=v_cls.value,
            ulp_distance=ulps,
        )
    if b_cls is v_cls:
        # Same non-Num class (sign-only NaN/Inf/Zero differences): the
        # paper's rules say not a numerical difference, so not a violation.
        return None
    return RelationViolation(
        relation=relation,
        platform=platform,
        test_id=base_rec.test_id,
        variant=variant,
        opt_label=opt_label,
        input_index=base_rec.input_index,
        base_printed=base_rec.printed,
        variant_printed=var_rec.printed,
        base_outcome=b_cls.value,
        variant_outcome=v_cls.value,
    )


def _compare_sweeps(
    relation: str,
    variant: str,
    base: Dict[str, PairResult],
    var: Dict[str, PairResult],
    bound: Optional[int],
    fptype: FPType,
) -> List[RelationViolation]:
    """Compare two sweeps per (platform, opt, input); skipped inputs on
    either side are not compared (a trap is not a value)."""
    out: List[RelationViolation] = []
    for opt_label, base_pair in base.items():
        var_pair = var.get(opt_label)
        if var_pair is None:
            continue
        for platform in base_pair.stacks:
            base_recs = _records_by_input(base_pair, platform)
            var_recs = _records_by_input(var_pair, platform)
            for idx in sorted(base_recs.keys() & var_recs.keys()):
                v = _compare_records(
                    relation,
                    variant,
                    base_recs[idx],
                    var_recs[idx],
                    bound,
                    fptype,
                    platform,
                    opt_label,
                )
                if v is not None:
                    out.append(v)
    return out


# ---------------------------------------------------------------------------
# Concrete relations
# ---------------------------------------------------------------------------


class FMARewrite(Relation):
    """FMA contraction/expansion equivalence.

    Contracts one ``a*b + c`` / ``a*b - c`` shape into an explicit fused
    node, or — when the kernel already carries FMA nodes (fuzz mutants
    can) — expands one back to the two-rounding form.  The two programs
    must agree in outcome class and within the ULP budget.
    """

    name = "fma-rewrite"
    doc = "contract a*b±c to fused / expand a fused node back"
    exact = False

    def variants(
        self, test: TestCase, rng: random.Random
    ) -> List[Tuple[str, TestCase]]:
        body = test.program.kernel.body
        sites = float_sites(body)
        contractible = [
            i
            for i, e in enumerate(sites)
            if isinstance(e, BinOp)
            and e.op in ("+", "-")
            and isinstance(e.left, BinOp)
            and e.left.op == "*"
        ]
        fused = [i for i, e in enumerate(sites) if isinstance(e, FMA)]
        if not contractible and not fused:
            return []
        if contractible:
            target = rng.choice(contractible)
            node = sites[target]
            assert isinstance(node, BinOp) and isinstance(node.left, BinOp)
            c: Expr = node.right if node.op == "+" else UnOp("-", node.right)
            repl: Expr = FMA(node.left.left, node.left.right, c)
            label = "contract"
        else:
            target = rng.choice(fused)
            node = sites[target]
            assert isinstance(node, FMA)
            prod: Expr = BinOp("*", node.a, node.b)
            if node.negate_product:
                prod = UnOp("-", prod)
            repl = BinOp("+", prod, node.c)
            label = "expand"
        return [(label, _variant_test(test, self.name, label, replace_site(body, target, repl)))]


class DemoteRoundTrip(Relation):
    """Idempotence of the binary16 round trip (``__demote_fp16``).

    Two variants of one site: demoted once, demoted twice.  Rounding is
    idempotent, so the two must agree bit-for-bit on every platform at
    every setting.  Applicable to FP32/FP64 kernels (an FP16 value is
    already binary16).
    """

    name = "demote-roundtrip"
    doc = "demote(e) must equal demote(demote(e)) bit-for-bit"
    exact = True
    needs_base = False

    def variants(
        self, test: TestCase, rng: random.Random
    ) -> List[Tuple[str, TestCase]]:
        if test.fptype is FPType.FP16:
            return []
        body = test.program.kernel.body
        sites = float_sites(body)
        candidates = [
            i
            for i, e in enumerate(sites)
            if not (isinstance(e, Call) and e.func == DEMOTE_FP16)
        ]
        if not candidates:
            return []
        target = rng.choice(candidates)
        site = sites[target]
        once = Call(DEMOTE_FP16, [site])
        twice = Call(DEMOTE_FP16, [Call(DEMOTE_FP16, [site])])
        return [
            ("once", _variant_test(test, self.name, "once", replace_site(body, target, once))),
            ("twice", _variant_test(test, self.name, "twice", replace_site(body, target, twice))),
        ]

    def check(
        self,
        fptype: FPType,
        base: Dict[str, PairResult],
        variants: Dict[str, Dict[str, PairResult]],
        ulp_bound: int,
    ) -> List[RelationViolation]:
        """Compare the two demoted variants against each other (the base
        sweep legitimately differs from both — demotion coarsens)."""
        once = variants.get("once")
        twice = variants.get("twice")
        if once is None or twice is None:
            return []
        return _compare_sweeps(self.name, "twice", once, twice, None, fptype)


class MulOne(Relation):
    """Algebraic identity ``e * 1`` — exact in IEEE arithmetic.

    Site exclusion for soundness: a multiply that is itself an operand
    of ``+``/``-`` sits in an FMA-contractible position, and wrapping it
    changes the *contraction shape* — ``a*b + c`` contracts to
    ``fma(a, b, c)`` (unrounded product) but ``(a*b)*1.0 + c`` to
    ``fma(a*b, 1.0, c)`` (product pre-rounded) — a legal one-rounding
    difference that belongs to ``fma-rewrite``'s ULP budget, not to this
    bit-exact relation.  Every other position is safe: the inserted
    multiply either executes as an exact IEEE ``*1.0`` or contracts to
    ``fma(e, 1.0, c) == round(e + c)``, identical to the unwrapped form.
    """

    name = "mul-one"
    doc = "wrapping a site in (e)*1.0 must not change anything"
    exact = True

    def variants(
        self, test: TestCase, rng: random.Random
    ) -> List[Tuple[str, TestCase]]:
        body = test.program.kernel.body
        sites = float_sites(body)
        contractible_muls = {
            id(e.left)
            for e in sites
            if isinstance(e, BinOp)
            and e.op in ("+", "-")
            and isinstance(e.left, BinOp)
            and e.left.op == "*"
        } | {
            id(e.right)
            for e in sites
            if isinstance(e, BinOp)
            and e.op in ("+", "-")
            and isinstance(e.right, BinOp)
            and e.right.op == "*"
        }
        candidates = [i for i, e in enumerate(sites) if id(e) not in contractible_muls]
        if not candidates:
            return []
        target = rng.choice(candidates)
        one = Const(1.0, None)
        repl = BinOp("*", sites[target], one)
        return [("x*1", _variant_test(test, self.name, "x*1", replace_site(body, target, repl)))]


class FmodIdentity(Relation):
    """Remainder-range identity: ``fmod(fmod(x, y), y) == fmod(x, y)``.

    Exact for any correct fmod (|r| < |y| and fmod is the identity on
    in-range arguments); fires when a reduction loop returns an
    out-of-range remainder.  See the module docstring for why this form
    is used instead of the slack-swamped residual identity.
    """

    name = "fmod-identity"
    doc = "fmod must be idempotent in its second argument"
    exact = True

    def variants(
        self, test: TestCase, rng: random.Random
    ) -> List[Tuple[str, TestCase]]:
        body = test.program.kernel.body
        sites = float_sites(body)
        fmods = [
            i
            for i, e in enumerate(sites)
            if isinstance(e, Call) and e.func == "fmod" and len(e.args) == 2
        ]
        if not fmods:
            return []
        target = rng.choice(fmods)
        call = sites[target]
        assert isinstance(call, Call)
        repl = Call("fmod", [call, call.args[1]], call.variant)
        return [
            ("refmod", _variant_test(test, self.name, "refmod", replace_site(body, target, repl)))
        ]


class CommuteSwap(Relation):
    """Operand-order invariance of commutative operations.

    Swaps the operands of one ``+``/``*`` node or of one symmetric
    call (``fmin``/``fmax``) — IEEE-commutative, so results must be
    bit-identical.  A violation means compilation is shape-sensitive
    (e.g. one-sided FMA contraction).
    """

    name = "commute-swap"
    doc = "swap operands of one commutative + / * / fmin / fmax"
    exact = True

    def variants(
        self, test: TestCase, rng: random.Random
    ) -> List[Tuple[str, TestCase]]:
        body = test.program.kernel.body
        sites = float_sites(body)
        swappable = [
            i
            for i, e in enumerate(sites)
            if (isinstance(e, BinOp) and e.op in ("+", "*"))
            or (
                isinstance(e, Call)
                and e.func in _SYMMETRIC_CALLS
                and len(e.args) == 2
            )
        ]
        if not swappable:
            return []
        target = rng.choice(swappable)
        node = sites[target]
        if isinstance(node, BinOp):
            repl: Expr = BinOp(node.op, node.right, node.left)
        else:
            assert isinstance(node, Call)
            repl = Call(node.func, [node.args[1], node.args[0]], node.variant)
        return [("swap", _variant_test(test, self.name, "swap", replace_site(body, target, repl)))]


class FastMathFlag(Relation):
    """Fast-math-flag sensitivity, read out of the base sweep itself.

    Compares each platform's O3 result against its O3_FM result per
    input.  Approximation error may legally move a Number (no ULP check
    here — approx intrinsics are documented to drift arbitrarily far on
    extreme arguments), but an outcome-class flip under the flag is the
    paper's own inconsistency definition, observed single-stack.  Costs
    zero additional runs: both columns are already in the sweep.
    """

    name = "fastmath-flag"
    doc = "O3 vs O3_FM outcome classes must agree per platform"
    exact = True

    #: the sweep columns compared (both must be in the session's opts).
    plain_label = "O3"
    fm_label = "O3_FM"

    def variants(
        self, test: TestCase, rng: random.Random
    ) -> List[Tuple[str, TestCase]]:
        return []

    def check(
        self,
        fptype: FPType,
        base: Dict[str, PairResult],
        variants: Dict[str, Dict[str, PairResult]],
        ulp_bound: int,
    ) -> List[RelationViolation]:
        plain = base.get(self.plain_label)
        fm = base.get(self.fm_label)
        if plain is None or fm is None:
            return []
        out: List[RelationViolation] = []
        for platform in plain.stacks:
            plain_recs = _records_by_input(plain, platform)
            fm_recs = _records_by_input(fm, platform)
            for idx in sorted(plain_recs.keys() & fm_recs.keys()):
                b, v = plain_recs[idx], fm_recs[idx]
                b_cls, v_cls = classify_value(b.value), classify_value(v.value)
                if b_cls is v_cls:
                    continue
                out.append(
                    RelationViolation(
                        relation=self.name,
                        platform=platform,
                        test_id=b.test_id,
                        variant=self.fm_label,
                        opt_label=self.plain_label,
                        input_index=idx,
                        base_printed=b.printed,
                        variant_printed=v.printed,
                        base_outcome=b_cls.value,
                        variant_outcome=v_cls.value,
                    )
                )
        return out


#: Registry, in canonical order (ledger and report order).
RELATIONS: Dict[str, Relation] = {
    r.name: r
    for r in (
        FMARewrite(),
        DemoteRoundTrip(),
        MulOne(),
        FmodIdentity(),
        CommuteSwap(),
        FastMathFlag(),
    )
}

RELATION_NAMES: Tuple[str, ...] = tuple(RELATIONS)


def resolve_relations(names: Sequence[str]) -> List[Relation]:
    """Relation objects for a name list, rejecting unknown names."""
    unknown = [n for n in names if n not in RELATIONS]
    if unknown:
        raise ValueError(f"unknown relations: {', '.join(unknown)}")
    return [RELATIONS[n] for n in names]


def check_relation(
    name: str,
    fptype: FPType,
    base: Dict[str, PairResult],
    variants: Dict[str, Dict[str, PairResult]],
    ulp_bound: int,
) -> List[RelationViolation]:
    """Run one registered relation's checker over executed sweeps."""
    return RELATIONS[name].check(fptype, base, variants, ulp_bound)
