"""Command-line interface: ``repro-oracle``.

Runs a metamorphic-relation oracle session against the modeled stacks —
no cross-vendor comparison, defects are flagged within one execution
model — and prints the per-relation violation table.  Examples::

    repro-oracle --programs 40
    repro-oracle --fptype fp64 --seed 7 --programs 100 --report
    repro-oracle --relations mul-one,fastmath-flag --programs 60
    repro-oracle --programs 200 --ledger oracle.jsonl
    repro-oracle --programs 400 --ledger oracle.jsonl --resume
    repro-oracle --programs 200 --workers 4   # same ledger, less wall clock
    repro-oracle --stacks nvcc,cpu            # check the CPU clang lane too
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cliutil import add_execution_args, resolve_execution_args
from repro.errors import HarnessError
from repro.fp.types import FPType
from repro.oracle.engine import OracleConfig, run_oracle
from repro.oracle.relations import RELATION_NAMES
from repro.stacks import DEFAULT_STACK_PAIR, STACK_NAMES, resolve_stacks
from repro.telemetry.session import TelemetrySession

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-oracle",
        description="Metamorphic-relation oracle for single-stack numerical defects",
    )
    parser.add_argument("--seed", type=int, default=2024, help="session root seed")
    parser.add_argument(
        "--fptype",
        choices=["fp16", "fp32", "fp64"],
        default="fp32",
        help="kernel precision (default fp32 — the fast-math and FTZ "
        "relations only have teeth there)",
    )
    parser.add_argument(
        "--programs", type=int, default=None, help="corpus size (default 40)"
    )
    parser.add_argument(
        "--inputs", type=int, default=None, help="inputs per program (default 3)"
    )
    parser.add_argument(
        "--relations", default=None,
        help=f"comma-separated relation subset (default: {','.join(RELATION_NAMES)})",
    )
    parser.add_argument(
        "--ulp-bound", type=int, default=None,
        help="Num/Num drift budget in ULPs for approximate relations (default 4)",
    )
    parser.add_argument(
        "--stacks",
        metavar="NAMES",
        default=None,
        help="comma-separated stack pair to sweep, e.g. nvcc,cpu "
        f"(registry: {', '.join(STACK_NAMES)}; default nvcc,hipcc); "
        "relations check each stack of the pair independently",
    )
    parser.add_argument(
        "--ledger", metavar="PATH", default=None,
        help="append per-program results to this JSONL ledger",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="reload --ledger and continue from the first unrecorded program",
    )
    parser.add_argument(
        "--report", action="store_true",
        help="also print every violation and the execution-service "
        "cache/dedup metrics",
    )
    add_execution_args(
        parser,
        workers_help="process-pool size (0 = serial; the ledger is "
        "byte-identical at any worker count)",
    )
    return parser


def _config_from_args(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> OracleConfig:
    # `is not None` guards: an explicit 0 must error, not silently fall
    # back to the default (the falsy-zero bug class PR 1 fixed).
    for name, value, minimum in (
        ("--programs", args.programs, 1),
        ("--inputs", args.inputs, 1),
        ("--ulp-bound", args.ulp_bound, 0),
    ):
        if value is not None and value < minimum:
            parser.error(f"{name} must be >= {minimum} (got {value})")
    resolve_execution_args(parser, args)
    if args.resume and args.ledger is None:
        parser.error("--resume requires --ledger")

    base = OracleConfig()
    relations = base.relations
    if args.relations is not None:
        relations = tuple(r.strip() for r in args.relations.split(",") if r.strip())
        unknown = [r for r in relations if r not in RELATION_NAMES]
        if unknown:
            parser.error(
                f"unknown relations: {', '.join(unknown)} "
                f"(known: {', '.join(RELATION_NAMES)})"
            )
        if not relations:
            parser.error("--relations must name at least one relation")
    stacks = DEFAULT_STACK_PAIR
    if args.stacks is not None:
        try:
            resolved = resolve_stacks(args.stacks)
        except HarnessError as exc:
            parser.error(str(exc))
        if len(resolved) != 2:
            parser.error(
                f"--stacks must name exactly two stacks (got {len(resolved)})"
            )
        stacks = resolved
    return OracleConfig(
        seed=args.seed,
        fptype=FPType.from_string(args.fptype),
        n_programs=args.programs if args.programs is not None else base.n_programs,
        inputs_per_program=args.inputs if args.inputs is not None else base.inputs_per_program,
        relations=relations,
        ulp_bound=args.ulp_bound if args.ulp_bound is not None else base.ulp_bound,
        stacks=stacks,
        workers=args.workers if args.workers is not None else base.workers,
        backend=args.backend,
        bridge_url=args.bridge_url,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    config = _config_from_args(parser, args)

    def progress(phase: str, done: int, total: int) -> None:
        print(f"\r[{phase}] {done}/{total}", end="", file=sys.stderr, flush=True)
        if done == total:
            print(file=sys.stderr)

    telemetry = TelemetrySession.from_args(args)
    with telemetry:
        try:
            result = run_oracle(
                config, ledger=args.ledger, resume=args.resume, progress=progress
            )
        except HarnessError as exc:
            print(f"repro-oracle: error: {exc}", file=sys.stderr)
            return 2

    if result.resumed_programs:
        print(
            f"resumed {result.resumed_programs} programs from {args.ledger}",
            file=sys.stderr,
        )
    print(
        f"oracle session: {result.programs_checked} programs, "
        f"{result.pair_runs} run pairs, "
        f"{len(result.violations)} violations in {result.violated_programs} programs"
    )
    print()
    print(result.table().render())
    if args.report:
        if result.violations:
            print()
            for v in result.violations:
                print(f"  {v.describe()}")
        # Execution-service counters: the dedup line proves that every
        # relation's re-request of an already-executed program (the base,
        # or an identical variant) ran zero redundant device work.
        exec_metrics = result.exec_metrics
        store = exec_metrics.get("store", {})
        print()
        print("Execution service (committed work):")
        print(f"  sweep requests       {exec_metrics.get('requests', 0)}")
        print(f"  executed             {exec_metrics.get('executed', 0)}")
        print(f"  deduped (cache hits) {exec_metrics.get('deduped', 0)}  (zero runs each)")
        print(f"  pair runs            {result.pair_runs}")
        print(f"  nvcc executions      {exec_metrics.get('nvcc_executions', 0)}")
        print(f"  store hits/misses    {store.get('hits', 0)}/{store.get('misses', 0)}")
    telemetry.write(exec_metrics=result.exec_metrics)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
