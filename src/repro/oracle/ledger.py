"""Append-only JSONL oracle ledger with fuzz-ledger conventions.

Same file discipline as the campaign checkpoint and the fuzz findings
ledger (:class:`repro.utils.checkpoint.JsonlCheckpoint`): a fingerprint
header line, flushed appends, torn-tail recovery.  The record vocabulary
is one ``program`` line per checked corpus program:

* ``index`` — the corpus index (records are written in index order, so a
  resumed session continues from the first unrecorded index);
* ``test_id`` — identity of the checked program (the corpus regenerates
  the program itself from the fingerprint's seed + the index);
* ``checked`` — the relations that were applicable;
* ``runs`` — compared record pairs this program's chunk executed
  (worker-count-invariant: chunk composition never depends on workers);
* ``violations`` — every relation violation, in deterministic order.

Every line is written without timestamps and with fixed key order, so a
seeded session run twice — at any worker counts — writes byte-identical
ledgers, exactly like the fuzz ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.oracle.relations import RelationViolation
from repro.utils.checkpoint import JsonlCheckpoint

__all__ = ["OracleLedger", "OracleLedgerState"]


@dataclass
class OracleLedgerState:
    """Everything a resumed oracle session reloads from its ledger."""

    #: contiguously completed corpus prefix (max recorded index + 1).
    programs_done: int = 0
    violations: List[RelationViolation] = field(default_factory=list)
    #: per-relation count of programs where the relation applied.
    checked_by_relation: Dict[str, int] = field(default_factory=dict)
    pair_runs: int = 0


class OracleLedger(JsonlCheckpoint):
    """The append-only JSONL file behind ``repro-oracle --ledger``."""

    noun = "ledger"
    writer = "an oracle session"

    # ------------------------------------------------------------------ read
    def load(self, fingerprint: Dict[str, object]) -> OracleLedgerState:
        state = OracleLedgerState()
        for data in self.iter_records(fingerprint):
            if data.get("kind") != "program":
                continue
            index = int(data["index"])  # type: ignore[arg-type]
            state.programs_done = max(state.programs_done, index + 1)
            state.pair_runs += int(data.get("runs", 0))
            for name in data.get("checked", []):
                state.checked_by_relation[str(name)] = (
                    state.checked_by_relation.get(str(name), 0) + 1
                )
            state.violations.extend(
                RelationViolation.from_json_dict(v)
                for v in data.get("violations", [])
            )
        return state

    # ----------------------------------------------------------------- write
    def append_program(
        self,
        index: int,
        test_id: str,
        checked: Sequence[str],
        runs: int,
        violations: Sequence[RelationViolation],
    ) -> None:
        self.append_record(
            {
                "kind": "program",
                "index": index,
                "test_id": test_id,
                "checked": list(checked),
                "runs": runs,
                "violations": [v.to_json_dict() for v in violations],
            }
        )
