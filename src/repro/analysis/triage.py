"""Automated root-cause triage of discrepancies.

The paper's stated future work (§VII): "develop automated debugging tools
to efficiently identify and resolve these inconsistencies, minimizing
manual analysis."  This module implements that tool for the modeled
stacks.  For one discrepancy it runs three probes:

1. **Optimization probe** — rerun at ``-O0``: if the platforms agree
   there, the divergence is optimization-induced; the differing pass lists
   name the transformation (the in-model analogue of diffing SASS).
2. **Library probe** — rerun with the math libraries equalized
   (:func:`repro.analysis.ablation.build_ablated_runner`): if the
   divergence disappears, it is a math-library difference, and the first
   divergent traced statement names the function(s) involved.
3. **FTZ probe** (FP32 fast-math only) — rerun with the flush modes
   equalized: attributes the flush-point asymmetry.

Anything that survives all probes is reported ``unknown`` with the full
isolation report attached — the case a human (or a vendor) should look at.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.ablation import AblationSpec, build_ablated_runner
from repro.analysis.case_studies import CaseStudyReport, isolate_divergence
from repro.compilers.options import OptLevel, OptSetting
from repro.fp.classify import outcomes_equivalent
from repro.fp.types import FPType
from repro.harness.differential import Discrepancy
from repro.harness.runner import DifferentialRunner
from repro.ir.nodes import Call
from repro.ir.visitor import collect
from repro.utils.tables import Table
from repro.varity.testcase import TestCase

__all__ = ["Cause", "TriageVerdict", "triage_discrepancy", "triage_tests", "triage_table"]

#: Cause labels, from most to least specific.
class Cause:
    MATH_LIBRARY = "math-library"
    OPTIMIZATION = "optimization-induced"
    FTZ = "ftz-asymmetry"
    FAST_MATH_LIBRARY = "fast-math approximation"
    UNKNOWN = "unknown"
    #: Namespace of single-stack metamorphic-oracle causes: a fuzz
    #: session running with oracle relations signs relation violations
    #: as ``oracle:<relation-name>`` — not a triage probe result but a
    #: relation checker's verdict (the platform rides in the signature's
    #: functions slot).  These causes entered the ledger vocabulary with
    #: fingerprint format 3.
    ORACLE_PREFIX = "oracle:"


@dataclass
class TriageVerdict:
    """Attribution for one discrepancy."""

    test_id: str
    input_index: int
    opt_label: str
    cause: str
    functions: Tuple[str, ...] = ()
    nvcc_passes: Tuple[str, ...] = ()
    hipcc_passes: Tuple[str, ...] = ()
    isolation: Optional[CaseStudyReport] = None

    def describe(self) -> str:
        detail = ""
        if self.functions:
            detail = f" via {', '.join(self.functions)}"
        elif self.cause == Cause.OPTIMIZATION:
            extra = set(self.nvcc_passes) ^ set(self.hipcc_passes)
            if extra:
                detail = f" (asymmetric passes: {', '.join(sorted(extra))})"
        return (
            f"{self.test_id}#{self.input_index}@{self.opt_label}: "
            f"{self.cause}{detail}"
        )


def _functions_near_divergence(test: TestCase, report: CaseStudyReport) -> Tuple[str, ...]:
    """Math functions appearing in the statement that first diverged."""
    if report.divergence is None:
        return ()
    # Statement paths look like "s3.f[i=2].s1": the leading segment indexes
    # the top-level statement; walk it and gather Call names.
    path = report.divergence.path
    head = path.split(".")[0]
    if not head.startswith("s"):
        return ()
    try:
        index = int(head[1:])
    except ValueError:
        return ()
    body = test.program.kernel.body
    if index >= len(body):
        return ()
    calls = collect(body[index], lambda n: isinstance(n, Call))
    return tuple(sorted({c.func for c in calls}))  # type: ignore[union-attr]


def triage_discrepancy(
    runner: DifferentialRunner,
    test: TestCase,
    opt: OptSetting,
    input_index: int,
) -> TriageVerdict:
    """Attribute one discrepancy to a modeled mechanism."""
    report = isolate_divergence(runner, test, opt, input_index)
    verdict = TriageVerdict(
        test_id=test.test_id,
        input_index=input_index,
        opt_label=opt.label,
        cause=Cause.UNKNOWN,
        nvcc_passes=report.nvcc_passes,
        hipcc_passes=report.hipcc_passes,
        isolation=report,
    )

    # Probe 1: does -O0 agree?  Then optimization introduced it.
    if opt.label != "O0":
        o0 = OptSetting(OptLevel.O0)
        rn0, ra0, _, _ = runner.run_single(test, o0, input_index)
        if outcomes_equivalent(rn0.value, ra0.value):
            # Sharpen: under fast math on FP32, check the FTZ probe first.
            if opt.fast_math and test.fptype is FPType.FP32:
                ftz_runner = build_ablated_runner(AblationSpec("ftz", "", same_ftz=True))
                rn, ra, _, _ = ftz_runner.run_single(test, opt, input_index)
                if outcomes_equivalent(rn.value, ra.value):
                    verdict.cause = Cause.FTZ
                    return verdict
            verdict.cause = Cause.OPTIMIZATION
            return verdict

    # Probe 2: identical math libraries.
    lib_runner = build_ablated_runner(
        AblationSpec("mathlib", "", same_mathlib=True)
    )
    rn, ra, _, _ = lib_runner.run_single(test, opt, input_index)
    if outcomes_equivalent(rn.value, ra.value):
        verdict.cause = (
            Cause.FAST_MATH_LIBRARY
            if opt.fast_math and test.fptype is FPType.FP32
            else Cause.MATH_LIBRARY
        )
        verdict.functions = _functions_near_divergence(test, report)
        return verdict

    # Probe 3 (FP32 fast math): flush-point asymmetry.
    if opt.fast_math and test.fptype is FPType.FP32:
        ftz_runner = build_ablated_runner(AblationSpec("ftz", "", same_ftz=True))
        rn, ra, _, _ = ftz_runner.run_single(test, opt, input_index)
        if outcomes_equivalent(rn.value, ra.value):
            verdict.cause = Cause.FTZ
            return verdict

    return verdict


def triage_tests(
    runner: DifferentialRunner,
    tests_by_id: Dict[str, TestCase],
    discrepancies: Sequence[Discrepancy],
    limit: Optional[int] = None,
) -> List[TriageVerdict]:
    """Triage a batch of campaign discrepancies (optionally capped).

    ``limit=0`` means "triage none" — only ``None`` means unlimited.
    """
    verdicts: List[TriageVerdict] = []
    for d in discrepancies[: limit if limit is not None else len(discrepancies)]:
        test = tests_by_id.get(d.test_id)
        if test is None:
            continue
        verdicts.append(
            triage_discrepancy(
                runner, test, OptSetting.from_label(d.opt_label), d.input_index
            )
        )
    return verdicts


def triage_table(verdicts: Sequence[TriageVerdict], title: str = "") -> Table:
    """Cause histogram plus the functions most often implicated.

    Function counts are tallied *per cause*: a function implicated nine
    times under ``math-library`` and once under ``fast-math`` shows ×9 and
    ×1 on the respective rows, not a global ×10 on both.
    """
    causes = Counter(v.cause for v in verdicts)
    table = Table(
        title=title or "Automated root-cause triage",
        headers=["Cause", "Count", "Most implicated functions"],
    )
    for cause, count in causes.most_common():
        functions = Counter(
            f for v in verdicts if v.cause == cause for f in v.functions
        )
        implicated = ", ".join(
            f"{name}×{n}" for name, n in functions.most_common(3)
        )
        table.add_row([cause, count, implicated or "—"])
    return table
