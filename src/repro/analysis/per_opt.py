"""Tables V / VII / IX — discrepancies per optimization option per class."""

from __future__ import annotations

from typing import Dict

from repro.harness.campaign import ArmResult
from repro.harness.differential import DISCREPANCY_CLASS_ORDER, DiscrepancyClass
from repro.utils.tables import Table

__all__ = ["per_opt_counts", "per_opt_table"]


def per_opt_counts(arm: ArmResult) -> Dict[str, Dict[DiscrepancyClass, int]]:
    """``opt label → class → count`` (zero-filled)."""
    out: Dict[str, Dict[DiscrepancyClass, int]] = {
        label: {c: 0 for c in DISCREPANCY_CLASS_ORDER} for label in arm.opt_labels
    }
    for d in arm.discrepancies:
        out[d.opt_label][d.dclass] += 1
    return out


def per_opt_table(arm: ArmResult, title: str) -> Table:
    """Render one of Tables V/VII/IX for this arm."""
    counts = per_opt_counts(arm)
    headers = ["Opt Flags", "Disc. Count"] + [c.value for c in DISCREPANCY_CLASS_ORDER]
    table = Table(title=title, headers=headers)
    totals = {c: 0 for c in DISCREPANCY_CLASS_ORDER}
    for label in arm.opt_labels:
        row_counts = counts[label]
        disc_count = sum(row_counts.values())
        table.add_row(
            [label, disc_count] + [row_counts[c] for c in DISCREPANCY_CLASS_ORDER]
        )
        for c in DISCREPANCY_CLASS_ORDER:
            totals[c] += row_counts[c]
    table.add_footer(
        ["Total", sum(totals.values())] + [totals[c] for c in DISCREPANCY_CLASS_ORDER]
    )
    return table
