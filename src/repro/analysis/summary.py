"""Table IV — summary of experimental results.

Rows: total programs, runs per option per compiler, runs per option, total
runs, runs per compiler, total discrepancies (count and % of total runs).
Columns: the campaign arms (FP64, FP64-with-HIPIFY, FP32).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import AnalysisError
from repro.harness.campaign import ARM_NAMES, CampaignResult
from repro.utils.tables import Table

__all__ = ["summary_table", "summary_dict", "ARM_TITLES"]

ARM_TITLES = {
    "fp64": "FP64",
    "fp64_hipify": "FP64 with HIPIFY",
    "fp32": "FP32",
    "fp16": "FP16",
    "fp16_hipify": "FP16 with HIPIFY",
    "oracle": "Oracle (FP32)",
}


def _arm_title(name: str) -> str:
    """Column title for an arm; stack-pair arms (``fp64@nvcc-cpu``) have
    no fixed title — the lane and pair name build one."""
    title = ARM_TITLES.get(name)
    if title is not None:
        return title
    lane, _, pair = name.partition("@")
    return f"{lane.upper()} {pair}"


def summary_dict(result: CampaignResult) -> Dict[str, Dict[str, object]]:
    """Machine-readable Table IV (used by tests and EXPERIMENTS.md)."""
    out: Dict[str, Dict[str, object]] = {}
    for arm_name, arm in result.arms.items():
        out[arm_name] = {
            "total_programs": arm.n_programs,
            "runs_per_option_per_compiler": arm.runs_per_option_per_compiler,
            "runs_per_option": arm.runs_per_option,
            "total_runs": arm.total_runs,
            "runs_per_compiler": arm.runs_per_compiler,
            "total_discrepancies": arm.n_discrepancies,
            "discrepancy_percent": arm.discrepancy_percent,
            # True per-optimization totals (per compiler), post-skip; the
            # rows above are the paper-shaped nominal view of these.
            "runs_by_opt": dict(arm.runs_by_opt),
            "skipped_tests": arm.n_skipped_tests,
        }
        if arm.oracle_violations:
            out[arm_name]["oracle_violations"] = arm.n_oracle_violations
            out[arm_name]["violations_by_relation"] = arm.violations_by_relation
    return out


def summary_table(result: CampaignResult) -> Table:
    """Render Table IV for the arms present in ``result``."""
    # Legacy arms keep their paper column order; stack-pair arms follow
    # in campaign order.
    arms = [a for a in ARM_NAMES if a in result.arms]
    arms += [a for a in result.arms if a not in ARM_NAMES]
    if not arms:
        raise AnalysisError("campaign result has no arms")
    table = Table(
        title="Table IV — Summary of experimental results (measured)",
        headers=["Metric"] + [_arm_title(a) for a in arms],
    )
    data = summary_dict(result)

    def row(label: str, key: str, fmt: str = "{:d}") -> List[str]:
        cells = [label]
        for a in arms:
            v = data[a][key]
            cells.append(fmt.format(int(v)) if fmt == "{:d}" else fmt.format(v))
        return cells

    table.add_row(row("Total Programs", "total_programs"))
    table.add_row(row("Total Runs per Option per Compiler", "runs_per_option_per_compiler"))
    table.add_row(row("Total Runs per Option", "runs_per_option"))
    table.add_row(row("Total Runs", "total_runs"))
    table.add_row(row("Runs on NVCC", "runs_per_compiler"))
    table.add_row(row("Runs on HIPCC", "runs_per_compiler"))
    table.add_row(row("Total Discrepancies", "total_discrepancies"))
    table.add_row(
        row("Total Discrepancies (% of Total Runs)", "discrepancy_percent", "{:.2f}%")
    )
    return table
