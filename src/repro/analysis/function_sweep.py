"""Per-function cross-vendor disagreement sweep.

The paper's related work (Innocente & Zimmermann [4]) characterizes math
functions' accuracy directly, complementing Varity's whole-program view.
This module does the same for the modeled libraries: sweep each supported
function over structured operand ranges (normal, tiny, huge, subnormal)
and measure where — and by how many ULPs — the two vendor models disagree.

It answers, function by function, the question the campaign answers only
in aggregate: *which calls are dangerous to port?*
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.devices.mathlib.base import (
    BINARY_FUNCTIONS,
    UNARY_FUNCTIONS,
)
from repro.devices.mathlib.libdevice import LibdeviceMath
from repro.devices.mathlib.ocml import OcmlMath
from repro.fp.classify import classify_value
from repro.fp.types import FPType
from repro.fp.ulp import ulp_distance
from repro.utils.tables import Table

__all__ = ["FunctionSweepResult", "sweep_function", "sweep_all", "sweep_table"]


#: Near-subnormal and near-overflow sweep ranges per precision (the
#: moderate/small/large ranges below are shared by every lane; FP16's
#: "large" band is clipped under HALF_MAX).
_EDGE_RANGES = {
    FPType.FP64: [(1.0e-310, 1.0e-305), (1.0e300, 1.0e305)],
    FPType.FP32: [(1.0e-41, 1.0e-38), (1.0e34, 1.0e37)],
    FPType.FP16: [(1.0e-7, 6.0e-5), (1.0e3, 6.0e4)],
}


def _operand_grid(fptype: FPType, points_per_range: int) -> List[float]:
    """Deterministic operands across the ranges Varity inputs sample."""
    ranges: List[Tuple[float, float]] = [
        (0.1, 10.0),  # moderate
        (1.0e-6, 1.0e-3),  # small
        (1.0e3, 1.0e6) if fptype is not FPType.FP16 else (1.0e1, 1.0e3),  # large
    ]
    try:
        ranges += _EDGE_RANGES[fptype]
    except KeyError:
        raise ValueError(f"no sweep ranges for {fptype!r}") from None
    grid: List[float] = []
    for lo, hi in ranges:
        step = (hi - lo) / points_per_range
        for i in range(points_per_range):
            v = lo + step * i
            grid.append(v)
            grid.append(-v)
    return grid


@dataclass(frozen=True)
class FunctionSweepResult:
    """Disagreement statistics of one function."""

    func: str
    fptype: FPType
    n_points: int
    n_disagreements: int
    n_class_changes: int  # NaN-vs-Num-style, not just value drift
    max_ulps: int

    @property
    def disagreement_rate(self) -> float:
        return self.n_disagreements / self.n_points if self.n_points else 0.0


def sweep_function(
    func: str,
    fptype: FPType = FPType.FP64,
    points_per_range: int = 60,
) -> FunctionSweepResult:
    """Compare the two vendor models pointwise for one function."""
    nv, amd = LibdeviceMath(), OcmlMath()
    grid = _operand_grid(fptype, points_per_range)
    if func in BINARY_FUNCTIONS:
        # Pair operands with a stride so huge/tiny mixes occur.
        cases: List[Tuple[float, ...]] = [
            (grid[i], grid[(i * 7 + 3) % len(grid)]) for i in range(len(grid))
        ]
    else:
        cases = [(x,) for x in grid]

    disagreements = 0
    class_changes = 0
    max_ulps = 0
    for args in cases:
        a = nv.call(func, list(args), fptype)
        b = amd.call(func, list(args), fptype)
        if math.isnan(a) and math.isnan(b):
            continue
        if a == b:
            continue
        disagreements += 1
        if classify_value(a) is not classify_value(b):
            class_changes += 1  # e.g. ceil: 0 vs 1 is Zero-vs-Num
        if math.isfinite(a) and math.isfinite(b):
            max_ulps = max(max_ulps, ulp_distance(a, b, fptype))
    return FunctionSweepResult(
        func=func,
        fptype=fptype,
        n_points=len(cases),
        n_disagreements=disagreements,
        n_class_changes=class_changes,
        max_ulps=max_ulps,
    )


def _sweep_task(payload: Tuple[str, FPType, int]) -> FunctionSweepResult:
    """Module-level task wrapper so the execution service can ship one
    function's sweep to a pool worker."""
    func, fptype, points_per_range = payload
    return sweep_function(func, fptype, points_per_range)


def sweep_all(
    fptype: FPType = FPType.FP64,
    points_per_range: int = 60,
    functions: Sequence[str] = (),
    *,
    service: Optional["ExecutionService"] = None,
    workers: int = 0,
) -> List[FunctionSweepResult]:
    """Sweep every supported function (or an explicit subset).

    Per-function sweeps are independent pure work units, so they run
    through the execution service's generic task map — ordered and
    deterministic at any worker count.
    """
    from repro.exec import ExecutionService

    names = list(functions) if functions else list(UNARY_FUNCTIONS + BINARY_FUNCTIONS)
    owns = service is None
    if service is None:
        service = ExecutionService.for_workers(workers)
    try:
        return service.map(
            _sweep_task, [(f, fptype, points_per_range) for f in names]
        )
    finally:
        if owns:
            service.close()


def sweep_table(results: Sequence[FunctionSweepResult], title: str = "") -> Table:
    """Render the sweep, most divergent functions first."""
    table = Table(
        title=title or "Cross-vendor math-function disagreement sweep",
        headers=["Function", "Points", "Disagree", "Rate", "Max ULPs", "Class changes"],
    )
    for r in sorted(results, key=lambda r: -r.disagreement_rate):
        # An algorithmic divergence (fmod/ceil) can be astronomically many
        # ULPs apart; ">1e6" reads better than a 19-digit bit distance.
        ulps = str(r.max_ulps) if r.max_ulps <= 1_000_000 else ">1e6"
        table.add_row([
            r.func,
            r.n_points,
            r.n_disagreements,
            f"{100 * r.disagreement_rate:.1f}%",
            ulps,
            r.n_class_changes,
        ])
    return table
