"""Whole-campaign report rendering.

Combines Table IV, the per-optimization tables, and the adjacency matrices
into one text report — the artifact a campaign prints at the end, and the
source of the measured columns in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import List, Optional

from repro.harness.campaign import CampaignResult
from repro.analysis.summary import summary_table
from repro.analysis.per_opt import per_opt_table
from repro.analysis.adjacency import adjacency_tables
from repro.oracle.engine import oracle_violation_table

__all__ = ["render_campaign_report"]

#: The FP16 arms extend the paper's grid, so their tables carry extension
#: labels instead of paper table numbers.
_PER_OPT_TITLES = {
    "fp64": "Table V — Discrepancies per optimization option, FP64 (measured)",
    "fp64_hipify": "Table VII — Discrepancies per optimization option, HIPIFY-converted FP64 (measured)",
    "fp32": "Table IX — Discrepancies per optimization option, FP32 (measured)",
    "fp16": "Extension — Discrepancies per optimization option, FP16 (measured)",
    "fp16_hipify": "Extension — Discrepancies per optimization option, HIPIFY-converted FP16 (measured)",
}
_ADJACENCY_TITLES = {
    "fp64": "Table VI — Adjacency matrices, FP64 (measured)",
    "fp64_hipify": "Table VIII — Adjacency matrices, HIPIFY-converted FP64 (measured)",
    "fp32": "Table X — Adjacency matrices, FP32 (measured)",
    "fp16": "Extension — Adjacency matrices, FP16 (measured)",
    "fp16_hipify": "Extension — Adjacency matrices, HIPIFY-converted FP16 (measured)",
}


def _per_opt_title(arm_name: str) -> str:
    """Table title for an arm; pair-suffixed arms (``fp64@nvcc-cpu``)
    extend the paper's grid, so they get extension labels built from the
    lane and pair instead of paper table numbers."""
    title = _PER_OPT_TITLES.get(arm_name)
    if title is not None:
        return title
    lane, _, pair = arm_name.partition("@")
    return (
        f"Extension — Discrepancies per optimization option, "
        f"{lane.upper()} {pair} (measured)"
    )


def _adjacency_title(arm_name: str) -> str:
    title = _ADJACENCY_TITLES.get(arm_name)
    if title is not None:
        return title
    lane, _, pair = arm_name.partition("@")
    return f"Extension — Adjacency matrices, {lane.upper()} {pair} (measured)"


def render_campaign_report(
    result: CampaignResult,
    *,
    include_adjacency: bool = True,
    header: Optional[str] = None,
) -> str:
    """Render every table the campaign supports, in paper order."""
    blocks: List[str] = []
    if header:
        blocks.append(header)
    blocks.append(
        f"campaign: {result.total_runs} total runs, "
        f"{result.total_discrepancies} discrepancies, "
        f"{result.elapsed_seconds:.1f}s"
    )
    blocks.append(summary_table(result).render())
    for arm_name, arm in result.arms.items():
        if arm_name == "oracle":
            continue  # no cross-vendor discrepancies: it gets its own table
        blocks.append(per_opt_table(arm, _per_opt_title(arm_name)).render())
    oracle_arm = result.arms.get("oracle")
    if oracle_arm is not None:
        # Per-relation violation accounting — the oracle arm's analogue of
        # the per-optimization discrepancy tables.
        blocks.append(
            oracle_violation_table(
                oracle_arm.oracle_checked,
                oracle_arm.oracle_violations,
                title="Extension — Metamorphic-relation violations, oracle arm (measured)",
            ).render()
        )
    if include_adjacency:
        for arm_name, arm in result.arms.items():
            if arm_name == "oracle":
                continue
            for table in adjacency_tables(arm, _adjacency_title(arm_name)):
                blocks.append(table.render())
    return "\n\n".join(blocks)
