"""Mechanism ablation: which modeled difference causes how much divergence.

DESIGN.md §5 lists five divergence mechanisms.  This harness re-runs a
corpus with individual mechanisms *equalized* between the two stacks and
measures how many discrepancies disappear — the in-model analogue of the
paper's root-cause attribution (Q3), and the ablation study for the
reproduction's own design choices.

Ablations:

* ``identical-mathlib``   — the AMD device runs NVIDIA's libdevice model
  (kills mechanism 1: vendor library algorithms & ULP placement);
* ``identical-contraction`` — hipcc contracts the same four patterns as
  nvcc (kills mechanism 2);
* ``identical-ftz``       — hipcc flushes FP32 inputs *and* outputs under
  fast math, like nvcc (kills mechanism 4's flush asymmetry);
* ``no-fast-math-extras`` — nvcc's fast-math pipeline drops reassociation,
  reciprocal substitution and finite-math algebra (kills mechanism 3);
* ``all-equalized``       — every knob above at once: any residual
  discrepancy would indicate an unmodeled asymmetry (there is none; this
  is the harness's self-check).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compilers.hipcc import HipccCompiler
from repro.compilers.nvcc import NvccCompiler
from repro.compilers.options import OptSetting, PAPER_OPT_SETTINGS
from repro.compilers.passes import (
    ApproxSubstitution,
    ConstantFolding,
    FMAContraction,
    NVCC_PATTERNS,
    Pass,
    ReciprocalDivision,
)
from repro.devices.amd import TIOGA_SPEC
from repro.devices.device import Device
from repro.devices.mathlib.libdevice import LibdeviceMath
from repro.devices.nvidia import nvidia_v100
from repro.fp.env import FlushMode
from repro.fp.types import FPType
from repro.harness.runner import DifferentialRunner
from repro.utils.tables import Table
from repro.varity.corpus import Corpus

__all__ = [
    "AblationSpec",
    "AblationResult",
    "run_ablation",
    "ABLATIONS",
    "ablation_table",
    "build_ablated_runner",
]


@dataclass(frozen=True)
class AblationSpec:
    """One equalization experiment."""

    name: str
    description: str
    same_mathlib: bool = False
    same_contraction: bool = False
    same_ftz: bool = False
    no_fast_math_extras: bool = False


#: The standard ablation suite (baseline first).
ABLATIONS: Tuple[AblationSpec, ...] = (
    AblationSpec("baseline", "full model, as in the campaigns"),
    AblationSpec(
        "identical-mathlib",
        "AMD device runs the NVIDIA math library model",
        same_mathlib=True,
    ),
    AblationSpec(
        "identical-contraction",
        "hipcc contracts the same FMA patterns as nvcc",
        same_contraction=True,
    ),
    AblationSpec(
        "identical-ftz",
        "hipcc flushes FP32 inputs+outputs like nvcc",
        same_ftz=True,
    ),
    AblationSpec(
        "no-fast-math-extras",
        "nvcc fast math without reassoc/reciprocal/algebra",
        no_fast_math_extras=True,
    ),
    AblationSpec(
        "all-equalized",
        "every asymmetry removed (self-check: expect zero)",
        same_mathlib=True,
        same_contraction=True,
        same_ftz=True,
        no_fast_math_extras=True,
    ),
)


class _AblatedHipcc(HipccCompiler):
    """hipcc with selected asymmetries equalized toward nvcc."""

    def __init__(self, spec: AblationSpec) -> None:
        self.spec = spec

    def pipeline(self, opt: OptSetting, fptype: FPType) -> Sequence[Pass]:
        if not self.spec.same_contraction:
            return super().pipeline(opt, fptype)
        if opt.level.value == 0 and not opt.fast_math:
            return ()
        passes: List[Pass] = [ConstantFolding(fold_math_calls=False)]
        if opt.fast_math:
            passes.append(ReciprocalDivision())
        passes.append(FMAContraction(NVCC_PATTERNS))
        if opt.fast_math:
            passes.append(ApproxSubstitution(rewrite_division=False))
        return passes

    def flush_mode(self, opt: OptSetting, fptype: FPType) -> FlushMode:
        if self.spec.same_ftz and opt.fast_math and fptype is FPType.FP32:
            return FlushMode.FLUSH_INPUTS_OUTPUTS
        return super().flush_mode(opt, fptype)


class _AblatedNvcc(NvccCompiler):
    """nvcc with selected asymmetries equalized.

    ``same_mathlib`` also disables host-libm folding of constant math
    calls: that folding is a *library-resolution* asymmetry (compile-time
    host libm vs runtime device library), so equalizing the libraries
    without equalizing resolution would leave a residual divergence source
    and break the all-equalized self-check.
    """

    def __init__(self, spec: AblationSpec) -> None:
        self.spec = spec

    def pipeline(self, opt: OptSetting, fptype: FPType) -> Sequence[Pass]:
        if not (self.spec.no_fast_math_extras or self.spec.same_mathlib):
            return super().pipeline(opt, fptype)
        if opt.level.value == 0 and not opt.fast_math:
            return ()
        from repro.compilers.passes import AlgebraicSimplify, Reassociation

        passes: List[Pass] = [
            ConstantFolding(fold_math_calls=not self.spec.same_mathlib)
        ]
        if opt.fast_math and not self.spec.no_fast_math_extras:
            passes.append(AlgebraicSimplify())
            passes.append(Reassociation())
        if opt.fast_math:
            passes.append(ReciprocalDivision())
        passes.append(FMAContraction(NVCC_PATTERNS))
        if opt.fast_math:
            passes.append(
                ApproxSubstitution(
                    rewrite_division=not self.spec.no_fast_math_extras
                )
            )
        return passes


def build_ablated_runner(spec: AblationSpec) -> DifferentialRunner:
    """A differential runner with the spec's asymmetries equalized.

    Public because the triage engine (:mod:`repro.analysis.triage`) re-runs
    individual discrepancies under targeted ablations to attribute causes.
    """
    return _build_runner(spec)


def _build_runner(spec: AblationSpec) -> DifferentialRunner:
    amd_mathlib = LibdeviceMath() if spec.same_mathlib else None
    if amd_mathlib is not None:
        amd_device = Device(TIOGA_SPEC, amd_mathlib)
    else:
        from repro.devices.amd import amd_mi250x

        amd_device = amd_mi250x()
    runner = DifferentialRunner(nvidia=nvidia_v100(), amd=amd_device)
    runner.nvcc = _AblatedNvcc(spec)
    runner.hipcc = _AblatedHipcc(spec)
    return runner


@dataclass
class AblationResult:
    """Per-spec discrepancy counts."""

    spec: AblationSpec
    by_opt: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.by_opt.values())


#: tests per execution-service chunk: small enough to parallelize a
#: modest corpus, big enough to amortize per-chunk runner construction.
_CHUNK_TESTS = 8


def run_ablation(
    corpus: Corpus,
    specs: Sequence[AblationSpec] = ABLATIONS,
    opts: Sequence[OptSetting] = PAPER_OPT_SETTINGS,
    *,
    service: Optional["ExecutionService"] = None,
    workers: int = 0,
) -> List[AblationResult]:
    """Run the corpus under each ablation spec.

    Every (spec, test) sweep goes through the execution service — each
    spec's equalized runner is reconstructed per chunk from its
    :class:`~repro.exec.units.RunnerSpec`, so chunks are deterministic
    wherever they run and the counts are identical at any worker count.
    Pass a ``service`` to share one (and its backend) across studies, or
    ``workers`` to parallelize this call alone.
    """
    from repro.exec import ExecutionService, NO_CACHE, RunnerSpec, SweepRequest

    owns = service is None
    if service is None:
        service = ExecutionService.for_workers(workers)
    opts = tuple(opts)
    tests = list(corpus)
    results = [
        AblationResult(spec=spec, by_opt={o.label: 0 for o in opts}) for spec in specs
    ]
    chunks: List[List[SweepRequest]] = []
    owner: List[int] = []
    for index, spec in enumerate(specs):
        runner_spec = RunnerSpec(ablation=spec)
        for lo in range(0, len(tests), _CHUNK_TESTS):
            chunks.append(
                [
                    SweepRequest(
                        test=t,
                        opts=opts,
                        tag=(spec.name,),
                        cache=NO_CACHE,
                        runner=runner_spec,
                    )
                    for t in tests[lo : lo + _CHUNK_TESTS]
                ]
            )
            owner.append(index)
    try:
        for index, outcomes in zip(owner, service.run_sweeps(chunks)):
            by_opt = results[index].by_opt
            for outcome in outcomes:
                for label, pair in outcome.pairs.items():
                    by_opt[label] += len(pair.discrepancies)
    finally:
        if owns:
            service.close()
    return results


def ablation_table(results: Sequence[AblationResult], title: str = "") -> Table:
    """Render the ablation study."""
    if not results:
        raise ValueError("no ablation results")
    opts = list(results[0].by_opt)
    baseline = results[0].total
    table = Table(
        title=title or "Mechanism ablation (discrepancy counts)",
        headers=["Ablation", "Total", "Δ vs baseline"] + opts,
    )
    for r in results:
        delta = r.total - baseline if r.spec.name != "baseline" else 0
        table.add_row(
            [r.spec.name, r.total, f"{delta:+d}"] + [r.by_opt[o] for o in opts]
        )
    return table
