"""Tables VI / VIII / X — per-optimization adjacency matrices.

The paper presents, for each optimization level, a 4×4 upper-triangular
matrix over the outcome classes {NaN, Inf, Zero, Num}.  Each cell holds a
*directional pair* "a, b": ``a`` counts discrepancies where the NVCC run
produced the row class and the HIPCC run the column class; ``b`` counts
the opposite orientation.  The Num/Num diagonal shows the same count twice
(the paper prints "353, 353" for 353 Num-vs-Num discrepancies).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.fp.classify import OutcomeClass
from repro.fp.classify import OUTCOME_ORDER
from repro.harness.campaign import ArmResult
from repro.utils.tables import Table

__all__ = ["adjacency_counts", "adjacency_table", "adjacency_tables"]

Cell = Tuple[int, int]
Matrix = Dict[Tuple[OutcomeClass, OutcomeClass], Cell]

_ROW_LABELS = {
    OutcomeClass.NAN: "(±) NaN",
    OutcomeClass.INF: "(±) Inf",
    OutcomeClass.ZERO: "(±) Zero",
    OutcomeClass.NUMBER: "Num",
}


def adjacency_counts(arm: ArmResult, opt_label: str) -> Matrix:
    """The upper-triangular directional matrix of one optimization level."""
    order = list(OUTCOME_ORDER)
    rank = {c: i for i, c in enumerate(order)}
    matrix: Matrix = {}
    for i, row in enumerate(order):
        for col in order[i:]:
            matrix[(row, col)] = (0, 0)
    for d in arm.discrepancies:
        if d.opt_label != opt_label:
            continue
        nv, hip = d.nvcc_outcome, d.hipcc_outcome
        if nv is hip:  # Num vs Num (same class, different value)
            a, b = matrix[(nv, hip)]
            matrix[(nv, hip)] = (a + 1, b + 1)  # paper prints "n, n"
        elif rank[nv] <= rank[hip]:
            a, b = matrix[(nv, hip)]
            matrix[(nv, hip)] = (a + 1, b)
        else:
            a, b = matrix[(hip, nv)]
            matrix[(hip, nv)] = (a, b + 1)
    return matrix


def adjacency_table(arm: ArmResult, opt_label: str, title: str = "") -> Table:
    """Render one optimization level's matrix."""
    matrix = adjacency_counts(arm, opt_label)
    order = list(OUTCOME_ORDER)
    headers = ["NVCC \\ HIPCC"] + [_ROW_LABELS[c] for c in order]
    table = Table(title=title or f"Adjacency matrix, {opt_label}", headers=headers)
    for i, row in enumerate(order):
        cells: List[str] = [_ROW_LABELS[row]]
        for j, col in enumerate(order):
            if j < i:
                cells.append("—")
            else:
                a, b = matrix[(row, col)]
                cells.append(f"{a}, {b}")
        table.add_row(cells)
    return table


def adjacency_tables(arm: ArmResult, title_prefix: str) -> List[Table]:
    """All five levels' matrices, in grid order."""
    return [
        adjacency_table(arm, label, f"{title_prefix} — {label}")
        for label in arm.opt_labels
    ]
