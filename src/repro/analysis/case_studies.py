"""Case-study tooling (§IV-D).

The paper root-causes discrepancies by inspecting intermediate values and
the generated assembly.  Our in-model analogue:

* run both platforms with per-statement tracing and locate the **first
  divergent store** (same statement path, different value) or the first
  **control-flow divergence** (the trace paths themselves differ);
* report the compiled pass pipelines (the "assembly diff" stand-in);
* render the whole thing in the layout of the paper's Figs. 4–6
  (program / input / outputs / isolated expression).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.codegen.cuda import render_cuda
from repro.compilers.options import OptSetting
from repro.harness.campaign import ArmResult
from repro.harness.differential import Discrepancy, DiscrepancyClass
from repro.harness.runner import DifferentialRunner
from repro.ir.printer import print_ir
from repro.varity.testcase import TestCase

__all__ = ["DivergencePoint", "CaseStudyReport", "isolate_divergence", "select_case_studies"]


@dataclass(frozen=True)
class DivergencePoint:
    """First place the two executions part ways."""

    kind: str  # "value" | "control-flow" | "output-only"
    path: str
    target: str
    nvcc_value: Optional[float]
    hipcc_value: Optional[float]

    def describe(self) -> str:
        if self.kind == "value":
            return (
                f"first divergent store at {self.path} ({self.target}): "
                f"nvcc={self.nvcc_value!r} vs hipcc={self.hipcc_value!r}"
            )
        if self.kind == "control-flow":
            return f"control flow diverges at {self.path} (statement paths differ)"
        return "no traced store diverged; only the final printed value differs"


@dataclass
class CaseStudyReport:
    """A Fig. 4/5/6-style self-contained report for one discrepancy."""

    test: TestCase
    opt: OptSetting
    input_index: int
    nvcc_printed: str
    hipcc_printed: str
    nvcc_passes: Tuple[str, ...]
    hipcc_passes: Tuple[str, ...]
    divergence: Optional[DivergencePoint]

    def render(self) -> str:
        lines = [
            "=" * 72,
            f"Case study: {self.test.test_id}  [{self.opt.label}]",
            "=" * 72,
            print_ir(self.test.program.kernel),
            "",
            f"Input   : {self.test.inputs[self.input_index].line}",
            "Output  :",
            f"  nvcc  -{self.opt.label}: {self.nvcc_printed}",
            f"  hipcc -{self.opt.label}: {self.hipcc_printed}",
            f"nvcc passes : {', '.join(self.nvcc_passes) or '(none)'}",
            f"hipcc passes: {', '.join(self.hipcc_passes) or '(none)'}",
        ]
        if self.divergence is not None:
            lines.append(f"Root cause trail: {self.divergence.describe()}")
        return "\n".join(lines)

    def cuda_source(self) -> str:
        """The shippable .cu reproducer (contribution (b)/(c) of §I)."""
        return render_cuda(self.test.program)


def isolate_divergence(
    runner: DifferentialRunner,
    test: TestCase,
    opt: OptSetting,
    input_index: int,
) -> CaseStudyReport:
    """Trace both platforms and find the first divergent intermediate."""
    rn, ra, ck_nv, ck_amd = runner.run_single(test, opt, input_index, trace=True)

    divergence: Optional[DivergencePoint] = None
    for entry_nv, entry_amd in zip(rn.trace, ra.trace):
        if entry_nv.path != entry_amd.path:
            divergence = DivergencePoint(
                kind="control-flow",
                path=f"{entry_nv.path} / {entry_amd.path}",
                target=f"{entry_nv.target} / {entry_amd.target}",
                nvcc_value=entry_nv.value,
                hipcc_value=entry_amd.value,
            )
            break
        same = (
            entry_nv.value == entry_amd.value
            or (entry_nv.value != entry_nv.value and entry_amd.value != entry_amd.value)
        )
        if not same:
            divergence = DivergencePoint(
                kind="value",
                path=entry_nv.path,
                target=entry_nv.target,
                nvcc_value=entry_nv.value,
                hipcc_value=entry_amd.value,
            )
            break
    else:
        if len(rn.trace) != len(ra.trace):
            shorter = min(len(rn.trace), len(ra.trace))
            tail_nv = rn.trace[shorter] if len(rn.trace) > shorter else None
            tail_amd = ra.trace[shorter] if len(ra.trace) > shorter else None
            divergence = DivergencePoint(
                kind="control-flow",
                path=(tail_nv or tail_amd).path,  # type: ignore[union-attr]
                target=(tail_nv or tail_amd).target,  # type: ignore[union-attr]
                nvcc_value=tail_nv.value if tail_nv else None,
                hipcc_value=tail_amd.value if tail_amd else None,
            )
        elif rn.printed != ra.printed:
            divergence = DivergencePoint(
                kind="output-only",
                path="(printf)",
                target="comp",
                nvcc_value=rn.value,
                hipcc_value=ra.value,
            )

    return CaseStudyReport(
        test=test,
        opt=opt,
        input_index=input_index,
        nvcc_printed=rn.printed,
        hipcc_printed=ra.printed,
        nvcc_passes=ck_nv.passes_applied,
        hipcc_passes=ck_amd.passes_applied,
        divergence=divergence,
    )


def select_case_studies(
    arm: ArmResult,
    per_class: int = 1,
    classes: Sequence[DiscrepancyClass] = (),
) -> List[Discrepancy]:
    """Pick representative discrepancies, at most ``per_class`` each.

    With no explicit ``classes``, every observed class is represented —
    the way the paper picked one real-valued, one Inf-valued, and one
    Inf-vs-NaN case.
    """
    wanted = list(classes) if classes else None
    chosen: Dict[DiscrepancyClass, List[Discrepancy]] = {}
    for d in arm.discrepancies:
        if wanted is not None and d.dclass not in wanted:
            continue
        bucket = chosen.setdefault(d.dclass, [])
        if len(bucket) < per_class:
            bucket.append(d)
    out: List[Discrepancy] = []
    for dclass in sorted(chosen, key=lambda c: c.value):
        out.extend(chosen[dclass])
    return out
