"""Result analysis: the paper's tables and case-study tooling."""

from repro.analysis.summary import summary_table, summary_dict
from repro.analysis.per_opt import per_opt_table, per_opt_counts
from repro.analysis.adjacency import adjacency_counts, adjacency_table
from repro.analysis.case_studies import (
    CaseStudyReport,
    isolate_divergence,
    select_case_studies,
)
from repro.analysis.report import render_campaign_report
from repro.analysis.ablation import (
    ABLATIONS,
    AblationSpec,
    ablation_table,
    build_ablated_runner,
    run_ablation,
)
from repro.analysis.triage import TriageVerdict, triage_discrepancy, triage_table
from repro.analysis.reduce import ReductionResult, reduce_testcase
from repro.analysis.function_sweep import sweep_all, sweep_function, sweep_table

__all__ = [
    "ABLATIONS",
    "AblationSpec",
    "ablation_table",
    "build_ablated_runner",
    "run_ablation",
    "TriageVerdict",
    "triage_discrepancy",
    "triage_table",
    "ReductionResult",
    "reduce_testcase",
    "sweep_all",
    "sweep_function",
    "sweep_table",
    "summary_table",
    "summary_dict",
    "per_opt_table",
    "per_opt_counts",
    "adjacency_counts",
    "adjacency_table",
    "CaseStudyReport",
    "isolate_divergence",
    "select_case_studies",
    "render_campaign_report",
]
