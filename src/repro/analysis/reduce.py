"""Delta-debugging reducer for discrepancy-inducing tests.

The second half of the paper's future work: shrink a failing test to the
smallest program that still shows the same inconsistency — the difference
between a 15-line Fig. 4 kernel and the 2-line Fig. 5 kernel.  Campaign
reproducers are already small, but reduction makes them *minimal*, which is
what you attach to a vendor bug report.

Strategy (greedy, to a fixpoint), preserving the *discrepancy class*:

1. drop whole top-level statements;
2. unwrap control flow (``if`` → its body; ``for`` → body executed once);
3. hoist subexpressions (replace an operator node by one of its operands,
   a call by its argument) inside each statement;
4. prune kernel parameters the body no longer mentions (and the matching
   input-vector positions).

Every candidate is validated and re-run on both platforms; a candidate is
accepted only if the discrepancy class is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.compilers.options import OptSetting
from repro.errors import ReproError, TrapError
from repro.harness.differential import DiscrepancyClass, classify_pair
from repro.harness.runner import DifferentialRunner
from repro.ir.nodes import (
    ArrayRef,
    Assign,
    AugAssign,
    BinOp,
    Call,
    Decl,
    Expr,
    FMA,
    For,
    If,
    Stmt,
    UnOp,
    VarRef,
)
from repro.ir.program import Kernel, Program
from repro.ir.validate import validate_kernel
from repro.ir.visitor import walk
from repro.varity.inputs import InputVector
from repro.varity.testcase import TestCase

__all__ = ["ReductionResult", "reduce_testcase", "kernel_size"]


def kernel_size(kernel: Kernel) -> int:
    """Node count — the size metric reduction minimizes."""
    return sum(1 for stmt in kernel.body for _ in walk(stmt))


@dataclass
class ReductionResult:
    """Outcome of one reduction."""

    original: TestCase
    reduced: TestCase
    dclass: DiscrepancyClass
    original_size: int
    reduced_size: int
    steps_accepted: int

    @property
    def shrink_factor(self) -> float:
        return self.reduced_size / max(1, self.original_size)


class _Oracle:
    """Checks whether a candidate still shows the target discrepancy."""

    def __init__(
        self,
        runner: DifferentialRunner,
        opt: OptSetting,
        input_index: int,
        target: DiscrepancyClass,
    ) -> None:
        self.runner = runner
        self.opt = opt
        self.input_index = input_index
        self.target = target
        self.checks = 0

    def still_fails(self, test: TestCase) -> bool:
        self.checks += 1
        if validate_kernel(test.program.kernel):
            return False
        try:
            rn, ra, _, _ = self.runner.run_single(test, self.opt, self.input_index)
        except (ReproError, TrapError):
            return False
        return classify_pair(rn.value, ra.value) is self.target


# --------------------------------------------------------------------------
# Candidate generation
# --------------------------------------------------------------------------


def _with_block_body(stmt: Stmt, new_body: List[Stmt]) -> Stmt:
    if isinstance(stmt, If):
        return If(stmt.cond, new_body)
    assert isinstance(stmt, For)
    return For(stmt.var, stmt.bound, new_body)


def _statement_drop_candidates(body: Tuple[Stmt, ...]) -> Iterator[List[Stmt]]:
    """Every variant with one statement removed, at any nesting depth."""
    for i, stmt in enumerate(body):
        yield list(body[:i]) + list(body[i + 1 :])
        if isinstance(stmt, (If, For)):
            for inner in _statement_drop_candidates(stmt.body):
                yield list(body[:i]) + [_with_block_body(stmt, inner)] + list(body[i + 1 :])


def _statement_unwrap_candidates(body: Tuple[Stmt, ...]) -> Iterator[List[Stmt]]:
    """Every variant with one control-flow construct unwrapped."""
    for i, stmt in enumerate(body):
        if isinstance(stmt, (If, For)):
            yield list(body[:i]) + list(stmt.body) + list(body[i + 1 :])
            for inner in _statement_unwrap_candidates(stmt.body):
                yield list(body[:i]) + [_with_block_body(stmt, inner)] + list(body[i + 1 :])


def _expr_shrink_options(expr: Expr) -> Iterator[Expr]:
    """Smaller expressions of the same value kind."""
    if isinstance(expr, BinOp):
        yield expr.left
        yield expr.right
    elif isinstance(expr, UnOp):
        yield expr.operand
    elif isinstance(expr, FMA):
        yield expr.a
        yield expr.c
    elif isinstance(expr, Call) and expr.args:
        yield expr.args[0]


def _rewrite_one_expr(expr: Expr, counter: List[int], target: int) -> Expr:
    """Rebuild ``expr``, replacing the ``target``-th shrinkable node."""
    for option in _expr_shrink_options(expr):
        if counter[0] == target:
            counter[0] += 1
            return option
        counter[0] += 1
    # Recurse structurally.
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            _rewrite_one_expr(expr.left, counter, target),
            _rewrite_one_expr(expr.right, counter, target),
        )
    if isinstance(expr, UnOp):
        return UnOp(expr.op, _rewrite_one_expr(expr.operand, counter, target))
    if isinstance(expr, FMA):
        return FMA(
            _rewrite_one_expr(expr.a, counter, target),
            _rewrite_one_expr(expr.b, counter, target),
            _rewrite_one_expr(expr.c, counter, target),
            expr.negate_product,
        )
    if isinstance(expr, Call):
        return Call(
            expr.func,
            [_rewrite_one_expr(a, counter, target) for a in expr.args],
            expr.variant,
        )
    if isinstance(expr, ArrayRef):
        return ArrayRef(expr.name, _rewrite_one_expr(expr.index, counter, target))
    return expr


def _count_shrinkable(expr: Expr) -> int:
    total = 0
    for node in walk(expr):
        total += sum(1 for _ in _expr_shrink_options(node))  # type: ignore[arg-type]
    return total


def _stmt_with_expr(stmt: Stmt, new_expr: Expr) -> Optional[Stmt]:
    if isinstance(stmt, Decl):
        return Decl(stmt.name, new_expr)
    if isinstance(stmt, Assign):
        return Assign(stmt.target, new_expr)
    if isinstance(stmt, AugAssign):
        return AugAssign(stmt.target, stmt.op, new_expr)
    return None


def _expr_of(stmt: Stmt) -> Optional[Expr]:
    if isinstance(stmt, Decl):
        return stmt.init
    if isinstance(stmt, (Assign, AugAssign)):
        return stmt.expr
    return None


def _expr_shrink_candidates(body: Tuple[Stmt, ...]) -> Iterator[List[Stmt]]:
    """One-subexpression-hoisted variants, innermost statements included."""
    for i, stmt in enumerate(body):
        if isinstance(stmt, (If, For)):
            for inner in _expr_shrink_candidates(stmt.body):
                new = If(stmt.cond, inner) if isinstance(stmt, If) else For(
                    stmt.var, stmt.bound, inner
                )
                yield list(body[:i]) + [new] + list(body[i + 1 :])
            continue
        expr = _expr_of(stmt)
        if expr is None:
            continue
        n = _count_shrinkable(expr)
        for target in range(n):
            new_expr = _rewrite_one_expr(expr, [0], target)
            new_stmt = _stmt_with_expr(stmt, new_expr)
            if new_stmt is not None:
                yield list(body[:i]) + [new_stmt] + list(body[i + 1 :])


# --------------------------------------------------------------------------
# Parameter pruning
# --------------------------------------------------------------------------


def _used_names(kernel: Kernel) -> set:
    names = set()
    for stmt in kernel.body:
        for node in walk(stmt):
            if isinstance(node, VarRef):
                names.add(node.name)
            elif isinstance(node, ArrayRef):
                names.add(node.name)
    return names


def _prune_params(test: TestCase) -> TestCase:
    kernel = test.program.kernel
    used = _used_names(kernel)
    keep: List[int] = []
    for i, p in enumerate(kernel.params):
        if p.name == "comp" or p.name in used:
            keep.append(i)
    if len(keep) == len(kernel.params):
        return test
    params = [kernel.params[i] for i in keep]
    new_kernel = Kernel(params, kernel.body, kernel.fptype, kernel.name)
    program = Program(
        program_id=test.program.program_id + "-reduced",
        kernel=new_kernel,
        seed=test.program.seed,
        via_hipify=test.program.via_hipify,
        source_note=test.program.source_note + " [reduced]",
    )
    inputs = [
        InputVector(
            tuple(vec.values[i] for i in keep),
            tuple(vec.texts[i] for i in keep),
        )
        for vec in test.inputs
    ]
    return TestCase(program, inputs)


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def reduce_testcase(
    test: TestCase,
    opt: OptSetting,
    input_index: int,
    runner: Optional[DifferentialRunner] = None,
    max_rounds: int = 12,
) -> ReductionResult:
    """Greedily shrink ``test`` while its discrepancy class persists.

    Raises ``ValueError`` if the test does not diverge at the given
    (opt, input) to begin with.
    """
    runner = runner or DifferentialRunner()
    rn, ra, _, _ = runner.run_single(test, opt, input_index)
    target = classify_pair(rn.value, ra.value)
    if target is None:
        raise ValueError(
            f"{test.test_id} does not diverge at {opt.label} input #{input_index}"
        )
    oracle = _Oracle(runner, opt, input_index, target)

    current = test
    accepted = 0
    for _ in range(max_rounds):
        improved = False
        body = current.program.kernel.body
        generators = (
            _statement_drop_candidates(body),
            _statement_unwrap_candidates(body),
            _expr_shrink_candidates(body),
        )
        for gen in generators:
            for candidate_body in gen:
                candidate = TestCase(
                    current.program.with_kernel(
                        current.program.kernel.with_body(candidate_body)
                    ),
                    current.inputs,
                )
                if kernel_size(candidate.program.kernel) >= kernel_size(
                    current.program.kernel
                ):
                    continue
                if oracle.still_fails(candidate):
                    current = candidate
                    accepted += 1
                    improved = True
                    break  # restart from the new, smaller body
            if improved:
                break
        if not improved:
            break

    pruned = _prune_params(current)
    if pruned is not current and oracle.still_fails(pruned):
        current = pruned
        accepted += 1

    return ReductionResult(
        original=test,
        reduced=current,
        dclass=target,
        original_size=kernel_size(test.program.kernel),
        reduced_size=kernel_size(current.program.kernel),
        steps_accepted=accepted,
    )
