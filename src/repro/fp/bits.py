"""Raw bit-pattern conversions for IEEE-754 binary16/binary32/binary64.

Used by the ULP utilities, the deterministic error-placement hash in the
vendor math-library models, and the metadata store (exact value
round-tripping).
"""

from __future__ import annotations

import math
import struct

import numpy as np

__all__ = [
    "float_to_bits",
    "bits_to_float",
    "float32_to_bits",
    "bits_to_float32",
    "float16_to_bits",
    "bits_to_float16",
    "is_negative",
    "sign_exponent_mantissa",
    "compose_float",
]


def float_to_bits(value: float) -> int:
    """IEEE-754 binary64 bit pattern of ``value`` as an unsigned int."""
    (bits,) = struct.unpack("<Q", struct.pack("<d", float(value)))
    return bits


def bits_to_float(bits: int) -> float:
    """Inverse of :func:`float_to_bits`."""
    (value,) = struct.unpack("<d", struct.pack("<Q", bits & 0xFFFFFFFFFFFFFFFF))
    return value


def float32_to_bits(value: float) -> int:
    """IEEE-754 binary32 bit pattern (value is first rounded to float32)."""
    (bits,) = struct.unpack("<I", struct.pack("<f", np.float32(value)))
    return bits


def bits_to_float32(bits: int) -> np.float32:
    (value,) = struct.unpack("<f", struct.pack("<I", bits & 0xFFFFFFFF))
    return np.float32(value)


def float16_to_bits(value: float) -> int:
    """IEEE-754 binary16 bit pattern (value is first rounded to float16)."""
    (bits,) = struct.unpack("<H", struct.pack("<e", np.float16(value)))
    return bits


def bits_to_float16(bits: int) -> np.float16:
    (value,) = struct.unpack("<e", struct.pack("<H", bits & 0xFFFF))
    return np.float16(value)


def is_negative(value: float) -> bool:
    """Sign bit of ``value`` — distinguishes ``-0.0`` and ``-nan``.

    ``math.copysign`` is the only portable way to see the sign of a NaN.
    """
    return math.copysign(1.0, float(value)) < 0


def sign_exponent_mantissa(value: float, *, bits: int = 64):
    """Split a value into (sign, biased exponent, mantissa) integer fields."""
    if bits == 64:
        raw = float_to_bits(value)
        return (raw >> 63) & 1, (raw >> 52) & 0x7FF, raw & ((1 << 52) - 1)
    if bits == 32:
        raw = float32_to_bits(value)
        return (raw >> 31) & 1, (raw >> 23) & 0xFF, raw & ((1 << 23) - 1)
    if bits == 16:
        raw = float16_to_bits(value)
        return (raw >> 15) & 1, (raw >> 10) & 0x1F, raw & ((1 << 10) - 1)
    raise ValueError(f"bits must be 16, 32 or 64, got {bits}")


def compose_float(sign: int, exponent: int, mantissa: int, *, bits: int = 64) -> float:
    """Rebuild a float from its fields (inverse of sign_exponent_mantissa)."""
    if bits == 64:
        raw = ((sign & 1) << 63) | ((exponent & 0x7FF) << 52) | (mantissa & ((1 << 52) - 1))
        return bits_to_float(raw)
    if bits == 32:
        raw = ((sign & 1) << 31) | ((exponent & 0xFF) << 23) | (mantissa & ((1 << 23) - 1))
        return float(bits_to_float32(raw))
    if bits == 16:
        raw = ((sign & 1) << 15) | ((exponent & 0x1F) << 10) | (mantissa & ((1 << 10) - 1))
        return float(bits_to_float16(raw))
    raise ValueError(f"bits must be 16, 32 or 64, got {bits}")
