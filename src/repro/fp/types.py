"""Floating-point precision types used throughout the library.

The paper's campaigns are run in two configurations: FP64 (all variables
``double``) and FP32 (all variables ``float``, math functions with the ``f``
suffix, literals with the ``F`` suffix) — see §III-C.
"""

from __future__ import annotations

import enum
from typing import Union

import numpy as np

__all__ = ["FPType", "dtype_of", "finfo_of", "suffix_of", "c_name_of"]


class FPType(enum.Enum):
    """Precision of a Varity test campaign (or of one IR value)."""

    FP32 = "fp32"
    FP64 = "fp64"

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(np.float32) if self is FPType.FP32 else np.dtype(np.float64)

    @property
    def c_name(self) -> str:
        """C/CUDA/HIP type name."""
        return "float" if self is FPType.FP32 else "double"

    @property
    def literal_suffix(self) -> str:
        """Suffix appended to constants (``1.23F`` in FP32, none in FP64)."""
        return "F" if self is FPType.FP32 else ""

    @property
    def math_suffix(self) -> str:
        """Suffix appended to C math functions (``cosf`` in FP32)."""
        return "f" if self is FPType.FP32 else ""

    @property
    def bits(self) -> int:
        return 32 if self is FPType.FP32 else 64

    @property
    def mantissa_bits(self) -> int:
        """Explicitly stored mantissa bits (23 / 52)."""
        return 23 if self is FPType.FP32 else 52

    @property
    def exponent_bits(self) -> int:
        return 8 if self is FPType.FP32 else 11

    @property
    def smallest_normal(self) -> float:
        return float(np.finfo(self.dtype).tiny)

    @property
    def smallest_subnormal(self) -> float:
        return float(np.finfo(self.dtype).smallest_subnormal)

    @property
    def max(self) -> float:
        return float(np.finfo(self.dtype).max)

    @property
    def eps(self) -> float:
        return float(np.finfo(self.dtype).eps)

    @classmethod
    def from_string(cls, name: str) -> "FPType":
        name = name.strip().lower()
        aliases = {
            "fp32": cls.FP32,
            "float": cls.FP32,
            "single": cls.FP32,
            "f32": cls.FP32,
            "fp64": cls.FP64,
            "double": cls.FP64,
            "f64": cls.FP64,
        }
        try:
            return aliases[name]
        except KeyError:
            raise ValueError(f"unknown FP type {name!r}") from None


def dtype_of(fptype: Union[FPType, str]) -> np.dtype:
    """NumPy dtype for a precision (accepts enum or string alias)."""
    if isinstance(fptype, str):
        fptype = FPType.from_string(fptype)
    return fptype.dtype


def finfo_of(fptype: Union[FPType, str]) -> np.finfo:
    return np.finfo(dtype_of(fptype))


def suffix_of(fptype: FPType) -> str:
    return fptype.math_suffix


def c_name_of(fptype: FPType) -> str:
    return fptype.c_name
