"""Floating-point precision types used throughout the library.

The paper's campaigns are run in two configurations: FP64 (all variables
``double``) and FP32 (all variables ``float``, math functions with the ``f``
suffix, literals with the ``F`` suffix) — see §III-C.  This reproduction
adds a third lane, FP16 (IEEE binary16 half precision), where reduced
precision makes cross-platform divergence richest: ``__half`` on the CUDA
side, ``_Float16`` on the HIP side, math functions in the ``h``-marked
half namespace (rendered as CUDA's real ``h``-prefix spellings —
``hsin``, ``hexp`` — because a trailing ``h`` would collide with the
hyperbolic names: ``sin`` + ``h`` *is* ``sinh``), and literals with the
C23 ``F16`` suffix (which our model uses for both dialects).

Every property here dispatches on the enum member *exhaustively* and
raises ``ValueError`` for an unknown member: the seed's binary
``if FP32 else FP64`` branches silently treated any new precision as FP64,
which would miscompile a new lane instead of failing loudly.
"""

from __future__ import annotations

import enum
from typing import Dict, Union

import numpy as np

__all__ = ["FPType", "dtype_of", "finfo_of", "suffix_of", "c_name_of"]


class FPType(enum.Enum):
    """Precision of a Varity test campaign (or of one IR value)."""

    FP16 = "fp16"
    FP32 = "fp32"
    FP64 = "fp64"

    def _dispatch(self, table: Dict["FPType", object], what: str):
        try:
            return table[self]
        except KeyError:
            raise ValueError(f"{what} is not defined for {self!r}") from None

    @property
    def dtype(self) -> np.dtype:
        return self._dispatch(_DTYPES, "dtype")

    @property
    def c_name(self) -> str:
        """C/CUDA/HIP type name (the CUDA spelling for FP16: ``__half``).

        Use :meth:`c_name_for` when the emission dialect matters — HIP
        spells half precision ``_Float16``.
        """
        return self.c_name_for("cuda")

    def c_name_for(self, dialect: str) -> str:
        """Type name in one emission dialect (``cuda`` / ``hip`` / ``c``)."""
        try:
            table = _C_NAMES[dialect]
        except KeyError:
            raise ValueError(f"unknown emission dialect {dialect!r}") from None
        return self._dispatch(table, "c_name")

    @property
    def literal_suffix(self) -> str:
        """Suffix appended to constants: ``F`` in FP32, ``F16`` (the C23
        ``_Float16`` spelling) in FP16, none in FP64."""
        return self._dispatch(_LITERAL_SUFFIXES, "literal_suffix")

    @property
    def math_suffix(self) -> str:
        """The math-function marker (``cosf`` in FP32, ``h`` for the FP16
        half namespace).

        Rendering note: FP32's ``f`` is a *suffix*; FP16's ``h`` marker is
        applied as a *prefix* (``hsin``, ``hexp`` — CUDA's real half-math
        spellings) because suffixing would collide with existing
        functions: ``sin`` + ``h`` is hyperbolic sine.  See
        :meth:`repro.codegen.base.EmitterConfig.math_name`.
        """
        return self._dispatch(_MATH_SUFFIXES, "math_suffix")

    @property
    def bits(self) -> int:
        return self._dispatch(_BITS, "bits")

    @property
    def mantissa_bits(self) -> int:
        """Explicitly stored mantissa bits (10 / 23 / 52)."""
        return self._dispatch(_MANTISSA_BITS, "mantissa_bits")

    @property
    def exponent_bits(self) -> int:
        return self._dispatch(_EXPONENT_BITS, "exponent_bits")

    @property
    def smallest_normal(self) -> float:
        return float(np.finfo(self.dtype).tiny)

    @property
    def smallest_subnormal(self) -> float:
        return float(np.finfo(self.dtype).smallest_subnormal)

    @property
    def max(self) -> float:
        return float(np.finfo(self.dtype).max)

    @property
    def eps(self) -> float:
        return float(np.finfo(self.dtype).eps)

    @classmethod
    def from_string(cls, name: str) -> "FPType":
        name = name.strip().lower()
        aliases = {
            "fp16": cls.FP16,
            "half": cls.FP16,
            "f16": cls.FP16,
            "fp32": cls.FP32,
            "float": cls.FP32,
            "single": cls.FP32,
            "f32": cls.FP32,
            "fp64": cls.FP64,
            "double": cls.FP64,
            "f64": cls.FP64,
        }
        try:
            return aliases[name]
        except KeyError:
            raise ValueError(f"unknown FP type {name!r}") from None


#: Module-level dispatch tables: built once, so the exhaustive-dispatch
#: guarantee costs nothing on the interpreter's per-operation hot path
#: (``env.cast`` reads ``.dtype`` on every evaluated node).
_DTYPES = {
    FPType.FP16: np.dtype(np.float16),
    FPType.FP32: np.dtype(np.float32),
    FPType.FP64: np.dtype(np.float64),
}
_C_NAMES = {
    "cuda": {FPType.FP16: "__half", FPType.FP32: "float", FPType.FP64: "double"},
    "hip": {FPType.FP16: "_Float16", FPType.FP32: "float", FPType.FP64: "double"},
    "c": {FPType.FP16: "_Float16", FPType.FP32: "float", FPType.FP64: "double"},
}
_LITERAL_SUFFIXES = {FPType.FP16: "F16", FPType.FP32: "F", FPType.FP64: ""}
_MATH_SUFFIXES = {FPType.FP16: "h", FPType.FP32: "f", FPType.FP64: ""}
_BITS = {FPType.FP16: 16, FPType.FP32: 32, FPType.FP64: 64}
_MANTISSA_BITS = {FPType.FP16: 10, FPType.FP32: 23, FPType.FP64: 52}
_EXPONENT_BITS = {FPType.FP16: 5, FPType.FP32: 8, FPType.FP64: 11}


def dtype_of(fptype: Union[FPType, str]) -> np.dtype:
    """NumPy dtype for a precision (accepts enum or string alias)."""
    if isinstance(fptype, str):
        fptype = FPType.from_string(fptype)
    return fptype.dtype


def finfo_of(fptype: Union[FPType, str]) -> np.finfo:
    return np.finfo(dtype_of(fptype))


def suffix_of(fptype: FPType) -> str:
    return fptype.math_suffix


def c_name_of(fptype: FPType) -> str:
    return fptype.c_name
