"""Floating-point substrate.

Bit-level utilities, ULP arithmetic, outcome classification (the paper's
NaN/Inf/Zero/Number taxonomy), IEEE-754 exception tracking (Table II), and
Varity-style literal formatting.
"""

from repro.fp.types import FPType, dtype_of, finfo_of
from repro.fp.bits import (
    float_to_bits,
    bits_to_float,
    float32_to_bits,
    bits_to_float32,
    float16_to_bits,
    bits_to_float16,
    is_negative,
)
from repro.fp.ulp import ulp_distance, nextafter_n, perturb_ulps, ulp_of
from repro.fp.classify import (
    OutcomeClass,
    classify_value,
    is_subnormal,
    outcomes_equivalent,
)
from repro.fp.env import FPEnv, FPExceptionFlags, FlushMode
from repro.fp.literals import (
    format_varity_literal,
    parse_varity_literal,
    strip_literal_suffix,
)

__all__ = [
    "FPType",
    "dtype_of",
    "finfo_of",
    "float_to_bits",
    "bits_to_float",
    "float32_to_bits",
    "bits_to_float32",
    "float16_to_bits",
    "bits_to_float16",
    "is_negative",
    "ulp_distance",
    "nextafter_n",
    "perturb_ulps",
    "ulp_of",
    "OutcomeClass",
    "classify_value",
    "is_subnormal",
    "outcomes_equivalent",
    "FPEnv",
    "FPExceptionFlags",
    "FlushMode",
    "format_varity_literal",
    "parse_varity_literal",
    "strip_literal_suffix",
]
