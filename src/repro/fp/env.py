"""IEEE-754 exception tracking and subnormal flushing.

Table II of the paper lists the five IEEE-754 exception events (Inexact,
Underflow, Overflow, DivideByZero, Invalid).  NVIDIA GPUs expose no status
register for them (§II-B); our interpreter *does* track them, which is what
lets the analysis layer explain where exceptional quantities came from.

:class:`FlushMode` models the flush-to-zero behaviour GPUs apply to
subnormals: real nvcc enables FTZ for FP32 under ``--use_fast_math`` (it
flushes both inputs and outputs of arithmetic), while the AMD stack flushes
outputs only in the mode we model.  The asymmetry is one of the paper's
divergence sources for FP32 fast-math (Table IX's Num/Zero class).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict

from repro.fp.types import FPType
from repro.fp.classify import is_subnormal

__all__ = ["FPExceptionFlags", "FlushMode", "FPEnv"]


class FlushMode(enum.Enum):
    """Subnormal handling of the execution environment."""

    NONE = "none"  # full IEEE subnormal support
    FLUSH_OUTPUTS = "flush-outputs"  # subnormal results become ±0
    FLUSH_INPUTS_OUTPUTS = "flush-inputs-outputs"  # operands too

    @property
    def flushes_inputs(self) -> bool:
        return self is FlushMode.FLUSH_INPUTS_OUTPUTS

    @property
    def flushes_outputs(self) -> bool:
        return self is not FlushMode.NONE


@dataclass
class FPExceptionFlags:
    """Sticky accumulation of the five IEEE-754 exception events (Table II)."""

    inexact: int = 0
    underflow: int = 0
    overflow: int = 0
    divide_by_zero: int = 0
    invalid: int = 0

    EVENTS = ("inexact", "underflow", "overflow", "divide_by_zero", "invalid")

    def raise_event(self, name: str) -> None:
        if name not in self.EVENTS:
            raise ValueError(f"unknown IEEE-754 event {name!r}")
        setattr(self, name, getattr(self, name) + 1)

    def merge(self, other: "FPExceptionFlags") -> None:
        for name in self.EVENTS:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def any_raised(self) -> bool:
        # Inexact fires constantly in numerical code and the paper treats it
        # as uninteresting (§II-B1), so it does not count here.
        return bool(self.underflow or self.overflow or self.divide_by_zero or self.invalid)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.EVENTS}

    def reset(self) -> None:
        for name in self.EVENTS:
            setattr(self, name, 0)


@dataclass
class FPEnv:
    """Floating-point environment a kernel executes under.

    Combines the precision, the flush mode, and the sticky exception flags.
    The interpreter calls :meth:`observe_binary` / :meth:`observe_call`
    after every operation so the flags describe the whole run.
    """

    fptype: FPType = FPType.FP64
    flush: FlushMode = FlushMode.NONE
    flags: FPExceptionFlags = field(default_factory=FPExceptionFlags)

    # -- subnormal flushing -------------------------------------------------
    def flush_input(self, value):
        """Apply input flushing (operand side) if enabled."""
        if self.flush.flushes_inputs and is_subnormal(value, self.fptype):
            return self.fptype.dtype.type(math.copysign(0.0, float(value)))
        return value

    def flush_output(self, value):
        """Apply output flushing (result side) if enabled."""
        if self.flush.flushes_outputs and is_subnormal(value, self.fptype):
            self.flags.raise_event("underflow")
            return self.fptype.dtype.type(math.copysign(0.0, float(value)))
        return value

    # -- exception observation ----------------------------------------------
    def observe_result(self, result, *operands) -> None:
        """Record IEEE events implied by an operation's result.

        Without hardware status registers we infer events from values, the
        same way GPU-FPX-style tools do on NVIDIA hardware:

        * result NaN with no NaN operand → Invalid;
        * result Inf with finite operands → Overflow or DivideByZero;
        * non-zero result below the normal range → Underflow (to subnormal).
        """
        r = float(result)
        ops = [float(o) for o in operands]
        if math.isnan(r) and not any(math.isnan(o) for o in ops):
            self.flags.raise_event("invalid")
        elif math.isinf(r) and all(math.isfinite(o) for o in ops):
            if any(o == 0.0 for o in ops):
                self.flags.raise_event("divide_by_zero")
            else:
                self.flags.raise_event("overflow")
        elif is_subnormal(r, self.fptype):
            self.flags.raise_event("underflow")

    def observe_division(self, result, numerator, denominator) -> None:
        """Division gets its own rule: x/0 with finite non-zero x is DivideByZero."""
        r = float(result)
        num, den = float(numerator), float(denominator)
        if den == 0.0 and num != 0.0 and not math.isnan(num):
            self.flags.raise_event("divide_by_zero")
        elif math.isnan(r) and not (math.isnan(num) or math.isnan(den)):
            self.flags.raise_event("invalid")
        elif math.isinf(r) and math.isfinite(num) and math.isfinite(den):
            self.flags.raise_event("overflow")
        elif is_subnormal(r, self.fptype):
            self.flags.raise_event("underflow")

    def cast(self, value):
        """Round a Python/NumPy value into this environment's precision."""
        return self.fptype.dtype.type(value)

    def snapshot(self) -> Dict[str, int]:
        return self.flags.as_dict()
