"""Varity-style floating-point literal formatting and parsing.

Generated sources in the paper print constants like ``+1.3065E-306``,
``-1.7744E-2``, ``+0.0`` (Figs. 2, 4–6): an explicit sign, one integer
digit, four fractional digits, and an uppercase-E exponent (omitted when
zero).  FP32 campaigns append ``F``.  We reproduce that format exactly so
rendered ``.cu``/``.hip`` files look like Varity's, and so the HIPIFY
translator can be tested on realistic text.

Formatting is value-preserving in the sense used by the generator: the
literal is *defined* by its decimal text (both compilers parse the same
text), so round-tripping text → value → text is what must be stable, and it
is, because we generate values *from* this format.
"""

from __future__ import annotations

import math
import re
from typing import Union

import numpy as np

from repro.fp.types import FPType

__all__ = [
    "format_varity_literal",
    "parse_varity_literal",
    "strip_literal_suffix",
    "VARITY_LITERAL_RE",
]

#: Regex matching literals we emit (sign mandatory, as in Varity output).
#: ``F16`` is the C23 half-precision suffix used by the FP16 lane; it must
#: come before the bare ``F`` alternative so it is matched whole.
VARITY_LITERAL_RE = re.compile(
    r"[+-]\d\.\d+(?:E[+-]?\d+)?(?:F16|F)?", re.IGNORECASE
)


def strip_literal_suffix(text: str) -> str:
    """Drop a trailing precision suffix (``F16`` or ``F``/``f``) if present."""
    upper = text.upper()
    if upper.endswith("F16"):
        return text[:-3]
    if upper.endswith("F"):
        return text[:-1]
    return text


def format_varity_literal(
    value: Union[float, np.floating],
    fptype: FPType = FPType.FP64,
    *,
    digits: int = 4,
) -> str:
    """Format ``value`` the way Varity prints constants in generated code.

    ``+0.0`` / ``-0.0`` are special-cased (no exponent).  NaN/Inf never
    appear as literals in generated programs, so they are rejected.
    """
    v = float(value)
    if math.isnan(v) or math.isinf(v):
        raise ValueError("Varity literals are always finite")
    suffix = fptype.literal_suffix
    if v == 0.0:
        sign = "-" if math.copysign(1.0, v) < 0 else "+"
        return f"{sign}0.0{suffix}"
    sign = "-" if v < 0 else "+"
    mag = abs(v)
    # Let the runtime do the decimal scaling: this is correct down to the
    # smallest subnormal, where explicit 10**exponent arithmetic underflows.
    sci = f"{mag:.{digits}E}"  # e.g. "4.9407E-324"
    body, exp_text = sci.split("E")
    exponent = int(exp_text)
    if exponent == 0:
        return f"{sign}{body}{suffix}"
    return f"{sign}{body}E{exponent}{suffix}"


def parse_varity_literal(text: str, fptype: FPType = FPType.FP64):
    """Parse a literal produced by :func:`format_varity_literal`.

    Returns a NumPy scalar of the campaign precision (the value both real
    compilers would embed in the binary).
    """
    text = text.strip()
    upper = text.upper()
    # Narrowing may overflow to Inf (e.g. a 9.9E4 input into binary16) —
    # that is the compiled program's real behavior, not a warning.
    with np.errstate(all="ignore"):
        if upper.endswith("F16"):
            text = text[:-3]
            if fptype is not FPType.FP16:
                # An F16-suffixed literal outside an FP16 program would be
                # a generator bug; accept it but honour the suffix.
                return np.float16(float(text))
        elif upper.endswith("F"):
            text = text[:-1]
            if fptype is not FPType.FP32:
                # An F-suffixed literal in an FP64 program would be a
                # generator bug; accept it but honour the suffix.
                return np.float32(float(text))
        return fptype.dtype.type(float(text))
