"""ULP (unit in the last place) arithmetic.

The vendor math-library models express accuracy as "result within N ULPs of
the correctly-rounded value", matching how NVIDIA's libdevice and AMD's OCML
document their functions.  These helpers convert between values and ULP
counts for binary16, binary32 and binary64 — the ULP line is a property of
the campaign precision, never an assumed 52/23-bit mantissa.
"""

from __future__ import annotations

import math

import numpy as np

from repro.fp.types import FPType
from repro.fp.bits import float16_to_bits, float32_to_bits, float_to_bits

__all__ = ["ulp_distance", "nextafter_n", "perturb_ulps", "ulp_of"]


def _ordered_bits64(value: float) -> int:
    """Map binary64 to a monotone integer line (two's-complement style)."""
    bits = float_to_bits(value)
    if bits & (1 << 63):
        return (1 << 63) - (bits & ~(1 << 63)) - 1
    return bits + (1 << 63) - 1


def _ordered_bits32(value: float) -> int:
    bits = float32_to_bits(value)
    if bits & (1 << 31):
        return (1 << 31) - (bits & ~(1 << 31)) - 1
    return bits + (1 << 31) - 1


def _ordered_bits16(value: float) -> int:
    bits = float16_to_bits(value)
    if bits & (1 << 15):
        return (1 << 15) - (bits & ~(1 << 15)) - 1
    return bits + (1 << 15) - 1


def ulp_distance(a: float, b: float, fptype: FPType = FPType.FP64) -> int:
    """Number of representable values between ``a`` and ``b`` (symmetric).

    NaN against anything (including NaN) raises ``ValueError`` — callers
    must classify non-finite outcomes first, as the harness does.
    ``+0.0`` and ``-0.0`` coincide on the ordered line (distance 0): they
    compare equal, and the paper's rules never treat them as different.
    """
    af, bf = float(a), float(b)
    if math.isnan(af) or math.isnan(bf):
        raise ValueError("ulp_distance is undefined for NaN")
    if fptype is FPType.FP64:
        return abs(_ordered_bits64(af) - _ordered_bits64(bf))
    if fptype is FPType.FP32:
        return abs(_ordered_bits32(np.float32(af)) - _ordered_bits32(np.float32(bf)))
    if fptype is FPType.FP16:
        return abs(_ordered_bits16(np.float16(af)) - _ordered_bits16(np.float16(bf)))
    raise ValueError(f"ulp_distance is not defined for {fptype!r}")


def nextafter_n(value: float, n: int, fptype: FPType = FPType.FP64):
    """Step ``value`` by ``n`` representable values (n may be negative).

    Saturates at ±inf like repeated ``nextafter`` toward ±inf would.
    Returns a numpy scalar of the requested precision.
    """
    dtype = fptype.dtype
    x = dtype.type(value)
    if n == 0:
        return x
    direction = dtype.type(np.inf if n > 0 else -np.inf)
    # errstate: stepping off the top finite value overflows to inf, which
    # is the documented saturation — not a warning-worthy event.
    with np.errstate(over="ignore"):
        for _ in range(abs(n)):
            if np.isinf(x) and (x > 0) == (n > 0):
                break
            x = np.nextafter(x, direction, dtype=dtype)
    return x


def perturb_ulps(value: float, n: int, fptype: FPType = FPType.FP64) -> float:
    """Like :func:`nextafter_n` but NaN/Inf pass through unchanged.

    This is the primitive the vendor error model applies to a
    correctly-rounded result; exceptional values are never perturbed
    (a library returning NaN returns NaN on both vendors).
    """
    if math.isnan(value) or math.isinf(value):
        return float(value)
    return float(nextafter_n(value, n, fptype))


def ulp_of(value: float, fptype: FPType = FPType.FP64) -> float:
    """Magnitude of one ULP at ``value`` (gap to the next float away from 0)."""
    dtype = fptype.dtype
    x = dtype.type(value)
    if np.isnan(x) or np.isinf(x):
        raise ValueError("ulp_of is undefined for non-finite values")
    away = dtype.type(np.inf) if x >= 0 else dtype.type(-np.inf)
    return float(abs(np.nextafter(x, away, dtype=dtype) - x))
