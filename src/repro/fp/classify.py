"""Outcome classification — the paper's NaN / Inf / Zero / Number taxonomy.

§IV-B: "We identified four possible outcomes from any test: NaN, Inf, Zero,
and Number", where *Number* means a non-zero finite real value.  Sign-only
differences (``-NaN`` vs ``+NaN``, ``-Inf`` vs ``+Inf``, ``-0.0`` vs
``+0.0``) are explicitly *not* discrepancies.

Subnormals classify as Number for the discrepancy taxonomy, but the harness
also records subnormality separately because §II-B singles them out as
dangerous quantities worth tracking.
"""

from __future__ import annotations

import enum
import math
from typing import Union

import numpy as np

from repro.fp.types import FPType
from repro.fp.bits import is_negative

__all__ = [
    "OutcomeClass",
    "classify_value",
    "is_subnormal",
    "outcomes_equivalent",
    "SignedOutcome",
]


class OutcomeClass(enum.Enum):
    """The four outcome classes of §IV-B, in the paper's order."""

    NAN = "NaN"
    INF = "Inf"
    ZERO = "Zero"
    NUMBER = "Num"

    def __str__(self) -> str:
        return self.value

    @property
    def paper_label(self) -> str:
        return self.value

    @classmethod
    def from_string(cls, label: str) -> "OutcomeClass":
        table = {
            "nan": cls.NAN,
            "inf": cls.INF,
            "zero": cls.ZERO,
            "num": cls.NUMBER,
            "number": cls.NUMBER,
        }
        try:
            return table[label.strip().lower()]
        except KeyError:
            raise ValueError(f"unknown outcome class {label!r}") from None


#: Canonical ordering used by the adjacency matrices (Tables VI/VIII/X).
OUTCOME_ORDER = (
    OutcomeClass.NAN,
    OutcomeClass.INF,
    OutcomeClass.ZERO,
    OutcomeClass.NUMBER,
)


def classify_value(value: Union[float, np.floating]) -> OutcomeClass:
    """Classify one printed kernel result.

    Zero means exactly ``±0.0``; everything else finite and non-zero is
    Number (including subnormals).
    """
    v = float(value)
    if math.isnan(v):
        return OutcomeClass.NAN
    if math.isinf(v):
        return OutcomeClass.INF
    if v == 0.0:
        return OutcomeClass.ZERO
    return OutcomeClass.NUMBER


def is_subnormal(value: Union[float, np.floating], fptype: FPType = FPType.FP64) -> bool:
    """True when ``value`` is non-zero with magnitude below the smallest normal."""
    v = float(value)
    if math.isnan(v) or math.isinf(v) or v == 0.0:
        return False
    return abs(v) < fptype.smallest_normal


class SignedOutcome:
    """An outcome class plus the sign bit, for the exclusion rule.

    The paper excludes ``-NaN vs +NaN``, ``-Inf vs +Inf`` and
    ``-Zero vs +Zero`` from the discrepancy counts (they "do not represent
    true numerical differences") — but *keeps* sign information for
    Inf-vs-Inf pairs with differing magnitudes?  No: Inf has one magnitude,
    so any Inf/Inf pair is equivalent.  Number-vs-Number pairs compare by
    value, not class.
    """

    __slots__ = ("outcome", "negative", "value")

    def __init__(self, value: Union[float, np.floating]) -> None:
        self.value = float(value)
        self.outcome = classify_value(self.value)
        self.negative = is_negative(self.value)

    def __repr__(self) -> str:
        sign = "-" if self.negative else "+"
        return f"SignedOutcome({sign}{self.outcome.value}, value={self.value!r})"


def outcomes_equivalent(a: Union[float, np.floating], b: Union[float, np.floating]) -> bool:
    """True when a result pair is NOT a discrepancy under the paper's rules.

    * different outcome classes → discrepancy;
    * same class NaN / Inf / Zero → equivalent regardless of sign;
    * both Number → equivalent iff bit-identical values (the paper prints
      with ``%.17g`` and compares strings; 17 significant digits round-trips
      binary64, so string equality equals value equality for doubles).
    """
    ca, cb = classify_value(a), classify_value(b)
    if ca is not cb:
        return False
    if ca is OutcomeClass.NUMBER:
        return float(a) == float(b)
    return True
