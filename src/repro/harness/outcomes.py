"""Per-run records."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.fp.classify import OutcomeClass, classify_value

__all__ = ["RunRecord"]


@dataclass(frozen=True)
class RunRecord:
    """One kernel execution on one device.

    ``printed`` is the ``%.17g`` line the real harness captures from
    stdout; ``value`` is its parsed float (17 significant digits
    round-trips binary64, so nothing is lost).
    """

    test_id: str
    input_index: int
    opt_label: str
    compiler: str  # stack name: "nvcc" / "hipcc" / "cpu"
    printed: str
    value: float
    flags: Optional[Dict[str, int]] = None

    @property
    def outcome(self) -> OutcomeClass:
        return classify_value(self.value)

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "test_id": self.test_id,
            "input_index": self.input_index,
            "opt": self.opt_label,
            "compiler": self.compiler,
            "printed": self.printed,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "RunRecord":
        """Rebuild a record from :meth:`to_json_dict` output.

        ``value`` is recovered from the printed line — 17 significant
        digits round-trip binary64, so nothing is lost (flags are not
        serialized and come back as ``None``).
        """
        printed = str(data["printed"])
        return cls(
            test_id=str(data["test_id"]),
            input_index=int(data["input_index"]),  # type: ignore[arg-type]
            opt_label=str(data["opt"]),
            compiler=str(data["compiler"]),
            printed=printed,
            value=float(printed),
        )
