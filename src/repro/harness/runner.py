"""Single-test differential execution."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compilers.compiler import CompiledKernel, Compiler
from repro.compilers.hipcc import HipccCompiler
from repro.compilers.nvcc import NvccCompiler
from repro.compilers.options import OptSetting
from repro.devices.amd import amd_mi250x
from repro.devices.device import Device
from repro.devices.nvidia import nvidia_v100
from repro.errors import TrapError
from repro.harness.differential import Discrepancy
from repro.harness.outcomes import RunRecord
from repro.varity.testcase import TestCase

__all__ = ["DifferentialRunner", "PairResult"]


@dataclass
class PairResult:
    """Both platforms' runs for one (test, opt) across all inputs."""

    nvcc_runs: List[RunRecord]
    hipcc_runs: List[RunRecord]
    discrepancies: List[Discrepancy]
    skipped_inputs: List[int]


class DifferentialRunner:
    """Owns one device + compiler per vendor and runs tests through both.

    ``record_flags=True`` attaches the IEEE exception snapshot to each run
    record (slower; used by the analysis examples, not by campaigns).
    """

    def __init__(
        self,
        nvidia: Optional[Device] = None,
        amd: Optional[Device] = None,
        record_flags: bool = False,
    ) -> None:
        self.nvidia = nvidia or nvidia_v100()
        self.amd = amd or amd_mi250x()
        self.nvcc: Compiler = NvccCompiler()
        self.hipcc: Compiler = HipccCompiler()
        self.record_flags = record_flags

    # ------------------------------------------------------------------ api
    def compile_pair(
        self, test: TestCase, opt: OptSetting
    ) -> Tuple[CompiledKernel, CompiledKernel]:
        return self.nvcc.compile(test.program, opt), self.hipcc.compile(test.program, opt)

    def run_pair(self, test: TestCase, opt: OptSetting) -> PairResult:
        """Compile once per compiler, run every input on both devices."""
        ck_nv, ck_amd = self.compile_pair(test, opt)
        nv_runs: List[RunRecord] = []
        amd_runs: List[RunRecord] = []
        skipped: List[int] = []
        for idx, vec in enumerate(test.inputs):
            try:
                rn = self.nvidia.execute(ck_nv, vec.values)
                ra = self.amd.execute(ck_amd, vec.values)
            except TrapError:
                # A runaway test (step budget) is dropped on both sides,
                # like a timed-out job in the real campaign.
                skipped.append(idx)
                continue
            nv_runs.append(self._record(test, idx, opt, "nvcc", rn))
            amd_runs.append(self._record(test, idx, opt, "hipcc", ra))
        discrepancies = [
            d
            for nv, am in zip(nv_runs, amd_runs)
            if (d := Discrepancy.from_records(nv, am)) is not None
        ]
        return PairResult(nv_runs, amd_runs, discrepancies, skipped)

    def run_single(
        self, test: TestCase, opt: OptSetting, input_index: int, *, trace: bool = False
    ):
        """One input on both platforms; returns the raw ExecutionResults.

        Used by the case-study tooling, which needs traces.
        """
        ck_nv, ck_amd = self.compile_pair(test, opt)
        vec = test.inputs[input_index]
        rn = self.nvidia.execute(ck_nv, vec.values, trace=trace)
        ra = self.amd.execute(ck_amd, vec.values, trace=trace)
        return rn, ra, ck_nv, ck_amd

    # ------------------------------------------------------------- internals
    def _record(
        self, test: TestCase, idx: int, opt: OptSetting, compiler: str, result
    ) -> RunRecord:
        return RunRecord(
            test_id=test.test_id,
            input_index=idx,
            opt_label=opt.label,
            compiler=compiler,
            printed=result.printed,
            value=result.value,
            flags=dict(result.flags) if self.record_flags else None,
        )
