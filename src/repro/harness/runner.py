"""Single-test differential execution.

:meth:`DifferentialRunner.run_sweep` is the execution service's unit of
work: one test compiled once per compiler (front end shared across the
optimization settings) and executed at every setting.  The ``nvcc_cache``
/ ``populate_cache`` arguments take a cache *view* — any object with
``get(test_id, opt_label)``, ``put(test_id, opt_label, outcomes)`` and a
``hits`` counter, in practice a content-keyed
:class:`~repro.exec.store.BoundRunCache` — letting a later request replay
an earlier one's nvcc run outcomes verbatim: the ``fp64_hipify`` arm and
every fuzz mutant's HIPIFY twin run the *same* kernels through nvcc
(HIPIFY conversion only changes the HIP compilation), so their CUDA-side
records are bit-identical and never need re-executing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.compilers.compiler import CompiledKernel, Compiler
from repro.compilers.hipcc import HipccCompiler
from repro.compilers.nvcc import NvccCompiler
from repro.compilers.options import OptSetting
from repro.devices.amd import amd_mi250x
from repro.devices.device import Device
from repro.devices.nvidia import nvidia_v100
from repro.errors import HarnessError, TrapError
from repro.harness.differential import Discrepancy
from repro.harness.outcomes import RunRecord
from repro.varity.testcase import TestCase

if TYPE_CHECKING:  # pragma: no cover - runtime import would be circular
    from repro.exec.store import BoundRunCache

__all__ = ["DifferentialRunner", "PairResult", "pair_discrepancies"]


@dataclass
class PairResult:
    """Both platforms' runs for one (test, opt) across all inputs."""

    nvcc_runs: List[RunRecord]
    hipcc_runs: List[RunRecord]
    discrepancies: List[Discrepancy]
    skipped_inputs: List[int]


def pair_discrepancies(
    nvcc_runs: Sequence[RunRecord], hipcc_runs: Sequence[RunRecord]
) -> List[Discrepancy]:
    """Pair nv/amd records by ``input_index`` and keep the discrepancies.

    Records are matched explicitly (not positionally), so a harness bug
    that dropped one side's record for an input surfaces as a
    :class:`HarnessError` instead of silently misattributing every
    discrepancy after the gap.
    """
    by_index: Dict[int, RunRecord] = {}
    for r in hipcc_runs:
        if r.input_index in by_index:
            raise HarnessError(
                f"duplicate hipcc record for input {r.input_index} of {r.test_id!r}"
            )
        by_index[r.input_index] = r
    if len(nvcc_runs) != len(by_index):
        raise HarnessError(
            f"unpaired run records: {len(nvcc_runs)} nvcc vs {len(by_index)} hipcc"
        )
    out: List[Discrepancy] = []
    seen_nv: set = set()
    for nv in nvcc_runs:
        if nv.input_index in seen_nv:
            raise HarnessError(
                f"duplicate nvcc record for input {nv.input_index} of {nv.test_id!r}"
            )
        seen_nv.add(nv.input_index)
        hip = by_index.get(nv.input_index)
        if hip is None:
            raise HarnessError(
                f"no hipcc record for input {nv.input_index} of {nv.test_id!r}"
            )
        d = Discrepancy.from_records(nv, hip)
        if d is not None:
            out.append(d)
    return out


class DifferentialRunner:
    """Owns one device + compiler per vendor and runs tests through both.

    ``record_flags=True`` attaches the IEEE exception snapshot to each run
    record (slower; used by the analysis examples, not by campaigns).

    ``nvcc_executions`` / ``hipcc_executions`` count device executions
    attempted (including ones that trapped); the campaign engine uses
    them to prove the cross-arm cache really avoided the CUDA side.
    """

    def __init__(
        self,
        nvidia: Optional[Device] = None,
        amd: Optional[Device] = None,
        record_flags: bool = False,
    ) -> None:
        self.nvidia = nvidia or nvidia_v100()
        self.amd = amd or amd_mi250x()
        self.nvcc: Compiler = NvccCompiler()
        self.hipcc: Compiler = HipccCompiler()
        self.record_flags = record_flags
        self.nvcc_executions = 0
        self.hipcc_executions = 0

    # ------------------------------------------------------------------ api
    def compile_pair(
        self, test: TestCase, opt: OptSetting
    ) -> Tuple[CompiledKernel, CompiledKernel]:
        return self.nvcc.compile(test.program, opt), self.hipcc.compile(test.program, opt)

    def run_pair(self, test: TestCase, opt: OptSetting) -> PairResult:
        """Compile once per compiler, run every input on both devices."""
        ck_nv, ck_amd = self.compile_pair(test, opt)
        return self._run_inputs(test, opt, ck_nv, ck_amd)

    def run_sweep(
        self,
        test: TestCase,
        opts: Sequence[OptSetting],
        *,
        nvcc_cache: Optional["BoundRunCache"] = None,
        populate_cache: Optional["BoundRunCache"] = None,
    ) -> Dict[str, PairResult]:
        """One test across every optimization setting, keyed by opt label.

        Each compiler's front end runs once for the whole sweep (see
        :meth:`Compiler.compile_sweep`).  When ``nvcc_cache`` (a
        content-keyed store view) holds this test's entry at an opt
        setting, the CUDA side is replayed from the cached outcomes
        instead of executing; ``populate_cache`` stores this sweep's nvcc
        outcomes for a later request to reuse.
        """
        nv_kernels = self.nvcc.compile_sweep(test.program, opts)
        amd_kernels = self.hipcc.compile_sweep(test.program, opts)
        out: Dict[str, PairResult] = {}
        for opt in opts:
            out[opt.label] = self._run_inputs(
                test,
                opt,
                nv_kernels[opt.label],
                amd_kernels[opt.label],
                nvcc_cache=nvcc_cache,
                populate_cache=populate_cache,
            )
        return out

    def run_single(
        self, test: TestCase, opt: OptSetting, input_index: int, *, trace: bool = False
    ):
        """One input on both platforms; returns the raw ExecutionResults.

        Used by the case-study tooling, which needs traces.
        """
        ck_nv, ck_amd = self.compile_pair(test, opt)
        vec = test.inputs[input_index]
        rn = self.nvidia.execute(ck_nv, vec.values, trace=trace)
        ra = self.amd.execute(ck_amd, vec.values, trace=trace)
        return rn, ra, ck_nv, ck_amd

    # ------------------------------------------------------------- internals
    def _run_inputs(
        self,
        test: TestCase,
        opt: OptSetting,
        ck_nv: CompiledKernel,
        ck_amd: CompiledKernel,
        *,
        nvcc_cache: Optional["BoundRunCache"] = None,
        populate_cache: Optional["BoundRunCache"] = None,
    ) -> PairResult:
        cached = (
            nvcc_cache.get(test.test_id, opt.label) if nvcc_cache is not None else None
        )
        if cached is not None and len(cached) != len(test.inputs):
            raise HarnessError(
                f"cached nvcc outcomes for {test.test_id!r} at {opt.label} cover "
                f"{len(cached)} inputs, test has {len(test.inputs)}"
            )
        nv_outcomes: List[Optional[RunRecord]] = []
        nv_runs: List[RunRecord] = []
        amd_runs: List[RunRecord] = []
        skipped: List[int] = []
        for idx, vec in enumerate(test.inputs):
            if cached is not None:
                nvcc_cache.hits += 1
                rec = cached[idx]
            else:
                self.nvcc_executions += 1
                try:
                    rn = self.nvidia.execute(ck_nv, vec.values)
                except TrapError:
                    rec = None
                else:
                    rec = self._record(test, idx, opt, "nvcc", rn)
            nv_outcomes.append(rec)
            if rec is None:
                # The CUDA side trapped (step budget): the test is dropped
                # on both platforms, like a timed-out job in the real
                # campaign, and the HIP side is never executed.
                skipped.append(idx)
                continue
            self.hipcc_executions += 1
            try:
                ra = self.amd.execute(ck_amd, vec.values)
            except TrapError:
                skipped.append(idx)
                continue
            nv_runs.append(rec)
            amd_runs.append(self._record(test, idx, opt, "hipcc", ra))
        if populate_cache is not None:
            populate_cache.put(test.test_id, opt.label, nv_outcomes)
        return PairResult(nv_runs, amd_runs, pair_discrepancies(nv_runs, amd_runs), skipped)

    def _record(
        self, test: TestCase, idx: int, opt: OptSetting, compiler: str, result
    ) -> RunRecord:
        return RunRecord(
            test_id=test.test_id,
            input_index=idx,
            opt_label=opt.label,
            compiler=compiler,
            printed=result.printed,
            value=result.value,
            flags=dict(result.flags) if self.record_flags else None,
        )
