"""Single-test differential execution.

:meth:`DifferentialRunner.run_sweep` is the execution service's unit of
work: one test compiled once per compiler (front end shared across the
optimization settings) and executed at every setting — each setting's
whole input grid in one :meth:`Device.execute_batch` call.  The
``lhs_cache`` / ``populate_lhs_cache`` arguments take a cache *view* —
any object with
``get(test_id, opt_label)``, ``put(test_id, opt_label, outcomes)`` and a
``hits`` counter, in practice a content-keyed
:class:`~repro.exec.store.BoundRunCache` — letting a later request replay
an earlier one's left-stack run outcomes verbatim: the ``fp64_hipify``
arm, every fuzz mutant's HIPIFY twin, and every extra stack pair sharing
the same left stack run the *same* kernels through that compiler, so
their records are bit-identical and never need re-executing.

The runner is stack-pair generic: ``stacks=("nvcc", "cpu")`` builds the
left/right compiler and device models from the :mod:`repro.stacks`
registry.  The default pair is the paper's (nvcc, hipcc), and the
pre-registry attribute spellings (``runner.nvcc``, ``runner.amd``,
``runner.nvcc_executions``, …) remain as aliases for the left/right
slots so existing ablation and analysis code keeps working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.compilers.compiler import CompiledKernel, Compiler
from repro.compilers.options import OptSetting
from repro.devices.device import Device
from repro.errors import HarnessError, TrapError
from repro.harness.differential import Discrepancy
from repro.harness.outcomes import RunRecord
from repro.stacks import DEFAULT_STACK_PAIR, get_stack
from repro.varity.testcase import TestCase

if TYPE_CHECKING:  # pragma: no cover - runtime import would be circular
    from repro.exec.artifacts import ArtifactCache
    from repro.exec.store import BoundRunCache

__all__ = ["DifferentialRunner", "PairResult", "pair_discrepancies"]


@dataclass
class PairResult:
    """Both stacks' runs for one (test, opt) across all inputs.

    ``stacks`` names the (lhs, rhs) pair the runs came from; the
    ``nvcc_runs``/``hipcc_runs`` field spellings are the pre-registry
    names for the left and right slots and are kept because every
    consumer (exec accounting, campaign folding, oracle relations)
    reads them — ``lhs_runs``/``rhs_runs`` are the neutral aliases.
    """

    nvcc_runs: List[RunRecord]
    hipcc_runs: List[RunRecord]
    discrepancies: List[Discrepancy]
    skipped_inputs: List[int]
    stacks: Tuple[str, str] = field(default=DEFAULT_STACK_PAIR)

    @property
    def lhs_runs(self) -> List[RunRecord]:
        return self.nvcc_runs

    @property
    def rhs_runs(self) -> List[RunRecord]:
        return self.hipcc_runs


def pair_discrepancies(
    lhs_runs: Sequence[RunRecord],
    rhs_runs: Sequence[RunRecord],
    stacks: Tuple[str, str] = DEFAULT_STACK_PAIR,
) -> List[Discrepancy]:
    """Pair the two stacks' records by ``input_index``; keep discrepancies.

    Records are matched explicitly (not positionally), so a harness bug
    that dropped one side's record for an input surfaces as a
    :class:`HarnessError` instead of silently misattributing every
    discrepancy after the gap.
    """
    lhs_name, rhs_name = stacks
    by_index: Dict[int, RunRecord] = {}
    for r in rhs_runs:
        if r.input_index in by_index:
            raise HarnessError(
                f"duplicate {rhs_name} record for input {r.input_index} of {r.test_id!r}"
            )
        by_index[r.input_index] = r
    if len(lhs_runs) != len(by_index):
        raise HarnessError(
            f"unpaired run records: {len(lhs_runs)} {lhs_name} vs "
            f"{len(by_index)} {rhs_name}"
        )
    out: List[Discrepancy] = []
    seen_lhs: set = set()
    for lhs in lhs_runs:
        if lhs.input_index in seen_lhs:
            raise HarnessError(
                f"duplicate {lhs_name} record for input {lhs.input_index} of "
                f"{lhs.test_id!r}"
            )
        seen_lhs.add(lhs.input_index)
        rhs = by_index.get(lhs.input_index)
        if rhs is None:
            raise HarnessError(
                f"no {rhs_name} record for input {lhs.input_index} of {lhs.test_id!r}"
            )
        d = Discrepancy.from_records(lhs, rhs, stacks=stacks)
        if d is not None:
            out.append(d)
    return out


def _execute_batch(device, compiled, rows, *, vectorize: bool, memo=None):
    """``device.execute_batch`` with a scalar fallback for duck-typed
    device wrappers (trap injectors, ablation shims) that only implement
    ``execute``.

    ``memo`` (a per-sweep list) dedups physical execution across opt
    settings whose post-pass kernels came out identical — common for
    small kernels, where O1/O2/O3 converge to the same IR.  Execution is
    a pure function of (kernel, exec options, input rows), so reusing
    the raw results is bit-exact; rows are matched by element *identity*
    (NaN-safe, and only true for the same sweep's input tuples).  The
    memo is never offered for wrapper devices without ``execute_batch``
    — per-opt trap injectors are exactly the stubs whose behavior is
    not a pure function of the compiled kernel.
    """
    batch = getattr(device, "execute_batch", None)
    if batch is None:
        out = []
        for row in rows:
            try:
                out.append(device.execute(compiled, row))
            except TrapError:
                out.append(None)
        return out
    if memo is not None:
        for prev_ck, prev_rows, prev_out in memo:
            if (
                prev_ck.exec_options == compiled.exec_options
                and len(prev_rows) == len(rows)
                and all(a is b for a, b in zip(prev_rows, rows))
                and prev_ck.kernel == compiled.kernel
            ):
                return prev_out
    out = batch(compiled, rows, vectorize=vectorize)
    if memo is not None:
        memo.append((compiled, rows, out))
    return out


class DifferentialRunner:
    """Owns one device + compiler per stack and runs tests through both.

    ``stacks`` selects the (lhs, rhs) pair from the registry; the
    ``nvidia``/``amd`` parameters override the left/right *device*
    (their names predate the registry — for the default pair they are
    exactly the simulated V100/MI250X).

    ``record_flags=True`` attaches the IEEE exception snapshot to each run
    record (slower; used by the analysis examples, not by campaigns).

    ``lhs_executions`` / ``rhs_executions`` count device executions
    attempted (including ones that trapped); the campaign engine uses
    them to prove the cross-arm cache really avoided the left side.
    """

    def __init__(
        self,
        nvidia: Optional[Device] = None,
        amd: Optional[Device] = None,
        record_flags: bool = False,
        *,
        stacks: Tuple[str, str] = DEFAULT_STACK_PAIR,
        vectorize: bool = True,
    ) -> None:
        lhs_stack = get_stack(stacks[0])
        rhs_stack = get_stack(stacks[1])
        self.stacks: Tuple[str, str] = (lhs_stack.name, rhs_stack.name)
        self.lhs_device = nvidia or lhs_stack.device()
        self.rhs_device = amd or rhs_stack.device()
        self.lhs_compiler: Compiler = lhs_stack.compiler()
        self.rhs_compiler: Compiler = rhs_stack.compiler()
        self.record_flags = record_flags
        #: route each (test, opt)'s input grid through the batched device
        #: API (bit-identical per row; ``False`` forces the per-row
        #: scalar reference path).
        self.vectorize = vectorize
        self.lhs_executions = 0
        self.rhs_executions = 0

    # -- pre-registry attribute aliases (lhs/rhs slots) ---------------------
    @property
    def nvidia(self) -> Device:
        return self.lhs_device

    @nvidia.setter
    def nvidia(self, device: Device) -> None:
        self.lhs_device = device

    @property
    def amd(self) -> Device:
        return self.rhs_device

    @amd.setter
    def amd(self, device: Device) -> None:
        self.rhs_device = device

    @property
    def nvcc(self) -> Compiler:
        return self.lhs_compiler

    @nvcc.setter
    def nvcc(self, compiler: Compiler) -> None:
        self.lhs_compiler = compiler

    @property
    def hipcc(self) -> Compiler:
        return self.rhs_compiler

    @hipcc.setter
    def hipcc(self, compiler: Compiler) -> None:
        self.rhs_compiler = compiler

    @property
    def nvcc_executions(self) -> int:
        return self.lhs_executions

    @nvcc_executions.setter
    def nvcc_executions(self, n: int) -> None:
        self.lhs_executions = n

    @property
    def hipcc_executions(self) -> int:
        return self.rhs_executions

    @hipcc_executions.setter
    def hipcc_executions(self, n: int) -> None:
        self.rhs_executions = n

    # ------------------------------------------------------------------ api
    def compile_pair(
        self, test: TestCase, opt: OptSetting
    ) -> Tuple[CompiledKernel, CompiledKernel]:
        return (
            self.lhs_compiler.compile(test.program, opt),
            self.rhs_compiler.compile(test.program, opt),
        )

    def run_pair(self, test: TestCase, opt: OptSetting) -> PairResult:
        """Compile once per compiler, run every input on both devices."""
        ck_lhs, ck_rhs = self.compile_pair(test, opt)
        return self._run_inputs(test, opt, ck_lhs, ck_rhs)

    def run_sweep(
        self,
        test: TestCase,
        opts: Sequence[OptSetting],
        *,
        lhs_cache: Optional["BoundRunCache"] = None,
        populate_lhs_cache: Optional["BoundRunCache"] = None,
        artifacts: Optional["ArtifactCache"] = None,
        nvcc_cache: Optional["BoundRunCache"] = None,
        populate_cache: Optional["BoundRunCache"] = None,
    ) -> Dict[str, PairResult]:
        """One test across every optimization setting, keyed by opt label.

        Each compiler's front end runs once for the whole sweep (see
        :meth:`Compiler.compile_sweep`); with ``artifacts`` (an
        :class:`~repro.exec.artifacts.ArtifactCache`) both compiles are
        served content-keyed, so an identical kernel compiled earlier —
        the HIPIFY twin's CUDA side, a replayed fuzz ancestor — never
        re-enters the pass pipeline.  When ``lhs_cache`` (a
        content-keyed store view) holds this test's entry at an opt
        setting, the left side is replayed from the cached outcomes
        instead of executing; ``populate_lhs_cache`` stores this sweep's
        left-stack outcomes for a later request to reuse.

        .. deprecated:: PR 9
           ``nvcc_cache`` / ``populate_cache`` are the pre-registry
           spellings of ``lhs_cache`` / ``populate_lhs_cache`` (they
           always cached the *left* stack, whatever it was); they remain
           as keyword aliases.
        """
        if lhs_cache is None:
            lhs_cache = nvcc_cache
        if populate_lhs_cache is None:
            populate_lhs_cache = populate_cache
        if artifacts is not None:
            lhs_kernels = artifacts.compile_sweep(
                self.lhs_compiler, test.program, opts
            )
            rhs_kernels = artifacts.compile_sweep(
                self.rhs_compiler, test.program, opts
            )
        else:
            lhs_kernels = self.lhs_compiler.compile_sweep(test.program, opts)
            rhs_kernels = self.rhs_compiler.compile_sweep(test.program, opts)
        out: Dict[str, PairResult] = {}
        # Per-sweep execution memos (one per side): opt settings whose
        # pass pipelines produced identical kernels execute once and
        # share raw results.  Counters are charged per opt regardless —
        # they count the sweep's logical runs, byte-identical to the
        # undeduped path.  Only the batched lane dedups; vectorize=False
        # is the untouched per-row reference.
        lhs_memo = [] if self.vectorize else None
        rhs_memo = [] if self.vectorize else None
        for opt in opts:
            out[opt.label] = self._run_inputs(
                test,
                opt,
                lhs_kernels[opt.label],
                rhs_kernels[opt.label],
                lhs_cache=lhs_cache,
                populate_lhs_cache=populate_lhs_cache,
                lhs_memo=lhs_memo,
                rhs_memo=rhs_memo,
            )
        return out

    def run_single(
        self, test: TestCase, opt: OptSetting, input_index: int, *, trace: bool = False
    ):
        """One input on both stacks; returns the raw ExecutionResults.

        Used by the case-study tooling, which needs traces.
        """
        ck_lhs, ck_rhs = self.compile_pair(test, opt)
        vec = test.inputs[input_index]
        rl = self.lhs_device.execute(ck_lhs, vec.values, trace=trace)
        rr = self.rhs_device.execute(ck_rhs, vec.values, trace=trace)
        return rl, rr, ck_lhs, ck_rhs

    # ------------------------------------------------------------- internals
    def _run_inputs(
        self,
        test: TestCase,
        opt: OptSetting,
        ck_lhs: CompiledKernel,
        ck_rhs: CompiledKernel,
        *,
        lhs_cache: Optional["BoundRunCache"] = None,
        populate_lhs_cache: Optional["BoundRunCache"] = None,
        lhs_memo=None,
        rhs_memo=None,
    ) -> PairResult:
        cached = (
            lhs_cache.get(test.test_id, opt.label) if lhs_cache is not None else None
        )
        if cached is not None and len(cached) != len(test.inputs):
            raise HarnessError(
                f"cached {self.stacks[0]} outcomes for {test.test_id!r} at "
                f"{opt.label} cover {len(cached)} inputs, test has {len(test.inputs)}"
            )
        if cached is not None:
            lhs_cache.hits += len(test.inputs)
            lhs_outcomes: List[Optional[RunRecord]] = list(cached)
        else:
            self.lhs_executions += len(test.inputs)
            lhs_results = _execute_batch(
                self.lhs_device,
                ck_lhs,
                [vec.values for vec in test.inputs],
                vectorize=self.vectorize,
                memo=lhs_memo,
            )
            lhs_outcomes = [
                None
                if rl is None
                else self._record(test, idx, opt, self.stacks[0], rl)
                for idx, rl in enumerate(lhs_results)
            ]
        # A ``None`` outcome means the left side trapped (step budget):
        # the test is dropped on both stacks, like a timed-out job in the
        # real campaign, and the right side is never executed for that
        # input.
        skipped = [idx for idx, rec in enumerate(lhs_outcomes) if rec is None]
        live = [idx for idx, rec in enumerate(lhs_outcomes) if rec is not None]
        self.rhs_executions += len(live)
        rhs_results = _execute_batch(
            self.rhs_device,
            ck_rhs,
            [test.inputs[idx].values for idx in live],
            vectorize=self.vectorize,
            memo=rhs_memo,
        )
        lhs_runs: List[RunRecord] = []
        rhs_runs: List[RunRecord] = []
        for idx, rr in zip(live, rhs_results):
            if rr is None:
                skipped.append(idx)
                continue
            lhs_runs.append(lhs_outcomes[idx])
            rhs_runs.append(self._record(test, idx, opt, self.stacks[1], rr))
        skipped.sort()
        if populate_lhs_cache is not None:
            populate_lhs_cache.put(test.test_id, opt.label, lhs_outcomes)
        return PairResult(
            lhs_runs,
            rhs_runs,
            pair_discrepancies(lhs_runs, rhs_runs, stacks=self.stacks),
            skipped,
            stacks=self.stacks,
        )

    def _record(
        self, test: TestCase, idx: int, opt: OptSetting, compiler: str, result
    ) -> RunRecord:
        return RunRecord(
            test_id=test.test_id,
            input_index=idx,
            opt_label=opt.label,
            compiler=compiler,
            printed=result.printed,
            value=result.value,
            flags=dict(result.flags) if self.record_flags else None,
        )
