"""Single-test differential execution.

:meth:`DifferentialRunner.run_sweep` is the execution service's unit of
work: one test compiled once per compiler (front end shared across the
optimization settings) and executed at every setting.  The ``nvcc_cache``
/ ``populate_cache`` arguments take a cache *view* — any object with
``get(test_id, opt_label)``, ``put(test_id, opt_label, outcomes)`` and a
``hits`` counter, in practice a content-keyed
:class:`~repro.exec.store.BoundRunCache` — letting a later request replay
an earlier one's left-stack run outcomes verbatim: the ``fp64_hipify``
arm, every fuzz mutant's HIPIFY twin, and every extra stack pair sharing
the same left stack run the *same* kernels through that compiler, so
their records are bit-identical and never need re-executing.

The runner is stack-pair generic: ``stacks=("nvcc", "cpu")`` builds the
left/right compiler and device models from the :mod:`repro.stacks`
registry.  The default pair is the paper's (nvcc, hipcc), and the
pre-registry attribute spellings (``runner.nvcc``, ``runner.amd``,
``runner.nvcc_executions``, …) remain as aliases for the left/right
slots so existing ablation and analysis code keeps working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.compilers.compiler import CompiledKernel, Compiler
from repro.compilers.options import OptSetting
from repro.devices.device import Device
from repro.errors import HarnessError, TrapError
from repro.harness.differential import Discrepancy
from repro.harness.outcomes import RunRecord
from repro.stacks import DEFAULT_STACK_PAIR, get_stack
from repro.varity.testcase import TestCase

if TYPE_CHECKING:  # pragma: no cover - runtime import would be circular
    from repro.exec.store import BoundRunCache

__all__ = ["DifferentialRunner", "PairResult", "pair_discrepancies"]


@dataclass
class PairResult:
    """Both stacks' runs for one (test, opt) across all inputs.

    ``stacks`` names the (lhs, rhs) pair the runs came from; the
    ``nvcc_runs``/``hipcc_runs`` field spellings are the pre-registry
    names for the left and right slots and are kept because every
    consumer (exec accounting, campaign folding, oracle relations)
    reads them — ``lhs_runs``/``rhs_runs`` are the neutral aliases.
    """

    nvcc_runs: List[RunRecord]
    hipcc_runs: List[RunRecord]
    discrepancies: List[Discrepancy]
    skipped_inputs: List[int]
    stacks: Tuple[str, str] = field(default=DEFAULT_STACK_PAIR)

    @property
    def lhs_runs(self) -> List[RunRecord]:
        return self.nvcc_runs

    @property
    def rhs_runs(self) -> List[RunRecord]:
        return self.hipcc_runs


def pair_discrepancies(
    lhs_runs: Sequence[RunRecord],
    rhs_runs: Sequence[RunRecord],
    stacks: Tuple[str, str] = DEFAULT_STACK_PAIR,
) -> List[Discrepancy]:
    """Pair the two stacks' records by ``input_index``; keep discrepancies.

    Records are matched explicitly (not positionally), so a harness bug
    that dropped one side's record for an input surfaces as a
    :class:`HarnessError` instead of silently misattributing every
    discrepancy after the gap.
    """
    lhs_name, rhs_name = stacks
    by_index: Dict[int, RunRecord] = {}
    for r in rhs_runs:
        if r.input_index in by_index:
            raise HarnessError(
                f"duplicate {rhs_name} record for input {r.input_index} of {r.test_id!r}"
            )
        by_index[r.input_index] = r
    if len(lhs_runs) != len(by_index):
        raise HarnessError(
            f"unpaired run records: {len(lhs_runs)} {lhs_name} vs "
            f"{len(by_index)} {rhs_name}"
        )
    out: List[Discrepancy] = []
    seen_lhs: set = set()
    for lhs in lhs_runs:
        if lhs.input_index in seen_lhs:
            raise HarnessError(
                f"duplicate {lhs_name} record for input {lhs.input_index} of "
                f"{lhs.test_id!r}"
            )
        seen_lhs.add(lhs.input_index)
        rhs = by_index.get(lhs.input_index)
        if rhs is None:
            raise HarnessError(
                f"no {rhs_name} record for input {lhs.input_index} of {lhs.test_id!r}"
            )
        d = Discrepancy.from_records(lhs, rhs, stacks=stacks)
        if d is not None:
            out.append(d)
    return out


class DifferentialRunner:
    """Owns one device + compiler per stack and runs tests through both.

    ``stacks`` selects the (lhs, rhs) pair from the registry; the
    ``nvidia``/``amd`` parameters override the left/right *device*
    (their names predate the registry — for the default pair they are
    exactly the simulated V100/MI250X).

    ``record_flags=True`` attaches the IEEE exception snapshot to each run
    record (slower; used by the analysis examples, not by campaigns).

    ``lhs_executions`` / ``rhs_executions`` count device executions
    attempted (including ones that trapped); the campaign engine uses
    them to prove the cross-arm cache really avoided the left side.
    """

    def __init__(
        self,
        nvidia: Optional[Device] = None,
        amd: Optional[Device] = None,
        record_flags: bool = False,
        *,
        stacks: Tuple[str, str] = DEFAULT_STACK_PAIR,
    ) -> None:
        lhs_stack = get_stack(stacks[0])
        rhs_stack = get_stack(stacks[1])
        self.stacks: Tuple[str, str] = (lhs_stack.name, rhs_stack.name)
        self.lhs_device = nvidia or lhs_stack.device()
        self.rhs_device = amd or rhs_stack.device()
        self.lhs_compiler: Compiler = lhs_stack.compiler()
        self.rhs_compiler: Compiler = rhs_stack.compiler()
        self.record_flags = record_flags
        self.lhs_executions = 0
        self.rhs_executions = 0

    # -- pre-registry attribute aliases (lhs/rhs slots) ---------------------
    @property
    def nvidia(self) -> Device:
        return self.lhs_device

    @nvidia.setter
    def nvidia(self, device: Device) -> None:
        self.lhs_device = device

    @property
    def amd(self) -> Device:
        return self.rhs_device

    @amd.setter
    def amd(self, device: Device) -> None:
        self.rhs_device = device

    @property
    def nvcc(self) -> Compiler:
        return self.lhs_compiler

    @nvcc.setter
    def nvcc(self, compiler: Compiler) -> None:
        self.lhs_compiler = compiler

    @property
    def hipcc(self) -> Compiler:
        return self.rhs_compiler

    @hipcc.setter
    def hipcc(self, compiler: Compiler) -> None:
        self.rhs_compiler = compiler

    @property
    def nvcc_executions(self) -> int:
        return self.lhs_executions

    @nvcc_executions.setter
    def nvcc_executions(self, n: int) -> None:
        self.lhs_executions = n

    @property
    def hipcc_executions(self) -> int:
        return self.rhs_executions

    @hipcc_executions.setter
    def hipcc_executions(self, n: int) -> None:
        self.rhs_executions = n

    # ------------------------------------------------------------------ api
    def compile_pair(
        self, test: TestCase, opt: OptSetting
    ) -> Tuple[CompiledKernel, CompiledKernel]:
        return (
            self.lhs_compiler.compile(test.program, opt),
            self.rhs_compiler.compile(test.program, opt),
        )

    def run_pair(self, test: TestCase, opt: OptSetting) -> PairResult:
        """Compile once per compiler, run every input on both devices."""
        ck_lhs, ck_rhs = self.compile_pair(test, opt)
        return self._run_inputs(test, opt, ck_lhs, ck_rhs)

    def run_sweep(
        self,
        test: TestCase,
        opts: Sequence[OptSetting],
        *,
        nvcc_cache: Optional["BoundRunCache"] = None,
        populate_cache: Optional["BoundRunCache"] = None,
    ) -> Dict[str, PairResult]:
        """One test across every optimization setting, keyed by opt label.

        Each compiler's front end runs once for the whole sweep (see
        :meth:`Compiler.compile_sweep`).  When ``nvcc_cache`` (a
        content-keyed store view; the parameter name predates the
        registry — it caches the *left* stack) holds this test's entry
        at an opt setting, the left side is replayed from the cached
        outcomes instead of executing; ``populate_cache`` stores this
        sweep's left-stack outcomes for a later request to reuse.
        """
        lhs_kernels = self.lhs_compiler.compile_sweep(test.program, opts)
        rhs_kernels = self.rhs_compiler.compile_sweep(test.program, opts)
        out: Dict[str, PairResult] = {}
        for opt in opts:
            out[opt.label] = self._run_inputs(
                test,
                opt,
                lhs_kernels[opt.label],
                rhs_kernels[opt.label],
                nvcc_cache=nvcc_cache,
                populate_cache=populate_cache,
            )
        return out

    def run_single(
        self, test: TestCase, opt: OptSetting, input_index: int, *, trace: bool = False
    ):
        """One input on both stacks; returns the raw ExecutionResults.

        Used by the case-study tooling, which needs traces.
        """
        ck_lhs, ck_rhs = self.compile_pair(test, opt)
        vec = test.inputs[input_index]
        rl = self.lhs_device.execute(ck_lhs, vec.values, trace=trace)
        rr = self.rhs_device.execute(ck_rhs, vec.values, trace=trace)
        return rl, rr, ck_lhs, ck_rhs

    # ------------------------------------------------------------- internals
    def _run_inputs(
        self,
        test: TestCase,
        opt: OptSetting,
        ck_lhs: CompiledKernel,
        ck_rhs: CompiledKernel,
        *,
        nvcc_cache: Optional["BoundRunCache"] = None,
        populate_cache: Optional["BoundRunCache"] = None,
    ) -> PairResult:
        cached = (
            nvcc_cache.get(test.test_id, opt.label) if nvcc_cache is not None else None
        )
        if cached is not None and len(cached) != len(test.inputs):
            raise HarnessError(
                f"cached {self.stacks[0]} outcomes for {test.test_id!r} at "
                f"{opt.label} cover {len(cached)} inputs, test has {len(test.inputs)}"
            )
        lhs_outcomes: List[Optional[RunRecord]] = []
        lhs_runs: List[RunRecord] = []
        rhs_runs: List[RunRecord] = []
        skipped: List[int] = []
        for idx, vec in enumerate(test.inputs):
            if cached is not None:
                nvcc_cache.hits += 1
                rec = cached[idx]
            else:
                self.lhs_executions += 1
                try:
                    rl = self.lhs_device.execute(ck_lhs, vec.values)
                except TrapError:
                    rec = None
                else:
                    rec = self._record(test, idx, opt, self.stacks[0], rl)
            lhs_outcomes.append(rec)
            if rec is None:
                # The left side trapped (step budget): the test is dropped
                # on both stacks, like a timed-out job in the real
                # campaign, and the right side is never executed.
                skipped.append(idx)
                continue
            self.rhs_executions += 1
            try:
                rr = self.rhs_device.execute(ck_rhs, vec.values)
            except TrapError:
                skipped.append(idx)
                continue
            lhs_runs.append(rec)
            rhs_runs.append(self._record(test, idx, opt, self.stacks[1], rr))
        if populate_cache is not None:
            populate_cache.put(test.test_id, opt.label, lhs_outcomes)
        return PairResult(
            lhs_runs,
            rhs_runs,
            pair_discrepancies(lhs_runs, rhs_runs, stacks=self.stacks),
            skipped,
            stacks=self.stacks,
        )

    def _record(
        self, test: TestCase, idx: int, opt: OptSetting, compiler: str, result
    ) -> RunRecord:
        return RunRecord(
            test_id=test.test_id,
            input_index=idx,
            opt_label=opt.label,
            compiler=compiler,
            printed=result.printed,
            value=result.value,
            flags=dict(result.flags) if self.record_flags else None,
        )
