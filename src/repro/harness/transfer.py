"""Between-platform comparison workflow (paper Fig. 3).

GPUs from different vendors live in different clusters, so the paper runs
each campaign in two sessions: System 1 (NVIDIA) executes all tests and
saves JSON metadata; System 2 (AMD) loads the metadata, rebuilds the same
tests and inputs, executes them, and saves the merged results, which the
analysis step consumes.  These functions reproduce that exact flow —
including the file on disk — against the simulated devices.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, Tuple, Union

from repro.compilers.compiler import Compiler
from repro.compilers.hipcc import HipccCompiler
from repro.compilers.nvcc import NvccCompiler
from repro.compilers.options import OptSetting, PAPER_OPT_SETTINGS
from repro.devices.amd import amd_mi250x
from repro.devices.device import Device
from repro.devices.nvidia import nvidia_v100
from repro.errors import MetadataError, TrapError
from repro.fp.classify import classify_value
from repro.harness.differential import Discrepancy, classify_pair
from repro.harness.metadata import CampaignMetadata
from repro.varity.corpus import Corpus
from repro.varity.testcase import TestCase

__all__ = ["run_system1", "run_system2", "collect_discrepancies", "between_platform_campaign"]

SYSTEM1 = "system1-nvidia"
SYSTEM2 = "system2-amd"


def _execute_into(
    meta: CampaignMetadata,
    system: str,
    tests: Sequence[TestCase],
    device: Device,
    compiler: Compiler,
    opts: Sequence[OptSetting],
) -> None:
    store = meta.store_for(system)
    for opt in opts:
        for test in tests:
            compiled = compiler.compile(test.program, opt)
            for idx, vec in enumerate(test.inputs):
                try:
                    result = device.execute(compiled, vec.values)
                except TrapError:
                    continue  # timed-out job: no result row
                store.record_printed(opt.label, test.test_id, idx, result.printed)


def run_system1(
    corpus: Corpus,
    metadata_path: Union[str, Path],
    opts: Sequence[OptSetting] = PAPER_OPT_SETTINGS,
) -> CampaignMetadata:
    """Session on the NVIDIA cluster: run everything, save metadata JSON."""
    meta = CampaignMetadata.from_corpus(corpus, [o.label for o in opts])
    device = nvidia_v100()
    compiler = NvccCompiler()
    meta.register_system(
        SYSTEM1,
        compiler=compiler.name,
        device=device.spec.describe(),
        flags=[" ".join(o.flags_for(compiler.name)) for o in opts],
    )
    _execute_into(meta, SYSTEM1, list(corpus), device, compiler, opts)
    meta.save(metadata_path)
    return meta


def run_system2(
    metadata_path_in: Union[str, Path],
    metadata_path_out: Union[str, Path],
    opts: Sequence[OptSetting] = PAPER_OPT_SETTINGS,
) -> CampaignMetadata:
    """Session on the AMD cluster: load metadata, rerun the same tests,
    save the merged file."""
    meta = CampaignMetadata.load(metadata_path_in)
    labels = tuple(o.label for o in opts)
    if labels != meta.opt_labels:
        raise MetadataError(
            f"optimization grids differ: metadata {meta.opt_labels}, requested {labels}"
        )
    tests = meta.rebuild_tests()
    device = amd_mi250x()
    compiler = HipccCompiler()
    meta.register_system(
        SYSTEM2,
        compiler=compiler.name,
        device=device.spec.describe(),
        flags=[" ".join(o.flags_for(compiler.name)) for o in opts],
    )
    _execute_into(meta, SYSTEM2, tests, device, compiler, opts)
    meta.save(metadata_path_out)
    return meta


def collect_discrepancies(meta: CampaignMetadata) -> List[Discrepancy]:
    """Analysis step over a merged metadata file."""
    if SYSTEM1 not in meta.results or SYSTEM2 not in meta.results:
        raise MetadataError("metadata does not contain both systems' results")
    s1 = meta.store_for(SYSTEM1)
    s2 = meta.store_for(SYSTEM2)
    out: List[Discrepancy] = []
    for (opt, test_id, idx), printed1 in s1:
        printed2 = s2.get(opt, test_id, idx)
        if printed2 is None:
            continue
        v1, v2 = float(printed1), float(printed2)
        dclass = classify_pair(v1, v2)
        if dclass is None:
            continue
        out.append(
            Discrepancy(
                test_id=test_id,
                input_index=idx,
                opt_label=opt,
                dclass=dclass,
                nvcc_printed=printed1,
                hipcc_printed=printed2,
                nvcc_outcome=classify_value(v1),
                hipcc_outcome=classify_value(v2),
            )
        )
    return out


def between_platform_campaign(
    corpus: Corpus,
    workdir: Union[str, Path],
    opts: Sequence[OptSetting] = PAPER_OPT_SETTINGS,
) -> Tuple[CampaignMetadata, List[Discrepancy]]:
    """The full Fig. 3 round trip through files on disk."""
    workdir = Path(workdir)
    path1 = workdir / "metadata.system1.json"
    path2 = workdir / "metadata.merged.json"
    run_system1(corpus, path1, opts)
    meta = run_system2(path1, path2, opts)
    return meta, collect_discrepancies(meta)
