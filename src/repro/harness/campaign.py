"""Campaign orchestration — the §IV-B experiment grid.

A campaign has up to five *arms* — the paper's three columns plus the
reduced-precision extension pair:

* ``fp64``        — native CUDA vs native HIP, double precision;
* ``fp64_hipify`` — the same FP64 programs, HIP side produced by HIPIFY;
* ``fp32``        — native CUDA vs native HIP, single precision;
* ``fp16``        — native CUDA vs native HIP, IEEE binary16 half
  precision (``repro-campaign --include-fp16``; off by default because
  the paper's grid stops at FP32);
* ``fp16_hipify`` — the same FP16 programs through HIPIFY, fused with
  ``fp16`` exactly like the FP64 pair so its CUDA half replays from the
  run store.  Gated on ``include_hipify`` like ``fp64_hipify``, so
  ``--no-hipify`` skips both HIPIFY arms.

Each arm runs ``programs × inputs`` tests at each of the five optimization
settings on both platforms.

**Stack-pair arms.**  With more than the legacy two stacks selected
(``repro-campaign --stacks nvcc,hipcc,cpu``), every precision lane
expands into one arm per 2-combination of the selected stacks: the
legacy pair keeps its un-suffixed arm names (and its HIPIFY twins, which
only make sense for the nvcc→hipcc conversion), while every other pair
gets a ``lane@lhs-rhs`` arm (``fp64@nvcc-cpu``, ``fp32@hipcc-cpu``, …).
All pairs of one lane share the *same* corpus — :meth:`CampaignConfig
.arm_seed` keys on the lane, not the pair — and execute fused in one
plan group, so every nvcc-lhs pair replays the lane's nvcc runs from the
chunk's content-keyed store exactly like the HIPIFY twin does.

**Run accounting.**  Runs are counted *per optimization setting per
compiler* (:attr:`ArmResult.runs_by_opt`), after skips: a test whose
execution traps at one setting but not another contributes different run
counts to the two settings, and ``total_runs`` is the exact sum
``2 × Σ_opt runs_by_opt[opt]`` — never a single setting's count
extrapolated across the grid.  Every reported ``discrepancy_percent`` is
a ratio over that exact total, which is what makes the Table IV–X
percentages trustworthy.  ``runs_per_option_per_compiler`` survives as
the *nominal* per-setting count (the maximum across settings) for the
paper-shaped summary rows.

**Cross-arm reuse invariant.**  The ``fp64_hipify`` arm tests the *same*
FP64 programs and inputs as the ``fp64`` arm; HIPIFY conversion only
changes how the HIP side is compiled (``Program.via_hipify`` is consulted
by the hipcc model alone).  The CUDA half of the hipify arm is therefore
bit-identical to the fp64 arm's, and the execution service replays it
from the content-keyed :class:`~repro.exec.store.RunStore` — native test
and twin share one content id, and cached trap outcomes replay too, so
skips replay exactly.  The two arms execute *fused*: each plan step's
chunk interleaves the native request and its hipified twin back to back,
which halves the nvcc executions of a three-arm campaign whether serial
or parallel.  :attr:`ArmResult.nvcc_executions` /
:attr:`ArmResult.nvcc_cache_hits` expose the proof.

**Execution plan & checkpoints.**  ``run_campaign`` expands the config
into deterministic :class:`PlanStep` slices (chunking depends only on the
program count, never on worker count), turns each pending step into one
chunk of :class:`~repro.exec.units.SweepRequest`\\ s, and executes the
chunks through :class:`~repro.exec.service.ExecutionService` — serially
or on a process pool whose workers *regenerate* their tests from the
campaign seed (deterministic generation ⇒ no IR pickling).  Chunk results
come back in plan order at any worker count, and each completed step
streams into a JSONL checkpoint.  ``resume=True`` reloads completed steps
from the checkpoint — after validating the config fingerprint — and only
executes the remainder, so an interrupted paper-scale grid continues
instead of restarting.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING, Union

from repro.compilers.options import OptSetting, PAPER_OPT_SETTINGS
from repro.errors import HarnessError
from repro.exec import (
    CachePolicy,
    CorpusTestSpec,
    ExecutionService,
    NO_CACHE,
    SweepOutcome,
    SweepRequest,
    resolve_backend,
)
from repro.exec.units import RunnerSpec
from repro.fp.types import FPType
from repro.harness.differential import Discrepancy
from repro.harness.runner import PairResult
from repro.stacks import DEFAULT_STACK_PAIR, pair_name, stack_pairs
from repro.telemetry.spans import get_tracer
from repro.utils.checkpoint import JsonlCheckpoint
from repro.utils.rng import derive_seed
from repro.varity.config import GeneratorConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (oracle uses harness)
    from repro.oracle.relations import RelationViolation

__all__ = [
    "CampaignConfig",
    "ArmResult",
    "CampaignResult",
    "PlanStep",
    "build_plan",
    "run_campaign",
    "ARM_NAMES",
]

ARM_NAMES = ("fp64", "fp64_hipify", "fp32", "fp16", "fp16_hipify", "oracle")

#: Campaign precision of each arm lane (hipify twins share their native
#: arm's; the oracle arm runs FP32, where the fast-math/FTZ relations have
#: teeth).  Stack-pair arms (``fp64@nvcc-cpu``) resolve through their lane
#: prefix.
_ARM_FPTYPES = {
    "fp64": FPType.FP64,
    "fp64_hipify": FPType.FP64,
    "fp32": FPType.FP32,
    "fp16": FPType.FP16,
    "fp16_hipify": FPType.FP16,
    "oracle": FPType.FP32,
}

#: The precision lanes with HIPIFY twins (the twin models nvcc→hipcc
#: source conversion, so it exists only on the legacy stack pair).
_HIPIFY_LANES = ("fp64", "fp16")


def _arm_lane(arm: str) -> str:
    """Lane of an arm name: ``fp64@nvcc-cpu`` → ``fp64``; legacy names map
    to themselves (``fp64_hipify`` keeps its suffix — same fptype row)."""
    return arm.partition("@")[0]


def _arm_pair(arm: str) -> Tuple[str, str]:
    """Stack pair of an arm name; un-suffixed arms are the legacy pair."""
    _, sep, spec = arm.partition("@")
    if not sep:
        return DEFAULT_STACK_PAIR
    lhs, _, rhs = spec.partition("-")
    return (lhs, rhs)


@dataclass(frozen=True)
class CampaignConfig:
    """Size and shape of one campaign."""

    seed: int = 2024
    n_programs_fp64: int = 300
    n_programs_fp32: int = 240
    n_programs_fp16: int = 200
    inputs_per_program: int = 7
    include_hipify: bool = True
    include_fp32: bool = True
    #: The reduced-precision extension pair (fp16 + fp16_hipify); not part
    #: of the paper's grid, so off unless requested.
    include_fp16: bool = False
    #: The metamorphic-oracle arm (`repro-campaign --oracle`): single-stack
    #: relation checking over its own FP32 corpus; violations land on
    #: :attr:`ArmResult.oracle_violations`, not on the discrepancy lists.
    include_oracle: bool = False
    n_programs_oracle: int = 60
    oracle_ulp_bound: int = 4
    #: The compiler stacks the campaign sweeps; every 2-combination (in
    #: registry order) becomes one arm per precision lane.  The default
    #: is the paper's nvcc/hipcc pair, whose arms keep their legacy names.
    stacks: Tuple[str, ...] = DEFAULT_STACK_PAIR
    opts: Tuple[OptSetting, ...] = PAPER_OPT_SETTINGS
    workers: int = 0  # 0/1 = serial
    #: Execution backend: None keeps the worker-count rule (serial or
    #: pool), "serial"/"pool" force one, "bridge" routes chunks through
    #: a `repro-bridge` server at :attr:`bridge_url`.  Like ``workers``,
    #: pure scheduling — excluded from the fingerprint.
    backend: Optional[str] = None
    bridge_url: Optional[str] = None
    #: Replay the fp64 arm's nvcc runs for the fp64_hipify arm instead of
    #: re-executing them (see the module docstring's reuse invariant).
    #: Disabling this runs every arm standalone, like the seed engine —
    #: kept for benchmarking and equivalence testing.
    reuse_nvcc_runs: bool = True

    # ------------------------------------------------------------- presets
    @classmethod
    def tiny(cls, seed: int = 2024) -> "CampaignConfig":
        """Smoke-test scale (seconds)."""
        return cls(
            seed=seed,
            n_programs_fp64=24,
            n_programs_fp32=20,
            n_programs_fp16=16,
            inputs_per_program=3,
        )

    @classmethod
    def default(cls, seed: int = 2024, workers: int = 0) -> "CampaignConfig":
        """Bench scale: ≈1/12 of the paper's program counts."""
        return cls(seed=seed, workers=workers)

    @classmethod
    def paper_scale(cls, seed: int = 2024, workers: Optional[int] = None) -> "CampaignConfig":
        """The full §IV-B grid: 3,540 FP64 + 2,840 FP32 programs.

        The paper's inputs-per-program ratios are 6.99 (FP64: 24,750 runs
        per option per compiler) and 5.55 (FP32: 15,760); with a uniform
        7 inputs per program this preset yields 694,400 runs vs the
        paper's 652,600 — within 7%, same program counts."""
        if workers is None:
            workers = max(1, (os.cpu_count() or 2) - 1)
        return cls(
            seed=seed,
            n_programs_fp64=3540,
            n_programs_fp32=2840,
            inputs_per_program=7,
            workers=workers,
        )

    def generator_config(self, fptype: FPType) -> GeneratorConfig:
        cfg = GeneratorConfig(fptype=fptype, inputs_per_program=self.inputs_per_program)
        cfg.validate()
        return cfg

    def stack_pair_list(self) -> List[Tuple[str, str]]:
        """The stack pairs this campaign sweeps, in registry order."""
        return list(stack_pairs(self.stacks))

    def lane_arms(self, lane: str) -> List[str]:
        """All arms of one precision lane, legacy pair (and its HIPIFY
        twin) first, then one ``lane@lhs-rhs`` arm per remaining pair."""
        pairs = self.stack_pair_list()
        arms: List[str] = []
        if DEFAULT_STACK_PAIR in pairs:
            arms.append(lane)
            if self.include_hipify and lane in _HIPIFY_LANES:
                arms.append(f"{lane}_hipify")
        for pair in pairs:
            if pair != DEFAULT_STACK_PAIR:
                arms.append(f"{lane}@{pair_name(pair)}")
        return arms

    def arm_names(self) -> List[str]:
        arms = self.lane_arms("fp64")
        if self.include_fp32:
            arms.extend(self.lane_arms("fp32"))
        if self.include_fp16:
            arms.extend(self.lane_arms("fp16"))
        if self.include_oracle:
            arms.append("oracle")
        return arms

    def arm_programs(self, arm: str) -> int:
        lane = _arm_lane(arm)
        if lane in ("fp64", "fp64_hipify"):
            return self.n_programs_fp64
        if lane == "fp32":
            return self.n_programs_fp32
        if lane in ("fp16", "fp16_hipify"):
            return self.n_programs_fp16
        if lane == "oracle":
            return self.n_programs_oracle
        raise HarnessError(f"unknown arm {arm!r}")

    def arm_fptype(self, arm: str) -> FPType:
        try:
            return _ARM_FPTYPES[_arm_lane(arm)]
        except KeyError:
            raise HarnessError(f"unknown arm {arm!r}") from None

    def arm_seed(self, arm: str) -> int:
        # A native arm, its hipify twin, and every stack-pair arm of the
        # lane share programs AND inputs (the paper converts the same
        # tests with HIPIFY; cross-stack comparison needs one corpus);
        # each precision is an independent corpus.
        base_arm = _arm_lane(arm)
        if base_arm.endswith("_hipify"):
            base_arm = base_arm[: -len("_hipify")]
        return derive_seed(self.seed, "arm", base_arm)

    def fingerprint(self) -> Dict[str, object]:
        """The result-determining identity of this config.

        Two configs with equal fingerprints produce identical results, so
        a checkpoint written under one may be resumed under the other.
        ``workers`` is deliberately excluded: it only changes scheduling.

        Compatibility: the FP16 keys (``include_fp16`` /
        ``n_programs_fp16``) are emitted only when the fp16 arms are
        included.  A config without them has exactly the pre-FP16
        fingerprint — ``n_programs_fp16`` cannot influence results then —
        so every checkpoint written before the FP16 lane still resumes.
        A checkpoint *with* fp16 arms is refused by the old engine (and
        vice versa), which is correct: one of the two cannot express the
        recorded grid.
        """
        fp: Dict[str, object] = {
            "seed": self.seed,
            "n_programs_fp64": self.n_programs_fp64,
            "n_programs_fp32": self.n_programs_fp32,
            "inputs_per_program": self.inputs_per_program,
            "include_hipify": self.include_hipify,
            "include_fp32": self.include_fp32,
            "opts": [o.label for o in self.opts],
            "reuse_nvcc_runs": self.reuse_nvcc_runs,
        }
        if tuple(self.stacks) != DEFAULT_STACK_PAIR:
            # Same compatibility rule as the FP16/oracle keys: the legacy
            # pair omits the key, so every pre-registry checkpoint still
            # resumes under the default stack selection.
            fp["stacks"] = list(self.stacks)
        if self.include_fp16:
            fp["include_fp16"] = True
            fp["n_programs_fp16"] = self.n_programs_fp16
        if self.include_oracle:
            # Same compatibility rule as the FP16 keys: emitted only when
            # the arm is on, so every pre-oracle checkpoint still resumes.
            # The relation catalogue is part of the identity (like the
            # standalone OracleConfig fingerprint): a checkout whose
            # registry grew or renamed a relation must refuse the
            # checkpoint rather than merge incomparable per-relation
            # tables.
            from repro.oracle.relations import RELATION_NAMES

            fp["include_oracle"] = True
            fp["n_programs_oracle"] = self.n_programs_oracle
            fp["oracle_ulp_bound"] = self.oracle_ulp_bound
            fp["oracle_relations"] = list(RELATION_NAMES)
        return fp


@dataclass
class ArmResult:
    """All measurements of one campaign arm.

    ``runs_by_opt`` / ``skipped_by_opt`` hold the *true* per-optimization
    totals (per compiler): a run appears under the setting it executed
    at, and a skipped (trapped) input is counted where it trapped.
    """

    arm: str
    n_programs: int
    opt_labels: Tuple[str, ...]
    runs_by_opt: Dict[str, int] = field(default_factory=dict)
    skipped_by_opt: Dict[str, int] = field(default_factory=dict)
    discrepancies: List[Discrepancy] = field(default_factory=list)
    #: nvcc device executions attempted for this arm (0 when the arm was
    #: replayed entirely from another arm's cache).
    nvcc_executions: int = 0
    #: per-input nvcc outcomes served from a cross-arm RunCache.
    nvcc_cache_hits: int = 0
    #: metamorphic-relation violations (oracle arm only; empty elsewhere).
    oracle_violations: List["RelationViolation"] = field(default_factory=list)
    #: per-relation count of programs where the relation applied.
    oracle_checked: Dict[str, int] = field(default_factory=dict)
    #: the (lhs, rhs) stack pair this arm compared; the ``nvcc_*`` counter
    #: names above are the legacy spellings for the lhs slot.
    stacks: Tuple[str, str] = DEFAULT_STACK_PAIR

    def __post_init__(self) -> None:
        for label in self.opt_labels:
            self.runs_by_opt.setdefault(label, 0)
            self.skipped_by_opt.setdefault(label, 0)

    @property
    def runs_per_option_per_compiler(self) -> int:
        """Nominal per-setting count: the maximum across settings.

        Equal to every setting's count when no skip varies by setting
        (the common case); the exact per-setting totals are
        :attr:`runs_by_opt`."""
        return max(self.runs_by_opt.values(), default=0)

    @property
    def runs_per_option(self) -> int:
        return 2 * self.runs_per_option_per_compiler

    @property
    def runs_per_compiler(self) -> int:
        """Exact runs on one compiler: Σ over settings of the true count."""
        return sum(self.runs_by_opt.values())

    @property
    def total_runs(self) -> int:
        return 2 * self.runs_per_compiler

    @property
    def n_skipped_tests(self) -> int:
        return sum(self.skipped_by_opt.values())

    @property
    def n_discrepancies(self) -> int:
        return len(self.discrepancies)

    @property
    def discrepancy_percent(self) -> float:
        return 100.0 * self.n_discrepancies / self.total_runs if self.total_runs else 0.0

    @property
    def n_oracle_violations(self) -> int:
        return len(self.oracle_violations)

    @property
    def violations_by_relation(self) -> Dict[str, int]:
        """Per-relation violation counts (the oracle arm's report unit)."""
        out: Dict[str, int] = {}
        for v in self.oracle_violations:
            out[v.relation] = out.get(v.relation, 0) + 1
        return out

    def by_opt(self) -> Dict[str, List[Discrepancy]]:
        out: Dict[str, List[Discrepancy]] = {label: [] for label in self.opt_labels}
        for d in self.discrepancies:
            out[d.opt_label].append(d)
        return out

    def merge(self, other: "ArmResult") -> None:
        if other.arm != self.arm or other.opt_labels != self.opt_labels:
            raise HarnessError("cannot merge mismatched arm results")
        self.n_programs += other.n_programs
        for label in self.opt_labels:
            self.runs_by_opt[label] += other.runs_by_opt.get(label, 0)
            self.skipped_by_opt[label] += other.skipped_by_opt.get(label, 0)
        self.discrepancies.extend(other.discrepancies)
        self.nvcc_executions += other.nvcc_executions
        self.nvcc_cache_hits += other.nvcc_cache_hits
        self.oracle_violations.extend(other.oracle_violations)
        for name, count in other.oracle_checked.items():
            self.oracle_checked[name] = self.oracle_checked.get(name, 0) + count

    # -- checkpoint (de)serialization ---------------------------------------
    def to_json_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "arm": self.arm,
            "n_programs": self.n_programs,
            "opt_labels": list(self.opt_labels),
            "runs_by_opt": dict(self.runs_by_opt),
            "skipped_by_opt": dict(self.skipped_by_opt),
            "nvcc_executions": self.nvcc_executions,
            "nvcc_cache_hits": self.nvcc_cache_hits,
            "discrepancies": [d.to_json_dict() for d in self.discrepancies],
        }
        if self.stacks != DEFAULT_STACK_PAIR:
            # Emitted only for non-legacy pairs, so pre-registry
            # checkpoint lines and legacy-pair lines stay byte-identical.
            data["stacks"] = list(self.stacks)
        if self.oracle_violations:
            # Emitted only when present, so pre-oracle checkpoint lines
            # and new non-oracle lines stay byte-compatible.
            data["oracle_violations"] = [
                v.to_json_dict() for v in self.oracle_violations
            ]
        if self.oracle_checked:
            data["oracle_checked"] = dict(self.oracle_checked)
        return data

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "ArmResult":
        return cls(
            arm=str(data["arm"]),
            n_programs=int(data["n_programs"]),  # type: ignore[arg-type]
            opt_labels=tuple(data["opt_labels"]),  # type: ignore[arg-type]
            runs_by_opt={k: int(v) for k, v in data["runs_by_opt"].items()},  # type: ignore[union-attr]
            skipped_by_opt={k: int(v) for k, v in data["skipped_by_opt"].items()},  # type: ignore[union-attr]
            discrepancies=[
                Discrepancy.from_json_dict(d) for d in data["discrepancies"]  # type: ignore[union-attr]
            ],
            nvcc_executions=int(data.get("nvcc_executions", 0)),  # type: ignore[union-attr,arg-type]
            nvcc_cache_hits=int(data.get("nvcc_cache_hits", 0)),  # type: ignore[union-attr,arg-type]
            oracle_violations=_violations_from_json(
                data.get("oracle_violations", [])  # type: ignore[arg-type]
            ),
            oracle_checked={
                str(k): int(v)
                for k, v in data.get("oracle_checked", {}).items()  # type: ignore[union-attr]
            },
            stacks=tuple(data.get("stacks", DEFAULT_STACK_PAIR)),  # type: ignore[arg-type]
        )


def _violations_from_json(items: List[Dict[str, object]]) -> List["RelationViolation"]:
    if not items:
        return []
    # Deferred: repro.oracle imports the harness layer (cycle guard).
    from repro.oracle.relations import RelationViolation

    return [RelationViolation.from_json_dict(v) for v in items]


@dataclass
class CampaignResult:
    """Results of all arms plus timing."""

    config: CampaignConfig
    arms: Dict[str, ArmResult]
    elapsed_seconds: float
    #: plan steps reloaded from a checkpoint instead of executed.
    resumed_steps: int = 0
    #: execution-service counters for the steps this run actually
    #: executed (resumed steps replay from the checkpoint and are not
    #: re-counted here).  See :meth:`repro.exec.ExecutionService.stats`.
    exec_metrics: Dict[str, object] = field(default_factory=dict)
    #: wall seconds per plan group (arm or fused-arm label), summed from
    #: ``exec.chunk`` spans when a tracer is active — empty otherwise.
    #: Telemetry-only: never serialized into checkpoints or ``--json``.
    group_wall_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def total_runs(self) -> int:
        return sum(a.total_runs for a in self.arms.values())

    @property
    def total_discrepancies(self) -> int:
        return sum(a.n_discrepancies for a in self.arms.values())

    @property
    def nvcc_cache_hits(self) -> int:
        return sum(a.nvcc_cache_hits for a in self.arms.values())

    @property
    def nvcc_executions(self) -> int:
        return sum(a.nvcc_executions for a in self.arms.values())


# ---------------------------------------------------------------------------
# Execution plan
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanStep:
    """One schedulable slice of the campaign: a program range of one or
    more arms (fused arms share the range *and* the generated programs)."""

    arms: Tuple[str, ...]
    start: int
    stop: int

    @property
    def key(self) -> str:
        """Stable identity used by checkpoint files."""
        return f"{'+'.join(self.arms)}:{self.start}:{self.stop}"

    @property
    def label(self) -> str:
        return "+".join(self.arms)


def _chunk_size(n_programs: int) -> int:
    """Checkpoint/scheduling granularity.

    Depends only on the program count — never on worker count — so a
    checkpoint written by an 8-worker run resumes correctly under any
    other worker count."""
    return max(4, min(64, n_programs // 8))


def build_plan(config: CampaignConfig) -> List[PlanStep]:
    """Expand a config into its deterministic list of plan steps.

    A lane's arms fuse into one group when ``reuse_nvcc_runs`` is on and
    the lane has more than one arm (hipify twin and/or stack-pair arms):
    fused arms share each step's chunk store, so everything with the
    lane's lhs stack replays instead of re-executing.  With reuse off
    every arm runs standalone, like the seed engine.
    """
    groups: List[Tuple[str, ...]] = []

    def _lane_groups(lane: str) -> None:
        arms = config.lane_arms(lane)
        if config.reuse_nvcc_runs and len(arms) > 1:
            groups.append(tuple(arms))
        else:
            groups.extend((arm,) for arm in arms)

    _lane_groups("fp64")
    if config.include_fp32:
        _lane_groups("fp32")
    if config.include_fp16:
        _lane_groups("fp16")
    if config.include_oracle:
        groups.append(("oracle",))
    steps: List[PlanStep] = []
    for arms in groups:
        n = config.arm_programs(arms[0])
        chunk = _chunk_size(n)
        for lo in range(0, n, chunk):
            steps.append(PlanStep(arms, lo, min(lo + chunk, n)))
    return steps


def _oracle_step_plans(config: CampaignConfig, step: PlanStep):
    """The oracle arm's per-program plans for one step's index range.

    Deterministic in (config, step) alone, so requests and results can
    rebuild the same plans independently (the transforms are cheap; only
    execution is expensive).  Variants ship as concrete tests — like fuzz
    mutants, they cannot be regenerated from a generator seed.
    """
    from repro.oracle.engine import oracle_requests_for
    from repro.oracle.relations import RELATION_NAMES, resolve_relations
    from repro.varity.corpus import build_corpus_slice

    gen = config.generator_config(config.arm_fptype("oracle"))
    relations = resolve_relations(RELATION_NAMES)
    # prefix "oracle", not "prog": the fp32 arm already mints
    # prog-fp32-NNNNNN ids from a different seed, and a campaign JSON
    # must never carry one test_id naming two different programs.
    tests = build_corpus_slice(
        gen, step.start, step.stop, config.arm_seed("oracle"), prefix="oracle"
    ).tests
    return [
        oracle_requests_for(
            test, step.start + offset, config.seed, relations, config.opts
        )
        for offset, test in enumerate(tests)
    ], relations


def _step_requests(config: CampaignConfig, step: PlanStep) -> List[SweepRequest]:
    """One plan step as one execution-service chunk.

    A fused step interleaves each program's arms back to back — the
    HIPIFY twin and every nvcc-lhs stack-pair arm share the legacy arm's
    content id, so their CUDA halves replay from the chunk's run store;
    standalone steps have nothing to pair and skip the store entirely,
    like the seed engine's from-scratch walk.  An oracle step's chunk
    holds each program's per-relation base + variant requests; the
    service dedups the repeated base down to one execution.
    """
    if step.arms == ("oracle",):
        plans, _ = _oracle_step_plans(config, step)
        return [req for plan in plans for req in plan.requests]
    gen = config.generator_config(config.arm_fptype(step.arms[0]))
    root_seed = config.arm_seed(step.arms[0])
    fused = len(step.arms) > 1
    policy = CachePolicy(reuse=True, scope="chunk") if fused else NO_CACHE
    requests: List[SweepRequest] = []
    for index in range(step.start, step.stop):
        for arm in step.arms:
            spec = CorpusTestSpec(
                gen=gen,
                index=index,
                root_seed=root_seed,
                hipify=arm.endswith("_hipify"),
            )
            requests.append(
                SweepRequest(
                    test=spec,
                    opts=config.opts,
                    tag=(arm,),
                    cache=policy,
                    runner=RunnerSpec(stacks=_arm_pair(arm)),
                )
            )
    return requests


def _step_results(
    config: CampaignConfig, step: PlanStep, outcomes: List[SweepOutcome]
) -> Dict[str, ArmResult]:
    """Fold one chunk's outcomes back into per-arm results."""
    if step.arms == ("oracle",):
        return {"oracle": _oracle_step_result(config, step, outcomes)}
    opt_labels = tuple(o.label for o in config.opts)
    results = {
        arm: ArmResult(
            arm=arm, n_programs=0, opt_labels=opt_labels, stacks=_arm_pair(arm)
        )
        for arm in step.arms
    }
    for outcome in outcomes:
        out = results[outcome.tag[0]]
        _accumulate(out, outcome.pairs)
        out.nvcc_executions += outcome.nvcc_executions
        out.nvcc_cache_hits += outcome.nvcc_cache_hits
        out.n_programs += 1
    return results


def _oracle_step_result(
    config: CampaignConfig, step: PlanStep, outcomes: List[SweepOutcome]
) -> ArmResult:
    """Fold an oracle step: run accounting plus relation checking.

    Cross-vendor discrepancies in the sweeps are deliberately NOT
    recorded — this arm reports single-stack relation violations, and
    the differential arms already cover vendor-vs-vendor.  Deduped
    outcomes contribute no runs (no new work executed).
    """
    from repro.oracle.engine import oracle_check_outcomes

    plans, relations = _oracle_step_plans(config, step)
    out = ArmResult(
        arm="oracle",
        n_programs=len(plans),
        opt_labels=tuple(o.label for o in config.opts),
    )
    by_index: Dict[int, List[SweepOutcome]] = {}
    for outcome in outcomes:
        by_index.setdefault(int(outcome.tag[0]), []).append(outcome)
        if not outcome.deduped:
            for label, pair in outcome.pairs.items():
                out.runs_by_opt[label] += len(pair.nvcc_runs)
                out.skipped_by_opt[label] += len(pair.skipped_inputs)
            out.nvcc_executions += outcome.nvcc_executions
            out.nvcc_cache_hits += outcome.nvcc_cache_hits
    for plan in plans:
        violations, _ = oracle_check_outcomes(
            plan, by_index.get(plan.index, []), relations, config.oracle_ulp_bound
        )
        out.oracle_violations.extend(violations)
        for name in plan.checked:
            out.oracle_checked[name] = out.oracle_checked.get(name, 0) + 1
    return out


def _accumulate(out: ArmResult, sweep: Dict[str, PairResult]) -> None:
    for label, pair in sweep.items():
        out.runs_by_opt[label] += len(pair.nvcc_runs)
        out.skipped_by_opt[label] += len(pair.skipped_inputs)
        out.discrepancies.extend(pair.discrepancies)


# ---------------------------------------------------------------------------
# Checkpointing
# ---------------------------------------------------------------------------


class _Checkpoint(JsonlCheckpoint):
    """Append-only JSONL checkpoint: a header line with the config
    fingerprint (see :class:`~repro.utils.checkpoint.JsonlCheckpoint`),
    then one ``step`` line per completed plan step."""

    noun = "checkpoint"
    writer = "a campaign"

    def load_completed(self, config: CampaignConfig) -> Dict[str, Dict[str, ArmResult]]:
        """Read completed steps, validating the header against ``config``."""
        done: Dict[str, Dict[str, ArmResult]] = {}
        for data in self.iter_records(config.fingerprint()):
            if data.get("kind") != "step":
                continue
            done[str(data["key"])] = {
                name: ArmResult.from_json_dict(arm_data)
                for name, arm_data in data["arms"].items()
            }
        return done

    def open_for_append(self, config: CampaignConfig, fresh: bool) -> None:  # type: ignore[override]
        super().open_for_append(config.fingerprint(), fresh)

    def append_step(self, key: str, arms: Dict[str, ArmResult]) -> None:
        self.append_record(
            {
                "kind": "step",
                "key": key,
                "arms": {name: arm.to_json_dict() for name, arm in arms.items()},
            }
        )


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def run_campaign(
    config: Optional[CampaignConfig] = None,
    *,
    progress=None,
    checkpoint: Optional[Union[str, Path]] = None,
    resume: Union[bool, str] = False,
) -> CampaignResult:
    """Run a full campaign; returns per-arm results.

    ``progress`` is an optional callable ``(group_label, done, total)``
    invoked as plan steps complete (used by the CLI).  ``checkpoint``
    names a JSONL file that receives each completed step; with
    ``resume=True`` the steps already recorded there are reloaded instead
    of re-executed (the checkpoint's config fingerprint must match).
    ``resume="auto"`` resumes when the checkpoint exists and matches,
    and silently starts fresh otherwise — for unattended callers that
    want best-effort continuation without handling mismatch errors.
    """
    config = config or CampaignConfig.default()
    if resume and checkpoint is None:
        raise HarnessError("resume requires a checkpoint path")
    t0 = time.perf_counter()

    plan = build_plan(config)
    completed: Dict[str, Dict[str, ArmResult]] = {}
    ckpt: Optional[_Checkpoint] = None
    resuming = bool(resume)
    if checkpoint is not None:
        ckpt = _Checkpoint(checkpoint)
        if resume:
            try:
                completed = ckpt.load_completed(config)
            except HarnessError:
                # Missing, headerless, or mismatched checkpoint: a strict
                # resume refuses; "auto" falls back to a fresh run.
                if resume != "auto":
                    raise
                resuming = False
        ckpt.open_for_append(config, fresh=not resuming)

    # Progress is reported per plan group ("fp64+fp64_hipify", "fp32", …).
    group_totals: Dict[str, int] = {}
    group_done: Dict[str, int] = {}
    for step in plan:
        group_totals[step.label] = group_totals.get(step.label, 0) + 1
        group_done.setdefault(step.label, 0)

    # Pre-seed every included arm so a zero-program arm (no plan steps)
    # still reports an empty ArmResult instead of going missing.
    opt_labels = tuple(o.label for o in config.opts)
    merged: Dict[str, ArmResult] = {
        name: ArmResult(
            arm=name, n_programs=0, opt_labels=opt_labels, stacks=_arm_pair(name)
        )
        for name in config.arm_names()
    }

    def _absorb(step: PlanStep, arms: Dict[str, ArmResult]) -> None:
        for name, part in arms.items():
            if name in merged:
                merged[name].merge(part)
            else:
                merged[name] = part
        group_done[step.label] += 1
        if progress is not None:
            progress(step.label, group_done[step.label], group_totals[step.label])

    resumed_steps = 0
    pending: List[PlanStep] = []
    for step in plan:
        if step.key in completed:
            _absorb(step, completed[step.key])
            resumed_steps += 1
        else:
            pending.append(step)

    # Multiple pending steps are the only parallelism opportunity; a
    # single chunk runs in-process under any worker count.  (The bridge
    # backend is always honoured: its workers live in other processes,
    # so even one pending step belongs on the fleet when asked for.)
    workers = config.workers if len(pending) > 1 else 0
    if config.backend is None:
        service = ExecutionService.for_workers(workers)
    else:
        service = ExecutionService(
            backend=resolve_backend(config.backend, workers, config.bridge_url)
        )
    try:
        chunks = (_step_requests(config, step) for step in pending)
        # Steps are checkpointed the moment they complete — a kill loses
        # at most the steps still in flight, whatever their plan position
        # — while absorption is re-ordered to plan order so the merged
        # result (and the --json payload) is identical at any worker
        # count.  Checkpoint line order is scheduling-dependent; resume
        # keys steps by PlanStep.key, so that never matters.
        buffered: Dict[int, Dict[str, ArmResult]] = {}
        next_absorb = 0
        for index, outcomes in service.run_sweeps_unordered(chunks):
            step = pending[index]
            arms = _step_results(config, step, outcomes)
            if ckpt is not None:
                ckpt.append_step(step.key, arms)
            buffered[index] = arms
            while next_absorb in buffered:
                _absorb(pending[next_absorb], buffered.pop(next_absorb))
                next_absorb += 1
        exec_metrics = service.stats()
    finally:
        service.close()
        if ckpt is not None:
            ckpt.close()

    # Per-arm-group wall time from the tracer's exec.chunk spans: chunk
    # index == pending index (the chunks generator runs in pending
    # order), so attribution is deterministic at any worker count.
    group_wall: Dict[str, float] = {}
    tracer = get_tracer()
    if tracer.enabled:
        for index, seconds in sorted(tracer.seconds_by_chunk("exec.chunk").items()):
            if 0 <= index < len(pending):
                label = pending[index].label
                group_wall[label] = group_wall.get(label, 0.0) + seconds

    # Present arms in canonical order regardless of plan/completion order.
    arms_ordered = {name: merged[name] for name in config.arm_names()}
    return CampaignResult(
        config=config,
        arms=arms_ordered,
        elapsed_seconds=time.perf_counter() - t0,
        resumed_steps=resumed_steps,
        exec_metrics=exec_metrics,
        group_wall_seconds=group_wall,
    )
