"""Campaign orchestration — the §IV-B experiment grid.

A campaign has up to three *arms*, matching Table IV's columns:

* ``fp64``        — native CUDA vs native HIP, double precision;
* ``fp64_hipify`` — the same FP64 programs, HIP side produced by HIPIFY;
* ``fp32``        — native CUDA vs native HIP, single precision.

Each arm runs ``programs × inputs`` tests at each of the five optimization
settings on both platforms.  Accounting mirrors the paper exactly:
``runs per option per compiler = Σ inputs``, ``runs per option = ×2``,
``total runs = ×|options|``.

Campaigns are embarrassingly parallel over programs; ``workers > 1`` uses
a process pool where each worker *regenerates* its program slice from the
campaign seed (deterministic generation ⇒ no IR pickling).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compilers.options import OptSetting, PAPER_OPT_SETTINGS
from repro.errors import HarnessError
from repro.fp.types import FPType
from repro.harness.differential import Discrepancy
from repro.harness.runner import DifferentialRunner
from repro.utils.rng import derive_seed
from repro.varity.config import GeneratorConfig
from repro.varity.corpus import Corpus, build_corpus_slice

__all__ = ["CampaignConfig", "ArmResult", "CampaignResult", "run_campaign", "ARM_NAMES"]

ARM_NAMES = ("fp64", "fp64_hipify", "fp32")


@dataclass(frozen=True)
class CampaignConfig:
    """Size and shape of one campaign."""

    seed: int = 2024
    n_programs_fp64: int = 300
    n_programs_fp32: int = 240
    inputs_per_program: int = 7
    include_hipify: bool = True
    include_fp32: bool = True
    opts: Tuple[OptSetting, ...] = PAPER_OPT_SETTINGS
    workers: int = 0  # 0/1 = serial

    # ------------------------------------------------------------- presets
    @classmethod
    def tiny(cls, seed: int = 2024) -> "CampaignConfig":
        """Smoke-test scale (seconds)."""
        return cls(seed=seed, n_programs_fp64=24, n_programs_fp32=20, inputs_per_program=3)

    @classmethod
    def default(cls, seed: int = 2024, workers: int = 0) -> "CampaignConfig":
        """Bench scale: ≈1/12 of the paper's program counts."""
        return cls(seed=seed, workers=workers)

    @classmethod
    def paper_scale(cls, seed: int = 2024, workers: Optional[int] = None) -> "CampaignConfig":
        """The full §IV-B grid: 3,540 FP64 + 2,840 FP32 programs.

        The paper's inputs-per-program ratios are 6.99 (FP64: 24,750 runs
        per option per compiler) and 5.55 (FP32: 15,760); with a uniform
        7 inputs per program this preset yields 694,400 runs vs the
        paper's 652,600 — within 7%, same program counts."""
        if workers is None:
            workers = max(1, (os.cpu_count() or 2) - 1)
        return cls(
            seed=seed,
            n_programs_fp64=3540,
            n_programs_fp32=2840,
            inputs_per_program=7,
            workers=workers,
        )

    def generator_config(self, fptype: FPType) -> GeneratorConfig:
        cfg = GeneratorConfig(fptype=fptype)
        cfg.inputs_per_program = self.inputs_per_program
        return cfg

    def arm_names(self) -> List[str]:
        arms = ["fp64"]
        if self.include_hipify:
            arms.append("fp64_hipify")
        if self.include_fp32:
            arms.append("fp32")
        return arms

    def arm_programs(self, arm: str) -> int:
        if arm in ("fp64", "fp64_hipify"):
            return self.n_programs_fp64
        if arm == "fp32":
            return self.n_programs_fp32
        raise HarnessError(f"unknown arm {arm!r}")

    def arm_fptype(self, arm: str) -> FPType:
        return FPType.FP32 if arm == "fp32" else FPType.FP64

    def arm_seed(self, arm: str) -> int:
        # fp64 and fp64_hipify share programs AND inputs (the paper converts
        # the same FP64 tests with HIPIFY); fp32 is an independent corpus.
        base_arm = "fp64" if arm == "fp64_hipify" else arm
        return derive_seed(self.seed, "arm", base_arm)


@dataclass
class ArmResult:
    """All measurements of one campaign arm."""

    arm: str
    n_programs: int
    runs_per_option_per_compiler: int
    opt_labels: Tuple[str, ...]
    discrepancies: List[Discrepancy] = field(default_factory=list)
    n_skipped_tests: int = 0

    @property
    def runs_per_option(self) -> int:
        return 2 * self.runs_per_option_per_compiler

    @property
    def total_runs(self) -> int:
        return self.runs_per_option * len(self.opt_labels)

    @property
    def runs_per_compiler(self) -> int:
        return self.runs_per_option_per_compiler * len(self.opt_labels)

    @property
    def n_discrepancies(self) -> int:
        return len(self.discrepancies)

    @property
    def discrepancy_percent(self) -> float:
        return 100.0 * self.n_discrepancies / self.total_runs if self.total_runs else 0.0

    def by_opt(self) -> Dict[str, List[Discrepancy]]:
        out: Dict[str, List[Discrepancy]] = {label: [] for label in self.opt_labels}
        for d in self.discrepancies:
            out[d.opt_label].append(d)
        return out

    def merge(self, other: "ArmResult") -> None:
        if other.arm != self.arm or other.opt_labels != self.opt_labels:
            raise HarnessError("cannot merge mismatched arm results")
        self.n_programs += other.n_programs
        self.runs_per_option_per_compiler += other.runs_per_option_per_compiler
        self.discrepancies.extend(other.discrepancies)
        self.n_skipped_tests += other.n_skipped_tests


@dataclass
class CampaignResult:
    """Results of all arms plus timing."""

    config: CampaignConfig
    arms: Dict[str, ArmResult]
    elapsed_seconds: float

    @property
    def total_runs(self) -> int:
        return sum(a.total_runs for a in self.arms.values())

    @property
    def total_discrepancies(self) -> int:
        return sum(a.n_discrepancies for a in self.arms.values())


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def _run_arm_slice(
    config: CampaignConfig, arm: str, start: int, stop: int
) -> ArmResult:
    """Run one contiguous program slice of one arm, serially."""
    gen_cfg = config.generator_config(config.arm_fptype(arm))
    corpus = build_corpus_slice(gen_cfg, start, stop, config.arm_seed(arm))
    if arm == "fp64_hipify":
        corpus = corpus.hipified()
    runner = DifferentialRunner()
    opt_labels = tuple(o.label for o in config.opts)
    result = ArmResult(
        arm=arm,
        n_programs=len(corpus),
        runs_per_option_per_compiler=0,
        opt_labels=opt_labels,
    )
    runs_counted = False
    for opt in config.opts:
        for test in corpus:
            pair = runner.run_pair(test, opt)
            result.discrepancies.extend(pair.discrepancies)
            result.n_skipped_tests += len(pair.skipped_inputs)
            if not runs_counted:
                result.runs_per_option_per_compiler += len(pair.nvcc_runs)
        runs_counted = True
    return result


def _worker(args: Tuple[CampaignConfig, str, int, int]) -> ArmResult:
    config, arm, start, stop = args
    return _run_arm_slice(config, arm, start, stop)


def run_campaign(config: Optional[CampaignConfig] = None, *, progress=None) -> CampaignResult:
    """Run a full campaign; returns per-arm results.

    ``progress`` is an optional callable ``(arm, done, total)`` invoked as
    slices complete (used by the CLI).
    """
    config = config or CampaignConfig.default()
    t0 = time.perf_counter()
    arms: Dict[str, ArmResult] = {}

    for arm in config.arm_names():
        n = config.arm_programs(arm)
        if config.workers and config.workers > 1 and n >= 2 * config.workers:
            chunk = max(8, n // (config.workers * 4))
            slices = [(config, arm, lo, min(lo + chunk, n)) for lo in range(0, n, chunk)]
            import multiprocessing as mp

            merged: Optional[ArmResult] = None
            with mp.get_context("spawn").Pool(config.workers) as pool:
                for i, part in enumerate(pool.imap_unordered(_worker, slices)):
                    merged = part if merged is None else (merged.merge(part) or merged)
                    if progress is not None:
                        progress(arm, i + 1, len(slices))
            assert merged is not None
            arms[arm] = merged
        else:
            arms[arm] = _run_arm_slice(config, arm, 0, n)
            if progress is not None:
                progress(arm, 1, 1)

    return CampaignResult(
        config=config, arms=arms, elapsed_seconds=time.perf_counter() - t0
    )
