"""Differential-testing harness.

Implements the paper's experimental procedure (§II-C, Fig. 1): compile
each generated test with both compiler models at the same optimization
setting, run both "binaries" on their devices with the same input, compare
the printed ``%.17g`` results, and classify discrepancies into the seven
classes of §IV-B.  The campaign driver scales from smoke tests to the
paper's full 652,600-run grid; the metadata store and transfer module
implement the between-platform workflow of Fig. 3.
"""

from repro.harness.outcomes import RunRecord
from repro.harness.differential import (
    DiscrepancyClass,
    Discrepancy,
    classify_pair,
    compare_runs,
)
from repro.harness.runner import DifferentialRunner, PairResult
from repro.harness.campaign import (
    ArmResult,
    CampaignConfig,
    CampaignResult,
    PlanStep,
    build_plan,
    run_campaign,
)
from repro.harness.metadata import CampaignMetadata, RunStore
from repro.harness.transfer import run_system1, run_system2, between_platform_campaign

__all__ = [
    "RunRecord",
    "DiscrepancyClass",
    "Discrepancy",
    "classify_pair",
    "compare_runs",
    "DifferentialRunner",
    "PairResult",
    "ArmResult",
    "CampaignConfig",
    "CampaignResult",
    "PlanStep",
    "build_plan",
    "run_campaign",
    "CampaignMetadata",
    "RunStore",
    "run_system1",
    "run_system2",
    "between_platform_campaign",
]
