"""Discrepancy taxonomy and pair comparison (§IV-B).

Seven discrepancy classes over the four outcome classes; sign-only
differences (``-NaN`` vs ``+NaN``, ``±Inf``, ``±0``) are excluded, and a
Num/Num pair is a discrepancy only when the printed values differ.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.fp.classify import OutcomeClass, classify_value, outcomes_equivalent
from repro.harness.outcomes import RunRecord

__all__ = [
    "DiscrepancyClass",
    "Discrepancy",
    "classify_pair",
    "compare_runs",
    "DISCREPANCY_CLASS_ORDER",
]


class DiscrepancyClass(enum.Enum):
    """The seven classes, labeled as the paper's table columns."""

    NAN_INF = "NaN, Inf"
    NAN_ZERO = "NaN, Zero"
    NAN_NUM = "NaN, Num"
    INF_ZERO = "Inf, Zero"
    INF_NUM = "Inf, Num"
    NUM_ZERO = "Num, Zero"
    NUM_NUM = "Num, Num"

    def __str__(self) -> str:
        return self.value


#: Column order of Tables V / VII / IX.
DISCREPANCY_CLASS_ORDER: Tuple[DiscrepancyClass, ...] = (
    DiscrepancyClass.NAN_INF,
    DiscrepancyClass.NAN_ZERO,
    DiscrepancyClass.NAN_NUM,
    DiscrepancyClass.INF_ZERO,
    DiscrepancyClass.INF_NUM,
    DiscrepancyClass.NUM_ZERO,
    DiscrepancyClass.NUM_NUM,
)

_PAIR_TO_CLASS: Dict[FrozenSet[OutcomeClass], DiscrepancyClass] = {
    frozenset({OutcomeClass.NAN, OutcomeClass.INF}): DiscrepancyClass.NAN_INF,
    frozenset({OutcomeClass.NAN, OutcomeClass.ZERO}): DiscrepancyClass.NAN_ZERO,
    frozenset({OutcomeClass.NAN, OutcomeClass.NUMBER}): DiscrepancyClass.NAN_NUM,
    frozenset({OutcomeClass.INF, OutcomeClass.ZERO}): DiscrepancyClass.INF_ZERO,
    frozenset({OutcomeClass.INF, OutcomeClass.NUMBER}): DiscrepancyClass.INF_NUM,
    frozenset({OutcomeClass.NUMBER, OutcomeClass.ZERO}): DiscrepancyClass.NUM_ZERO,
    frozenset({OutcomeClass.NUMBER}): DiscrepancyClass.NUM_NUM,
}


def classify_pair(nvcc_value: float, hipcc_value: float) -> Optional[DiscrepancyClass]:
    """Discrepancy class of a result pair, or None when equivalent."""
    if outcomes_equivalent(nvcc_value, hipcc_value):
        return None
    a = classify_value(nvcc_value)
    b = classify_value(hipcc_value)
    return _PAIR_TO_CLASS[frozenset({a, b})]


@dataclass(frozen=True)
class Discrepancy:
    """One confirmed numerical inconsistency between the platforms.

    Keeps both directional outcomes (needed by the adjacency matrices,
    whose cells count NVCC-row/HIPCC-column orderings separately).
    """

    test_id: str
    input_index: int
    opt_label: str
    dclass: DiscrepancyClass
    nvcc_printed: str
    hipcc_printed: str
    nvcc_outcome: OutcomeClass
    hipcc_outcome: OutcomeClass

    @classmethod
    def from_records(cls, nvcc: RunRecord, hipcc: RunRecord) -> Optional["Discrepancy"]:
        if (nvcc.test_id, nvcc.input_index, nvcc.opt_label) != (
            hipcc.test_id,
            hipcc.input_index,
            hipcc.opt_label,
        ):
            raise ValueError("mismatched run records")
        dclass = classify_pair(nvcc.value, hipcc.value)
        if dclass is None:
            return None
        return cls(
            test_id=nvcc.test_id,
            input_index=nvcc.input_index,
            opt_label=nvcc.opt_label,
            dclass=dclass,
            nvcc_printed=nvcc.printed,
            hipcc_printed=hipcc.printed,
            nvcc_outcome=nvcc.outcome,
            hipcc_outcome=hipcc.outcome,
        )

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "test_id": self.test_id,
            "input_index": self.input_index,
            "opt": self.opt_label,
            "class": self.dclass.value,
            "nvcc": self.nvcc_printed,
            "hipcc": self.hipcc_printed,
            "nvcc_outcome": self.nvcc_outcome.value,
            "hipcc_outcome": self.hipcc_outcome.value,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "Discrepancy":
        """Inverse of :meth:`to_json_dict` (campaign checkpoint files).

        Older payloads without explicit outcome keys are reclassified
        from the printed values, which round-trip exactly.
        """
        nvcc_printed = str(data["nvcc"])
        hipcc_printed = str(data["hipcc"])
        if "nvcc_outcome" in data:
            nv_out = OutcomeClass.from_string(str(data["nvcc_outcome"]))
            hip_out = OutcomeClass.from_string(str(data["hipcc_outcome"]))
        else:
            nv_out = classify_value(float(nvcc_printed))
            hip_out = classify_value(float(hipcc_printed))
        return cls(
            test_id=str(data["test_id"]),
            input_index=int(data["input_index"]),  # type: ignore[arg-type]
            opt_label=str(data["opt"]),
            dclass=DiscrepancyClass(str(data["class"])),
            nvcc_printed=nvcc_printed,
            hipcc_printed=hipcc_printed,
            nvcc_outcome=nv_out,
            hipcc_outcome=hip_out,
        )


def compare_runs(
    nvcc_runs: Iterable[RunRecord], hipcc_runs: Iterable[RunRecord]
) -> List[Discrepancy]:
    """Join two run streams on (test, input, opt) and keep discrepancies."""
    index: Dict[Tuple[str, int, str], RunRecord] = {
        (r.test_id, r.input_index, r.opt_label): r for r in hipcc_runs
    }
    out: List[Discrepancy] = []
    for nv in nvcc_runs:
        key = (nv.test_id, nv.input_index, nv.opt_label)
        hip = index.get(key)
        if hip is None:
            raise ValueError(f"no hipcc run for {key}")
        d = Discrepancy.from_records(nv, hip)
        if d is not None:
            out.append(d)
    return out
