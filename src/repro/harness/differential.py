"""Discrepancy taxonomy and pair comparison (§IV-B).

Seven discrepancy classes over the four outcome classes; sign-only
differences (``-NaN`` vs ``+NaN``, ``±Inf``, ``±0``) are excluded, and a
Num/Num pair is a discrepancy only when the printed values differ.

A pair is *stack-neutral*: the two sides are the left/right stacks of
whatever pair the harness is sweeping (nvcc×hipcc, nvcc×cpu, hipcc×cpu,
…).  The legacy two-stack spellings — ``classify_pair(nvcc_value=...,
hipcc_value=...)`` keyword aliases, ``Discrepancy.nvcc_printed``-style
accessors, and the ``nvcc``/``hipcc`` JSON keys — are kept as
back-compat aliases, and checkpoint payloads for the default
(nvcc, hipcc) pair serialize byte-identically to the pre-registry
layout.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.fp.classify import OutcomeClass, classify_value, outcomes_equivalent
from repro.harness.outcomes import RunRecord
from repro.stacks import DEFAULT_STACK_PAIR

__all__ = [
    "DiscrepancyClass",
    "Discrepancy",
    "classify_pair",
    "compare_runs",
    "DISCREPANCY_CLASS_ORDER",
]


class DiscrepancyClass(enum.Enum):
    """The seven classes, labeled as the paper's table columns."""

    NAN_INF = "NaN, Inf"
    NAN_ZERO = "NaN, Zero"
    NAN_NUM = "NaN, Num"
    INF_ZERO = "Inf, Zero"
    INF_NUM = "Inf, Num"
    NUM_ZERO = "Num, Zero"
    NUM_NUM = "Num, Num"

    def __str__(self) -> str:
        return self.value


#: Column order of Tables V / VII / IX.
DISCREPANCY_CLASS_ORDER: Tuple[DiscrepancyClass, ...] = (
    DiscrepancyClass.NAN_INF,
    DiscrepancyClass.NAN_ZERO,
    DiscrepancyClass.NAN_NUM,
    DiscrepancyClass.INF_ZERO,
    DiscrepancyClass.INF_NUM,
    DiscrepancyClass.NUM_ZERO,
    DiscrepancyClass.NUM_NUM,
)

_PAIR_TO_CLASS: Dict[FrozenSet[OutcomeClass], DiscrepancyClass] = {
    frozenset({OutcomeClass.NAN, OutcomeClass.INF}): DiscrepancyClass.NAN_INF,
    frozenset({OutcomeClass.NAN, OutcomeClass.ZERO}): DiscrepancyClass.NAN_ZERO,
    frozenset({OutcomeClass.NAN, OutcomeClass.NUMBER}): DiscrepancyClass.NAN_NUM,
    frozenset({OutcomeClass.INF, OutcomeClass.ZERO}): DiscrepancyClass.INF_ZERO,
    frozenset({OutcomeClass.INF, OutcomeClass.NUMBER}): DiscrepancyClass.INF_NUM,
    frozenset({OutcomeClass.NUMBER, OutcomeClass.ZERO}): DiscrepancyClass.NUM_ZERO,
    frozenset({OutcomeClass.NUMBER}): DiscrepancyClass.NUM_NUM,
}

_MISSING = object()


def classify_pair(
    lhs_value: float = _MISSING,  # type: ignore[assignment]
    rhs_value: float = _MISSING,  # type: ignore[assignment]
    *,
    nvcc_value: float = _MISSING,  # type: ignore[assignment]
    hipcc_value: float = _MISSING,  # type: ignore[assignment]
) -> Optional[DiscrepancyClass]:
    """Discrepancy class of a result pair, or None when equivalent.

    The sides are positionally the pair's left and right stacks; the
    ``nvcc_value``/``hipcc_value`` keywords are pre-registry aliases for
    the first and second position.
    """
    if nvcc_value is not _MISSING:
        lhs_value = nvcc_value
    if hipcc_value is not _MISSING:
        rhs_value = hipcc_value
    if lhs_value is _MISSING or rhs_value is _MISSING:
        raise TypeError("classify_pair needs a value for both sides")
    if outcomes_equivalent(lhs_value, rhs_value):
        return None
    a = classify_value(lhs_value)
    b = classify_value(rhs_value)
    return _PAIR_TO_CLASS[frozenset({a, b})]


@dataclass(frozen=True)
class Discrepancy:
    """One confirmed numerical inconsistency between two stacks.

    Keeps both directional outcomes (needed by the adjacency matrices,
    whose cells count row/column orderings separately).  ``stacks``
    names the (lhs, rhs) pair; it defaults to the paper's (nvcc, hipcc)
    so pre-registry construction sites and payloads are unchanged.
    """

    test_id: str
    input_index: int
    opt_label: str
    dclass: DiscrepancyClass
    lhs_printed: str
    rhs_printed: str
    lhs_outcome: OutcomeClass
    rhs_outcome: OutcomeClass
    stacks: Tuple[str, str] = field(default=DEFAULT_STACK_PAIR)

    def __init__(
        self,
        test_id: str,
        input_index: int,
        opt_label: str,
        dclass: DiscrepancyClass,
        lhs_printed: str = _MISSING,  # type: ignore[assignment]
        rhs_printed: str = _MISSING,  # type: ignore[assignment]
        lhs_outcome: OutcomeClass = _MISSING,  # type: ignore[assignment]
        rhs_outcome: OutcomeClass = _MISSING,  # type: ignore[assignment]
        stacks: Tuple[str, str] = DEFAULT_STACK_PAIR,
        *,
        nvcc_printed: str = _MISSING,  # type: ignore[assignment]
        hipcc_printed: str = _MISSING,  # type: ignore[assignment]
        nvcc_outcome: OutcomeClass = _MISSING,  # type: ignore[assignment]
        hipcc_outcome: OutcomeClass = _MISSING,  # type: ignore[assignment]
    ) -> None:
        # Pre-registry keyword aliases map onto the (lhs, rhs) slots.
        if nvcc_printed is not _MISSING:
            lhs_printed = nvcc_printed
        if hipcc_printed is not _MISSING:
            rhs_printed = hipcc_printed
        if nvcc_outcome is not _MISSING:
            lhs_outcome = nvcc_outcome
        if hipcc_outcome is not _MISSING:
            rhs_outcome = hipcc_outcome
        for name, value in (
            ("lhs_printed", lhs_printed),
            ("rhs_printed", rhs_printed),
            ("lhs_outcome", lhs_outcome),
            ("rhs_outcome", rhs_outcome),
        ):
            if value is _MISSING:
                raise TypeError(f"Discrepancy missing required field {name!r}")
        object.__setattr__(self, "test_id", test_id)
        object.__setattr__(self, "input_index", input_index)
        object.__setattr__(self, "opt_label", opt_label)
        object.__setattr__(self, "dclass", dclass)
        object.__setattr__(self, "lhs_printed", lhs_printed)
        object.__setattr__(self, "rhs_printed", rhs_printed)
        object.__setattr__(self, "lhs_outcome", lhs_outcome)
        object.__setattr__(self, "rhs_outcome", rhs_outcome)
        object.__setattr__(self, "stacks", tuple(stacks))

    # -- pre-registry accessor aliases ---------------------------------------
    @property
    def nvcc_printed(self) -> str:
        return self.lhs_printed

    @property
    def hipcc_printed(self) -> str:
        return self.rhs_printed

    @property
    def nvcc_outcome(self) -> OutcomeClass:
        return self.lhs_outcome

    @property
    def hipcc_outcome(self) -> OutcomeClass:
        return self.rhs_outcome

    @classmethod
    def from_records(
        cls,
        lhs: RunRecord,
        rhs: RunRecord,
        stacks: Tuple[str, str] = DEFAULT_STACK_PAIR,
    ) -> Optional["Discrepancy"]:
        if (lhs.test_id, lhs.input_index, lhs.opt_label) != (
            rhs.test_id,
            rhs.input_index,
            rhs.opt_label,
        ):
            raise ValueError("mismatched run records")
        dclass = classify_pair(lhs.value, rhs.value)
        if dclass is None:
            return None
        return cls(
            test_id=lhs.test_id,
            input_index=lhs.input_index,
            opt_label=lhs.opt_label,
            dclass=dclass,
            lhs_printed=lhs.printed,
            rhs_printed=rhs.printed,
            lhs_outcome=lhs.outcome,
            rhs_outcome=rhs.outcome,
            stacks=stacks,
        )

    def to_json_dict(self) -> Dict[str, object]:
        """Serialize; the default (nvcc, hipcc) pair keeps the exact
        pre-registry keys so old checkpoints stay byte-comparable."""
        if self.stacks == DEFAULT_STACK_PAIR:
            return {
                "test_id": self.test_id,
                "input_index": self.input_index,
                "opt": self.opt_label,
                "class": self.dclass.value,
                "nvcc": self.lhs_printed,
                "hipcc": self.rhs_printed,
                "nvcc_outcome": self.lhs_outcome.value,
                "hipcc_outcome": self.rhs_outcome.value,
            }
        return {
            "test_id": self.test_id,
            "input_index": self.input_index,
            "opt": self.opt_label,
            "class": self.dclass.value,
            "stacks": list(self.stacks),
            "lhs": self.lhs_printed,
            "rhs": self.rhs_printed,
            "lhs_outcome": self.lhs_outcome.value,
            "rhs_outcome": self.rhs_outcome.value,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "Discrepancy":
        """Inverse of :meth:`to_json_dict` (campaign checkpoint files).

        Accepts the stack-neutral layout (``stacks``/``lhs``/``rhs``),
        the pre-registry two-stack keys, and — older still — payloads
        without explicit outcome keys, which are reclassified from the
        printed values (those round-trip exactly).
        """
        if "stacks" in data:
            stacks_raw = data["stacks"]
            stacks = (str(stacks_raw[0]), str(stacks_raw[1]))  # type: ignore[index]
            lhs_printed = str(data["lhs"])
            rhs_printed = str(data["rhs"])
            lhs_out = OutcomeClass.from_string(str(data["lhs_outcome"]))
            rhs_out = OutcomeClass.from_string(str(data["rhs_outcome"]))
        else:
            stacks = DEFAULT_STACK_PAIR
            lhs_printed = str(data["nvcc"])
            rhs_printed = str(data["hipcc"])
            if "nvcc_outcome" in data:
                lhs_out = OutcomeClass.from_string(str(data["nvcc_outcome"]))
                rhs_out = OutcomeClass.from_string(str(data["hipcc_outcome"]))
            else:
                lhs_out = classify_value(float(lhs_printed))
                rhs_out = classify_value(float(rhs_printed))
        return cls(
            test_id=str(data["test_id"]),
            input_index=int(data["input_index"]),  # type: ignore[arg-type]
            opt_label=str(data["opt"]),
            dclass=DiscrepancyClass(str(data["class"])),
            lhs_printed=lhs_printed,
            rhs_printed=rhs_printed,
            lhs_outcome=lhs_out,
            rhs_outcome=rhs_out,
            stacks=stacks,
        )


def compare_runs(
    lhs_runs: Iterable[RunRecord],
    rhs_runs: Iterable[RunRecord],
    stacks: Tuple[str, str] = DEFAULT_STACK_PAIR,
) -> List[Discrepancy]:
    """Join two run streams on (test, input, opt) and keep discrepancies."""
    index: Dict[Tuple[str, int, str], RunRecord] = {
        (r.test_id, r.input_index, r.opt_label): r for r in rhs_runs
    }
    out: List[Discrepancy] = []
    for lhs in lhs_runs:
        key = (lhs.test_id, lhs.input_index, lhs.opt_label)
        rhs = index.get(key)
        if rhs is None:
            raise ValueError(f"no {stacks[1]} run for {key}")
        d = Discrepancy.from_records(lhs, rhs, stacks=stacks)
        if d is not None:
            out.append(d)
    return out
