"""Compiler matching by file extension (§III-D).

"Compiler matching is done automatically depending on the program
extensions — a random test file ends with ``.cu`` is automatically
compiled with nvcc, while HIP files are compiled with hipcc."  The same
dispatch, for workflows that start from on-disk artifacts (e.g. a tree
produced by :mod:`repro.varity.writer`).  Every registered stack
participates: ``.c`` files build with the clang model and run on the
simulated CPU host.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.compilers.compiler import Compiler
from repro.devices.device import Device
from repro.errors import HarnessError
from repro.stacks import STACKS

__all__ = ["match_compiler", "match_device", "EXTENSION_TABLE"]

#: extension → compiler factory (derived from the stack registry)
EXTENSION_TABLE = {
    stack.source_extension: stack.compiler_factory for stack in STACKS.values()
}

_EXTENSION_TO_STACK = {stack.source_extension: stack for stack in STACKS.values()}


def match_compiler(path: Union[str, Path]) -> Compiler:
    """The compiler model responsible for a test source file."""
    suffix = Path(path).suffix.lower()
    try:
        return EXTENSION_TABLE[suffix]()
    except KeyError:
        raise HarnessError(
            f"no compiler matches extension {suffix!r} "
            f"(known: {sorted(EXTENSION_TABLE)})"
        ) from None


def match_device(path: Union[str, Path]) -> Device:
    """The device a matched binary would run on."""
    suffix = Path(path).suffix.lower()
    stack = _EXTENSION_TO_STACK.get(suffix)
    if stack is None:
        raise HarnessError(f"no device matches extension {suffix!r}")
    return stack.device()
