"""Compiler matching by file extension (§III-D).

"Compiler matching is done automatically depending on the program
extensions — a random test file ends with ``.cu`` is automatically
compiled with nvcc, while HIP files are compiled with hipcc."  The same
dispatch, for workflows that start from on-disk artifacts (e.g. a tree
produced by :mod:`repro.varity.writer`).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.compilers.compiler import Compiler
from repro.compilers.hipcc import HipccCompiler
from repro.compilers.nvcc import NvccCompiler
from repro.devices.amd import amd_mi250x
from repro.devices.device import Device
from repro.devices.nvidia import nvidia_v100
from repro.errors import HarnessError

__all__ = ["match_compiler", "match_device", "EXTENSION_TABLE"]

#: extension → compiler factory
EXTENSION_TABLE = {
    ".cu": NvccCompiler,
    ".hip": HipccCompiler,
}


def match_compiler(path: Union[str, Path]) -> Compiler:
    """The compiler model responsible for a test source file."""
    suffix = Path(path).suffix.lower()
    try:
        return EXTENSION_TABLE[suffix]()
    except KeyError:
        raise HarnessError(
            f"no compiler matches extension {suffix!r} "
            f"(known: {sorted(EXTENSION_TABLE)})"
        ) from None


def match_device(path: Union[str, Path]) -> Device:
    """The device a matched binary would run on."""
    suffix = Path(path).suffix.lower()
    if suffix == ".cu":
        return nvidia_v100()
    if suffix == ".hip":
        return amd_mi250x()
    raise HarnessError(f"no device matches extension {suffix!r}")
