"""Campaign metadata — the JSON artifact of Fig. 3.

The paper's between-platform workflow: run all tests on System 1, save a
JSON metadata file (tests, inputs, compilers, flags, results), transfer it
to System 2, locate/rebuild the same tests, run them, and save an updated
JSON with both systems' results.  :class:`CampaignMetadata` is that file.

Programs are not serialized as IR: they are regenerated from their stored
seed (generation is deterministic), exactly as the real workflow re-uses
the test source files it shipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import MetadataError
from repro.fp.types import FPType
from repro.harness.outcomes import RunRecord
from repro.utils.jsonio import dump_json, load_json
from repro.varity.config import GeneratorConfig
from repro.varity.corpus import Corpus, regenerate_test
from repro.varity.testcase import TestCase

__all__ = ["RunStore", "CampaignMetadata"]

_FORMAT_VERSION = 1


class RunStore:
    """Results of one system: ``(opt, test_id, input_index) → printed``.

    The printed ``%.17g`` string is the ground truth the harness compares
    (§III-B); parsing it back gives the exact double.
    """

    def __init__(self) -> None:
        self._results: Dict[Tuple[str, str, int], str] = {}

    def record(self, record: RunRecord) -> None:
        key = (record.opt_label, record.test_id, record.input_index)
        self._results[key] = record.printed

    def record_printed(self, opt: str, test_id: str, input_index: int, printed: str) -> None:
        self._results[(opt, test_id, input_index)] = printed

    def get(self, opt: str, test_id: str, input_index: int) -> Optional[str]:
        return self._results.get((opt, test_id, input_index))

    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self):
        return iter(sorted(self._results.items()))

    def to_json_dict(self) -> Dict[str, str]:
        # Flat "opt|test|idx" keys keep the JSON grep-able.
        return {f"{o}|{t}|{i}": p for (o, t, i), p in sorted(self._results.items())}

    @classmethod
    def from_json_dict(cls, data: Dict[str, str]) -> "RunStore":
        store = cls()
        for key, printed in data.items():
            try:
                opt, test_id, idx = key.rsplit("|", 2)
                store.record_printed(opt, test_id, int(idx), printed)
            except ValueError as exc:
                raise MetadataError(f"bad result key {key!r}") from exc
        return store


@dataclass
class CampaignMetadata:
    """The transferable campaign description + accumulated results."""

    fptype: FPType
    root_seed: int
    inputs_per_program: int
    opt_labels: Tuple[str, ...]
    tests: List[Dict[str, object]] = field(default_factory=list)
    systems: Dict[str, Dict[str, object]] = field(default_factory=dict)
    results: Dict[str, RunStore] = field(default_factory=dict)  # system name → store

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_corpus(
        cls, corpus: Corpus, opt_labels: Sequence[str]
    ) -> "CampaignMetadata":
        meta = cls(
            fptype=corpus.fptype,
            root_seed=corpus.root_seed,
            inputs_per_program=corpus.config.inputs_per_program,
            opt_labels=tuple(opt_labels),
        )
        meta.tests = [t.to_meta_dict() for t in corpus]
        return meta

    def register_system(
        self, name: str, *, compiler: str, device: str, flags: Sequence[str] = ()
    ) -> None:
        self.systems[name] = {
            "compiler": compiler,
            "device": device,
            "flags": list(flags),
        }
        self.results.setdefault(name, RunStore())

    def store_for(self, system: str) -> RunStore:
        try:
            return self.results[system]
        except KeyError:
            raise MetadataError(
                f"system {system!r} not registered (have {sorted(self.results)})"
            ) from None

    # -- test reconstruction ----------------------------------------------------
    def rebuild_tests(self) -> List[TestCase]:
        """Regenerate every test on the receiving system (Fig. 3, right)."""
        cfg = GeneratorConfig(fptype=self.fptype)
        cfg.inputs_per_program = self.inputs_per_program
        out: List[TestCase] = []
        for entry in self.tests:
            out.append(
                regenerate_test(
                    cfg,
                    seed=int(entry["seed"]),  # type: ignore[arg-type]
                    test_id=str(entry["test_id"]),
                    input_texts=entry["inputs"],  # type: ignore[arg-type]
                    via_hipify=bool(entry.get("via_hipify", False)),
                )
            )
        return out

    # -- persistence --------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        dump_json(
            {
                "format_version": _FORMAT_VERSION,
                "fptype": self.fptype.value,
                "root_seed": self.root_seed,
                "inputs_per_program": self.inputs_per_program,
                "opt_labels": list(self.opt_labels),
                "tests": self.tests,
                "systems": self.systems,
                "results": {name: store.to_json_dict() for name, store in self.results.items()},
            },
            path,
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CampaignMetadata":
        data = load_json(path)
        if data.get("format_version") != _FORMAT_VERSION:
            raise MetadataError(
                f"unsupported metadata format {data.get('format_version')!r}"
            )
        meta = cls(
            fptype=FPType.from_string(data["fptype"]),
            root_seed=int(data["root_seed"]),
            inputs_per_program=int(data["inputs_per_program"]),
            opt_labels=tuple(data["opt_labels"]),
            tests=list(data["tests"]),
            systems=dict(data.get("systems", {})),
        )
        meta.results = {
            name: RunStore.from_json_dict(stored)
            for name, stored in data.get("results", {}).items()
        }
        for name in meta.systems:
            meta.results.setdefault(name, RunStore())
        return meta
