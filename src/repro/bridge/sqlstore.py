"""SqliteRunStore — the concurrent-writer-safe run-store tier.

The JSONL disk tier of :class:`~repro.exec.store.RunStore` is
single-writer by construction (appended lines cannot interleave); this
tier keeps the same duck-typed protocol — ``put`` / ``get`` /
``view_for`` / ``stats`` / ``flush`` / ``close`` and the entry-level
counters — while letting a whole fleet share one warm store:

* **SQLite WAL shards.**  Entries live in ``shards`` database files
  under one directory, the shard chosen by a deterministic 64-bit hash
  of the content key (:func:`~repro.utils.hashing.hash_bytes` — never
  Python's salted ``hash``), so every process maps a key to the same
  file and write contention divides by the shard count.
* **First writer wins.**  ``INSERT OR IGNORE`` on the ``(key, opt)``
  primary key: two workers racing to commit the same content-keyed
  entry cannot corrupt anything, and — entries being content-keyed and
  deterministic — whichever lands is byte-equivalent to the loser.
* **Same wire form.**  Rows store the JSONL tier's ``{"i","p","b","f"}``
  runs-JSON (via the shared codec in :mod:`repro.exec.store`), so
  :meth:`migrate_jsonl` is a line-for-line import of an existing store
  and a migrated entry replays bit-identically.

A memory LRU (same ``max_entries`` policy as :class:`RunStore`) fronts
the shards, so the counters keep their meanings: ``disk_hits`` counts
memory misses served by a shard, ``evictions`` counts LRU drops.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import HarnessError
from repro.exec.store import (
    BoundRunCache,
    _decode_runs,
    _encode_runs,
    _Neutral,
    _neutralize,
    _rebind,
)
from repro.harness.outcomes import RunRecord
from repro.utils.hashing import hash_bytes
from repro.varity.testcase import TestCase

__all__ = ["SqliteRunStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    k TEXT NOT NULL,
    o TEXT NOT NULL,
    r TEXT NOT NULL,
    PRIMARY KEY (k, o)
);
"""


class SqliteRunStore:
    """Sharded SQLite (WAL) run store, protocol-compatible with RunStore."""

    def __init__(
        self,
        root: Union[str, Path],
        max_entries: int = 1024,
        shards: int = 4,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.root = Path(root)
        self.max_entries = max_entries
        self.shards = shards
        self.root.mkdir(parents=True, exist_ok=True)
        self._mem: "OrderedDict[Tuple[str, str], Tuple[_Neutral, ...]]" = OrderedDict()
        self._lock = threading.Lock()
        self._conns: List[sqlite3.Connection] = []
        for index in range(shards):
            conn = sqlite3.connect(
                str(self.root / f"runs-{index:02d}of{shards:02d}.sqlite"),
                check_same_thread=False,
            )
            conn.executescript(_SCHEMA)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=30000")
            conn.commit()
            self._conns.append(conn)
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.puts = 0
        self.evictions = 0

    def _shard(self, key: str) -> sqlite3.Connection:
        return self._conns[hash_bytes(key.encode("utf-8")) % self.shards]

    # ------------------------------------------------------------------ api
    def put(
        self,
        key: str,
        opt_label: str,
        outcomes: Sequence[Optional[RunRecord]],
    ) -> None:
        """Store one (content, opt) entry; concurrent writers race safely."""
        entry = tuple(_neutralize(r) for r in outcomes)
        mkey = (key, opt_label)
        runs_json = json.dumps(_encode_runs(entry))
        with self._lock:
            self._insert_mem(mkey, entry)
            self.puts += 1
            conn = self._shard(key)
            conn.execute(
                "INSERT OR IGNORE INTO runs (k, o, r) VALUES (?, ?, ?)",
                (key, opt_label, runs_json),
            )
            conn.commit()

    def get(
        self, key: str, opt_label: str, *, test_id: str, compiler: str = "nvcc"
    ) -> Optional[Tuple[Optional[RunRecord], ...]]:
        mkey = (key, opt_label)
        with self._lock:
            entry = self._mem.get(mkey)
            if entry is not None:
                self._mem.move_to_end(mkey)
            else:
                row = self._shard(key).execute(
                    "SELECT r FROM runs WHERE k=? AND o=?", (key, opt_label)
                ).fetchone()
                if row is not None:
                    entry = _decode_runs(json.loads(row[0]))
                    self.disk_hits += 1
                    self._insert_mem(mkey, entry)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
        return tuple(_rebind(e, test_id, opt_label, compiler) for e in entry)

    def view_for(
        self, test: TestCase, *, consult: bool = True, populate: bool = True
    ) -> BoundRunCache:
        """A runner-compatible view bound to ``test``'s content id."""
        from repro.exec.content import content_id_for

        return BoundRunCache(self, content_id_for(test), consult, populate)

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._mem),
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "puts": self.puts,
            "evictions": self.evictions,
        }

    # -------------------------------------------------------------- extras
    def total_entries(self) -> int:
        """Entries across every shard (not just the memory tier)."""
        with self._lock:
            return sum(
                int(conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0])
                for conn in self._conns
            )

    def migrate_jsonl(self, path: Union[str, Path]) -> int:
        """Import an existing JSONL RunStore ledger; returns entries added.

        Torn or unparseable lines are skipped exactly as the JSONL
        tier's own index pass skips them; existing SQLite entries win
        over imported ones (first writer wins, as everywhere).
        """
        src = Path(path)
        if not src.exists():
            raise HarnessError(f"no JSONL run store at {src}")
        added = 0
        with self._lock, src.open("rb") as fh:
            for raw in fh:
                if not raw.endswith(b"\n"):
                    break  # torn tail from a killed writer
                try:
                    data = json.loads(raw)
                except (json.JSONDecodeError, UnicodeDecodeError):
                    continue
                if data.get("kind") != "entry":
                    continue
                key, opt = str(data["k"]), str(data["o"])
                conn = self._shard(key)
                cur = conn.execute(
                    "INSERT OR IGNORE INTO runs (k, o, r) VALUES (?, ?, ?)",
                    (key, opt, json.dumps(data["r"])),
                )
                added += cur.rowcount
            for conn in self._conns:
                conn.commit()
        return added

    # ----------------------------------------------------------- plumbing
    def flush(self) -> None:
        pass  # every put commits; nothing is buffered

    def close(self) -> None:
        with self._lock:
            for conn in self._conns:
                conn.close()
            self._conns = []

    def __len__(self) -> int:
        return len(self._mem)

    def __enter__(self) -> "SqliteRunStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _insert_mem(
        self, mkey: Tuple[str, str], entry: Tuple[_Neutral, ...]
    ) -> None:
        self._mem[mkey] = entry
        self._mem.move_to_end(mkey)
        while len(self._mem) > self.max_entries:
            self._mem.popitem(last=False)
            self.evictions += 1
