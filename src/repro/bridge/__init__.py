"""repro.bridge — distributed, durable execution for the service layer.

The in-process :class:`~repro.exec.service.ExecutionService` already
makes every caller's output worker-count-invariant; this package grows
that contract across machine boundaries so one campaign saturates a
fleet and many sessions share one warm store:

* :mod:`~repro.bridge.schemas` — the JSON wire shapes (jobs, leases,
  results) plus the pickle/base64 payload codec shared by server,
  worker, and client;
* :mod:`~repro.bridge.queue` — a durable SQLite (WAL) job queue with
  lease/ack semantics: workers lease chunks, heartbeat while executing,
  and a dead worker's lease expires so its chunk is re-queued — never
  lost, never committed twice;
* :mod:`~repro.bridge.sqlstore` — :class:`SqliteRunStore`, the
  concurrent-writer-safe run-store tier (the JSONL tier is
  single-writer): SQLite WAL shards selected by content hash, behind
  the same duck-typed protocol as :class:`~repro.exec.store.RunStore`,
  with a migration path from an existing JSONL store;
* :mod:`~repro.bridge.server` — the ``repro-bridge`` stdlib-only HTTP
  server fronting the queue (JSON bodies, long-poll result collection);
* :mod:`~repro.bridge.worker` — the ``repro-worker`` stateless pull
  loop: lease, execute through the existing serial chunk core, commit;
* :mod:`~repro.bridge.client` — :class:`BridgeBackend`, an
  :class:`~repro.exec.backends.Backend` that ships chunks through the
  server and merges results by submission-order chunk index, so
  ledgers, checkpoints, fingerprints, and content keys are
  byte-identical to a serial run at any worker count.

Everything is stdlib-only (``http.server``, ``urllib``, ``sqlite3``);
payloads ride the existing pickling contract of the process-pool
backend, so the bridge is for trusted fleets, like the pool is for a
trusted machine.
"""

from repro.bridge.client import BridgeBackend, BridgeClient, BridgeError
from repro.bridge.queue import JobQueue
from repro.bridge.sqlstore import SqliteRunStore

__all__ = [
    "BridgeBackend",
    "BridgeClient",
    "BridgeError",
    "JobQueue",
    "SqliteRunStore",
]
