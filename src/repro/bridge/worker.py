"""The ``repro-worker`` pull loop: lease, execute, commit, repeat.

A worker is deliberately stateless — every piece of context rides inside
the leased payload (a pickled ``(fn, payload)`` pair, executed through
the same module-level chunk entry points the process pool uses), so any
worker can execute any chunk and killing one loses nothing: its lease
expires and the chunk is re-queued (see :mod:`~repro.bridge.queue`).

While a chunk executes, a background heartbeat thread extends its lease
every ``lease_seconds / 3``; a chunk slower than its lease therefore
survives, while a *dead* worker's silence expires it.  If a heartbeat
reports the lease lost (the server restarted, or an operator cancelled
the run), the worker finishes the chunk anyway and lets the guarded
commit reject the stale result — execution here is idempotent-by-design
(pure functions of the request), so the wasted work is the only cost.

Execution errors are reported via ``/v1/fail`` with the full traceback:
the queue retries on another worker until ``max_attempts``, then parks
the chunk as ``failed`` for the client to surface.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading
import time
import traceback
from typing import List, Optional

from repro.bridge.client import BridgeClient, BridgeError
from repro.bridge.schemas import LeasedJob, decode_blob, encode_blob

__all__ = ["run_worker", "main"]


def default_worker_id() -> str:
    return f"{socket.gethostname()}:{os.getpid()}"


class _Heartbeater:
    """Extends one job's lease on a background thread while it executes."""

    def __init__(
        self, client: BridgeClient, worker: str, job: LeasedJob
    ) -> None:
        self._client = client
        self._worker = worker
        self._job = job
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name=f"heartbeat-{job.job_id}", daemon=True
        )
        self.lost = False

    def _loop(self) -> None:
        interval = max(self._job.lease_seconds / 3.0, 0.05)
        while not self._stop.wait(interval):
            try:
                kept = self._client.heartbeat(self._worker, [self._job.job_id])
            except BridgeError:
                continue  # transient server hiccup; the lease may survive
            if self._job.job_id not in kept:
                self.lost = True
                return

    def __enter__(self) -> "_Heartbeater":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def _execute_job(client: BridgeClient, worker: str, job: LeasedJob) -> bool:
    """Run one leased chunk; returns whether a result was committed."""
    with _Heartbeater(client, worker, job):
        try:
            fn, payload = decode_blob(job.payload)
            start_ns = time.perf_counter_ns()
            result = fn(payload)
            end_ns = time.perf_counter_ns()
        except BaseException:
            client.fail(
                job.job_id, worker, job.lease_token, traceback.format_exc()
            )
            return False
    return client.complete(
        job.job_id,
        worker,
        job.lease_token,
        encode_blob(result),
        start_ns=start_ns,
        end_ns=end_ns,
    )


def run_worker(
    url: str,
    *,
    worker_id: Optional[str] = None,
    max_jobs: int = 1,
    poll_seconds: float = 0.5,
    max_idle_seconds: Optional[float] = None,
    max_chunks: Optional[int] = None,
    stop_event: Optional[threading.Event] = None,
) -> int:
    """Pull-execute-commit until told (or timed) to stop.

    Returns the number of chunks whose results this worker committed.
    ``max_idle_seconds`` / ``max_chunks`` / ``stop_event`` are the three
    exit conditions (tests and benches use them; the CLI runs until
    signalled).
    """
    client = BridgeClient(url)
    client.health()
    worker = worker_id if worker_id is not None else default_worker_id()
    committed = 0
    idle_since: Optional[float] = None
    while stop_event is None or not stop_event.is_set():
        if max_chunks is not None and committed >= max_chunks:
            break
        try:
            jobs = client.lease(worker, max_jobs)
        except BridgeError:
            if stop_event is not None:
                break  # in-process server went away; test is over
            raise
        if not jobs:
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            elif (
                max_idle_seconds is not None
                and now - idle_since >= max_idle_seconds
            ):
                break
            time.sleep(poll_seconds)
            continue
        idle_since = None
        for job in jobs:
            if _execute_job(client, worker, job):
                committed += 1
    return committed


# ------------------------------------------------------------------ CLI
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Stateless execution worker for a repro bridge server.",
    )
    parser.add_argument(
        "--url", default="http://127.0.0.1:8377", help="bridge server URL"
    )
    parser.add_argument(
        "--id",
        default=None,
        help="worker id shown in leases/results (default host:pid)",
    )
    parser.add_argument(
        "--max-jobs",
        type=int,
        default=1,
        help="chunks to lease per request (keep at 1 for best pipelining)",
    )
    parser.add_argument(
        "--poll-seconds",
        type=float,
        default=0.5,
        help="sleep between empty lease polls",
    )
    parser.add_argument(
        "--max-idle-seconds",
        type=float,
        default=None,
        help="exit after this long without work (default: run until killed)",
    )
    args = parser.parse_args(argv)
    worker = args.id if args.id is not None else default_worker_id()
    print(
        f"worker {worker} pulling from {args.url}",
        file=sys.stderr,
    )
    try:
        committed = run_worker(
            args.url,
            worker_id=worker,
            max_jobs=args.max_jobs,
            poll_seconds=args.poll_seconds,
            max_idle_seconds=args.max_idle_seconds,
        )
    except KeyboardInterrupt:
        return 130
    print(f"worker {worker} exiting ({committed} chunks)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
