"""Wire shapes of the bridge protocol.

Every bridge message is a JSON object; the opaque chunk payloads and
results inside them are pickled and base64-armored by :func:`encode_blob`
/ :func:`decode_blob` — the same pickling contract the process-pool
backend already imposes (module-level functions, picklable requests), so
anything that runs on the pool runs through the bridge unchanged.

The dataclasses here are deliberately dumb records: the queue, server,
worker, and client all speak exactly these shapes, and ``to_json`` /
``from_json`` are the only (de)serialization sites, so a field added
here is a field added everywhere at once.

Timestamps (``enqueue_ns`` / ``start_ns`` / ``end_ns``) are
``time.perf_counter_ns()`` stamps: CLOCK_MONOTONIC on Linux is
system-wide, so server-, worker-, and client-side stamps of a
*same-machine* fleet share one clock and the four bridge phases tile
each chunk's [submit, arrive] interval exactly like the pool backend's.
Across machines the durations stay honest but absolute placement skews;
the client only ever subtracts same-origin stamps.
"""

from __future__ import annotations

import base64
import pickle
from dataclasses import dataclass
from typing import Any, Dict, Optional

__all__ = [
    "PROTOCOL_VERSION",
    "encode_blob",
    "decode_blob",
    "LeasedJob",
    "JobResult",
]

#: Bumped when a wire shape changes incompatibly; the client sends it on
#: every request and the server refuses mismatches loudly instead of
#: mis-parsing a newer (or older) fleet's messages.
PROTOCOL_VERSION = 1


def encode_blob(obj: Any) -> str:
    """Pickle + base64: the armor every opaque payload/result rides in."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_blob(text: str) -> Any:
    return pickle.loads(base64.b64decode(text.encode("ascii")))


@dataclass(frozen=True)
class LeasedJob:
    """One chunk handed to a worker, with its lease bookkeeping."""

    job_id: int
    run_id: str
    index: int
    #: base64-armored pickle of ``(fn, payload)``.
    payload: str
    #: opaque token naming this lease; completion must present it (a
    #: late result from an expired, re-leased chunk is rejected).
    lease_token: str
    #: how long the lease lasts without a heartbeat, in seconds.
    lease_seconds: float

    def to_json(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "run_id": self.run_id,
            "index": self.index,
            "payload": self.payload,
            "lease_token": self.lease_token,
            "lease_seconds": self.lease_seconds,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "LeasedJob":
        return cls(
            job_id=int(data["job_id"]),
            run_id=str(data["run_id"]),
            index=int(data["index"]),
            payload=str(data["payload"]),
            lease_token=str(data["lease_token"]),
            lease_seconds=float(data["lease_seconds"]),
        )


@dataclass(frozen=True)
class JobResult:
    """One completed (or terminally failed) chunk, as the client collects it."""

    index: int
    #: base64-armored pickle of the chunk's return value; ``None`` when
    #: the job failed terminally (see ``error``).
    result: Optional[str]
    #: traceback text of a terminal failure; ``None`` on success.
    error: Optional[str]
    #: how many times the chunk was leased (1 = first execution
    #: committed; 2 = one lease expired or failed and the re-queued
    #: chunk committed on the retry).
    attempts: int
    worker: str
    enqueue_ns: Optional[int] = None
    start_ns: Optional[int] = None
    end_ns: Optional[int] = None

    def to_json(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "result": self.result,
            "error": self.error,
            "attempts": self.attempts,
            "worker": self.worker,
            "enqueue_ns": self.enqueue_ns,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "JobResult":
        return cls(
            index=int(data["index"]),
            result=data.get("result"),
            error=data.get("error"),
            attempts=int(data.get("attempts", 1)),
            worker=str(data.get("worker", "")),
            enqueue_ns=data.get("enqueue_ns"),
            start_ns=data.get("start_ns"),
            end_ns=data.get("end_ns"),
        )
