"""The durable job queue behind the bridge server.

One SQLite database (WAL mode) holds every in-flight chunk.  The state
machine is deliberately small::

    pending ──lease──▶ leased ──complete──▶ done ──collect──▶ (deleted)
       ▲                 │
       │   lease expiry /│ fail (attempts left)
       └─────────────────┘
                         │ fail / expiry with attempts exhausted
                         ▼
                       failed ──collect──▶ (deleted)

Durability contract:

* **Submitted is durable** — a job row survives server restarts (the
  queue is the database file); on reopen every ``leased`` row is
  re-queued, because the lease deadlines of the dead process's
  monotonic clock are meaningless in the new one.
* **Leases expire** — a worker must heartbeat within ``lease_seconds``;
  a killed worker stops heartbeating, the next queue scan re-queues its
  chunks, and another worker executes them.  Expiry counts against
  ``max_attempts`` so a chunk that kills every worker it touches lands
  in ``failed`` with a diagnosis instead of looping forever.
* **Commit is exactly-once** — completing is a single guarded UPDATE:
  it succeeds only while the job is still ``pending`` (expired and not
  yet re-leased — the late result is accepted, saving the retry) or
  ``leased`` under the presenting worker's own token.  A second
  completion, or one presenting a stale token after the chunk was
  re-leased, changes zero rows and is reported uncommitted.
* **Collection is destructive** — results belong to exactly one client
  (the submitting backend); collecting a run's finished rows deletes
  them, so the database never accretes history.

All timestamps that order events within the queue use
``time.monotonic()``; the ``*_ns`` telemetry stamps ride through
untouched (see :mod:`~repro.bridge.schemas`).

The queue is thread-safe behind one connection + lock: the bridge
server is its only writer, and its request volume (chunks, not runs) is
far below SQLite's write ceiling.
"""

from __future__ import annotations

import os
import sqlite3
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.bridge.schemas import JobResult, LeasedJob

__all__ = ["JobQueue"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id         INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id         TEXT    NOT NULL,
    chunk_index    INTEGER NOT NULL,
    payload        TEXT,
    state          TEXT    NOT NULL DEFAULT 'pending',
    worker         TEXT,
    lease_token    TEXT,
    lease_deadline REAL,
    attempts       INTEGER NOT NULL DEFAULT 0,
    error          TEXT,
    result         TEXT,
    enqueue_ns     INTEGER,
    start_ns       INTEGER,
    end_ns         INTEGER,
    UNIQUE (run_id, chunk_index)
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs (state, job_id);
CREATE INDEX IF NOT EXISTS jobs_run ON jobs (run_id, state);
"""


class JobQueue:
    """SQLite-backed durable chunk queue with lease/ack semantics."""

    def __init__(
        self,
        path: Union[str, Path],
        *,
        lease_seconds: float = 30.0,
        max_attempts: int = 3,
    ) -> None:
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.path = Path(path)
        self.lease_seconds = float(lease_seconds)
        self.max_attempts = max_attempts
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # One connection + one lock: the server's handler threads
        # serialize here, which is simpler (and at chunk granularity no
        # slower) than a connection pool.
        self._conn = sqlite3.connect(str(self.path), check_same_thread=False)
        self._lock = threading.Lock()
        with self._lock:
            self._conn.executescript(_SCHEMA)
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA busy_timeout=30000")
            # Leases from a previous server process reference a dead
            # monotonic clock; re-queue them all.
            self._conn.execute(
                "UPDATE jobs SET state='pending', worker=NULL, lease_token=NULL,"
                " lease_deadline=NULL WHERE state='leased'"
            )
            self._conn.commit()

    # ------------------------------------------------------------- intake
    def submit(self, run_id: str, jobs: Sequence[Tuple[int, str]]) -> int:
        """Enqueue ``(chunk_index, payload_b64)`` jobs; returns the count.

        Re-submitting an existing ``(run_id, index)`` is ignored (the
        first submission wins), so a client retrying a half-delivered
        batch cannot duplicate work.
        """
        now_ns = time.perf_counter_ns()
        with self._lock:
            cur = self._conn.executemany(
                "INSERT OR IGNORE INTO jobs (run_id, chunk_index, payload,"
                " enqueue_ns) VALUES (?, ?, ?, ?)",
                [(run_id, index, payload, now_ns) for index, payload in jobs],
            )
            self._conn.commit()
            return cur.rowcount if cur.rowcount >= 0 else len(jobs)

    # -------------------------------------------------------------- lease
    def _expire_stale_leases_locked(self, now: float) -> None:
        """Re-queue expired leases; exhausted chunks become ``failed``.

        Called with the lock held, before every lease/collect scan —
        lazy expiry needs no background thread and is exact enough: an
        expired chunk is re-queued by whichever request looks next.
        """
        rows = self._conn.execute(
            "SELECT job_id, attempts, worker FROM jobs"
            " WHERE state='leased' AND lease_deadline < ?",
            (now,),
        ).fetchall()
        for job_id, attempts, worker in rows:
            if attempts >= self.max_attempts:
                self._conn.execute(
                    "UPDATE jobs SET state='failed', error=?, worker=NULL,"
                    " lease_token=NULL, lease_deadline=NULL WHERE job_id=?",
                    (
                        f"lease expired {attempts} times (last worker"
                        f" {worker!r} died or stalled mid-chunk)",
                        job_id,
                    ),
                )
            else:
                self._conn.execute(
                    "UPDATE jobs SET state='pending', worker=NULL,"
                    " lease_token=NULL, lease_deadline=NULL WHERE job_id=?",
                    (job_id,),
                )

    def lease(self, worker: str, max_jobs: int = 1) -> List[LeasedJob]:
        """Hand up to ``max_jobs`` pending chunks to ``worker``.

        Chunks are leased in ``job_id`` order (submission order), which
        keeps the head of the pipeline — the result the ordered client
        is waiting on — first in line.
        """
        if max_jobs < 1:
            raise ValueError("max_jobs must be >= 1")
        now = time.monotonic()
        leased: List[LeasedJob] = []
        with self._lock:
            self._expire_stale_leases_locked(now)
            rows = self._conn.execute(
                "SELECT job_id, run_id, chunk_index, payload FROM jobs"
                " WHERE state='pending' ORDER BY job_id LIMIT ?",
                (max_jobs,),
            ).fetchall()
            for job_id, run_id, index, payload in rows:
                token = os.urandom(8).hex()
                self._conn.execute(
                    "UPDATE jobs SET state='leased', worker=?, lease_token=?,"
                    " lease_deadline=?, attempts=attempts+1 WHERE job_id=?",
                    (worker, token, now + self.lease_seconds, job_id),
                )
                leased.append(
                    LeasedJob(
                        job_id=job_id,
                        run_id=run_id,
                        index=index,
                        payload=payload,
                        lease_token=token,
                        lease_seconds=self.lease_seconds,
                    )
                )
            self._conn.commit()
        return leased

    def heartbeat(self, worker: str, job_ids: Sequence[int]) -> List[int]:
        """Extend the named leases; returns the job ids still held.

        A job missing from the return value was lost — its lease
        expired and it was re-queued (or finished elsewhere) — and the
        worker should abandon it rather than commit a result that will
        be rejected anyway.
        """
        now = time.monotonic()
        kept: List[int] = []
        with self._lock:
            for job_id in job_ids:
                cur = self._conn.execute(
                    "UPDATE jobs SET lease_deadline=? WHERE job_id=?"
                    " AND state='leased' AND worker=?",
                    (now + self.lease_seconds, job_id, worker),
                )
                if cur.rowcount:
                    kept.append(job_id)
            self._conn.commit()
        return kept

    # ------------------------------------------------------------- commit
    def complete(
        self,
        job_id: int,
        worker: str,
        lease_token: str,
        result: str,
        *,
        start_ns: Optional[int] = None,
        end_ns: Optional[int] = None,
    ) -> bool:
        """Commit one chunk's result; returns whether the commit won.

        The guarded UPDATE is the exactly-once mechanism: only the
        holder of the current lease token — or a late result arriving
        while the chunk sits re-queued but not yet re-leased — can move
        the job to ``done``, and only once.
        """
        with self._lock:
            cur = self._conn.execute(
                "UPDATE jobs SET state='done', result=?, start_ns=?, end_ns=?,"
                " worker=?, lease_token=NULL, lease_deadline=NULL, error=NULL"
                " WHERE job_id=? AND (state='pending'"
                "   OR (state='leased' AND lease_token=?))",
                (result, start_ns, end_ns, worker, job_id, lease_token),
            )
            self._conn.commit()
            return cur.rowcount == 1

    def fail(self, job_id: int, worker: str, lease_token: str, error: str) -> bool:
        """Report an execution error; re-queues or fails terminally.

        Returns True when the report was accepted (the worker held the
        lease).  With attempts left the chunk goes back to ``pending``;
        otherwise it lands in ``failed`` carrying the traceback, which
        the client surfaces instead of hanging forever.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT attempts FROM jobs WHERE job_id=? AND state='leased'"
                " AND lease_token=?",
                (job_id, lease_token),
            ).fetchone()
            if row is None:
                return False
            state = "failed" if row[0] >= self.max_attempts else "pending"
            self._conn.execute(
                "UPDATE jobs SET state=?, error=?, worker=NULL,"
                " lease_token=NULL, lease_deadline=NULL WHERE job_id=?",
                (state, error if state == "failed" else None, job_id),
            )
            self._conn.commit()
            return True

    # ------------------------------------------------------------ collect
    def collect(self, run_id: str) -> List[JobResult]:
        """Remove and return a run's finished chunks (done or failed)."""
        with self._lock:
            self._expire_stale_leases_locked(time.monotonic())
            rows = self._conn.execute(
                "SELECT job_id, chunk_index, result, error, attempts, worker,"
                " enqueue_ns, start_ns, end_ns FROM jobs WHERE run_id=?"
                " AND state IN ('done', 'failed') ORDER BY chunk_index",
                (run_id,),
            ).fetchall()
            if rows:
                self._conn.executemany(
                    "DELETE FROM jobs WHERE job_id=?",
                    [(row[0],) for row in rows],
                )
                self._conn.commit()
        return [
            JobResult(
                index=index,
                result=result,
                error=error,
                attempts=attempts,
                worker=worker or "",
                enqueue_ns=enqueue_ns,
                start_ns=start_ns,
                end_ns=end_ns,
            )
            for (_id, index, result, error, attempts, worker,
                 enqueue_ns, start_ns, end_ns) in rows
        ]

    def cancel(self, run_id: str) -> int:
        """Drop every job of a run (an abandoned client's cleanup)."""
        with self._lock:
            cur = self._conn.execute(
                "DELETE FROM jobs WHERE run_id=?", (run_id,)
            )
            self._conn.commit()
            return cur.rowcount

    # ------------------------------------------------------------- status
    def counts(self) -> Dict[str, int]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state"
            ).fetchall()
        out = {"pending": 0, "leased": 0, "done": 0, "failed": 0}
        for state, count in rows:
            out[str(state)] = int(count)
        return out

    def attempts_for(self, run_id: str, index: int) -> Optional[int]:
        """Attempt count of one live job (None once collected/unknown)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT attempts FROM jobs WHERE run_id=? AND chunk_index=?",
                (run_id, index),
            ).fetchone()
        return None if row is None else int(row[0])

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
