"""Client side of the bridge: the HTTP wrapper and the Backend.

:class:`BridgeClient` is a thin JSON-over-HTTP wrapper (``urllib`` —
stdlib only) that turns transport and server errors into
:class:`BridgeError`.  :class:`BridgeBackend` implements the
:class:`~repro.exec.backends.Backend` protocol on top of it:

* ``imap(fn, payloads)`` pickles each ``(fn, payload)`` pair (the
  process-pool contract: module-level functions, picklable payloads),
  submits the whole batch under a fresh run id, then long-polls
  ``/v1/results`` and yields **in submission-order chunk index** no
  matter which worker finished first — the single rule that keeps every
  caller's ledgers, checkpoints, and content keys byte-identical to a
  serial run at any worker count.
* ``imap_unordered`` does the same: submission order is a valid
  completion order, and choosing it deterministically costs nothing
  (callers of the unordered path re-associate by embedded index anyway).

**Telemetry** (active tracer only): ``bridge.enqueue`` wraps the submit
POST, and per chunk the worker-stamped ``enqueue_ns/start_ns/end_ns``
(same-machine CLOCK_MONOTONIC — see :mod:`~repro.bridge.schemas`) yield
``bridge.queue_wait`` / ``bridge.execute`` / ``bridge.result_wait``
records tiling [submit, arrive] exactly like the pool backend's four
phases.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.bridge.schemas import (
    PROTOCOL_VERSION,
    JobResult,
    LeasedJob,
    decode_blob,
    encode_blob,
)
from repro.errors import HarnessError
from repro.telemetry.spans import get_tracer

__all__ = ["BridgeError", "BridgeClient", "BridgeBackend"]


class BridgeError(HarnessError):
    """The bridge is unreachable, refused a request, or a chunk failed."""


class BridgeClient:
    """JSON-over-HTTP wrapper around one bridge server."""

    def __init__(self, url: str, *, timeout: float = 60.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -------------------------------------------------------- transport
    def _request(
        self, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        if body is None:
            req = urllib.request.Request(self.url + path, method="GET")
        else:
            payload = dict(body)
            payload["protocol"] = PROTOCOL_VERSION
            req = urllib.request.Request(
                self.url + path,
                data=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read()).get("error", "")
            except (json.JSONDecodeError, OSError):
                detail = ""
            raise BridgeError(
                f"bridge {self.url}{path} refused ({exc.code})"
                + (f": {detail}" if detail else "")
            ) from None
        except (urllib.error.URLError, OSError) as exc:
            raise BridgeError(
                f"bridge {self.url} unreachable: {exc}. Is `repro-bridge "
                "serve` running at that address?"
            ) from None

    # --------------------------------------------------------- protocol
    def health(self) -> Dict[str, Any]:
        info = self._request("/v1/health")
        got = info.get("protocol")
        if got != PROTOCOL_VERSION:
            raise BridgeError(
                f"bridge {self.url} speaks protocol {got!r}, this client "
                f"speaks {PROTOCOL_VERSION}; upgrade the older side"
            )
        return info

    def submit(self, run_id: str, jobs: List[Tuple[int, str]]) -> int:
        return int(
            self._request("/v1/submit", {"run_id": run_id, "jobs": jobs})[
                "accepted"
            ]
        )

    def lease(self, worker: str, max_jobs: int = 1) -> List[LeasedJob]:
        data = self._request(
            "/v1/lease", {"worker": worker, "max_jobs": max_jobs}
        )
        return [LeasedJob.from_json(item) for item in data["jobs"]]

    def heartbeat(self, worker: str, job_ids: List[int]) -> List[int]:
        data = self._request(
            "/v1/heartbeat", {"worker": worker, "job_ids": job_ids}
        )
        return [int(j) for j in data["kept"]]

    def complete(
        self,
        job_id: int,
        worker: str,
        lease_token: str,
        result: str,
        *,
        start_ns: Optional[int] = None,
        end_ns: Optional[int] = None,
    ) -> bool:
        return bool(
            self._request(
                "/v1/complete",
                {
                    "job_id": job_id,
                    "worker": worker,
                    "lease_token": lease_token,
                    "result": result,
                    "start_ns": start_ns,
                    "end_ns": end_ns,
                },
            )["committed"]
        )

    def fail(self, job_id: int, worker: str, lease_token: str, error: str) -> bool:
        return bool(
            self._request(
                "/v1/fail",
                {
                    "job_id": job_id,
                    "worker": worker,
                    "lease_token": lease_token,
                    "error": error,
                },
            )["accepted"]
        )

    def results(self, run_id: str, wait_seconds: float = 0.0) -> List[JobResult]:
        data = self._request(
            "/v1/results", {"run_id": run_id, "wait_seconds": wait_seconds}
        )
        return [JobResult.from_json(item) for item in data["results"]]

    def cancel(self, run_id: str) -> int:
        return int(self._request("/v1/cancel", {"run_id": run_id})["dropped"])


class BridgeBackend:
    """Ordered chunk execution through a bridge server fleet."""

    name = "bridge"
    remote = True

    def __init__(
        self,
        url: str,
        *,
        client: Optional[BridgeClient] = None,
        poll_seconds: float = 5.0,
    ) -> None:
        self.client = client if client is not None else BridgeClient(url)
        self.poll_seconds = poll_seconds
        # Fail fast and loudly — a campaign should not build all its
        # chunks before learning the bridge is down or version-skewed.
        self.client.health()

    def imap(self, fn: Callable[[Any], Any], payloads: Iterable[Any]) -> Iterator[Any]:
        return self._run(fn, payloads)

    def imap_unordered(
        self, fn: Callable[[Any], Any], payloads: Iterable[Any]
    ) -> Iterator[Any]:
        """Submission order — a valid (and deterministic) completion order."""
        return self._run(fn, payloads)

    def close(self) -> None:
        pass  # stateless: every run cancels itself on abandonment

    # ---------------------------------------------------------- the run
    def _run(self, fn: Callable[[Any], Any], payloads: Iterable[Any]) -> Iterator[Any]:
        tracer = get_tracer()
        run_id = f"run-{os.urandom(8).hex()}"
        jobs = [
            (index, encode_blob((fn, payload)))
            for index, payload in enumerate(payloads)
        ]
        if not jobs:
            return
        t0 = time.perf_counter_ns()
        self.client.submit(run_id, jobs)
        if tracer.enabled:
            tracer.record(
                "bridge.enqueue", t0, time.perf_counter_ns(), jobs=len(jobs)
            )
        buffered: Dict[int, JobResult] = {}
        next_index = 0
        try:
            while next_index < len(jobs):
                for res in self.client.results(
                    run_id, wait_seconds=self.poll_seconds
                ):
                    buffered[res.index] = res
                while next_index in buffered:
                    res = buffered.pop(next_index)
                    if res.error is not None:
                        raise BridgeError(
                            f"bridge chunk {res.index} failed after "
                            f"{res.attempts} attempt(s); last error:\n"
                            f"{res.error}"
                        )
                    arrive_ns = time.perf_counter_ns()
                    if (
                        tracer.enabled
                        and res.enqueue_ns is not None
                        and res.start_ns is not None
                        and res.end_ns is not None
                    ):
                        tracer.record(
                            "bridge.queue_wait",
                            res.enqueue_ns,
                            res.start_ns,
                            chunk=res.index,
                        )
                        tracer.record(
                            "bridge.execute",
                            res.start_ns,
                            res.end_ns,
                            chunk=res.index,
                            worker=res.worker,
                            attempts=res.attempts,
                        )
                        tracer.record(
                            "bridge.result_wait",
                            res.end_ns,
                            arrive_ns,
                            chunk=res.index,
                        )
                    assert res.result is not None
                    yield decode_blob(res.result)
                    next_index += 1
        finally:
            if next_index < len(jobs):
                # Abandoned mid-run (error or closed generator): drop the
                # run's jobs so the queue does not accrete orphans.
                try:
                    self.client.cancel(run_id)
                except BridgeError:
                    pass
