"""The ``repro-bridge`` server: HTTP front of the durable job queue.

Stdlib only (``http.server`` + ``sqlite3``).  Every endpoint speaks a
JSON body and returns a JSON body; opaque chunk payloads/results ride
inside as pickle/base64 blobs (:mod:`~repro.bridge.schemas`).  The
protocol:

==================  ====  ================================================
``/v1/health``      GET   liveness + protocol version + queue counts
``/v1/submit``      POST  ``{run_id, jobs: [[index, payload], ...]}``
``/v1/lease``       POST  ``{worker, max_jobs}`` → leased jobs
``/v1/heartbeat``   POST  ``{worker, job_ids}`` → job ids still held
``/v1/complete``    POST  one chunk's result under its lease token
``/v1/fail``        POST  one chunk's error under its lease token
``/v1/results``     POST  ``{run_id, wait_seconds}`` — long-poll collect
``/v1/cancel``      POST  drop a run's jobs (abandoning client cleanup)
==================  ====  ================================================

Every POST body carries ``protocol``; a version mismatch is refused with
HTTP 400 before any parsing of the rest, so a skewed fleet fails loudly.

The server records ``bridge.submit`` / ``bridge.lease`` /
``bridge.commit`` / ``bridge.collect`` spans into its own tracer;
``repro-bridge serve --trace-out FILE`` writes the Chrome trace on
shutdown (SIGTERM/SIGINT), which is how the CI smoke job captures a
server-side view of the run.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.bridge.queue import JobQueue
from repro.bridge.schemas import PROTOCOL_VERSION
from repro.telemetry.spans import NullTracer, Tracer

__all__ = ["BridgeServer", "start_server", "main"]

#: Long-poll granularity: how often a waiting /v1/results re-scans.
_POLL_SECONDS = 0.05


class _BridgeError(Exception):
    """A request error the handler turns into an HTTP 400 JSON body."""


class BridgeServer:
    """The queue, the HTTP server, and the tracer, wired together."""

    def __init__(
        self,
        db: Union[str, Path],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_seconds: float = 30.0,
        max_attempts: int = 3,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.queue = JobQueue(
            db, lease_seconds=lease_seconds, max_attempts=max_attempts
        )
        self.tracer: "Tracer | NullTracer" = (
            tracer if tracer is not None else NullTracer()
        )
        handler = _make_handler(self)
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.host, self.port = self.httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        self.httpd.serve_forever()

    def start(self) -> "BridgeServer":
        """Serve on a daemon thread (tests, benches, in-process use)."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="bridge-server", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        self.httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def close(self) -> None:
        if self._thread is not None:
            self.shutdown()
        self.httpd.server_close()
        self.queue.close()

    def __enter__(self) -> "BridgeServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------- endpoints
    def handle_submit(self, body: Dict[str, Any]) -> Dict[str, Any]:
        run_id = str(body["run_id"])
        jobs: List[Tuple[int, str]] = [
            (int(index), str(payload)) for index, payload in body["jobs"]
        ]
        with self.tracer.span("bridge.submit", run=run_id, jobs=len(jobs)):
            accepted = self.queue.submit(run_id, jobs)
        return {"accepted": accepted}

    def handle_lease(self, body: Dict[str, Any]) -> Dict[str, Any]:
        worker = str(body["worker"])
        max_jobs = int(body.get("max_jobs", 1))
        with self.tracer.span("bridge.lease", worker=worker):
            leased = self.queue.lease(worker, max_jobs)
        return {"jobs": [job.to_json() for job in leased]}

    def handle_heartbeat(self, body: Dict[str, Any]) -> Dict[str, Any]:
        kept = self.queue.heartbeat(
            str(body["worker"]), [int(j) for j in body["job_ids"]]
        )
        return {"kept": kept}

    def handle_complete(self, body: Dict[str, Any]) -> Dict[str, Any]:
        with self.tracer.span("bridge.commit", job=int(body["job_id"])):
            committed = self.queue.complete(
                int(body["job_id"]),
                str(body["worker"]),
                str(body["lease_token"]),
                str(body["result"]),
                start_ns=body.get("start_ns"),
                end_ns=body.get("end_ns"),
            )
        return {"committed": committed}

    def handle_fail(self, body: Dict[str, Any]) -> Dict[str, Any]:
        accepted = self.queue.fail(
            int(body["job_id"]),
            str(body["worker"]),
            str(body["lease_token"]),
            str(body["error"]),
        )
        return {"accepted": accepted}

    def handle_results(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """Long-poll collect: destructive, so results go to one client."""
        run_id = str(body["run_id"])
        deadline = time.monotonic() + float(body.get("wait_seconds", 0.0))
        with self.tracer.span("bridge.collect", run=run_id):
            while True:
                results = self.queue.collect(run_id)
                if results or time.monotonic() >= deadline:
                    return {"results": [r.to_json() for r in results]}
                time.sleep(_POLL_SECONDS)

    def handle_cancel(self, body: Dict[str, Any]) -> Dict[str, Any]:
        return {"dropped": self.queue.cancel(str(body["run_id"]))}

    def handle_health(self) -> Dict[str, Any]:
        return {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "counts": self.queue.counts(),
        }


def _make_handler(server: BridgeServer):
    routes = {
        "/v1/submit": server.handle_submit,
        "/v1/lease": server.handle_lease,
        "/v1/heartbeat": server.handle_heartbeat,
        "/v1/complete": server.handle_complete,
        "/v1/fail": server.handle_fail,
        "/v1/results": server.handle_results,
        "/v1/cancel": server.handle_cancel,
    }

    class Handler(BaseHTTPRequestHandler):
        # Long-polls hold a thread each; HTTP/1.1 keep-alive lets one
        # client reuse its connection across thousands of small posts.
        protocol_version = "HTTP/1.1"

        def log_message(self, fmt: str, *args: Any) -> None:
            pass  # request logging would drown the queue's real signal

        def _reply(self, code: int, payload: Dict[str, Any]) -> None:
            data = json.dumps(payload).encode("utf-8")
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            if self.path == "/v1/health":
                self._reply(200, server.handle_health())
            else:
                self._reply(404, {"error": f"unknown endpoint {self.path}"})

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            route = routes.get(self.path)
            if route is None:
                self._reply(404, {"error": f"unknown endpoint {self.path}"})
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
                body = json.loads(self.rfile.read(length) or b"{}")
                got = body.get("protocol")
                if got != PROTOCOL_VERSION:
                    raise _BridgeError(
                        f"protocol mismatch: client sent {got!r}, server "
                        f"speaks {PROTOCOL_VERSION}"
                    )
                self._reply(200, route(body))
            except _BridgeError as exc:
                self._reply(400, {"error": str(exc)})
            except (KeyError, TypeError, ValueError) as exc:
                self._reply(400, {"error": f"malformed request: {exc!r}"})

    return Handler


def start_server(
    db: Union[str, Path],
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    lease_seconds: float = 30.0,
    max_attempts: int = 3,
    tracer: Optional[Tracer] = None,
) -> BridgeServer:
    """A serving bridge on a daemon thread (port 0 picks a free one)."""
    return BridgeServer(
        db,
        host=host,
        port=port,
        lease_seconds=lease_seconds,
        max_attempts=max_attempts,
        tracer=tracer,
    ).start()


# ------------------------------------------------------------------ CLI
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bridge",
        description="Bridge server for distributed repro execution.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the bridge server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8377)
    serve.add_argument(
        "--db",
        default="bridge-queue.sqlite",
        help="durable job-queue database (survives restarts)",
    )
    serve.add_argument(
        "--lease-seconds",
        type=float,
        default=30.0,
        help="heartbeat deadline before a worker's chunk is re-queued",
    )
    serve.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="leases per chunk before it fails terminally",
    )
    serve.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="write the server's span trace on shutdown (.jsonl: span "
        "log; otherwise Chrome trace-event JSON)",
    )

    migrate = sub.add_parser(
        "migrate", help="import a JSONL run store into the SQLite tier"
    )
    migrate.add_argument("--jsonl", required=True, help="source JSONL store path")
    migrate.add_argument(
        "--store", required=True, help="destination SQLite store directory"
    )
    migrate.add_argument("--shards", type=int, default=4)

    args = parser.parse_args(argv)

    if args.command == "migrate":
        from repro.bridge.sqlstore import SqliteRunStore

        with SqliteRunStore(args.store, shards=args.shards) as store:
            added = store.migrate_jsonl(args.jsonl)
            total = store.total_entries()
        print(f"migrated {added} entries ({total} now in {args.store})")
        return 0

    tracer = Tracer() if args.trace_out else None
    server = BridgeServer(
        args.db,
        host=args.host,
        port=args.port,
        lease_seconds=args.lease_seconds,
        max_attempts=args.max_attempts,
        tracer=tracer,
    )
    print(
        f"bridge server listening on {server.url} (db {args.db}, "
        f"lease {args.lease_seconds:g}s, max attempts {args.max_attempts})",
        file=sys.stderr,
    )

    def _shutdown(signum: int, frame: Any) -> None:
        # shutdown() must come from another thread: the signal handler
        # interrupts serve_forever itself, which cannot stop itself.
        threading.Thread(target=server.httpd.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)
    try:
        server.serve_forever()
    finally:
        server.close()
        if tracer is not None and args.trace_out:
            from repro.telemetry.export import write_trace

            write_trace(tracer.records(), Path(args.trace_out))
            print(f"trace written to {args.trace_out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
