"""repro — differential testing of GPU numerics.

A complete, self-contained reproduction of *"Testing GPU Numerics: Finding
Numerical Differences Between NVIDIA and AMD GPUs"* (Zahid, Laguna, Le;
SC 2024 / arXiv:2410.09172), with the hardware-gated pieces replaced by
faithful executable models (see DESIGN.md §2):

* a Varity-style random program generator (CUDA + HIP + C rendering);
* nvcc / hipcc compiler models with optimization-level pass pipelines;
* simulated V100 / MI250X devices: an IEEE-754 interpreter bound to vendor
  math-library models (libdevice vs OCML) whose documented algorithmic
  differences reproduce the paper's case studies;
* a HIPIFY translation model;
* the differential-testing harness, campaign driver, metadata workflow,
  and table/report generators for every table and figure in the paper.

Quickstart::

    from repro import quick_differential_test
    report = quick_differential_test(seed=7)
    print(report)

or, at the shell, ``repro-campaign --help``.
"""

from repro.fp.types import FPType
from repro.fp.classify import OutcomeClass
from repro.compilers.options import OptLevel, OptSetting, PAPER_OPT_SETTINGS
from repro.compilers.nvcc import NvccCompiler
from repro.compilers.hipcc import HipccCompiler
from repro.devices.nvidia import nvidia_v100
from repro.devices.amd import amd_mi250x
from repro.varity.config import GeneratorConfig
from repro.varity.corpus import build_corpus
from repro.harness.campaign import CampaignConfig, run_campaign
from repro.harness.runner import DifferentialRunner
from repro.harness.differential import DiscrepancyClass, classify_pair
from repro.analysis.report import render_campaign_report
from repro.fuzz.engine import FuzzConfig, run_fuzz

__version__ = "1.0.0"

__all__ = [
    "FPType",
    "OutcomeClass",
    "OptLevel",
    "OptSetting",
    "PAPER_OPT_SETTINGS",
    "NvccCompiler",
    "HipccCompiler",
    "nvidia_v100",
    "amd_mi250x",
    "GeneratorConfig",
    "build_corpus",
    "CampaignConfig",
    "run_campaign",
    "DifferentialRunner",
    "DiscrepancyClass",
    "classify_pair",
    "render_campaign_report",
    "FuzzConfig",
    "run_fuzz",
    "quick_differential_test",
    "__version__",
]


def quick_differential_test(seed: int = 2024, n_programs: int = 20) -> str:
    """Generate a few tests, run them on both platforms, report.

    The one-call demo of the whole pipeline (Fig. 1 of the paper).
    """
    config = CampaignConfig(
        seed=seed,
        n_programs_fp64=n_programs,
        n_programs_fp32=max(4, n_programs // 2),
        inputs_per_program=3,
    )
    result = run_campaign(config)
    return render_campaign_report(result, include_adjacency=False)
