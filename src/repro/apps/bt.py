"""Table I mini-app: a BT.S-style solver under compiler/flag combinations.

The paper's Table I (from Miao et al.) demonstrates the tradeoff the whole
study revolves around: fast-math builds are faster and less accurate, and
the (runtime, error) profile differs per compiler.  We reproduce the
four-row experiment with a compact structured-grid solver in the same
spirit as NAS BT class S: repeated sweeps updating a solution array from a
right-hand side, with a nonlinear term and a transcendental diagnostic.

The solver is expressed in the library's IR and run under each compiler
model at ``-O0`` and ``-O3 + fast math``.  Runtime is wall-clock of the
simulated execution; "max relative error" compares the final residual
accumulator against a vendor-neutral correctly-rounded reference run
(:class:`repro.devices.mathlib.reference.ReferenceMath`), which plays the
role of the NAS verification values.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.compilers.compiler import Compiler
from repro.compilers.hipcc import HipccCompiler
from repro.compilers.nvcc import NvccCompiler
from repro.compilers.options import OptLevel, OptSetting
from repro.devices.amd import amd_mi250x
from repro.devices.device import Device
from repro.devices.interpreter import ExecOptions, Interpreter
from repro.devices.mathlib.reference import ReferenceMath
from repro.devices.nvidia import nvidia_v100
from repro.fp.types import FPType
from repro.ir.builder import IRBuilder
from repro.ir.nodes import IntConst
from repro.ir.program import Program

__all__ = ["build_bt_program", "run_bt_experiment", "BTRow", "BT_GRID_POINTS"]

#: Spatial points per sweep (class-S-like tiny grid).
BT_GRID_POINTS = 24


def build_bt_program(grid_points: int = BT_GRID_POINTS) -> Program:
    """The mini-BT kernel.

    Parameters: ``comp`` (residual accumulator), ``var_1`` (time steps),
    ``var_2`` (relaxation scale), ``var_3`` (forcing), ``var_4`` (u array),
    ``var_5`` (rhs array).

    The body deliberately contains the constructs the optimization levels
    act on: constant coefficient expressions (folded at O1+), a constant
    math call (host-libm-folded by the nvcc model), ``a*b + c`` update
    shapes (FMA-contracted), an addition chain (reassociated under fast
    math), division by a constant (reciprocal-substituted under fast
    math), and transcendental calls (vendor ULP error).
    """
    b = IRBuilder(FPType.FP64)
    j = "i"  # inner spatial loop var must come from the fixed pool (i, j, k)
    u = lambda: b.idx("var_4", j)  # noqa: E731 - tiny local factories
    rhs = lambda: b.idx("var_5", j)  # noqa: E731

    # Coefficient pre-computation: constant expressions at source level.
    coef = b.decl(
        "tmp_1",
        b.mul(b.lit(0.25), b.sub(b.lit(1.0), b.lit(0.02))),
    )
    norm = b.decl("tmp_2", b.div(b.call("exp", b.lit(1.0)), b.lit(2.718281828459045)))

    # De-symmetrize the grid: a linear ramp over the fill value, so every
    # point follows its own trajectory (mirrors BT's non-uniform initial
    # condition; also ensures math calls see distinct operands per point).
    init = b.loop(
        j,
        IntConst(grid_points),
        [b.assign(u(), b.mul(u(), b.add(b.lit(1.0), b.mul(b.lit(2.0e-2), b.var(j)))))],
    )

    sweep = b.loop(
        j,
        IntConst(grid_points),
        [
            # Exponential-integrator update (mul-LEFT-add shape, so both
            # compiler models contract it):
            #   u = coef*(rhs - 1e-3*u*u)*var_2 + u * exp(var_3*(rhs - u))
            # The multiplicative exp factor is the error carrier: a 1-ULP
            # vendor deviation in exp() perturbs u by 1 ULP *relatively*,
            # which survives rounding at any magnitude and compounds over
            # sweeps — additive perturbations would be absorbed once u
            # outgrows them.
            b.assign(
                u(),
                b.add(
                    b.mul(
                        b.mul("tmp_1", b.sub(rhs(), b.mul(b.lit(1.0e-3), b.mul(u(), u())))),
                        "var_2",
                    ),
                    b.mul(u(), b.call("exp", b.mul("var_3", b.sub(rhs(), u())))),
                ),
            ),
            # rhs relaxation with a constant divisor (reciprocal target)
            b.assign(
                rhs(),
                b.add(
                    b.div(rhs(), b.lit(1.0001)),
                    b.mul(b.lit(1.0e-2), b.call("sqrt", b.call("fabs", u()))),
                ),
            ),
            # Residual: multiplicative accumulation through exp, so every
            # library deviation lands as a relative perturbation of comp
            # (an additive ``comp += …`` would absorb sub-ULP deviations
            # once comp grows).  The argument is an addition chain — the
            # fast-math reassociation target.
            b.aug(
                "comp",
                "*",
                b.call(
                    "exp",
                    b.mul(
                        "var_3",
                        b.add(
                            b.add(b.sub(u(), rhs()), b.mul("tmp_2", "var_3")),
                            b.call("log", b.add(b.call("fabs", u()), b.lit(1.0))),
                        ),
                    ),
                ),
            ),
        ],
    )
    timestep = b.loop("k", "var_1", [sweep])
    kernel = b.kernel(
        params=[
            b.fparam("comp"),
            b.iparam("var_1"),
            b.fparam("var_2"),
            b.fparam("var_3"),
            b.aparam("var_4"),
            b.aparam("var_5"),
        ],
        body=[coef, norm, init, timestep],
    )
    return b.program(kernel, program_id="bt-mini", note="BT.S-style mini app")


@dataclass(frozen=True)
class BTRow:
    """One row of the Table I reproduction.

    ``model_cycles`` is the primary runtime measure (modeled device issue
    cycles; see :class:`repro.devices.interpreter.CostModel`) — it reflects
    what the optimization setting changed in the emitted code.
    ``wall_seconds`` is the host wall-clock of the simulation and is
    reported for transparency only.
    """

    compiler: str
    options: str
    model_cycles: int
    wall_seconds: float
    max_rel_error: float

    @property
    def model_runtime(self) -> str:
        return f"{self.model_cycles / 1.0e6:.3f} Mcycles"

    def cells(self) -> Tuple[str, str, str, str]:
        return (
            self.compiler,
            self.options,
            self.model_runtime,
            f"{self.max_rel_error:.5E}",
        )


#: Inputs: comp=1 (multiplicative accumulator), steps, relaxation,
#: forcing, u fill, rhs fill.
def _bt_inputs(steps: int) -> List[float]:
    return [1.0, steps, 0.9, 1.0e-3, 1.0, 0.5]


def _reference_value(program: Program, inputs: Sequence[float]) -> float:
    interp = Interpreter(ReferenceMath())
    result = interp.run(program.kernel, inputs, ExecOptions())
    return result.value


def run_bt_experiment(steps: int = 40, repeats: int = 3) -> List[BTRow]:
    """The four-row Table I grid: {nvcc, hipcc} × {-O0, -O3 + fast math}.

    ``repeats`` runs each cell several times and keeps the best wall-clock
    (standard benchmarking practice for an interpreter-based runtime).
    """
    program = build_bt_program()
    inputs = _bt_inputs(steps)
    reference = _reference_value(program, inputs)
    if reference == 0.0:
        raise ValueError("degenerate reference value; increase steps")

    grid: List[Tuple[Compiler, Device, OptSetting]] = [
        (NvccCompiler(), nvidia_v100(), OptSetting(OptLevel.O0)),
        (NvccCompiler(), nvidia_v100(), OptSetting(OptLevel.O3, fast_math=True)),
        (HipccCompiler(), amd_mi250x(), OptSetting(OptLevel.O0)),
        (HipccCompiler(), amd_mi250x(), OptSetting(OptLevel.O3, fast_math=True)),
    ]
    rows: List[BTRow] = []
    for compiler, device, opt in grid:
        compiled = compiler.compile(program, opt)
        best = float("inf")
        result = None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            result = device.execute(compiled, inputs)
            best = min(best, time.perf_counter() - t0)
        assert result is not None
        rel_error = abs(result.value - reference) / abs(reference)
        rows.append(
            BTRow(
                compiler=compiler.name,
                options=" ".join(opt.flags_for(compiler.name)),
                model_cycles=result.cost_cycles,
                wall_seconds=best,
                max_rel_error=rel_error,
            )
        )
    return rows
