"""The paper's published kernels, verbatim in IR.

Each function rebuilds one of the figures' ``compute`` kernels with the
exact literals and the exact failure-inducing input vector from the paper,
so the case-study benches run the *same tests* the authors shipped.

* Fig. 2 — the sample FP64 generated program (generator showcase);
* Fig. 4 — Case Study 1: ``fmod`` Num-vs-Num divergence at ``-O0``;
* Fig. 5 — Case Study 2: ``ceil`` Inf-vs-Num divergence at ``-O0``
  (reproduces bit-exactly, including the ``1.34887e-306`` output);
* Fig. 6 — Case Study 3: the verbatim Inf/NaN kernel, plus an engineered
  companion (:func:`case3_engineered_testcase`) that exhibits the same
  phenomenon class — agreement at ``-O0``, Inf-vs-NaN divergence at
  ``-O1`` — through our modeled FMA-contraction asymmetry.  (The verbatim
  kernel's published O0 behaviour is not IEEE-derivable — pure IEEE
  evaluation of the shown input yields NaN on both platforms, which our
  model faithfully produces; see EXPERIMENTS.md.)
"""

from __future__ import annotations

from typing import List

from repro.fp.types import FPType
from repro.ir.builder import IRBuilder
from repro.ir.program import Program
from repro.varity.inputs import InputVector
from repro.varity.testcase import TestCase

__all__ = [
    "fig2_program",
    "fig4_testcase",
    "fig5_testcase",
    "fig6_testcase",
    "case3_engineered_testcase",
]


def _vec(program: Program, texts: List[str]) -> InputVector:
    return InputVector.from_texts(texts, program.kernel)


# ---------------------------------------------------------------------------
# Fig. 2 — sample random program
# ---------------------------------------------------------------------------


def fig2_program() -> Program:
    """The FP64 sample test of Fig. 2."""
    b = IRBuilder(FPType.FP64)
    kernel = b.kernel(
        params=[
            b.fparam("comp"),
            b.iparam("var_1"),
            b.fparam("var_2"),
            b.fparam("var_3"),
            b.fparam("var_4"),
            b.fparam("var_5"),
            b.fparam("var_6"),
            b.fparam("var_7"),
            b.fparam("var_8"),
        ],
        body=[
            b.when(
                b.cmp("==", "comp", b.add(b.raw_lit("-1.3857E-36", -1.3857e-36), "var_2")),
                [
                    b.decl("tmp_1", b.div(b.raw_lit("+1.3305E12", 1.3305e12), "var_3")),
                    b.aug("comp", "+", b.mul(b.raw_lit("-1.7744E-2", -1.7744e-2), "tmp_1")),
                    b.aug(
                        "comp",
                        "+",
                        b.call(
                            "cos",
                            b.sub(
                                "var_4",
                                b.mul(
                                    b.raw_lit("+1.4014E2", 1.4014e2),
                                    b.add("var_5", b.mul("var_6", "var_7")),
                                ),
                            ),
                        ),
                    ),
                    b.loop(
                        "i",
                        "var_1",
                        [
                            b.aug(
                                "comp",
                                "-",
                                b.call("sqrt", b.add("var_8", b.raw_lit("-1.7976E3", -1.7976e3))),
                            )
                        ],
                    ),
                ],
            )
        ],
    )
    return b.program(kernel, program_id="paper-fig2", note="paper Fig. 2")


# ---------------------------------------------------------------------------
# Fig. 4 — Case Study 1 (fmod)
# ---------------------------------------------------------------------------


def fig4_testcase() -> TestCase:
    """Case Study 1: kernel + the failure-inducing input of Fig. 4."""
    b = IRBuilder(FPType.FP64)
    # -1.9289E305 / (-1.2924E-311 - +0.0 + var_7 + +1.3278E-316)
    denom = b.add(
        b.add(
            b.sub(b.raw_lit("-1.2924E-311", -1.2924e-311), b.raw_lit("+0.0", 0.0)),
            b.var("var_7"),
        ),
        b.raw_lit("+1.3278E-316", 1.3278e-316),
    )
    stmt_arr = b.assign(
        b.idx("var_5", "i"),
        b.sub(
            b.div(b.raw_lit("-0.0", -0.0), b.raw_lit("-1.5942E305", -1.5942e305)),
            b.call(
                "fmod",
                b.add(b.raw_lit("+1.7085E-315", 1.7085e-315), "var_6"),
                b.div(b.raw_lit("-1.9289E305", -1.9289e305), denom),
            ),
        ),
    )
    big_arg = b.mul(
        b.raw_lit("-1.7538E305", -1.7538e305),
        b.div(
            "var_8",
            b.sub(
                b.div(b.raw_lit("+0.0", 0.0), "var_9"),
                b.raw_lit("+1.3065E-306", 1.3065e-306),
            ),
        ),
    )
    stmt_acc = b.aug(
        "comp",
        "+",
        b.sub(b.idx("var_5", "i"), b.call("fmod", big_arg, b.raw_lit("+1.5793E-307", 1.5793e-307))),
    )
    stmt_tail = b.aug(
        "comp", "+", b.add(b.raw_lit("+1.8753E-306", 1.8753e-306), "var_10")
    )
    kernel = b.kernel(
        params=[
            b.fparam("comp"),
            b.iparam("var_1"),
            b.fparam("var_2"),
            b.fparam("var_3"),
            b.fparam("var_4"),
            b.aparam("var_5"),
            b.fparam("var_6"),
            b.fparam("var_7"),
            b.fparam("var_8"),
            b.fparam("var_9"),
            b.fparam("var_10"),
        ],
        body=[
            b.when(
                b.cmp(">=", "comp", b.mul("var_2", b.add("var_3", "var_4"))),
                [b.loop("i", "var_1", [stmt_arr, stmt_acc, stmt_tail])],
            )
        ],
    )
    program = b.program(kernel, program_id="paper-fig4", note="paper Fig. 4 / case study 1")
    inputs = _vec(
        program,
        [
            "+0.0", "5", "+1.7612E-322", "+1.1649E-307", "-0.0", "+0.0",
            "+1.5461E-311", "-1.3680E306", "+1.1757E-322", "+1.7130E-319",
            "+1.6782E-321",
        ],
    )
    return TestCase(program, [inputs])


#: The isolated expression of Fig. 4's third panel.
FIG4_FMOD_X = 1.5917195493481116e289
FIG4_FMOD_Y = 1.5793e-307


# ---------------------------------------------------------------------------
# Fig. 5 — Case Study 2 (ceil)
# ---------------------------------------------------------------------------


def fig5_testcase() -> TestCase:
    """Case Study 2: kernel + input of Fig. 5 (bit-exact reproduction)."""
    b = IRBuilder(FPType.FP64)
    kernel = b.kernel(
        params=[b.fparam("comp")],
        body=[
            b.decl("tmp_1", b.raw_lit("+1.1147E-307", 1.1147e-307)),
            b.aug(
                "comp",
                "+",
                b.div("tmp_1", b.call("ceil", b.raw_lit("+1.5955E-125", 1.5955e-125))),
            ),
        ],
    )
    program = b.program(kernel, program_id="paper-fig5", note="paper Fig. 5 / case study 2")
    return TestCase(program, [_vec(program, ["+1.2374E-306"])])


# ---------------------------------------------------------------------------
# Fig. 6 — Case Study 3 (Inf vs NaN under optimization)
# ---------------------------------------------------------------------------


def fig6_testcase() -> TestCase:
    """The verbatim Fig. 6 kernel and input."""
    b = IRBuilder(FPType.FP64)
    tmp_init = b.sub(
        b.raw_lit("-1.8007E-323", -1.8007e-323),
        b.call(
            "cosh",
            b.add(
                b.div("var_2", b.raw_lit("-1.7569E192", -1.7569e192)),
                b.add(
                    b.div(
                        b.raw_lit("-1.9894E-307", -1.9894e-307),
                        b.raw_lit("+1.7323E-313", 1.7323e-313),
                    ),
                    "var_3",
                ),
            ),
        ),
    )
    cond_rhs = b.sub(
        b.raw_lit("-1.4205E305", -1.4205e305),
        b.mul(
            b.raw_lit("-1.4055E-312", -1.4055e-312),
            b.add("var_6", b.div(b.raw_lit("-1.7892E214", -1.7892e214), "var_7")),
        ),
    )
    kernel = b.kernel(
        params=[
            b.fparam("comp"),
            b.iparam("var_1"),
            b.fparam("var_2"),
            b.fparam("var_3"),
            b.fparam("var_4"),
            b.fparam("var_5"),
            b.fparam("var_6"),
            b.fparam("var_7"),
            b.fparam("var_8"),
        ],
        body=[
            b.decl("tmp_1", tmp_init),
            b.aug(
                "comp",
                "+",
                b.add(
                    "tmp_1",
                    b.call("fabs", b.sub(b.raw_lit("+1.5726E-307", 1.5726e-307), "var_4")),
                ),
            ),
            b.loop(
                "i",
                "var_1",
                [b.aug("comp", "+", b.div(b.raw_lit("+1.9903E306", 1.9903e306), "var_5"))],
            ),
            b.when(
                b.cmp(">=", "comp", cond_rhs),
                [b.aug("comp", "+", b.mul(b.raw_lit("+1.3803E305", 1.3803e305), "var_8"))],
            ),
        ],
    )
    program = b.program(kernel, program_id="paper-fig6", note="paper Fig. 6 / case study 3")
    inputs = _vec(
        program,
        [
            "-1.5548E-320", "5", "+1.9121E306", "+0.0", "-1.1577E124",
            "-1.8994E-311", "+1.3675E306", "+1.1296E-318", "+1.2915E306",
        ],
    )
    return TestCase(program, [inputs])


def case3_engineered_testcase() -> TestCase:
    """Engineered Case-Study-3 companion.

    Same phenomenon class as Fig. 6 — platforms agree at ``-O0`` and split
    into Inf vs NaN at ``-O1`` — with a mechanism our model can exhibit
    end-to-end: ``comp += var_2 - var_3 * var_4`` is a ``c - a*b`` shape
    that the nvcc model contracts to a fused multiply-add (finite exact
    result) while the hipcc model evaluates unfused (the product overflows
    to ``+Inf``, so the statement adds ``-Inf``).  The following statement
    adds an overflowing product (``+Inf``): the nvcc side stays finite →
    ``+Inf``; the hipcc side computes ``-Inf + Inf = NaN``.  At ``-O0``
    neither contracts and both print ``nan``.
    """
    b = IRBuilder(FPType.FP64)
    kernel = b.kernel(
        params=[
            b.fparam("comp"),
            b.iparam("var_1"),
            b.fparam("var_2"),
            b.fparam("var_3"),
            b.fparam("var_4"),
            b.fparam("var_5"),
            b.fparam("var_6"),
        ],
        body=[
            b.aug("comp", "+", b.sub("var_2", b.mul("var_3", "var_4"))),
            b.aug("comp", "+", b.mul("var_5", "var_6")),
        ],
    )
    program = b.program(kernel, program_id="case3-engineered", note="engineered case study 3")
    inputs = _vec(
        program,
        ["+0.0", "2", "+1.7000E308", "+1.5000E154", "+1.4000E154", "+1.9000E154", "+1.9000E154"],
    )
    return TestCase(program, [inputs])
