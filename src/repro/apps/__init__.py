"""Applications built on the library.

* :mod:`repro.apps.paper_kernels` — the exact kernels of the paper's
  Figs. 2, 4, 5, 6, hand-built in IR, with their published inputs.
* :mod:`repro.apps.bt` — a compact BT.S-style structured-grid solver for
  the Table I runtime/accuracy tradeoff experiment.
* :mod:`repro.apps.stencil` — an additional stencil workload used by the
  examples.
"""

from repro.apps.paper_kernels import (
    fig2_program,
    fig4_testcase,
    fig5_testcase,
    fig6_testcase,
    case3_engineered_testcase,
)
from repro.apps.bt import build_bt_program, run_bt_experiment, BTRow
from repro.apps.stencil import build_stencil_program

__all__ = [
    "fig2_program",
    "fig4_testcase",
    "fig5_testcase",
    "fig6_testcase",
    "case3_engineered_testcase",
    "build_bt_program",
    "run_bt_experiment",
    "BTRow",
    "build_stencil_program",
]
