"""A 1-D diffusion stencil workload for the examples.

Not part of the paper's evaluation; included as a second realistic
"scientific kernel" (the kind the paper's intro motivates) for users who
want to differential-test their own numerics rather than random programs.
"""

from __future__ import annotations

from repro.fp.types import FPType
from repro.ir.builder import IRBuilder
from repro.ir.nodes import IntConst
from repro.ir.program import Program

__all__ = ["build_stencil_program", "STENCIL_POINTS"]

STENCIL_POINTS = 16


def build_stencil_program(
    fptype: FPType = FPType.FP64, points: int = STENCIL_POINTS
) -> Program:
    """Explicit diffusion with a nonlinear source term.

    Parameters: ``comp`` (checksum), ``var_1`` (steps), ``var_2``
    (diffusion coefficient), ``var_3`` (source scale), ``var_4`` (field
    array).  Each step relaxes the field toward its shifted neighbour and
    accumulates an ``exp``-weighted checksum — enough math-library traffic
    and mul-add shapes to show cross-vendor divergence on real inputs.
    """
    b = IRBuilder(fptype)
    u = lambda idx: b.idx("var_4", idx)  # noqa: E731

    body = [
        b.loop(
            "i",
            "var_1",
            [
                b.loop(
                    "j",
                    IntConst(points - 1),
                    [
                        b.assign(
                            u("j"),
                            b.add(
                                u("j"),
                                b.mul(
                                    "var_2",
                                    b.sub(u(b.add(b.var("j"), IntConst(1))), u("j")),
                                ),
                            ),
                        ),
                    ],
                ),
                b.aug(
                    "comp",
                    "+",
                    b.mul("var_3", b.call("exp", b.mul(b.lit(-1.0e-2), u(IntConst(0))))),
                ),
            ],
        ),
        b.aug("comp", "+", u(IntConst(0))),
    ]
    kernel = b.kernel(
        params=[
            b.fparam("comp"),
            b.iparam("var_1"),
            b.fparam("var_2"),
            b.fparam("var_3"),
            b.aparam("var_4"),
        ],
        body=body,
    )
    return b.program(kernel, program_id=f"stencil-{fptype.value}", note="diffusion stencil")
