"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors
(``TypeError``/``ValueError`` raised by misuse still propagate as-is where
that is the clearer contract).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GrammarError",
    "GenerationError",
    "CodegenError",
    "HipifyError",
    "CompileError",
    "UnsupportedConstructError",
    "ExecutionError",
    "TrapError",
    "HarnessError",
    "MetadataError",
    "AnalysisError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class GrammarError(ReproError):
    """A generator configuration describes an impossible grammar."""


class GenerationError(ReproError):
    """Random program generation failed (e.g. retries exhausted)."""


class CodegenError(ReproError):
    """IR could not be rendered to the requested source language."""


class HipifyError(ReproError):
    """CUDA source could not be translated to HIP."""


class CompileError(ReproError):
    """A compiler model rejected the program or options."""


class UnsupportedConstructError(CompileError):
    """The IR contains a node a backend does not implement."""


class ExecutionError(ReproError):
    """The device interpreter failed while running a kernel."""


class TrapError(ExecutionError):
    """A modeled hardware trap (e.g. iteration budget exceeded)."""

    def __init__(self, message: str, *, steps: int = 0) -> None:
        super().__init__(message)
        self.steps = steps


class HarnessError(ReproError):
    """Differential-testing harness misconfiguration or failure."""


class MetadataError(HarnessError):
    """Campaign metadata could not be loaded, merged, or validated."""


class AnalysisError(ReproError):
    """Result analysis failed (e.g. inconsistent table accounting)."""
