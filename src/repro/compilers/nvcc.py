"""The nvcc compiler model.

Pipelines (DESIGN.md §5):

* ``-O0``: no IR transformation — divergence at O0 comes purely from the
  device math library (mechanism 1).
* ``-O1`` .. ``-O3``: identical pipelines (matching the paper's identical
  O1/O2/O3 discrepancy profiles): constant folding *including host-libm
  folding of constant math calls*, then aggressive four-pattern FMA
  contraction.
* ``-O3 -use_fast_math``: adds finite-math algebraic simplification,
  reassociation, reciprocal-division, and (FP32) approximate intrinsics
  with ``__fdividef`` division; FP32 arithmetic runs with full
  flush-to-zero (inputs and outputs).

Telemetry: the :class:`~repro.compilers.compiler.Compiler` base driver
records ``compile``/``compile.front_end``/``compile.pass`` spans for
this pipeline when tracing is on; nothing here needs its own hooks.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.fp.env import FlushMode
from repro.fp.types import FPType
from repro.devices.vendor import Vendor
from repro.compilers.compiler import Compiler
from repro.compilers.options import OptLevel, OptSetting
from repro.compilers.passes import (
    AlgebraicSimplify,
    ApproxSubstitution,
    ConstantFolding,
    FMAContraction,
    NVCC_PATTERNS,
    Pass,
    Reassociation,
    ReciprocalDivision,
)

__all__ = ["NvccCompiler"]


class NvccCompiler(Compiler):
    """Model of nvcc targeting the simulated V100."""

    name = "nvcc"
    vendor = Vendor.NVIDIA

    def pipeline(self, opt: OptSetting, fptype: FPType) -> Sequence[Pass]:
        if opt.level is OptLevel.O0 and not opt.fast_math:
            return ()
        passes: List[Pass] = [ConstantFolding(fold_math_calls=True)]
        if opt.fast_math:
            passes.append(AlgebraicSimplify())
            passes.append(Reassociation())
            passes.append(ReciprocalDivision())
        passes.append(FMAContraction(NVCC_PATTERNS))
        if opt.fast_math:
            passes.append(ApproxSubstitution(rewrite_division=True))
        return passes

    def flush_mode(self, opt: OptSetting, fptype: FPType) -> FlushMode:
        # --use_fast_math implies --ftz=true, FP32 only (FP64 has no FTZ
        # mode on NVIDIA GPUs, and the __half pipeline keeps subnormal
        # support at every setting).  nvcc flushes operands and results.
        if opt.fast_math and fptype is FPType.FP32:
            return FlushMode.FLUSH_INPUTS_OUTPUTS
        return FlushMode.NONE
