"""Finite-math algebraic simplification (nvcc fast-math model).

Fast math lets the compiler assume no NaNs/Infs and simplify
identities that are *not* IEEE-safe:

* ``x * 0 → 0`` and ``0 * x → 0`` — wrong when x is NaN/Inf (NaN becomes 0);
* ``x - x → 0`` — wrong when x is NaN/Inf;
* ``x + 0 → x`` / ``0 + x → x`` — wrong only for signed zero, which the
  paper's discrepancy rules ignore;
* ``x * 1 → x``, ``x / 1 → x`` — always safe, included for completeness.

These rewrites are how a kernel that prints ``-inf`` or ``nan`` at O0 can
print a finite value at O3_FM — the paper's Case Study 3 family
(Inf-vs-NaN and NaN-vs-Num under optimization).  The hipcc model does not
apply them: the ``-DHIP_FAST_MATH`` route the paper uses exists precisely
because ROCm's ``-ffast-math`` NaN/Inf assumptions broke Varity tests
(§III-D), so the modeled hipcc keeps NaN/Inf semantics.
"""

from __future__ import annotations

from repro.ir.nodes import BinOp, Const, Expr, structurally_equal
from repro.ir.program import Kernel
from repro.ir.visitor import Transformer
from repro.compilers.passes.base import Pass

__all__ = ["AlgebraicSimplify"]


def _is_const(expr: Expr, value: float) -> bool:
    return isinstance(expr, Const) and expr.value == value


class _Simplifier(Transformer):
    def __init__(self) -> None:
        self.n_simplified = 0

    def visit_BinOp(self, node: BinOp) -> Expr:
        if node.op == "*":
            if _is_const(node.left, 0.0) or _is_const(node.right, 0.0):
                self.n_simplified += 1
                return Const(0.0, "+0.0")
            if _is_const(node.right, 1.0):
                self.n_simplified += 1
                return node.left
            if _is_const(node.left, 1.0):
                self.n_simplified += 1
                return node.right
        elif node.op == "-":
            if structurally_equal(node.left, node.right):
                self.n_simplified += 1
                return Const(0.0, "+0.0")
        elif node.op == "+":
            if _is_const(node.right, 0.0):
                self.n_simplified += 1
                return node.left
            if _is_const(node.left, 0.0):
                self.n_simplified += 1
                return node.right
        elif node.op == "/":
            if _is_const(node.right, 1.0):
                self.n_simplified += 1
                return node.left
        return node


class AlgebraicSimplify(Pass):
    """Apply finite-math identities (value-unsafe for NaN/Inf)."""

    name = "fast-algebraic"

    def run(self, kernel: Kernel) -> Kernel:
        s = _Simplifier()
        body = s.transform_body(kernel.body)
        if s.n_simplified == 0:
            return kernel
        return kernel.with_body(body)
