"""Fast-math reassociation (nvcc model only).

``-use_fast_math`` permits value-unsafe reassociation of floating-point
addition/multiplication chains.  The nvcc model rebuilds chains of three
or more ``+`` (or ``*``) terms into a balanced tree — the association a
GPU backend favours for instruction-level parallelism — while the hipcc
model (``-DHIP_FAST_MATH``) leaves source association alone.  Different
association ⇒ different intermediate roundings ⇒ divergence on a
value-dependent subset: mechanism 3 of DESIGN.md §5 and the reason the
paper's O3_FM rows exceed O3.
"""

from __future__ import annotations

from typing import List

from repro.ir.nodes import BinOp, Expr
from repro.ir.program import Kernel
from repro.ir.visitor import Transformer
from repro.compilers.passes.base import Pass

__all__ = ["Reassociation"]


def _collect_chain(expr: Expr, op: str, terms: List[Expr]) -> None:
    """Flatten a same-operator chain (left-spine and right-spine)."""
    if isinstance(expr, BinOp) and expr.op == op:
        _collect_chain(expr.left, op, terms)
        _collect_chain(expr.right, op, terms)
    else:
        terms.append(expr)


def _balanced(terms: List[Expr], op: str) -> Expr:
    """Build a balanced binary tree over ``terms`` (pairwise reduction)."""
    if len(terms) == 1:
        return terms[0]
    mid = len(terms) // 2
    return BinOp(op, _balanced(terms[:mid], op), _balanced(terms[mid:], op))


class _Reassociator(Transformer):
    def __init__(self) -> None:
        self.n_rebuilt = 0

    def _maybe_rebuild(self, node: BinOp) -> Expr:
        terms: List[Expr] = []
        _collect_chain(node, node.op, terms)
        if len(terms) < 3:
            return node
        rebuilt = _balanced(terms, node.op)
        if rebuilt == node:
            return node
        self.n_rebuilt += 1
        return rebuilt

    def visit_BinOp(self, node: BinOp) -> Expr:
        if node.op in ("+", "*"):
            # Only rebuild at chain roots: skip if the parent will handle it.
            # Transformer is bottom-up, so inner chain nodes get rebuilt
            # first; rebuilding is idempotent on balanced trees, and the
            # final shape is determined by the outermost rebuild.
            return self._maybe_rebuild(node)
        return node


class Reassociation(Pass):
    """Balance ``+``/``*`` chains of length ≥ 3."""

    name = "fast-reassoc"

    def run(self, kernel: Kernel) -> Kernel:
        r = _Reassociator()
        body = r.transform_body(kernel.body)
        if r.n_rebuilt == 0:
            return kernel
        return kernel.with_body(body)
