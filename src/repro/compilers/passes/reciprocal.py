"""Fast-math reciprocal substitution (nvcc model only).

``-freciprocal-math`` (implied by fast math) rewrites division by a
constant into multiplication by the rounded reciprocal:
``x / c  →  x * (1/c)``.  Two consequences, both observed in practice and
both divergence sources against a compiler that keeps the division:

* the reciprocal itself rounds, and the multiply rounds again — up to
  1 ULP difference from the single-rounded division;
* if ``c`` is subnormal, ``1/c`` overflows to Inf and a finite quotient
  turns into Inf/NaN — feeding the Inf-vs-Num classes at O3_FM.
"""

from __future__ import annotations

import math

import numpy as np

from repro.fp.types import FPType
from repro.fp.literals import format_varity_literal
from repro.ir.nodes import BinOp, Const, Expr
from repro.ir.program import Kernel
from repro.ir.visitor import Transformer
from repro.compilers.passes.base import Pass

__all__ = ["ReciprocalDivision"]


class _Recip(Transformer):
    def __init__(self, fptype: FPType) -> None:
        self.fptype = fptype
        self.n_rewritten = 0

    def visit_BinOp(self, node: BinOp) -> Expr:
        if node.op != "/" or not isinstance(node.right, Const):
            return node
        c = node.right.value
        if c == 0.0 or math.isnan(c) or math.isinf(c):
            return node  # keep the division; 1/0 folding is not profitable
        with np.errstate(all="ignore"):
            recip = float(self.fptype.dtype.type(1.0) / self.fptype.dtype.type(c))
        # Exact reciprocals (powers of two) do not change the value; rewrite
        # anyway — it is what the flag does — but it is a no-op numerically.
        if math.isinf(recip):
            text = None
        else:
            try:
                text = format_varity_literal(recip, self.fptype)
            except ValueError:
                text = None
        self.n_rewritten += 1
        return BinOp("*", node.left, Const(recip, text))


class ReciprocalDivision(Pass):
    """Rewrite division-by-constant into multiply-by-reciprocal."""

    name = "fast-recip"

    def run(self, kernel: Kernel) -> Kernel:
        t = _Recip(kernel.fptype)
        body = t.transform_body(kernel.body)
        if t.n_rewritten == 0:
            return kernel
        return kernel.with_body(body)
