"""IR optimization passes used by the compiler models."""

from repro.compilers.passes.base import Pass
from repro.compilers.passes.constant_folding import ConstantFolding
from repro.compilers.passes.fma_contraction import FMAContraction, NVCC_PATTERNS, HIPCC_PATTERNS
from repro.compilers.passes.reassociation import Reassociation
from repro.compilers.passes.reciprocal import ReciprocalDivision
from repro.compilers.passes.algebraic import AlgebraicSimplify
from repro.compilers.passes.approx import ApproxSubstitution

__all__ = [
    "Pass",
    "ConstantFolding",
    "FMAContraction",
    "NVCC_PATTERNS",
    "HIPCC_PATTERNS",
    "Reassociation",
    "ReciprocalDivision",
    "AlgebraicSimplify",
    "ApproxSubstitution",
]
