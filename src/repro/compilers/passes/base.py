"""Pass interface."""

from __future__ import annotations

import abc

from repro.ir.program import Kernel

__all__ = ["Pass"]


class Pass(abc.ABC):
    """A kernel-to-kernel transformation.

    Passes must be pure: same input kernel → same output kernel, no
    mutation of the input (the harness compiles one program at five
    settings from the same IR).
    """

    #: Short identifier recorded in CompiledKernel.passes_applied.
    name: str = "pass"

    @abc.abstractmethod
    def run(self, kernel: Kernel) -> Kernel:
        """Return the transformed kernel (may be the input if unchanged)."""

    def __repr__(self) -> str:
        return f"<pass {self.name}>"
