"""FP32 approximate-intrinsic substitution under fast math.

Mechanism 4 of DESIGN.md §5 — the source of the paper's Table IX
explosion (13,877 discrepancies at O3_FM vs 45 at O0):

* the nvcc model (``-use_fast_math``) rewrites FP32 math calls to their
  ``__funcf`` hardware-approximation variants *and* rewrites every FP32
  division into ``__fdividef`` (which additionally returns 0 for huge
  divisors — see :mod:`repro.devices.mathlib.libdevice`);
* the hipcc model (``-DHIP_FAST_MATH``) selects OCML's native fast
  variants for the same functions — a *different* approximation with a
  different error profile — and keeps IEEE division.

Both sides get faster and less accurate, but differently, so nearly every
approximated call disagrees between the vendors.  FP64 has no hardware
approximation path on either stack, and FP16 math in our model routes
through the same half-precision library entry points at every setting
(neither vendor documents a separate ``__h*`` fast-math variant set for
the functions the generator emits) — the pass only touches FP32 kernels.
"""

from __future__ import annotations

from repro.fp.types import FPType
from repro.ir.nodes import BinOp, Call, Expr
from repro.ir.program import Kernel
from repro.ir.visitor import Transformer
from repro.compilers.passes.base import Pass
from repro.devices.mathlib.base import APPROX_CAPABLE

__all__ = ["ApproxSubstitution"]


class _Substituter(Transformer):
    def __init__(self, rewrite_division: bool) -> None:
        self.rewrite_division = rewrite_division
        self.n_substituted = 0

    def visit_Call(self, node: Call) -> Expr:
        if node.func in APPROX_CAPABLE and node.variant in ("default", "hipify"):
            self.n_substituted += 1
            return Call(node.func, node.args, variant="approx")
        return node

    def visit_BinOp(self, node: BinOp) -> Expr:
        if self.rewrite_division and node.op == "/":
            self.n_substituted += 1
            return Call("__fdividef", (node.left, node.right), variant="approx")
        return node


class ApproxSubstitution(Pass):
    """Substitute fast-math FP32 approximations (no-op on FP64 kernels)."""

    def __init__(self, rewrite_division: bool) -> None:
        self.rewrite_division = rewrite_division
        self.name = "fast-approx+fdividef" if rewrite_division else "fast-approx"

    def run(self, kernel: Kernel) -> Kernel:
        if kernel.fptype is not FPType.FP32:
            return kernel
        s = _Substituter(self.rewrite_division)
        body = s.transform_body(kernel.body)
        if s.n_substituted == 0:
            return kernel
        return kernel.with_body(body)
