"""Constant folding.

Two tiers:

* **Arithmetic folding** (both compilers, ``-O1`` and up): ``Const op
  Const`` is evaluated at compile time in round-to-nearest target
  precision — bit-identical to what the device would compute, so this
  tier never changes results and never diverges.

* **Math-call folding** (nvcc only in our model): calls whose arguments
  are all constants are evaluated with the *host* math library (the
  correctly-rounded reference), not the device library.  On real systems
  compile-time evaluation of ``cos(2.0)`` uses the compiler host's libm
  while the runtime call would use libdevice/OCML — so turning folding on
  *changes which library answers*, one of the ways O1 introduces
  discrepancies that O0 does not have (the paper's Tables V/VII show new
  NaN-vs-Inf cases appearing exactly at O1).  The hipcc model keeps math
  calls unfolded (clang is conservative about errno/rounding there).
"""

from __future__ import annotations

import math

import numpy as np

from repro.fp.types import FPType
from repro.fp.literals import format_varity_literal
from repro.ir.nodes import BinOp, Call, Const, Expr, UnOp
from repro.ir.program import Kernel
from repro.ir.visitor import Transformer
from repro.compilers.passes.base import Pass
from repro.devices.mathlib.base import reference_call

__all__ = ["ConstantFolding"]


def _const(value: float, fptype: FPType) -> Const:
    """A folded constant (text marks it as compile-time)."""
    v = float(value)
    if math.isnan(v) or math.isinf(v):
        return Const(v, None)
    try:
        text = format_varity_literal(v, fptype)
    except ValueError:
        text = None
    return Const(v, text)


class _Folder(Transformer):
    def __init__(self, fptype: FPType, fold_math_calls: bool) -> None:
        self.fptype = fptype
        self.fold_math_calls = fold_math_calls
        self.n_folded = 0

    def _cast(self, value: float):
        return self.fptype.dtype.type(value)

    def visit_UnOp(self, node: UnOp) -> Expr:
        if node.op == "-" and isinstance(node.operand, Const):
            self.n_folded += 1
            return _const(float(-self._cast(node.operand.value)), self.fptype)
        if node.op == "+" and isinstance(node.operand, Const):
            return node.operand
        return node

    def visit_BinOp(self, node: BinOp) -> Expr:
        if not (isinstance(node.left, Const) and isinstance(node.right, Const)):
            return node
        with np.errstate(all="ignore"):
            l = self._cast(node.left.value)
            r = self._cast(node.right.value)
            if node.op == "+":
                v = l + r
            elif node.op == "-":
                v = l - r
            elif node.op == "*":
                v = l * r
            else:
                v = l / r
        self.n_folded += 1
        return _const(float(v), self.fptype)

    def visit_Call(self, node: Call) -> Expr:
        if not self.fold_math_calls:
            return node
        if node.variant != "default":
            return node
        if not all(isinstance(a, Const) for a in node.args):
            return node
        try:
            value = reference_call(node.func, [a.value for a in node.args], self.fptype)
        except (KeyError, ValueError):
            return node
        self.n_folded += 1
        return _const(value, self.fptype)


class ConstantFolding(Pass):
    """Fold constant subexpressions (see module docstring for tiers)."""

    def __init__(self, fold_math_calls: bool = False) -> None:
        self.fold_math_calls = fold_math_calls
        self.name = "const-fold+libm" if fold_math_calls else "const-fold"

    def run(self, kernel: Kernel) -> Kernel:
        folder = _Folder(kernel.fptype, self.fold_math_calls)
        body = folder.transform_body(kernel.body)
        if folder.n_folded == 0:
            return kernel
        return kernel.with_body(body)
