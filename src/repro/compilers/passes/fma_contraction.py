"""FMA contraction with per-compiler pattern coverage.

Mechanism 2 of DESIGN.md §5: both real compilers contract
multiply-add into fused operations (one rounding instead of two) at
``-O1`` and above, but the *set of shapes* they recognise differs.  Where
both contract, results agree (our FMA evaluation is shared); where only
one does, the extra rounding shows up as a value-dependent Num-vs-Num (or,
near the overflow boundary, Inf-vs-Num / NaN-vs-Inf) discrepancy — the
paper's Tables V/VII show the O0→O1 count jump this produces.

Pattern names:

* ``mul-left-add``  — ``a*b + c``  → ``fma(a, b, c)``
* ``mul-right-add`` — ``c + a*b``  → ``fma(a, b, c)``
* ``mul-left-sub``  — ``a*b - c``  → ``fma(a, b, -c)``
* ``mul-right-sub`` — ``c - a*b``  → ``fma(-a, b, c)``  (negated product)

The nvcc model contracts all four (ptxas is aggressive with ``-fmad=true``);
the hipcc model contracts only the ``mul-left-*`` shapes.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.ir.nodes import BinOp, Expr, FMA, UnOp
from repro.ir.program import Kernel
from repro.ir.visitor import Transformer
from repro.compilers.passes.base import Pass

__all__ = ["FMAContraction", "NVCC_PATTERNS", "HIPCC_PATTERNS"]

NVCC_PATTERNS: FrozenSet[str] = frozenset(
    {"mul-left-add", "mul-right-add", "mul-left-sub", "mul-right-sub"}
)
HIPCC_PATTERNS: FrozenSet[str] = frozenset({"mul-left-add", "mul-left-sub"})


class _Contractor(Transformer):
    def __init__(self, patterns: FrozenSet[str]) -> None:
        self.patterns = patterns
        self.n_contracted = 0

    def visit_BinOp(self, node: BinOp) -> Expr:
        if node.op == "+":
            if isinstance(node.left, BinOp) and node.left.op == "*" and "mul-left-add" in self.patterns:
                self.n_contracted += 1
                return FMA(node.left.left, node.left.right, node.right)
            if isinstance(node.right, BinOp) and node.right.op == "*" and "mul-right-add" in self.patterns:
                self.n_contracted += 1
                return FMA(node.right.left, node.right.right, node.left)
        elif node.op == "-":
            if isinstance(node.left, BinOp) and node.left.op == "*" and "mul-left-sub" in self.patterns:
                self.n_contracted += 1
                return FMA(node.left.left, node.left.right, UnOp("-", node.right))
            if isinstance(node.right, BinOp) and node.right.op == "*" and "mul-right-sub" in self.patterns:
                self.n_contracted += 1
                return FMA(node.right.left, node.right.right, node.left, negate_product=True)
        return node


class FMAContraction(Pass):
    """Contract multiply-add shapes into FMA nodes."""

    def __init__(self, patterns: FrozenSet[str]) -> None:
        unknown = patterns - (NVCC_PATTERNS | HIPCC_PATTERNS)
        if unknown:
            raise ValueError(f"unknown contraction patterns: {sorted(unknown)}")
        self.patterns = frozenset(patterns)
        self.name = "fma-contract"

    def run(self, kernel: Kernel) -> Kernel:
        contractor = _Contractor(self.patterns)
        body = contractor.transform_body(kernel.body)
        if contractor.n_contracted == 0:
            return kernel
        return kernel.with_body(body)
