"""The hipcc compiler model.

Pipelines (DESIGN.md §5):

* ``-O0``: no IR transformation.
* ``-O1`` .. ``-O3``: identical pipelines: arithmetic-only constant
  folding (no host-libm folding of math calls) and conservative
  two-pattern FMA contraction.
* ``-O3 -DHIP_FAST_MATH``: the route the paper uses instead of
  ``-ffast-math`` (§III-D — ``-ffinite-math-only`` breaks tests that
  legitimately produce NaN/Inf).  It selects OCML's native fast FP32
  variants and multiplies by rounded reciprocals for constant divisors,
  but keeps IEEE general division, performs no NaN/Inf-unsafe algebraic
  rewrites, and flushes FP32 subnormal *results* only.

HIPIFY-converted programs (``program.via_hipify``) additionally resolve a
small set of math calls through the modeled compatibility wrapper — the
``hipify`` call variant (mechanism 5).
"""

from __future__ import annotations

import time
from typing import List, Sequence

from repro.fp.env import FlushMode
from repro.fp.types import FPType
from repro.devices.vendor import Vendor
from repro.devices.mathlib.ocml import HIPIFY_WRAPPED
from repro.ir.nodes import Call, Expr
from repro.ir.program import Kernel, Program
from repro.ir.visitor import Transformer
from repro.compilers.compiler import Compiler
from repro.compilers.options import OptLevel, OptSetting
from repro.compilers.passes import (
    ApproxSubstitution,
    ConstantFolding,
    FMAContraction,
    HIPCC_PATTERNS,
    Pass,
    ReciprocalDivision,
)
from repro.telemetry.spans import get_tracer

__all__ = ["HipccCompiler"]


class _MarkHipifyCalls(Transformer):
    """Tag wrapped math calls in HIPIFY-converted sources."""

    def __init__(self) -> None:
        self.n_marked = 0

    def visit_Call(self, node: Call) -> Expr:
        if node.func in HIPIFY_WRAPPED and node.variant == "default":
            self.n_marked += 1
            return Call(node.func, node.args, variant="hipify")
        return node


class HipccCompiler(Compiler):
    """Model of hipcc targeting the simulated MI250X."""

    name = "hipcc"
    vendor = Vendor.AMD
    hipify_sensitive = True  # preprocess resolves HIPIFY-converted calls

    def preprocess(self, program: Program) -> Kernel:
        kernel = program.kernel
        if program.via_hipify:
            tracer = get_tracer()
            t0 = time.perf_counter_ns() if tracer.enabled else 0
            marker = _MarkHipifyCalls()
            body = marker.transform_body(kernel.body)
            if marker.n_marked:
                kernel = kernel.with_body(body)
            if tracer.enabled:
                tracer.record(
                    "compile.hipify",
                    t0,
                    time.perf_counter_ns(),
                    marked=marker.n_marked,
                )
        return kernel

    def pipeline(self, opt: OptSetting, fptype: FPType) -> Sequence[Pass]:
        if opt.level is OptLevel.O0 and not opt.fast_math:
            return ()
        passes: List[Pass] = [ConstantFolding(fold_math_calls=False)]
        if opt.fast_math:
            passes.append(ReciprocalDivision())
        passes.append(FMAContraction(HIPCC_PATTERNS))
        if opt.fast_math:
            passes.append(ApproxSubstitution(rewrite_division=False))
        return passes

    def flush_mode(self, opt: OptSetting, fptype: FPType) -> FlushMode:
        if opt.fast_math and fptype is FPType.FP32:
            return FlushMode.FLUSH_OUTPUTS
        return FlushMode.NONE
