"""Optimization settings.

The paper evaluates five settings per compiler (§IV-B): ``-O0``, ``-O1``,
``-O2``, ``-O3``, and ``-O3`` with fast math.  Fast math means
``-use_fast_math`` for nvcc and — following the ROCm guidance the paper
cites in §III-D — ``-DHIP_FAST_MATH`` rather than ``-ffast-math`` for
hipcc (plain ``-ffast-math`` breaks HIP programs that produce NaN/Inf via
``-ffinite-math-only``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

__all__ = ["OptLevel", "OptSetting", "PAPER_OPT_SETTINGS"]


class OptLevel(enum.IntEnum):
    O0 = 0
    O1 = 1
    O2 = 2
    O3 = 3

    @property
    def flag(self) -> str:
        return f"-O{int(self)}"


@dataclass(frozen=True)
class OptSetting:
    """One column of the paper's experiment grid."""

    level: OptLevel
    fast_math: bool = False

    @property
    def label(self) -> str:
        """Paper-style label: O0 … O3, O3_FM."""
        base = f"O{int(self.level)}"
        return f"{base}_FM" if self.fast_math else base

    def flags_for(self, compiler_name: str) -> Tuple[str, ...]:
        """Command-line rendering for metadata files (Fig. 3)."""
        flags: Tuple[str, ...] = (self.level.flag,)
        if self.fast_math:
            if compiler_name == "nvcc":
                flags += ("-use_fast_math",)
            elif compiler_name == "clang":
                flags += ("-ffast-math",)
            else:
                flags += ("-DHIP_FAST_MATH",)
        return flags

    @classmethod
    def from_label(cls, label: str) -> "OptSetting":
        label = label.strip().upper()
        fast = label.endswith("_FM")
        if fast:
            label = label[: -len("_FM")]
        if not (len(label) == 2 and label[0] == "O" and label[1] in "0123"):
            raise ValueError(f"bad optimization label {label!r}")
        return cls(OptLevel(int(label[1])), fast)

    def __str__(self) -> str:
        return self.label


#: The exact grid of §IV-B, in table order.
PAPER_OPT_SETTINGS: Tuple[OptSetting, ...] = (
    OptSetting(OptLevel.O0),
    OptSetting(OptLevel.O1),
    OptSetting(OptLevel.O2),
    OptSetting(OptLevel.O3),
    OptSetting(OptLevel.O3, fast_math=True),
)
