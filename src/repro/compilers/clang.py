"""The clang compiler model — the CPU host stack.

Pipelines:

* ``-O0``: no IR transformation, like the GPU models — divergence at O0
  comes purely from the math library.
* ``-O1`` .. ``-O3``: constant folding *with* host-libm folding of
  constant math calls (clang folds libm calls against the host libm,
  like nvcc and unlike hipcc) and aggressive FMA contraction:
  ``-ffp-contract=on`` is clang's default and x86-64-v3 has FMA3, so the
  autovectorizer contracts across statements the way nvcc does.
* ``-O3 -ffast-math``: adds finite-math algebraic simplification,
  reassociation (the autovectorizer's horizontal reductions reassociate
  freely under ``-funsafe-math-optimizations``), and reciprocal
  division.  No approximate-intrinsic substitution: a host build has no
  ``__cosf``-class device intrinsics — math calls stay libm calls —
  which is the CPU lane's sharpest contrast with the GPU stacks under
  fast math.  FP32 arithmetic runs with MXCSR FTZ+DAZ (crtfastmath sets
  both), flushing inputs and outputs.

Telemetry: the :class:`~repro.compilers.compiler.Compiler` base driver
records ``compile``/``compile.front_end``/``compile.pass`` spans for
this pipeline when tracing is on; nothing here needs its own hooks.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.fp.env import FlushMode
from repro.fp.types import FPType
from repro.devices.vendor import Vendor
from repro.compilers.compiler import Compiler
from repro.compilers.options import OptLevel, OptSetting
from repro.compilers.passes import (
    AlgebraicSimplify,
    ConstantFolding,
    FMAContraction,
    NVCC_PATTERNS,
    Pass,
    Reassociation,
    ReciprocalDivision,
)

__all__ = ["ClangCompiler"]


class ClangCompiler(Compiler):
    """Model of clang -march=x86-64-v3 targeting the simulated host."""

    name = "clang"
    vendor = Vendor.CPU

    def pipeline(self, opt: OptSetting, fptype: FPType) -> Sequence[Pass]:
        if opt.level is OptLevel.O0 and not opt.fast_math:
            return ()
        passes: List[Pass] = [ConstantFolding(fold_math_calls=True)]
        if opt.fast_math:
            passes.append(AlgebraicSimplify())
            passes.append(Reassociation())
            passes.append(ReciprocalDivision())
        # FMA3 + default -ffp-contract=on: aggressive four-pattern
        # contraction, same shape as nvcc's.
        passes.append(FMAContraction(NVCC_PATTERNS))
        return passes

    def flush_mode(self, opt: OptSetting, fptype: FPType) -> FlushMode:
        # -ffast-math links crtfastmath.o, which sets MXCSR FTZ and DAZ:
        # FP32 operands *and* results flush.  SSE has no FP64 FTZ effect
        # in this model (matching the GPU lanes' FP64-keeps-subnormals
        # behaviour), and _Float16 arithmetic promotes through binary32
        # with subnormal support.
        if opt.fast_math and fptype is FPType.FP32:
            return FlushMode.FLUSH_INPUTS_OUTPUTS
        return FlushMode.NONE
