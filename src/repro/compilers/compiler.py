"""Compiler base: pass pipelines → compiled kernels.

Telemetry: when the active tracer is enabled the base driver records a
``compile.front_end`` span per preprocess+validate, a ``compile`` span
per (program, opt) specialization, and a ``compile.pass`` span per
pipeline pass — covering every subclass (nvcc/hipcc/clang) without
per-subclass instrumentation.  Disabled, the cost is one attribute
lookup per compile.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import CompileError
from repro.fp.env import FlushMode
from repro.fp.types import FPType
from repro.ir.program import Kernel, Program
from repro.ir.validate import validate_kernel
from repro.devices.interpreter import ExecOptions
from repro.devices.vendor import Vendor
from repro.compilers.options import OptSetting
from repro.compilers.passes.base import Pass
from repro.telemetry.spans import get_tracer

__all__ = ["CompiledKernel", "Compiler"]


@dataclass(frozen=True)
class CompiledKernel:
    """The model's "binary": transformed IR + execution environment.

    ``passes_applied`` records the pipeline for metadata files and the
    case-study reports (the analogue of inspecting SASS/GCN ISA in the
    paper's root-cause analysis).
    """

    kernel: Kernel
    vendor: Vendor
    opt: OptSetting
    exec_options: ExecOptions
    passes_applied: Tuple[str, ...] = ()
    program_id: str = ""

    @property
    def label(self) -> str:
        return f"{self.vendor.compiler_name} -{self.opt.label}"


class Compiler(abc.ABC):
    """Common compile driver; subclasses define pipelines and FTZ policy."""

    #: e.g. "nvcc" / "hipcc"
    name: str = "cc"
    vendor: Vendor
    #: True when :meth:`preprocess` depends on ``program.via_hipify`` —
    #: the artifact cache then keys native and HIPIFY-twin compiles
    #: separately (hipcc); compilers that treat the twin byte-identically
    #: (nvcc, clang) share one artifact for both.
    hipify_sensitive: bool = False

    def compile(self, program: Program, opt: OptSetting) -> CompiledKernel:
        """Compile one program at one optimization setting."""
        return self._specialize(program, self._front_end(program), opt)

    def compile_sweep(
        self, program: Program, opts: Sequence[OptSetting]
    ) -> Dict[str, CompiledKernel]:
        """Compile one program at every optimization setting, keyed by label.

        The front end (preprocessing + validation) runs once and is shared
        across all settings; only the per-setting pass pipeline is repeated.
        This is the compile path of the campaign engine's per-program
        execution plan.
        """
        kernel = self._front_end(program)
        return {opt.label: self._specialize(program, kernel, opt) for opt in opts}

    # -- internals ------------------------------------------------------------
    def _front_end(self, program: Program) -> Kernel:
        """Preprocess and validate; the opt-independent half of a compile."""
        tracer = get_tracer()
        t0 = time.perf_counter_ns() if tracer.enabled else 0
        kernel = self.preprocess(program)
        issues = validate_kernel(kernel)
        if tracer.enabled:
            tracer.record(
                "compile.front_end",
                t0,
                time.perf_counter_ns(),
                compiler=self.name,
            )
        if issues:
            raise CompileError(
                f"{self.name}: program {program.program_id!r} is malformed: "
                + "; ".join(str(i) for i in issues[:5])
            )
        return kernel

    def _specialize(
        self, program: Program, kernel: Kernel, opt: OptSetting
    ) -> CompiledKernel:
        """Run the pass pipeline for one setting on a validated kernel."""
        tracer = get_tracer()
        applied: List[str] = []
        t0 = time.perf_counter_ns() if tracer.enabled else 0
        for p in self.pipeline(opt, kernel.fptype):
            p0 = time.perf_counter_ns() if tracer.enabled else 0
            new_kernel = p.run(kernel)
            if tracer.enabled:
                tracer.record(
                    "compile.pass",
                    p0,
                    time.perf_counter_ns(),
                    compiler=self.name,
                    opt=opt.label,
                    pass_name=p.name,
                )
            if new_kernel is not kernel:
                applied.append(p.name)
            kernel = new_kernel
        if tracer.enabled:
            tracer.record(
                "compile",
                t0,
                time.perf_counter_ns(),
                compiler=self.name,
                opt=opt.label,
            )
        return CompiledKernel(
            kernel=kernel,
            vendor=self.vendor,
            opt=opt,
            exec_options=ExecOptions(flush=self.flush_mode(opt, kernel.fptype)),
            passes_applied=tuple(applied),
            program_id=program.program_id,
        )

    # -- customization points -------------------------------------------------
    def preprocess(self, program: Program) -> Kernel:
        """Source-level preparation before the pass pipeline (default: none)."""
        return program.kernel

    @abc.abstractmethod
    def pipeline(self, opt: OptSetting, fptype: FPType) -> Sequence[Pass]:
        """The pass list for one optimization setting."""

    @abc.abstractmethod
    def flush_mode(self, opt: OptSetting, fptype: FPType) -> FlushMode:
        """Subnormal handling of the generated code."""

    def __repr__(self) -> str:
        return f"<{self.name} compiler model>"
