"""Compiler models for nvcc and hipcc.

A compiler model maps ``(program, optimization setting)`` to a
:class:`~repro.compilers.compiler.CompiledKernel`: a transformed IR plus
execution options (flush-to-zero mode).  The pass pipelines encode the
paper's divergence mechanisms 2–4 (DESIGN.md §5): FMA-contraction pattern
coverage, fast-math value-unsafe rewrites, FP32 approximate intrinsics and
FTZ.  ``-O1``/``-O2``/``-O3`` run identical pipelines by design — the
paper's Tables V/VII/IX measured identical discrepancy profiles across
them, and our model makes that exact.
"""

from repro.compilers.options import OptLevel, OptSetting, PAPER_OPT_SETTINGS
from repro.compilers.compiler import Compiler, CompiledKernel
from repro.compilers.nvcc import NvccCompiler
from repro.compilers.hipcc import HipccCompiler

__all__ = [
    "OptLevel",
    "OptSetting",
    "PAPER_OPT_SETTINGS",
    "Compiler",
    "CompiledKernel",
    "NvccCompiler",
    "HipccCompiler",
]
