"""The content-keyed compiled-artifact cache.

Compilation in this model is a pure function of *(source kernel text,
compiler, optimization setting, pass pipeline)* — the front end
(preprocess + validate) and every pass are deterministic IR→IR
transforms.  The campaign and fuzz engines recompile the same handful of
kernels constantly: a test's HIPIFY twin is byte-identical CUDA source,
fuzz mutants share ancestors, and every (test, opt) pair re-enters the
pipeline once per sweep.  :class:`ArtifactCache` memoizes the finished
:class:`~repro.compilers.compiler.CompiledKernel` under a content key so
identical kernels never re-enter preprocess/validate/pass pipelines.

The key is built from the **source** kernel's canonical rendering (the
post-pass kernel may contain folded literals — e.g. ``inf`` — that the
canonical emitter rejects by design), qualified by:

* the compiler's registry name and the kernel's fp type;
* ``program.via_hipify`` — only when the compiler declares itself
  :attr:`~repro.compilers.compiler.Compiler.hipify_sensitive` (hipcc's
  preprocess resolves HIPIFY-converted programs differently; nvcc and
  clang compile the twin byte-identically, so their artifacts are
  *shared* between a native test and its twin);
* the optimization label and the pass-pipeline fingerprint (the ordered
  pass names), so a pipeline change invalidates persisted artifacts
  instead of replaying stale ones.

A cache hit rebinds ``program_id`` to the requesting program and is
otherwise the exact object a fresh compile would produce — the hard
invariant is that routing compiles through the cache leaves every
ledger, fingerprint, and printed value byte-identical.

Tiers mirror :class:`~repro.exec.store.RunStore`: a bounded LRU memory
tier, plus an optional persistent directory (one pickle per artifact,
written atomically via temp-file + rename) so a reopened session starts
with a warm compiler.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.codegen.base import EmitterConfig, render_kernel_body, render_signature
from repro.compilers.compiler import CompiledKernel, Compiler
from repro.compilers.options import OptSetting
from repro.ir.program import Kernel, Program
from repro.utils.hashing import hash_bytes

__all__ = ["ArtifactCache", "kernel_text"]


def kernel_text(kernel: Kernel) -> str:
    """Canonical source rendering of a kernel (no inputs).

    The kernel-only half of :func:`repro.exec.content.content_text`:
    artifact identity must not depend on input vectors, and must render
    the *source* kernel (pre-pass IR is always emittable).
    """
    cfg = EmitterConfig(fptype=kernel.fptype)
    return "\n".join((render_signature(kernel, cfg), render_kernel_body(kernel, cfg)))


class ArtifactCache:
    """Two-tier content-keyed cache of compiled kernels."""

    def __init__(
        self,
        max_entries: int = 4096,
        path: Optional[Union[str, Path]] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("ArtifactCache needs max_entries >= 1")
        self.max_entries = max_entries
        self.path = Path(path) if path is not None else None
        if self.path is not None:
            self.path.mkdir(parents=True, exist_ok=True)
        self._entries: "OrderedDict[str, CompiledKernel]" = OrderedDict()
        # pipeline fingerprints are deterministic per (compiler, opt,
        # fptype); memoized so keying costs two dict probes, not a
        # pipeline construction, per compile.
        self._fingerprints: Dict[Tuple[str, str, str], str] = {}
        # Kernel-text digests, memoized by kernel object identity: a
        # sweep keys the same kernel once per (compiler, opt), and the
        # canonical render dominates keying cost.  The stored kernel
        # reference keeps the id stable; the ``is`` check on lookup
        # catches id reuse after an eviction frees one.
        self._kernel_digests: "OrderedDict[int, Tuple[Kernel, str]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    # ---------------------------------------------------------------- keys
    def _fingerprint(self, compiler: Compiler, opt: OptSetting, kernel: Kernel) -> str:
        fp_key = (compiler.name, opt.label, kernel.fptype.value)
        fingerprint = self._fingerprints.get(fp_key)
        if fingerprint is None:
            names = tuple(p.name for p in compiler.pipeline(opt, kernel.fptype))
            fingerprint = self._fingerprints[fp_key] = "+".join(names)
        return fingerprint

    def _kernel_digest(self, kernel: Kernel) -> str:
        entry = self._kernel_digests.get(id(kernel))
        if entry is not None and entry[0] is kernel:
            return entry[1]
        digest = f"{hash_bytes(kernel_text(kernel).encode('utf-8')):016x}"
        self._kernel_digests[id(kernel)] = (kernel, digest)
        while len(self._kernel_digests) > 512:
            self._kernel_digests.popitem(last=False)
        return digest

    def key(self, compiler: Compiler, program: Program, opt: OptSetting) -> str:
        """Content key of one (program, compiler, opt) compile."""
        kernel = program.kernel
        hipify = program.via_hipify if compiler.hipify_sensitive else False
        text = "\n".join(
            (
                compiler.name,
                kernel.fptype.value,
                "hipify" if hipify else "native",
                opt.label,
                self._fingerprint(compiler, opt, kernel),
                self._kernel_digest(kernel),
            )
        )
        return f"art-{hash_bytes(text.encode('utf-8')):016x}"

    # -------------------------------------------------------------- lookup
    def _get(self, key: str) -> Optional[CompiledKernel]:
        hit = self._entries.get(key)
        if hit is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return hit
        if self.path is not None:
            file = self.path / f"{key}.pkl"
            if file.exists():
                try:
                    with open(file, "rb") as fh:
                        hit = pickle.load(fh)
                except (OSError, pickle.UnpicklingError, EOFError):
                    hit = None  # torn write from a killed session: recompile
                if hit is not None:
                    self.disk_hits += 1
                    self.hits += 1
                    self._remember(key, hit, persist=False)
                    return hit
        self.misses += 1
        return None

    def _remember(self, key: str, compiled: CompiledKernel, persist: bool = True) -> None:
        self._entries[key] = compiled
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        if persist and self.path is not None:
            file = self.path / f"{key}.pkl"
            if not file.exists():
                fd, tmp = tempfile.mkstemp(dir=str(self.path), suffix=".tmp")
                try:
                    with os.fdopen(fd, "wb") as fh:
                        pickle.dump(compiled, fh)
                    os.replace(tmp, file)
                except OSError:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass

    # ------------------------------------------------------------- compile
    def compile(
        self, compiler: Compiler, program: Program, opt: OptSetting
    ) -> CompiledKernel:
        """One (program, opt) compile through the cache."""
        return self.compile_sweep(compiler, program, (opt,))[opt.label]

    def compile_sweep(
        self, compiler: Compiler, program: Program, opts: Sequence[OptSetting]
    ) -> Dict[str, CompiledKernel]:
        """Sweep-compile through the cache, keyed by opt label.

        Misses share one front end (exactly like
        :meth:`~repro.compilers.compiler.Compiler.compile_sweep`); hits
        are returned with ``program_id`` rebound to the requesting
        program and are otherwise byte-identical to a fresh compile.
        """
        out: Dict[str, CompiledKernel] = {}
        missing: List[Tuple[OptSetting, str]] = []
        for opt in opts:
            key = self.key(compiler, program, opt)
            hit = self._get(key)
            if hit is not None:
                out[opt.label] = (
                    hit
                    if hit.program_id == program.program_id
                    else replace(hit, program_id=program.program_id)
                )
            else:
                missing.append((opt, key))
        if missing:
            compiled = compiler.compile_sweep(program, [opt for opt, _ in missing])
            for opt, key in missing:
                ck = compiled[opt.label]
                self._remember(key, ck)
                out[opt.label] = ck
        return {opt.label: out[opt.label] for opt in opts}

    # --------------------------------------------------------------- stats
    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "entries": len(self._entries),
        }

    def __len__(self) -> int:
        return len(self._entries)
