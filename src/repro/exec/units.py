"""Typed work units of the execution service.

A :class:`SweepRequest` is the system's one schedulable primitive: *run
one test across an optimization sweep on both platforms*.  Making it data
— a test (or a regenerable spec of one), the opt settings, a cache
policy, a runner spec, and opaque caller metadata — is what lets the
campaign engine, the fuzzer, and the analysis harnesses share one
scheduler, one cache, and one set of counters instead of four private
loops.

Requests must be picklable: the process-pool backend ships whole chunks
to spawn workers.  Campaign requests therefore carry a
:class:`CorpusTestSpec` (the worker regenerates the program from its
seed — no IR pickling at scale), while fuzz mutants, which cannot be
regenerated from a generator seed, ship their small concrete
:class:`~repro.varity.testcase.TestCase` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, TYPE_CHECKING, Union

from repro.compilers.options import OptSetting
from repro.harness.runner import PairResult
from repro.stacks import DEFAULT_STACK_PAIR
from repro.varity.config import GeneratorConfig
from repro.varity.testcase import TestCase

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (ablation uses exec)
    from repro.analysis.ablation import AblationSpec
    from repro.harness.runner import DifferentialRunner

__all__ = [
    "CachePolicy",
    "NO_CACHE",
    "CHUNK_CACHE",
    "SHARED_CACHE",
    "RunnerSpec",
    "CorpusTestSpec",
    "DerivedTestSpec",
    "SweepRequest",
    "SweepOutcome",
]


@dataclass(frozen=True)
class CachePolicy:
    """How a request interacts with the content-keyed nvcc run store.

    ``reuse=False`` executes everything (the standalone-arm semantics);
    with ``reuse=True`` the request both consults and populates a store.
    ``scope`` picks which one: ``"chunk"`` is a store private to the
    request's chunk — the old per-program ``RunCache`` discipline, exact
    and worker-count-invariant by construction — while ``"shared"`` is
    the service's own two-tier store (cross-chunk and, with a disk tier,
    cross-session reuse).  Process-pool workers cannot see the service
    store, so ``"shared"`` degrades to chunk scope remotely; callers that
    need identical counters at every worker count colocate the requests
    that must pair (native test + HIPIFY twin) in one chunk.

    ``artifacts`` routes the request's compiles through a content-keyed
    :class:`~repro.exec.artifacts.ArtifactCache` (scoped like the run
    store: chunk-private, or the service's shared cache for
    ``scope="shared"`` in-process requests).  Compilation is pure, so
    this never changes a ledger byte — ``False`` exists for A/B
    benchmarking, not correctness.
    """

    reuse: bool = True
    scope: str = "chunk"  # "chunk" | "shared"
    artifacts: bool = True

    def __post_init__(self) -> None:
        if self.scope not in ("chunk", "shared"):
            raise ValueError(f"unknown cache scope {self.scope!r}")


NO_CACHE = CachePolicy(reuse=False)
CHUNK_CACHE = CachePolicy(reuse=True, scope="chunk")
SHARED_CACHE = CachePolicy(reuse=True, scope="shared")


@dataclass(frozen=True)
class RunnerSpec:
    """How to build the differential runner a request executes on.

    A *spec* rather than a runner instance so requests stay picklable and
    every backend — in-process or spawn worker — constructs an identical,
    deterministic runner.  ``stacks`` selects the (lhs, rhs) stack pair
    from the :mod:`repro.stacks` registry; being a field of a frozen spec
    it participates in the service's dedup key, so requests for different
    pairs never collapse into each other.  ``ablation`` selects an
    equalized runner from :data:`repro.analysis.ablation.ABLATIONS`-style
    specs (ablations are defined on the legacy nvcc/hipcc pair).

    ``vectorize=False`` forces the per-row scalar interpreter path — the
    bit-identical reference lane the benchmarks and property tests
    compare the batched path against.
    """

    ablation: Optional["AblationSpec"] = None
    record_flags: bool = False
    stacks: Tuple[str, str] = DEFAULT_STACK_PAIR
    vectorize: bool = True

    def build(self) -> "DifferentialRunner":
        if self.ablation is not None:
            from repro.analysis.ablation import build_ablated_runner

            return build_ablated_runner(self.ablation)
        from repro.harness.runner import DifferentialRunner

        return DifferentialRunner(
            record_flags=self.record_flags,
            stacks=self.stacks,
            vectorize=self.vectorize,
        )


DEFAULT_RUNNER = RunnerSpec()


@dataclass(frozen=True)
class CorpusTestSpec:
    """A regenerable test: absolute corpus index + generation identity.

    Workers rebuild the test from the seed instead of unpickling IR —
    the campaign's chunking discipline.  ``hipify`` marks the HIPIFY twin
    (same program and inputs; only the HIP compilation changes).
    """

    gen: GeneratorConfig
    index: int
    root_seed: int
    prefix: str = "prog"
    hipify: bool = False

    def resolve(self, memo: Optional[Dict[object, TestCase]] = None) -> TestCase:
        from repro.varity.corpus import build_corpus_slice

        # The memo is shared across a whole chunk, which may mix specs
        # from different generator configs; id(gen) keeps them distinct
        # (requests of one arm share the config *object*, pickled or not).
        key = (id(self.gen), self.root_seed, self.prefix, self.index)
        base = memo.get(key) if memo is not None else None
        if base is None:
            base = build_corpus_slice(
                self.gen, self.index, self.index + 1, self.root_seed, self.prefix
            ).tests[0]
            if memo is not None:
                memo[key] = base
        return base.hipified() if self.hipify else base


@dataclass(frozen=True)
class DerivedTestSpec:
    """A test derived from a concrete base case at resolve time.

    Used for the HIPIFY twin of a non-regenerable test (fuzz mutants,
    benchmark corpora shipped as concrete cases): the spec holds a
    *reference* to the same :class:`~repro.varity.testcase.TestCase`
    object the native request carries, so pickling a chunk containing
    both serializes the program IR once (pickle's object memo), roughly
    halving pool payloads, and the twin is materialized with
    ``.hipified()`` on the worker.
    """

    base: TestCase
    hipify: bool = True

    def resolve(self, memo: Optional[Dict[object, TestCase]] = None) -> TestCase:
        return self.base.hipified() if self.hipify else self.base


@dataclass(frozen=True)
class SweepRequest:
    """One unit of schedulable work: a test swept across opt settings."""

    test: Union[TestCase, CorpusTestSpec, DerivedTestSpec]
    opts: Tuple[OptSetting, ...]
    #: opaque caller metadata echoed on the outcome (arm name, index, ...).
    tag: Tuple[object, ...] = ()
    cache: CachePolicy = CHUNK_CACHE
    runner: RunnerSpec = DEFAULT_RUNNER

    def resolve_test(self, memo: Optional[Dict[object, TestCase]] = None) -> TestCase:
        if isinstance(self.test, TestCase):
            return self.test
        return self.test.resolve(memo)


@dataclass
class SweepOutcome:
    """Everything one executed (or deduped) request produced.

    The ``nvcc_*``/``hipcc_*`` counter names are the pre-registry
    spellings for the pair's left/right slots (the campaign and fuzz
    accounting read them by these names); ``stacks`` says which stacks
    the slots actually were.
    """

    tag: Tuple[object, ...]
    test_id: str
    content_key: str
    pairs: Dict[str, PairResult] = field(default_factory=dict)
    nvcc_executions: int = 0
    nvcc_cache_hits: int = 0
    hipcc_executions: int = 0
    #: served from an identical request earlier in the same chunk; the
    #: counters above are zero because no new work ran.
    deduped: bool = False
    stacks: Tuple[str, str] = DEFAULT_STACK_PAIR

    @property
    def pair_runs(self) -> int:
        """Compared record pairs across the sweep (the campaign run unit)."""
        return sum(len(p.nvcc_runs) for p in self.pairs.values())

    def iter_discrepancies(self):
        for pair in self.pairs.values():
            for d in pair.discrepancies:
                yield d
