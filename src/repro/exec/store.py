"""The content-keyed run store: memory tier + optional on-disk JSONL.

:class:`RunStore` promotes the old per-program ``RunCache`` (keyed by
``(test_id, opt_label)``, lifetime one arm walk) to a store keyed by
``(content id, opt_label)``: structurally identical kernels with the same
inputs hit the cache across arms, fuzz lineages, and — through the disk
tier — resumed sessions.  Entries are stored *test-id-neutral* (per-input
printed line + IEEE-754 bit pattern, or ``None`` for a trapped input) and
rebound to the requesting test's id on the way out, so a replayed
:class:`~repro.harness.outcomes.RunRecord` is bit-identical to what a
fresh execution would produce regardless of which test populated the
entry.

Tiers:

* **memory** — an LRU-bounded dict (``max_entries``); eviction keeps long
  fuzz sessions flat instead of leaking every sweep ever run;
* **disk** (optional ``path``) — an append-only JSONL file indexed by
  byte offset at open.  A memory miss consults the index, reads one
  line, and promotes the entry; evicted entries therefore stay
  servable, and a store reopened on the same path starts warm.

Counters are entry-level (``hits`` / ``misses`` / ``disk_hits`` /
``evictions``); per-*input* replay counts — the numbers surfaced as
``nvcc_cache_hits`` — live on the :class:`BoundRunCache` views handed to
the differential runner.

The disk tier is **single-writer**: the append-only JSONL format has no
way to interleave two writers' lines safely, so opening a path that
another live store already writes raises :class:`~repro.errors.HarnessError`
(via an advisory ``flock`` on a ``.lock`` sidecar) instead of silently
corrupting the ledger.  Fleets that need concurrent writers use the
SQLite tier (:class:`repro.bridge.sqlstore.SqliteRunStore`).
"""

from __future__ import annotations

import json
import struct
from collections import OrderedDict
from pathlib import Path
from typing import Dict, IO, List, Optional, Sequence, Tuple, Union

try:  # POSIX only; on other platforms the guard degrades to unlocked.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

from repro.errors import HarnessError
from repro.harness.outcomes import RunRecord
from repro.varity.testcase import TestCase

__all__ = ["RunStore", "BoundRunCache"]

#: test-id-neutral form of one input's outcome: None (trapped) or
#: (input_index, printed, value_bits, flags-or-None).
_Neutral = Optional[Tuple[int, str, int, Optional[Tuple[Tuple[str, int], ...]]]]


def _float_bits(value: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", float(value)))[0]


def _bits_float(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", bits))[0]


def _neutralize(record: Optional[RunRecord]) -> _Neutral:
    if record is None:
        return None
    flags = tuple(sorted(record.flags.items())) if record.flags is not None else None
    return (record.input_index, record.printed, _float_bits(record.value), flags)


def _rebind(
    entry: _Neutral, test_id: str, opt_label: str, compiler: str = "nvcc"
) -> Optional[RunRecord]:
    if entry is None:
        return None
    input_index, printed, bits, flags = entry
    return RunRecord(
        test_id=test_id,
        input_index=input_index,
        opt_label=opt_label,
        compiler=compiler,
        printed=printed,
        value=_bits_float(bits),
        flags=dict(flags) if flags is not None else None,
    )


def _encode_runs(entry: Sequence[_Neutral]) -> List[Optional[Dict[str, object]]]:
    """Neutral entry → the ``{"i","p","b","f"}`` runs-JSON wire form.

    Shared by the JSONL tier here and the SQLite tier in
    :mod:`repro.bridge.sqlstore`, so entries migrate between tiers
    byte-compatibly.
    """
    runs: List[Optional[Dict[str, object]]] = []
    for item in entry:
        if item is None:
            runs.append(None)
            continue
        input_index, printed, bits, flags = item
        run: Dict[str, object] = {"i": input_index, "p": printed, "b": bits}
        if flags is not None:
            run["f"] = list(list(pair) for pair in flags)
        runs.append(run)
    return runs


def _decode_runs(runs: Sequence[Optional[Dict[str, object]]]) -> Tuple[_Neutral, ...]:
    """Inverse of :func:`_encode_runs`."""
    entry: List[_Neutral] = []
    for run in runs:
        if run is None:
            entry.append(None)
            continue
        flags = run.get("f")
        entry.append(
            (
                int(run["i"]),  # type: ignore[arg-type]
                str(run["p"]),
                int(run["b"]),  # type: ignore[arg-type]
                tuple((str(k), int(v)) for k, v in flags)  # type: ignore[union-attr]
                if flags is not None
                else None,
            )
        )
    return tuple(entry)


class RunStore:
    """Two-tier content-keyed store of nvcc-side run outcomes."""

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        max_entries: int = 1024,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.path = Path(path) if path is not None else None
        self.max_entries = max_entries
        self._mem: "OrderedDict[Tuple[str, str], Tuple[_Neutral, ...]]" = OrderedDict()
        self._disk_index: Dict[Tuple[str, str], int] = {}
        self._fh: Optional[IO[str]] = None
        self._lock_fh: Optional[IO[str]] = None
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.puts = 0
        self.evictions = 0
        if self.path is not None:
            self._acquire_writer_lock()
            self._load_disk_index()

    # ------------------------------------------------------------------ api
    def put(
        self,
        key: str,
        opt_label: str,
        outcomes: Sequence[Optional[RunRecord]],
    ) -> None:
        """Store one (content, opt) entry; trapped inputs stay ``None``."""
        entry = tuple(_neutralize(r) for r in outcomes)
        mkey = (key, opt_label)
        known = mkey in self._mem or mkey in self._disk_index
        self._insert_mem(mkey, entry)
        self.puts += 1
        if self.path is not None and not known:
            self._append_disk(mkey, entry)

    def get(
        self, key: str, opt_label: str, *, test_id: str, compiler: str = "nvcc"
    ) -> Optional[Tuple[Optional[RunRecord], ...]]:
        """Look an entry up and rebind it to ``test_id`` on the way out.

        ``compiler`` names the stack a replayed record is attributed to
        (the default predates the stack registry: entries historically
        held the pair's nvcc side).
        """
        mkey = (key, opt_label)
        entry = self._mem.get(mkey)
        if entry is not None:
            self._mem.move_to_end(mkey)
        elif mkey in self._disk_index:
            entry = self._read_disk(mkey)
            if entry is not None:
                self.disk_hits += 1
                self._insert_mem(mkey, entry)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return tuple(_rebind(e, test_id, opt_label, compiler) for e in entry)

    def view_for(
        self, test: TestCase, *, consult: bool = True, populate: bool = True
    ) -> "BoundRunCache":
        """A runner-compatible view bound to ``test``'s content id."""
        from repro.exec.content import content_id_for

        return BoundRunCache(self, content_id_for(test), consult, populate)

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._mem),
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "puts": self.puts,
            "evictions": self.evictions,
        }

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        if self._lock_fh is not None:
            # Closing drops the flock; the sidecar file itself stays (a
            # stale empty .lock is harmless and racy to delete safely).
            self._lock_fh.close()
            self._lock_fh = None

    def __len__(self) -> int:
        return len(self._mem)

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- memory
    def _insert_mem(
        self, mkey: Tuple[str, str], entry: Tuple[_Neutral, ...]
    ) -> None:
        self._mem[mkey] = entry
        self._mem.move_to_end(mkey)
        while len(self._mem) > self.max_entries:
            self._mem.popitem(last=False)
            self.evictions += 1

    # --------------------------------------------------------------- disk
    def _acquire_writer_lock(self) -> None:
        """Enforce the disk tier's single-writer contract up front.

        An advisory non-blocking ``flock`` on a ``<path>.lock`` sidecar:
        the second store attaching to a live path gets a clear error
        instead of interleaving appends into an unparseable ledger.
        The flock dies with the holding process, so a crashed writer
        never wedges the path.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX
            return
        assert self.path is not None
        lock_path = self.path.with_name(self.path.name + ".lock")
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        fh = lock_path.open("a")
        try:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            fh.close()
            raise HarnessError(
                f"run store {self.path} is already open for writing in another "
                "process; the on-disk JSONL tier is single-writer (append-only "
                "lines cannot interleave safely). Point each writer at its own "
                "path, or use the concurrent-writer SQLite tier "
                "(repro.bridge.sqlstore.SqliteRunStore)."
            ) from None
        self._lock_fh = fh

    def _load_disk_index(self) -> None:
        """Index existing entries by byte offset (torn lines skipped)."""
        if not self.path.exists():
            return
        offset = 0
        with self.path.open("rb") as fh:
            for raw in fh:
                line_at = offset
                offset += len(raw)
                if not raw.endswith(b"\n"):
                    break  # torn tail from a killed writer; entry re-runs
                try:
                    data = json.loads(raw)
                except (json.JSONDecodeError, UnicodeDecodeError):
                    continue
                if data.get("kind") != "entry":
                    continue
                self._disk_index[(str(data["k"]), str(data["o"]))] = line_at

    def _append_disk(self, mkey: Tuple[str, str], entry: Tuple[_Neutral, ...]) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists()
            if not fresh:
                # A writer killed mid-append leaves a torn final line; trim
                # it so the next entry starts on its own line instead of
                # merging into the fragment (which would make *both* lines
                # unparseable at the next reopen).
                data = self.path.read_bytes()
                if data and not data.endswith(b"\n"):
                    with self.path.open("wb") as fh:
                        fh.write(data[: data.rfind(b"\n") + 1])
            self._fh = self.path.open("a", encoding="utf-8")
            if fresh:
                self._fh.write(
                    json.dumps({"kind": "header", "format": "repro-runstore-v1"})
                    + "\n"
                )
        runs = _encode_runs(entry)
        self._fh.flush()
        self._disk_index[mkey] = self._fh.tell()
        self._fh.write(
            json.dumps({"kind": "entry", "k": mkey[0], "o": mkey[1], "r": runs}) + "\n"
        )
        self._fh.flush()

    def _read_disk(self, mkey: Tuple[str, str]) -> Optional[Tuple[_Neutral, ...]]:
        offset = self._disk_index.get(mkey)
        if offset is None or offset < 0 or not self.path.exists():
            return None
        self.flush()
        with self.path.open("r", encoding="utf-8") as fh:
            fh.seek(offset)
            line = fh.readline()
        try:
            data = json.loads(line)
        except json.JSONDecodeError:
            return None
        if data.get("kind") != "entry" or (str(data["k"]), str(data["o"])) != mkey:
            return None
        return _decode_runs(data["r"])


class BoundRunCache:
    """A store view bound to one content key, duck-compatible with the
    cache arguments of :meth:`~repro.harness.runner.DifferentialRunner.run_sweep`.

    The runner counts each replayed input on :attr:`hits` — the number
    surfaced as ``nvcc_cache_hits`` — and calls :meth:`get`/:meth:`put`
    with ``(test_id, opt_label)``; the view routes both through the
    content key, rebinding replayed records to the requesting test's id.
    """

    def __init__(
        self,
        store: RunStore,
        key: str,
        consult: bool = True,
        populate: bool = True,
        compiler: str = "nvcc",
    ) -> None:
        self.store = store
        self.key = key
        self.consult = consult
        self.populate = populate
        self.compiler = compiler
        self.hits = 0

    def get(
        self, test_id: str, opt_label: str
    ) -> Optional[Tuple[Optional[RunRecord], ...]]:
        if not self.consult:
            return None
        return self.store.get(
            self.key, opt_label, test_id=test_id, compiler=self.compiler
        )

    def put(
        self, test_id: str, opt_label: str, outcomes: Sequence[Optional[RunRecord]]
    ) -> None:
        if self.populate:
            self.store.put(self.key, opt_label, outcomes)
