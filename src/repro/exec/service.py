"""The execution-service facade.

One object owns what the campaign engine, the fuzzer, and the analysis
harnesses used to hand-roll separately: resolving work units to concrete
tests, building runners, routing the nvcc side through the content-keyed
:class:`~repro.exec.store.RunStore`, deduping identical work, dispatching
chunks to a :mod:`~repro.exec.backends` backend, and aggregating
hit/miss/execution metrics.

Guarantees:

* **Determinism** — a chunk's outcomes depend only on its requests
  (runner construction, generation, and device execution are all pure
  functions of the specs), and backends return chunk results in
  submission order; every caller's output is therefore identical at any
  worker count.
* **Colocation is the pairing rule** — requests that must share cache
  entries (a native test and its HIPIFY twin) belong in one chunk;
  chunk-scope stores then behave identically in-process and in a
  worker.
* **Dedup** — two requests in one chunk with the same (content, hipify
  flag, opts, runner) are executed once; the duplicate's outcome is the
  original's, rebound to the duplicate's test id, with zero execution
  counters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dataclass_field, replace
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exec.artifacts import ArtifactCache
from repro.exec.backends import Backend, SerialBackend, make_backend
from repro.exec.content import content_id, content_text
from repro.exec.store import BoundRunCache, RunStore
from repro.exec.units import SweepOutcome, SweepRequest
from repro.harness.runner import PairResult
from repro.telemetry.spans import SpanRecord, Tracer, get_tracer, set_tracer
from repro.varity.testcase import TestCase

__all__ = ["ExecutionService", "ExecMetrics"]


@dataclass
class ExecMetrics:
    """Aggregate counters across everything a service executed."""

    chunks: int = 0
    requests: int = 0
    executed: int = 0
    deduped: int = 0
    tasks: int = 0
    pair_runs: int = 0
    nvcc_executions: int = 0
    nvcc_cache_hits: int = 0
    hipcc_executions: int = 0
    store_hits: int = 0
    store_misses: int = 0
    store_evictions: int = 0
    store_disk_hits: int = 0
    artifact_hits: int = 0
    artifact_misses: int = 0
    artifact_disk_hits: int = 0
    elapsed_seconds: float = 0.0
    #: Always-on phase wall time (seconds), measured with bare
    #: ``perf_counter`` around the store view and the sweep body — no
    #: tracer required, so ``--json`` consumers get timings for free.
    #: These are the one legitimately scheduling-dependent part of the
    #: exec block: counts stay worker-invariant, wall time cannot.
    lookup_seconds: float = 0.0
    execute_seconds: float = 0.0
    commit_seconds: float = 0.0
    #: device executions per stack name (all pairs folded together); the
    #: ``nvcc_executions``/``hipcc_executions`` scalars above remain the
    #: legacy lhs/rhs slot totals.
    executions_by_stack: Dict[str, int] = dataclass_field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "chunks": self.chunks,
            "requests": self.requests,
            "executed": self.executed,
            "deduped": self.deduped,
            "tasks": self.tasks,
            "pair_runs": self.pair_runs,
            "nvcc_executions": self.nvcc_executions,
            "nvcc_cache_hits": self.nvcc_cache_hits,
            "hipcc_executions": self.hipcc_executions,
            "executions_by_stack": {
                name: self.executions_by_stack[name]
                for name in sorted(self.executions_by_stack)
            },
            "store": {
                "hits": self.store_hits,
                "misses": self.store_misses,
                "evictions": self.store_evictions,
                "disk_hits": self.store_disk_hits,
            },
            "artifacts": {
                "hits": self.artifact_hits,
                "misses": self.artifact_misses,
                "disk_hits": self.artifact_disk_hits,
            },
            "phase_seconds": {
                "lookup": self.lookup_seconds,
                "execute": self.execute_seconds,
                "commit": self.commit_seconds,
            },
        }


def _rebound_outcome(
    prev: SweepOutcome, test_id: str, tag: Tuple[object, ...]
) -> SweepOutcome:
    """A dedup hit: the original's results under the duplicate's identity."""
    if test_id == prev.test_id:
        pairs = prev.pairs
    else:
        pairs = {
            label: PairResult(
                nvcc_runs=[replace(r, test_id=test_id) for r in pair.nvcc_runs],
                hipcc_runs=[replace(r, test_id=test_id) for r in pair.hipcc_runs],
                discrepancies=[
                    replace(d, test_id=test_id) for d in pair.discrepancies
                ],
                skipped_inputs=list(pair.skipped_inputs),
                stacks=pair.stacks,
            )
            for label, pair in prev.pairs.items()
        }
    return SweepOutcome(
        tag=tag,
        test_id=test_id,
        content_key=prev.content_key,
        pairs=pairs,
        deduped=True,
        stacks=prev.stacks,
    )


class _TimedView(BoundRunCache):
    """A :class:`BoundRunCache` that accumulates lookup/commit wall time
    into a shared per-chunk phase dict.

    Always on (two ``perf_counter`` calls per store op) so the exec
    metrics carry phase timings even with tracing off; strictly
    out-of-band — behaviour is the base class's, byte for byte.
    """

    def __init__(self, store, key, phases, *, compiler="nvcc"):
        super().__init__(store, key, compiler=compiler)
        self._phases = phases

    def get(self, test_id, opt_label):
        t0 = time.perf_counter()
        try:
            return super().get(test_id, opt_label)
        finally:
            self._phases["lookup"] += time.perf_counter() - t0

    def put(self, test_id, opt_label, outcomes):
        t0 = time.perf_counter()
        try:
            return super().put(test_id, opt_label, outcomes)
        finally:
            self._phases["commit"] += time.perf_counter() - t0


def _execute_requests(
    requests: Sequence[SweepRequest],
    shared_store: Optional[RunStore] = None,
    shared_artifacts: Optional[ArtifactCache] = None,
) -> Tuple[List[SweepOutcome], Dict[str, float]]:
    """Run one chunk serially; the core every backend executes.

    ``shared_store`` is the service's own store (in-process execution
    only); chunk-scope requests — and shared-scope ones running in a
    worker — use a store private to this chunk.  ``shared_artifacts`` is
    the service's compiled-artifact cache under the same scoping rule.
    """
    tracer = get_tracer()
    chunk_store: Optional[RunStore] = None
    chunk_artifacts: Optional[ArtifactCache] = None
    runners: Dict[Any, Any] = {}
    memo: Dict[object, TestCase] = {}
    seen: Dict[Tuple[object, ...], SweepOutcome] = {}
    outcomes: List[SweepOutcome] = []
    phases = {"lookup": 0.0, "commit": 0.0}
    execute_seconds = 0.0
    for req in requests:
        runner = runners.get(req.runner)
        if runner is None:
            runner = runners[req.runner] = req.runner.build()
        test = req.resolve_test(memo)
        key = content_id(
            test.fptype, content_text(test.program.kernel, test.inputs)
        )
        dedup_key = (
            key,
            test.program.via_hipify,
            tuple(o.label for o in req.opts),
            req.runner,
        )
        prev = seen.get(dedup_key)
        if prev is not None:
            outcomes.append(_rebound_outcome(prev, test.test_id, req.tag))
            continue
        view: Optional[BoundRunCache] = None
        if req.cache.reuse:
            store = shared_store
            if store is None or req.cache.scope == "chunk":
                if chunk_store is None:
                    chunk_store = RunStore()
                store = chunk_store
            # The store caches the pair's *left* side.  Legacy nvcc-lhs
            # pairs keep the bare content key (pre-registry warm stores
            # stay hot, and every nvcc-lhs pair replays the same runs);
            # other left stacks qualify the key so a (hipcc, cpu) pair
            # can never replay nvcc outcomes as its own.
            lhs = runner.stacks[0]
            view_key = key if lhs == "nvcc" else f"{lhs}@{key}"
            view = _TimedView(store, view_key, phases, compiler=lhs)
        artifacts: Optional[ArtifactCache] = None
        if req.cache.artifacts:
            if req.cache.scope == "shared" and shared_artifacts is not None:
                artifacts = shared_artifacts
            else:
                if chunk_artifacts is None:
                    chunk_artifacts = ArtifactCache()
                artifacts = chunk_artifacts
        nv0, hp0 = runner.lhs_executions, runner.rhs_executions
        hits0 = view.hits if view is not None else 0
        lk0, cm0 = phases["lookup"], phases["commit"]
        t0 = time.perf_counter_ns()
        pairs = runner.run_sweep(
            test,
            req.opts,
            lhs_cache=view,
            populate_lhs_cache=view,
            artifacts=artifacts,
        )
        t1 = time.perf_counter_ns()
        execute_seconds += (
            (t1 - t0) / 1e9
            - (phases["lookup"] - lk0)
            - (phases["commit"] - cm0)
        )
        if tracer.enabled:
            tracer.record(
                "exec.request",
                t0,
                t1,
                lhs=runner.stacks[0],
                rhs=runner.stacks[1],
                cache=(
                    "off"
                    if view is None
                    else ("hit" if view.hits > hits0 else "miss")
                ),
            )
        outcome = SweepOutcome(
            tag=req.tag,
            test_id=test.test_id,
            content_key=key,
            pairs=pairs,
            nvcc_executions=runner.lhs_executions - nv0,
            nvcc_cache_hits=view.hits if view is not None else 0,
            hipcc_executions=runner.rhs_executions - hp0,
            stacks=runner.stacks,
        )
        seen[dedup_key] = outcome
        outcomes.append(outcome)
    stats: Dict[str, float] = (
        dict(chunk_store.stats()) if chunk_store is not None else {}
    )
    if chunk_artifacts is not None:
        # Shared-cache stats are *not* folded here (the service merges
        # them once in stats()); only this chunk's private cache rides
        # the stats dict back across the process boundary.
        art = chunk_artifacts.stats()
        stats["artifact_hits"] = art["hits"]
        stats["artifact_misses"] = art["misses"]
        stats["artifact_disk_hits"] = art["disk_hits"]
    stats["lookup_seconds"] = phases["lookup"]
    stats["execute_seconds"] = execute_seconds
    stats["commit_seconds"] = phases["commit"]
    return outcomes, stats


def _execute_chunk_task(
    requests: Sequence[SweepRequest],
) -> Tuple[List[SweepOutcome], Dict[str, float]]:
    """Top-level chunk entry point for process-pool workers."""
    return _execute_requests(requests)


def _execute_indexed_chunk_task(
    payload: Tuple[int, Sequence[SweepRequest]],
) -> Tuple[int, List[SweepOutcome], Dict[str, float]]:
    """Chunk entry point for unordered dispatch: the index rides along so
    completion-order consumers can re-associate results with chunks."""
    index, requests = payload
    outcomes, stats = _execute_requests(requests)
    return index, outcomes, stats


def _run_chunk_traced(
    requests: Sequence[SweepRequest],
) -> Tuple[List[SweepOutcome], Dict[str, float], List[SpanRecord]]:
    """Run one chunk under a fresh local tracer; ship its spans back.

    Used only when the parent's tracer is enabled, so the untraced task
    above stays the zero-overhead path.  The worker records into its
    own tracer (the parent's is unreachable across the process
    boundary) and the parent merges the batch by submission-order chunk
    index — never arrival order — keeping traces deterministic.
    """
    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        t0 = time.perf_counter_ns()
        outcomes, stats = _execute_requests(requests)
        tracer.record(
            "exec.chunk", t0, time.perf_counter_ns(), requests=len(requests)
        )
    finally:
        set_tracer(previous)
    return outcomes, stats, tracer.drain()


def _execute_chunk_task_traced(
    requests: Sequence[SweepRequest],
) -> Tuple[List[SweepOutcome], Dict[str, float], List[SpanRecord]]:
    """Traced twin of :func:`_execute_chunk_task`."""
    return _run_chunk_traced(requests)


def _execute_indexed_chunk_task_traced(
    payload: Tuple[int, Sequence[SweepRequest]],
) -> Tuple[int, List[SweepOutcome], Dict[str, float], List[SpanRecord]]:
    """Traced twin of :func:`_execute_indexed_chunk_task`."""
    index, requests = payload
    outcomes, stats, records = _run_chunk_traced(requests)
    return index, outcomes, stats, records


def _grouped(chunks: Iterable[Any], size: int) -> Iterator[List[Any]]:
    """Batch consecutive items into lists of at most ``size``."""
    group: List[Any] = []
    for chunk in chunks:
        group.append(chunk)
        if len(group) >= size:
            yield group
            group = []
    if group:
        yield group


def _execute_group_task(
    group: Sequence[Sequence[SweepRequest]],
) -> List[Tuple[List[SweepOutcome], Dict[str, float]]]:
    """Several chunks in one pool task (one pickle/IPC round trip).

    Each chunk still runs through :func:`_execute_requests` with its own
    private store, so results are byte-identical to one-task-per-chunk;
    only the transport granularity changes.
    """
    return [_execute_requests(requests) for requests in group]


def _execute_group_task_traced(
    group: Sequence[Sequence[SweepRequest]],
) -> List[Tuple[List[SweepOutcome], Dict[str, float], List[SpanRecord]]]:
    """Traced twin of :func:`_execute_group_task` (per-chunk span batches)."""
    return [_run_chunk_traced(requests) for requests in group]


def _execute_indexed_group_task(
    group: Sequence[Tuple[int, Sequence[SweepRequest]]],
) -> List[Tuple[int, List[SweepOutcome], Dict[str, float]]]:
    """Grouped twin of :func:`_execute_indexed_chunk_task`."""
    return [_execute_indexed_chunk_task(payload) for payload in group]


def _execute_indexed_group_task_traced(
    group: Sequence[Tuple[int, Sequence[SweepRequest]]],
) -> List[Tuple[int, List[SweepOutcome], Dict[str, float], List[SpanRecord]]]:
    """Grouped twin of :func:`_execute_indexed_chunk_task_traced`."""
    return [_execute_indexed_chunk_task_traced(payload) for payload in group]


class ExecutionService:
    """The one sweep interface every subsystem executes through."""

    def __init__(
        self,
        backend: Optional[Backend] = None,
        store: Optional[RunStore] = None,
    ) -> None:
        self.backend = backend if backend is not None else SerialBackend()
        # `is not None`, not `or`: an empty RunStore is falsy (__len__).
        self.store = store if store is not None else RunStore()
        #: shared compiled-artifact cache for in-process shared-scope
        #: requests (workers get chunk-private caches, like the store).
        self.artifacts = ArtifactCache()
        self.metrics = ExecMetrics()

    @classmethod
    def for_workers(
        cls, workers: Optional[int], store: Optional[RunStore] = None
    ) -> "ExecutionService":
        return cls(backend=make_backend(workers), store=store)

    # ------------------------------------------------------------- sweeps
    def run_sweeps(
        self, chunks: Iterable[Sequence[SweepRequest]]
    ) -> Iterator[List[SweepOutcome]]:
        """Execute chunks through the backend, yielding outcome lists in
        chunk order as they complete (consume lazily to stream)."""
        tracer = get_tracer()
        if self.backend.remote:
            group = getattr(self.backend, "group_requests", 0) or 0
            payloads = (tuple(chunk) for chunk in chunks)
            if tracer.enabled:
                if group > 1:
                    batches = self.backend.imap(
                        _execute_group_task_traced, _grouped(payloads, group)
                    )
                    traced = (r for batch in batches for r in batch)
                else:
                    traced = self.backend.imap(_execute_chunk_task_traced, payloads)
                # Ordered imap: arrival order == submission order, so
                # enumerate() is the deterministic chunk index.
                for index, (outcomes, stats, records) in enumerate(traced):
                    tracer.merge(index, records)
                    self._absorb(outcomes, stats)
                    yield outcomes
                return
            if group > 1:
                batches = self.backend.imap(
                    _execute_group_task, _grouped(payloads, group)
                )
                results = (r for batch in batches for r in batch)
            else:
                results = self.backend.imap(_execute_chunk_task, payloads)
            for outcomes, stats in results:
                self._absorb(outcomes, stats)
                yield outcomes
            return
        for index, chunk in enumerate(chunks):
            if tracer.enabled:
                t0 = time.perf_counter_ns()
                outcomes, stats = _execute_requests(
                    list(chunk),
                    shared_store=self.store,
                    shared_artifacts=self.artifacts,
                )
                tracer.record(
                    "exec.chunk",
                    t0,
                    time.perf_counter_ns(),
                    chunk=index,
                    requests=len(outcomes),
                )
            else:
                outcomes, stats = _execute_requests(
                    list(chunk),
                    shared_store=self.store,
                    shared_artifacts=self.artifacts,
                )
            self._absorb(outcomes, stats)
            yield outcomes

    def run_sweeps_unordered(
        self, chunks: Iterable[Sequence[SweepRequest]]
    ) -> Iterator[Tuple[int, List[SweepOutcome]]]:
        """Like :meth:`run_sweeps`, but yielding ``(chunk_index, outcomes)``
        in *completion* order.  For callers that persist each chunk's
        result as it finishes (crash durability) and re-order for
        aggregation themselves; outcome content is identical to the
        ordered path's, only arrival order is scheduling-dependent.
        """
        tracer = get_tracer()
        indexed = ((i, tuple(chunk)) for i, chunk in enumerate(chunks))
        if self.backend.remote:
            group = getattr(self.backend, "group_requests", 0) or 0
            if tracer.enabled:
                if group > 1:
                    batches = self.backend.imap_unordered(
                        _execute_indexed_group_task_traced,
                        _grouped(indexed, group),
                    )
                    traced = (r for batch in batches for r in batch)
                else:
                    traced = self.backend.imap_unordered(
                        _execute_indexed_chunk_task_traced, indexed
                    )
                # The chunk index rides inside the payload, so merging
                # stays deterministic even though arrival order is not.
                for index, outcomes, stats, records in traced:
                    tracer.merge(index, records)
                    self._absorb(outcomes, stats)
                    yield index, outcomes
                return
            if group > 1:
                batches = self.backend.imap_unordered(
                    _execute_indexed_group_task, _grouped(indexed, group)
                )
                results = (r for batch in batches for r in batch)
            else:
                results = self.backend.imap_unordered(
                    _execute_indexed_chunk_task, indexed
                )
            for index, outcomes, stats in results:
                self._absorb(outcomes, stats)
                yield index, outcomes
            return
        for i, chunk in indexed:
            if tracer.enabled:
                t0 = time.perf_counter_ns()
                outcomes, stats = _execute_requests(
                    list(chunk),
                    shared_store=self.store,
                    shared_artifacts=self.artifacts,
                )
                tracer.record(
                    "exec.chunk",
                    t0,
                    time.perf_counter_ns(),
                    chunk=i,
                    requests=len(outcomes),
                )
            else:
                outcomes, stats = _execute_requests(
                    list(chunk),
                    shared_store=self.store,
                    shared_artifacts=self.artifacts,
                )
            self._absorb(outcomes, stats)
            yield i, outcomes

    def run_chunk(self, requests: Sequence[SweepRequest]) -> List[SweepOutcome]:
        """One chunk, synchronously, on the calling process."""
        outcomes, stats = _execute_requests(
            list(requests),
            shared_store=self.store,
            shared_artifacts=self.artifacts,
        )
        self._absorb(outcomes, stats)
        return outcomes

    # -------------------------------------------------------------- tasks
    def map(self, fn: Callable[[Any], Any], payloads: Iterable[Any]) -> List[Any]:
        """Ordered parallel map for non-sweep work units (module-level
        ``fn`` only — payloads may cross a process boundary)."""
        payloads = list(payloads)
        self.metrics.tasks += len(payloads)
        if self.backend.remote:
            return list(self.backend.imap(fn, payloads))
        return [fn(p) for p in payloads]

    # ----------------------------------------------------------- plumbing
    def _absorb(self, outcomes: List[SweepOutcome], stats: Dict[str, float]) -> None:
        m = self.metrics
        m.chunks += 1
        m.requests += len(outcomes)
        for out in outcomes:
            if out.deduped:
                m.deduped += 1
            else:
                m.executed += 1
            m.pair_runs += out.pair_runs
            m.nvcc_executions += out.nvcc_executions
            m.nvcc_cache_hits += out.nvcc_cache_hits
            m.hipcc_executions += out.hipcc_executions
            lhs, rhs = out.stacks
            if out.nvcc_executions:
                m.executions_by_stack[lhs] = (
                    m.executions_by_stack.get(lhs, 0) + out.nvcc_executions
                )
            if out.hipcc_executions:
                m.executions_by_stack[rhs] = (
                    m.executions_by_stack.get(rhs, 0) + out.hipcc_executions
                )
        m.store_hits += stats.get("hits", 0)
        m.store_misses += stats.get("misses", 0)
        m.store_evictions += stats.get("evictions", 0)
        m.store_disk_hits += stats.get("disk_hits", 0)
        m.artifact_hits += stats.get("artifact_hits", 0)
        m.artifact_misses += stats.get("artifact_misses", 0)
        m.artifact_disk_hits += stats.get("artifact_disk_hits", 0)
        m.lookup_seconds += stats.get("lookup_seconds", 0.0)
        m.execute_seconds += stats.get("execute_seconds", 0.0)
        m.commit_seconds += stats.get("commit_seconds", 0.0)

    def stats(self) -> Dict[str, object]:
        """Aggregate metrics: chunk stores plus the service's shared store."""
        merged = ExecMetrics(**vars(self.metrics))
        shared = self.store.stats()
        merged.store_hits += shared["hits"]
        merged.store_misses += shared["misses"]
        merged.store_evictions += shared["evictions"]
        merged.store_disk_hits += shared["disk_hits"]
        art = self.artifacts.stats()
        merged.artifact_hits += art["hits"]
        merged.artifact_misses += art["misses"]
        merged.artifact_disk_hits += art["disk_hits"]
        return merged.as_dict()

    def close(self) -> None:
        self.backend.close()
        self.store.close()

    def __enter__(self) -> "ExecutionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
