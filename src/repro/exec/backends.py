"""Execution backends: where chunks of work actually run.

A backend is deliberately tiny — *ordered* chunk execution and nothing
else: ``imap(fn, payloads)`` must yield one result per payload **in
payload order** no matter how execution is scheduled.  That single rule
is what makes every caller's output worker-count-invariant: the service
hands backends deterministic chunks, and backends may only change *when*
a chunk runs, never what it computes or the order results come back.

``SerialBackend`` runs in-process (and lazily, so streaming callers
interleave their own work between chunks).  ``ProcessPoolBackend`` owns
a persistent spawn pool — created on first use, reused across calls so
repeated small submissions (the fuzzer's speculation windows) do not pay
process startup each time.  Workers import the repo fresh; payloads and
the mapped function must be picklable (module-level functions only).

Future backends (async, distributed) implement the same two methods.

**Telemetry** (active tracer enabled only — the disabled path is the
original code): the pool backend wraps payloads and the mapped function
to attribute every chunk's wall time to four phases that tile
[submit, arrive]:

* ``pool.pickle`` — measuring ``pickle.dumps`` of the payload (a second
  pickle happens inside ``mp.Pool``; the duplication is the accepted
  cost of tracing, never paid when tracing is off);
* ``pool.queue_wait`` — submit → worker pickup;
* ``pool.execute`` — worker function run (recorded with the worker's
  pid);
* ``pool.result_wait`` — worker done → parent receives (for ``imap``
  this includes in-order head-of-line blocking).

Timestamps are ``time.perf_counter_ns()`` — CLOCK_MONOTONIC on Linux is
system-wide, so parent- and worker-side stamps share one clock.
"""

from __future__ import annotations

import functools
import os
import pickle
import time
from typing import Any, Callable, Iterable, Iterator, Optional

from repro.telemetry.spans import get_tracer

try:  # pragma: no cover - Protocol missing only on <3.8
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

__all__ = [
    "Backend",
    "SerialBackend",
    "ProcessPoolBackend",
    "make_backend",
    "resolve_backend",
]


def _worker_timed_call(fn, wrapped):
    """Worker-side shim: unwrap a tagged payload, time the real call.

    Module-level (and used via ``functools.partial(fn=...)``) so the
    spawn pool can pickle it.
    """
    index, submit_ns, payload = wrapped
    start_ns = time.perf_counter_ns()
    result = fn(payload)
    end_ns = time.perf_counter_ns()
    return index, submit_ns, start_ns, end_ns, os.getpid(), result


def _tag_payloads(payloads: Iterable[Any], tracer) -> Iterator[Any]:
    """Wrap payloads as ``(index, submit_ns, payload)``; record pickle
    size/time.  Consumed by ``mp.Pool``'s feeder thread, so the tracer's
    record path must be (and is) thread-safe."""
    for index, payload in enumerate(payloads):
        t0 = time.perf_counter_ns()
        size = len(pickle.dumps(payload))
        t1 = time.perf_counter_ns()
        tracer.record("pool.pickle", t0, t1, chunk=index, payload_bytes=size)
        yield index, time.perf_counter_ns(), payload


def _traced_results(results: Iterable[Any], tracer) -> Iterator[Any]:
    """Unwrap timed worker results, recording the three phases that
    complete each chunk's [submit, arrive] interval."""
    for index, submit_ns, start_ns, end_ns, pid, result in results:
        arrive_ns = time.perf_counter_ns()
        tracer.record("pool.queue_wait", submit_ns, start_ns, chunk=index)
        tracer.record("pool.execute", start_ns, end_ns, chunk=index, pid=pid)
        tracer.record("pool.result_wait", end_ns, arrive_ns, chunk=index)
        yield result


class Backend(Protocol):
    """Ordered chunk execution."""

    #: backend name for reports ("serial", "process-pool").
    name: str
    #: True when payloads cross a process boundary (workers cannot see
    #: in-process state such as the service's shared run store).
    remote: bool

    def imap(self, fn: Callable[[Any], Any], payloads: Iterable[Any]) -> Iterator[Any]:
        """Apply ``fn`` to each payload, yielding results in payload order."""
        ...  # pragma: no cover

    def imap_unordered(
        self, fn: Callable[[Any], Any], payloads: Iterable[Any]
    ) -> Iterator[Any]:
        """Like :meth:`imap` but yielding in completion order."""
        ...  # pragma: no cover

    def close(self) -> None:
        ...  # pragma: no cover


class SerialBackend:
    """In-process, lazy, deterministic — the reference backend."""

    name = "serial"
    remote = False

    def imap(self, fn: Callable[[Any], Any], payloads: Iterable[Any]) -> Iterator[Any]:
        return map(fn, payloads)

    def imap_unordered(
        self, fn: Callable[[Any], Any], payloads: Iterable[Any]
    ) -> Iterator[Any]:
        """Completion order == payload order in-process."""
        return map(fn, payloads)

    def close(self) -> None:
        pass


class ProcessPoolBackend:
    """A persistent spawn pool; results are re-ordered to payload order.

    ``imap`` (not ``imap_unordered``) keeps results in submission order,
    so callers see the exact sequence a serial run would produce — the
    scheduling is free to complete chunks out of order underneath.
    """

    name = "process-pool"
    remote = True
    #: The service batches this many consecutive chunks into one pool
    #: task: typical chunks are a few milliseconds of work, so per-task
    #: pickle + IPC round trips dominate at chunk granularity.  Grouping
    #: changes scheduling only — each chunk still executes with its own
    #: private store, so outcomes are byte-identical at any group size.
    group_requests = 8

    def __init__(self, workers: int, mp_context: str = "spawn") -> None:
        if workers < 2:
            raise ValueError("ProcessPoolBackend needs workers >= 2")
        self.workers = workers
        self._mp_context = mp_context
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing as mp

            self._pool = mp.get_context(self._mp_context).Pool(self.workers)
        return self._pool

    def imap(self, fn: Callable[[Any], Any], payloads: Iterable[Any]) -> Iterator[Any]:
        tracer = get_tracer()
        if not tracer.enabled:
            return self._ensure_pool().imap(fn, payloads)
        results = self._ensure_pool().imap(
            functools.partial(_worker_timed_call, fn),
            _tag_payloads(payloads, tracer),
        )
        return _traced_results(results, tracer)

    def imap_unordered(
        self, fn: Callable[[Any], Any], payloads: Iterable[Any]
    ) -> Iterator[Any]:
        """Results in completion order — for callers that persist results
        as they finish (crash durability) and re-order for aggregation
        themselves."""
        tracer = get_tracer()
        if not tracer.enabled:
            return self._ensure_pool().imap_unordered(fn, payloads)
        results = self._ensure_pool().imap_unordered(
            functools.partial(_worker_timed_call, fn),
            _tag_payloads(payloads, tracer),
        )
        return _traced_results(results, tracer)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None


def make_backend(workers: Optional[int]) -> "Backend":
    """Serial for 0/1 workers, a process pool otherwise."""
    if workers and workers > 1:
        return ProcessPoolBackend(workers)
    return SerialBackend()


def resolve_backend(
    name: Optional[str],
    workers: Optional[int] = None,
    bridge_url: Optional[str] = None,
) -> "Backend":
    """Resolve a named backend spec (the CLIs' ``--backend`` flag).

    ``None`` keeps the historical behaviour — :func:`make_backend` picks
    serial or pool from the worker count — so every existing caller and
    artifact is untouched.  ``"bridge"`` needs ``bridge_url``; the
    import is deferred so the exec layer stays bridge-free unless asked.
    """
    from repro.errors import HarnessError

    if name is None:
        return make_backend(workers)
    if name == "serial":
        return SerialBackend()
    if name == "pool":
        return make_backend(workers if workers and workers > 1 else 2)
    if name == "bridge":
        if not bridge_url:
            raise HarnessError(
                "--backend bridge needs --bridge-url (the address of a "
                "running `repro-bridge serve`)"
            )
        from repro.bridge.client import BridgeBackend

        return BridgeBackend(bridge_url)
    raise HarnessError(
        f"unknown backend {name!r}; expected serial, pool, or bridge"
    )
