"""Execution backends: where chunks of work actually run.

A backend is deliberately tiny — *ordered* chunk execution and nothing
else: ``imap(fn, payloads)`` must yield one result per payload **in
payload order** no matter how execution is scheduled.  That single rule
is what makes every caller's output worker-count-invariant: the service
hands backends deterministic chunks, and backends may only change *when*
a chunk runs, never what it computes or the order results come back.

``SerialBackend`` runs in-process (and lazily, so streaming callers
interleave their own work between chunks).  ``ProcessPoolBackend`` owns
a persistent spawn pool — created on first use, reused across calls so
repeated small submissions (the fuzzer's speculation windows) do not pay
process startup each time.  Workers import the repo fresh; payloads and
the mapped function must be picklable (module-level functions only).

Future backends (async, distributed) implement the same two methods.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Optional

try:  # pragma: no cover - Protocol missing only on <3.8
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

__all__ = ["Backend", "SerialBackend", "ProcessPoolBackend", "make_backend"]


class Backend(Protocol):
    """Ordered chunk execution."""

    #: backend name for reports ("serial", "process-pool").
    name: str
    #: True when payloads cross a process boundary (workers cannot see
    #: in-process state such as the service's shared run store).
    remote: bool

    def imap(self, fn: Callable[[Any], Any], payloads: Iterable[Any]) -> Iterator[Any]:
        """Apply ``fn`` to each payload, yielding results in payload order."""
        ...  # pragma: no cover

    def imap_unordered(
        self, fn: Callable[[Any], Any], payloads: Iterable[Any]
    ) -> Iterator[Any]:
        """Like :meth:`imap` but yielding in completion order."""
        ...  # pragma: no cover

    def close(self) -> None:
        ...  # pragma: no cover


class SerialBackend:
    """In-process, lazy, deterministic — the reference backend."""

    name = "serial"
    remote = False

    def imap(self, fn: Callable[[Any], Any], payloads: Iterable[Any]) -> Iterator[Any]:
        return map(fn, payloads)

    def imap_unordered(
        self, fn: Callable[[Any], Any], payloads: Iterable[Any]
    ) -> Iterator[Any]:
        """Completion order == payload order in-process."""
        return map(fn, payloads)

    def close(self) -> None:
        pass


class ProcessPoolBackend:
    """A persistent spawn pool; results are re-ordered to payload order.

    ``imap`` (not ``imap_unordered``) keeps results in submission order,
    so callers see the exact sequence a serial run would produce — the
    scheduling is free to complete chunks out of order underneath.
    """

    name = "process-pool"
    remote = True

    def __init__(self, workers: int, mp_context: str = "spawn") -> None:
        if workers < 2:
            raise ValueError("ProcessPoolBackend needs workers >= 2")
        self.workers = workers
        self._mp_context = mp_context
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing as mp

            self._pool = mp.get_context(self._mp_context).Pool(self.workers)
        return self._pool

    def imap(self, fn: Callable[[Any], Any], payloads: Iterable[Any]) -> Iterator[Any]:
        return self._ensure_pool().imap(fn, payloads)

    def imap_unordered(
        self, fn: Callable[[Any], Any], payloads: Iterable[Any]
    ) -> Iterator[Any]:
        """Results in completion order — for callers that persist results
        as they finish (crash durability) and re-order for aggregation
        themselves."""
        return self._ensure_pool().imap_unordered(fn, payloads)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None


def make_backend(workers: Optional[int]) -> "Backend":
    """Serial for 0/1 workers, a process pool otherwise."""
    if workers and workers > 1:
        return ProcessPoolBackend(workers)
    return SerialBackend()
