"""repro.exec — the unified execution-service layer.

Every result this reproduction reports comes from the same primitive:
run a test across an optimization sweep on both platforms.  This package
owns that primitive once, as data plus policy:

* :mod:`~repro.exec.units` — typed work units (:class:`SweepRequest` /
  :class:`SweepOutcome`) plus cache and runner policies;
* :mod:`~repro.exec.content` — content keying: structurally identical
  kernels with identical inputs share one identity;
* :mod:`~repro.exec.store` — the two-tier content-keyed
  :class:`RunStore` (memory LRU + optional on-disk JSONL);
* :mod:`~repro.exec.backends` — ordered chunk execution, serial, on a
  persistent process pool, or through a :mod:`repro.bridge` worker
  fleet, deterministic at any worker count;
* :mod:`~repro.exec.service` — the :class:`ExecutionService` facade:
  dedup, store routing, dispatch, metrics.

The campaign engine, the fuzzer, the mechanism ablation, and the
math-function sweep all execute through it.
"""

from repro.exec.artifacts import ArtifactCache, kernel_text
from repro.exec.backends import (
    Backend,
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
    resolve_backend,
)
from repro.exec.content import content_id, content_text, content_id_for
from repro.exec.service import ExecMetrics, ExecutionService
from repro.exec.store import BoundRunCache, RunStore
from repro.exec.units import (
    CachePolicy,
    CHUNK_CACHE,
    CorpusTestSpec,
    DerivedTestSpec,
    NO_CACHE,
    RunnerSpec,
    SHARED_CACHE,
    SweepOutcome,
    SweepRequest,
)

__all__ = [
    "ArtifactCache",
    "Backend",
    "BoundRunCache",
    "CachePolicy",
    "CHUNK_CACHE",
    "CorpusTestSpec",
    "DerivedTestSpec",
    "ExecMetrics",
    "ExecutionService",
    "make_backend",
    "NO_CACHE",
    "ProcessPoolBackend",
    "RunnerSpec",
    "resolve_backend",
    "RunStore",
    "SerialBackend",
    "SHARED_CACHE",
    "SweepOutcome",
    "SweepRequest",
    "content_id",
    "content_text",
    "content_id_for",
    "kernel_text",
]
