"""Content-keyed identity of executable work.

The execution layer dedupes and caches by *what actually runs*, not by
how a test is labeled: two structurally identical kernels with the same
input vectors produce bit-identical device runs on the CUDA side no
matter which arm, fuzz lineage, or session they came from, because
device execution is a pure function of ``(kernel, optimization, inputs)``
and ``Program.via_hipify`` only changes the HIP compilation.

The canonical text is the rendered kernel signature + body followed by
the exact input lines, hashed with the repo's stable 64-bit hash — the
one identity shared by :class:`~repro.exec.store.RunStore` keys, the
execution service's dedup, and the fuzzer's mutant program ids.

Content identity is *stack-independent*: the text renders through the
default (CUDA-dialect) emitter config regardless of which stack pair a
request sweeps, because the IR + inputs are what determine every
stack's runs.  That keeps the keys byte-stable across the stack-registry
refactor — a pre-registry warm store resumes against any pair whose
left side is nvcc — while the execution service qualifies the *store*
key with the left stack's name for the other pairs.
"""

from __future__ import annotations

from typing import Sequence

from repro.codegen.base import EmitterConfig, render_kernel_body, render_signature
from repro.fp.types import FPType
from repro.ir.program import Kernel
from repro.utils.hashing import hash_bytes
from repro.varity.inputs import InputVector
from repro.varity.testcase import TestCase

__all__ = ["content_text", "content_id", "content_id_for"]


def content_text(kernel: Kernel, inputs: Sequence[InputVector]) -> str:
    """Canonical text identity of (kernel, inputs) for dedup/cache keying."""
    cfg = EmitterConfig(fptype=kernel.fptype)
    parts = [render_signature(kernel, cfg), render_kernel_body(kernel, cfg)]
    parts.extend(vec.line for vec in inputs)
    return "\n".join(parts)


def content_id(fptype: FPType, content: str, prefix: str = "ck") -> str:
    """Stable id of a canonical content text.

    ``prefix`` only namespaces the rendered id (the fuzzer uses ``fuzz``
    so mutant program ids keep their historical shape); the hash itself
    depends on the content alone.
    """
    return f"{prefix}-{fptype.value}-{hash_bytes(content.encode('utf-8')):016x}"


def content_id_for(test: TestCase, prefix: str = "ck") -> str:
    """Content id of a test case (its kernel plus its exact input lines)."""
    return content_id(
        test.fptype, content_text(test.program.kernel, test.inputs), prefix
    )
