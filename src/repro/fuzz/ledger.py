"""Append-only JSONL findings ledger with campaign-style resume.

The file discipline (fingerprint header, flushed appends, torn-tail
recovery) is :class:`repro.utils.checkpoint.JsonlCheckpoint` — shared
with the campaign engine's plan-step checkpoint.  On top of it the
ledger's record vocabulary is:

* a ``header`` line carrying the fuzz config fingerprint;
* one ``baseline`` line recording the seed pool's own signatures and the
  corpus indices that already diverge (so a resumed session neither
  re-runs the baseline nor mistakes an old signature for a novel one);
* one ``batch`` line per completed batch of mutation iterations, carrying
  that batch's findings and its pool *promotions* — discrepant mutants
  that joined the seed pool without carrying a novel signature (the AFL
  "interesting input" queue).  Promotions are part of the ledger because
  the pool's evolution must be reconstructible on resume.

Every line is written deterministically — no timestamps, no elapsed
times, fixed key order — so two complete runs of the same seeded config
produce byte-identical ledgers, and a torn final line (session killed
mid-append) is dropped on reopen exactly like a campaign checkpoint's.

Format compatibility: the header fingerprint carries a ``format`` version
(see :meth:`repro.fuzz.engine.FuzzConfig.fingerprint`).  Format 2 — the
FP16 lane — added the ``precision-cast`` mutation to the default set and
an ``fptype`` field to every signature record; format-1 ledgers are
rejected on resume rather than silently misread.  Format 3 — the
metamorphic-oracle lane — adds ``oracle:<relation>`` signature causes
(``arm: "oracle"`` findings whose outcome pair is base-vs-variant on one
platform, the implicated platform riding in the functions slot).  The
format-3 keys are emitted only when ``oracle_relations`` is non-empty, so
a non-oracle config fingerprints exactly as format 2 and every existing
format-2 ledger still resumes; an oracle session's ledger is refused by a
format-2 engine (and vice versa), which is correct — neither can replay
the other's trajectory.  Format 4 — the stack registry — adds per-pair
findings (``arm`` carries a pair name like ``nvcc-cpu`` and the signature
records a ``stacks`` pair); its keys are emitted only for non-default
``stacks`` selections, so default-pair configs fingerprint exactly as
before and every format-2 and format-3 ledger still resumes.  Format 5 —
tree search — adds a per-batch ``search`` trace: one
``[iteration, corpus_index, lineage, reward]`` record per *evaluated*
iteration, which is what lets a resumed mcts session rebuild its tree
statistics (rewards are evaluation results, not replayable from the
config).  The ``search`` key is emitted only when ``FuzzConfig.search``
is ``"mcts"``, so bandit-mode ledgers — the default — stay byte-for-byte
format 2/3/4 and keep resuming under older engines.

A :class:`Finding` records, besides the discrepancy and its signature,
the full *lineage* of the mutant: the corpus index it started from and
the ``(mutation_id, seed[, donor])`` steps applied.  Mutated IR cannot be
regenerated from a ProgramGenerator seed, but it can be *replayed* —
deterministic generation plus deterministic mutation make the lineage a
complete recipe, which is how a resumed session rebuilds its seed pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fuzz.signature import DiscrepancySignature
from repro.harness.differential import Discrepancy
from repro.utils.checkpoint import JsonlCheckpoint

__all__ = ["LineageStep", "Finding", "Promotion", "SearchTrace", "FindingsLedger"]


@dataclass(frozen=True)
class LineageStep:
    """One mutation applied on the way to a mutant.

    ``donor_index`` is the corpus index of the splice donor (``None`` for
    donor-free mutations).
    """

    mutation: str
    seed: int
    donor_index: Optional[int] = None

    def to_json(self) -> List[object]:
        if self.donor_index is None:
            return [self.mutation, self.seed]
        return [self.mutation, self.seed, self.donor_index]

    @classmethod
    def from_json(cls, data: Sequence[object]) -> "LineageStep":
        return cls(
            mutation=str(data[0]),
            seed=int(data[1]),  # type: ignore[arg-type]
            donor_index=int(data[2]) if len(data) > 2 else None,  # type: ignore[arg-type]
        )


@dataclass
class Finding:
    """One novel-signature discrepancy discovered by the fuzzer."""

    iteration: int
    arm: str  # "native" | "hipify" | "oracle" (format 3)
    mutant_id: str
    corpus_index: int
    lineage: Tuple[LineageStep, ...]
    signature: DiscrepancySignature
    discrepancy: Discrepancy
    original_size: int
    reduced_size: Optional[int] = None
    reduced_cuda: Optional[str] = None

    @property
    def minimized(self) -> bool:
        return self.reduced_size is not None

    def describe(self) -> str:
        mutations = "→".join(step.mutation for step in self.lineage) or "(seed)"
        size = (
            f", minimized {self.original_size}→{self.reduced_size} nodes"
            if self.minimized
            else ""
        )
        return (
            f"#{self.iteration} [{self.arm}] {self.signature.describe()} "
            f"via {mutations}{size}"
        )

    def to_json_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "iteration": self.iteration,
            "arm": self.arm,
            "mutant_id": self.mutant_id,
            "corpus_index": self.corpus_index,
            "lineage": [step.to_json() for step in self.lineage],
            "signature": self.signature.to_json_dict(),
            "discrepancy": self.discrepancy.to_json_dict(),
            "original_size": self.original_size,
        }
        if self.reduced_size is not None:
            data["reduced_size"] = self.reduced_size
        if self.reduced_cuda is not None:
            data["reduced_cuda"] = self.reduced_cuda
        return data

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "Finding":
        return cls(
            iteration=int(data["iteration"]),  # type: ignore[arg-type]
            arm=str(data["arm"]),
            mutant_id=str(data["mutant_id"]),
            corpus_index=int(data["corpus_index"]),  # type: ignore[arg-type]
            lineage=tuple(
                LineageStep.from_json(step) for step in data["lineage"]  # type: ignore[union-attr]
            ),
            signature=DiscrepancySignature.from_json_dict(data["signature"]),  # type: ignore[arg-type]
            discrepancy=Discrepancy.from_json_dict(data["discrepancy"]),  # type: ignore[arg-type]
            original_size=int(data["original_size"]),  # type: ignore[arg-type]
            reduced_size=(
                int(data["reduced_size"]) if "reduced_size" in data else None  # type: ignore[arg-type]
            ),
            reduced_cuda=(
                str(data["reduced_cuda"]) if "reduced_cuda" in data else None
            ),
        )


@dataclass(frozen=True)
class Promotion:
    """A discrepant mutant added to the pool without a novel signature."""

    iteration: int
    corpus_index: int
    lineage: Tuple[LineageStep, ...]

    def to_json(self) -> List[object]:
        return [
            self.iteration,
            self.corpus_index,
            [step.to_json() for step in self.lineage],
        ]

    @classmethod
    def from_json(cls, data: Sequence[object]) -> "Promotion":
        return cls(
            iteration=int(data[0]),  # type: ignore[arg-type]
            corpus_index=int(data[1]),  # type: ignore[arg-type]
            lineage=tuple(LineageStep.from_json(s) for s in data[2]),  # type: ignore[union-attr]
        )


@dataclass(frozen=True)
class SearchTrace:
    """One evaluated mcts iteration: which node, what reward (format 5).

    Skipped iterations are *not* recorded: tree selection is a pure
    function of the tree state and the iteration's derived rng, so a
    resumed session reproduces them by replaying ``prepare``.  The
    reward is the only evaluation-dependent quantity the tree absorbs,
    which is why it is the only thing the trace must carry;
    ``corpus_index``/``lineage`` double as a consistency check that the
    replayed selection matches the recorded one.
    """

    iteration: int
    corpus_index: int
    lineage: Tuple[LineageStep, ...]
    reward: float
    #: whether the program diverged at all (novel signature or not) —
    #: divergence promotes the mutant into the tree without paying
    #: ancestor reward, so replay needs it alongside the reward.
    diverged: bool = False

    def to_json(self) -> List[object]:
        return [
            self.iteration,
            self.corpus_index,
            [step.to_json() for step in self.lineage],
            self.reward,
            1 if self.diverged else 0,
        ]

    @classmethod
    def from_json(cls, data: Sequence[object]) -> "SearchTrace":
        return cls(
            iteration=int(data[0]),  # type: ignore[arg-type]
            corpus_index=int(data[1]),  # type: ignore[arg-type]
            lineage=tuple(LineageStep.from_json(s) for s in data[2]),  # type: ignore[union-attr]
            reward=float(data[3]),  # type: ignore[arg-type]
            diverged=bool(data[4]) if len(data) > 4 else False,  # type: ignore[arg-type]
        )


@dataclass
class LedgerState:
    """Everything a resumed session reloads from an existing ledger."""

    baseline_signatures: List[DiscrepancySignature] = field(default_factory=list)
    hot_corpus_indices: List[int] = field(default_factory=list)
    baseline_runs: int = 0
    findings: List[Finding] = field(default_factory=list)
    #: interleaved pool events in ledger order, for exact state replay:
    #: ``("finding", Finding)`` and ``("promotion", Promotion)``.
    pool_events: List[Tuple[str, object]] = field(default_factory=list)
    #: format-5 (mcts) per-iteration search records, in ledger order;
    #: empty for bandit-mode ledgers.
    search_steps: List[SearchTrace] = field(default_factory=list)
    iterations_completed: int = 0
    batches_completed: int = 0
    has_baseline: bool = False


class FindingsLedger(JsonlCheckpoint):
    """The append-only JSONL file behind ``repro-fuzz --ledger``."""

    noun = "ledger"
    writer = "a fuzz session"

    # ------------------------------------------------------------------ read
    def load(self, fingerprint: Dict[str, object]) -> LedgerState:
        """Read a ledger back, validating its header against ``fingerprint``."""
        state = LedgerState()
        for data in self.iter_records(fingerprint):
            kind = data.get("kind")
            if kind == "baseline":
                state.has_baseline = True
                state.baseline_runs = int(data.get("runs", 0))
                state.baseline_signatures = [
                    DiscrepancySignature.from_json_dict(s)
                    for s in data.get("signatures", [])
                ]
                state.hot_corpus_indices = [int(i) for i in data.get("hot", [])]
            elif kind == "batch":
                state.batches_completed += 1
                state.iterations_completed = max(
                    state.iterations_completed, int(data["stop"])
                )
                findings = [
                    Finding.from_json_dict(f) for f in data.get("findings", [])
                ]
                promotions = [
                    Promotion.from_json(p) for p in data.get("promoted", [])
                ]
                state.findings.extend(findings)
                state.search_steps.extend(
                    SearchTrace.from_json(s) for s in data.get("search", [])
                )
                # Interleave in live-run order: all of one iteration's
                # findings land before that iteration's promotion.
                events = [(f.iteration, 0, "finding", f) for f in findings]
                events += [(p.iteration, 1, "promotion", p) for p in promotions]
                state.pool_events.extend(
                    (kind_, obj) for _, _, kind_, obj in sorted(
                        events, key=lambda e: (e[0], e[1])
                    )
                )
        return state

    # ----------------------------------------------------------------- write
    def append_baseline(
        self,
        runs: int,
        signatures: Sequence[DiscrepancySignature],
        hot_corpus_indices: Sequence[int],
    ) -> None:
        self.append_record(
            {
                "kind": "baseline",
                "runs": runs,
                "signatures": [s.to_json_dict() for s in signatures],
                "hot": list(hot_corpus_indices),
            }
        )

    def append_batch(
        self,
        index: int,
        start: int,
        stop: int,
        findings: Sequence[Finding],
        promoted: Sequence[Promotion] = (),
        search: Optional[Sequence[SearchTrace]] = None,
    ) -> None:
        """``search=None`` (bandit mode) omits the format-5 key entirely,
        keeping bandit batch lines byte-identical to earlier formats; an
        mcts session passes a list — empty batches included — so every
        format-5 batch line is self-describing."""
        record: Dict[str, object] = {
            "kind": "batch",
            "index": index,
            "start": start,
            "stop": stop,
            "findings": [f.to_json_dict() for f in findings],
            "promoted": [p.to_json() for p in promoted],
        }
        if search is not None:
            record["search"] = [s.to_json() for s in search]
        self.append_record(record)
