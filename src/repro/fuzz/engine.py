"""The feedback-guided fuzzing loop.

One *iteration* = pick a seed from the pool (power-scheduled), pick a
mutation, produce a mutant, and — if it is structurally valid and not a
duplicate — run it through the campaign machinery: one
:meth:`~repro.compilers.compiler.Compiler.compile_sweep`-backed
:meth:`~repro.harness.runner.DifferentialRunner.run_sweep` per arm, with
the HIPIFY twin's CUDA half replayed from a content-keyed
:class:`~repro.harness.runner.RunCache` exactly as the campaign's fused
fp64 arms do (mutants share compiled nvcc arms with their native run, so
the hipify probe costs zero extra nvcc executions).

Feedback: every discrepancy is triaged
(:func:`repro.analysis.triage.triage_discrepancy`) and condensed to a
:class:`~repro.fuzz.signature.DiscrepancySignature`.  A signature not
seen before — neither in the seed pool's own baseline nor in any earlier
finding — is a **novel finding**: it is auto-minimized with
:func:`repro.analysis.reduce.reduce_testcase`, appended to the ledger,
and fed back three ways:

* the mutant joins the seed pool and its parent's energy grows, so the
  power schedule drifts toward regions of program space that keep
  yielding new mechanisms;
* the arm that produced it gains scheduling weight (an AFL-style bandit
  over the six mutators plus an *explore* arm that evaluates a fresh
  generated program: a session whose novelty comes from call
  substitution spends its budget there; a session whose pool runs dry
  drifts back toward blind generation);
* splice donors are drawn energy-weighted, so divergence-prone
  subexpressions get transplanted into fresh contexts.

That is the difference from the paper's blind generation: runs are spent
*near* known divergence, not uniformly.  All three feedback channels are
functions of the ledger's findings alone, which is what keeps a resumed
session on the same trajectory as an uninterrupted one.

Determinism: every random decision derives from
``derive_seed(config.seed, purpose, iteration)``, the pool evolves only
through ledger-recorded findings, and no wall-clock value feeds back into
scheduling — so a seeded session run twice writes byte-identical ledgers,
and an interrupted session resumed from its ledger produces the same
findings as an uninterrupted one.  (A ``max_seconds`` budget can stop a
session early between iterations; the *prefix* of findings is still
deterministic.)

Accounting: ``pair_runs`` counts compared record pairs in baseline and
mutation sweeps; triage probes and minimization reruns are bookkept by
their own tools and excluded, mirroring how the paper's run totals count
campaign runs, not debugging reruns.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.reduce import kernel_size, reduce_testcase
from repro.analysis.triage import triage_discrepancy
from repro.codegen.base import EmitterConfig, render_kernel_body, render_signature
from repro.codegen.cuda import render_cuda
from repro.compilers.options import OptSetting, PAPER_OPT_SETTINGS
from repro.errors import HarnessError, ReproError
from repro.fp.types import FPType
from repro.fuzz.ledger import Finding, FindingsLedger, LedgerState, LineageStep, Promotion
from repro.fuzz.mutators import MUTATION_NAMES, MUTATORS, apply_mutation
from repro.fuzz.signature import DiscrepancySignature, signature_histogram
from repro.harness.differential import Discrepancy
from repro.harness.runner import DifferentialRunner, RunCache
from repro.ir.program import Kernel, Program
from repro.ir.validate import validate_kernel
from repro.utils.hashing import hash_bytes
from repro.utils.rng import derive_seed
from repro.utils.tables import Table
from repro.varity.config import GeneratorConfig
from repro.varity.corpus import build_corpus, build_corpus_slice
from repro.varity.testcase import TestCase

__all__ = [
    "FuzzConfig",
    "FuzzResult",
    "RandomSessionResult",
    "run_fuzz",
    "run_random_session",
]


@dataclass(frozen=True)
class FuzzConfig:
    """Size and shape of one fuzzing session."""

    seed: int = 2024
    #: FP32 by default: it is the paper's richest discrepancy surface
    #: (fast-math approximations + FTZ asymmetry exist only there), so a
    #: default session finds material quickly; pass FP64 for the paper's
    #: primary arm.
    fptype: FPType = FPType.FP32
    n_seed_programs: int = 40
    inputs_per_program: int = 3
    #: total mutation iterations for the session (across resumes).
    max_mutants: int = 200
    #: optional wall-clock budget; checked between iterations.
    max_seconds: Optional[float] = None
    batch_size: int = 25
    opts: Tuple[OptSetting, ...] = PAPER_OPT_SETTINGS
    #: probe each mutant's HIPIFY twin too (CUDA half served by the cache).
    include_hipify: bool = True
    #: give the scheduler an "explore" arm that evaluates a brand-new
    #: generated program instead of mutating — the hybrid
    #: generation/mutation strategy.  The bandit decides how much budget
    #: exploration deserves: when the pool's neighborhoods run dry it
    #: degrades gracefully toward blind generation, and when they are
    #: rich it concentrates on mutation.
    explore: bool = True
    #: energy added to a seed for each novel signature it (or its mutant)
    #: produced — the power schedule's feedback term.
    novelty_bonus: float = 8.0
    #: selection energy of promoted (discrepant-but-known-signature)
    #: queue entries; kept near the cold-seed weight so the queue widens
    #: the search without drowning out confirmed-novel regions.
    promotion_energy: float = 1.0
    #: delta-debug every novel finding down to a minimal reproducer.
    minimize: bool = True
    mutations: Tuple[str, ...] = MUTATION_NAMES

    def __post_init__(self) -> None:
        if self.n_seed_programs < 1:
            raise HarnessError("n_seed_programs must be >= 1")
        if self.batch_size < 1:
            raise HarnessError("batch_size must be >= 1")
        if self.max_mutants < 0:
            raise HarnessError("max_mutants must be >= 0")
        unknown = [m for m in self.mutations if m not in MUTATORS]
        if unknown:
            raise HarnessError(f"unknown mutations: {', '.join(unknown)}")

    @property
    def corpus_seed(self) -> int:
        return derive_seed(self.seed, "fuzz-corpus", self.fptype.value)

    def generator_config(self) -> GeneratorConfig:
        cfg = GeneratorConfig(
            fptype=self.fptype, inputs_per_program=self.inputs_per_program
        )
        cfg.validate()
        return cfg

    def fingerprint(self) -> Dict[str, object]:
        """The result-determining identity of this config.

        Budgets (``max_mutants``, ``max_seconds``) are excluded: they only
        say how *far* to run the deterministic iteration stream, so a
        ledger written under a smaller budget resumes under a larger one —
        the fuzz analogue of the campaign checkpoint's ``workers`` rule.
        """
        return {
            "seed": self.seed,
            "fptype": self.fptype.value,
            "n_seed_programs": self.n_seed_programs,
            "inputs_per_program": self.inputs_per_program,
            "batch_size": self.batch_size,
            "opts": [o.label for o in self.opts],
            "include_hipify": self.include_hipify,
            "explore": self.explore,
            "novelty_bonus": self.novelty_bonus,
            "promotion_energy": self.promotion_energy,
            "minimize": self.minimize,
            "mutations": list(self.mutations),
        }


class _Scheduler:
    """Win-count bandit over the iteration's action.

    The arms are the six mutators plus (when enabled) "explore" —
    evaluate a fresh generated program instead of mutating.  An arm's
    selection weight is ``1 + its novel-signature findings so far``, so
    budget flows to whatever is currently paying: a barren pool drifts
    toward blind generation, a rich one concentrates on the mutators that
    keep producing.  (Novelty rewards arrive in bursts — one divergent
    program can yield several signatures across optimization settings —
    which is why the simple win-count rule empirically beats rate-
    normalized and UCB variants at session-sized attempt counts: it
    commits to a paying region immediately instead of waiting for rate
    estimates to stabilize.)

    Determinism/resume: wins are replayed from ledger findings (a
    finding with an empty lineage is an explore win), and attempts from
    re-simulating the selection sequence — selection at iteration *i*
    depends only on prior selections and prior findings, both of which
    the ledger determines — so a resumed scheduler is in exactly the
    state the interrupted one was.
    """

    def __init__(self, config: "FuzzConfig") -> None:
        self.explore_enabled = config.explore
        self.mutations = config.mutations
        self.arms: Tuple[str, ...] = (
            ("explore",) if config.explore else ()
        ) + config.mutations
        self.attempts: Dict[str, int] = {a: 0 for a in self.arms}
        self.wins: Dict[str, int] = {a: 0 for a in self.arms}

    def pick(self, rng: random.Random) -> str:
        """Choose this iteration's action and count the attempt."""
        arm = rng.choices(
            self.arms, weights=[1 + self.wins[a] for a in self.arms], k=1
        )[0]
        self.attempts[arm] += 1
        return arm

    def record_win(self, arm: str) -> None:
        if arm in self.wins:
            self.wins[arm] += 1


@dataclass
class _PoolEntry:
    """One power-scheduled seed: a corpus program or a promoted mutant."""

    test: TestCase
    corpus_index: int
    lineage: Tuple[LineageStep, ...]
    content: str
    energy: float = 1.0

    @property
    def key(self) -> Tuple[int, Tuple[LineageStep, ...]]:
        return (self.corpus_index, self.lineage)


@dataclass
class FuzzResult:
    """Everything one fuzz session measured and found."""

    config: FuzzConfig
    findings: List[Finding]
    baseline_signatures: List[DiscrepancySignature]
    hot_seed_indices: List[int]
    iterations: int
    resumed_iterations: int
    mutants_run: int = 0
    fresh_explored: int = 0
    mutants_no_site: int = 0
    mutants_invalid: int = 0
    mutants_noop: int = 0
    duplicates: int = 0
    pair_runs: int = 0
    baseline_pair_runs: int = 0
    raw_discrepancies: int = 0
    nvcc_executions: int = 0
    nvcc_cache_hits: int = 0
    elapsed_seconds: float = 0.0
    stopped_by: str = "budget"

    @property
    def novel_signatures(self) -> List[DiscrepancySignature]:
        return [f.signature for f in self.findings]

    @property
    def novel_signature_keys(self) -> Set[str]:
        return {f.signature.key for f in self.findings}

    @property
    def cache_hit_rate(self) -> float:
        attempts = self.nvcc_executions + self.nvcc_cache_hits
        return self.nvcc_cache_hits / attempts if attempts else 0.0

    def histogram(self) -> Table:
        return signature_histogram(
            self.novel_signatures, title="Novel discrepancy signatures (fuzz findings)"
        )


@dataclass
class RandomSessionResult:
    """Pure blind generation at the same run budget, for comparison."""

    n_programs: int
    pair_runs: int = 0
    raw_discrepancies: int = 0
    novel_signatures: List[DiscrepancySignature] = field(default_factory=list)

    @property
    def novel_signature_keys(self) -> Set[str]:
        return {s.key for s in self.novel_signatures}


# ---------------------------------------------------------------------------
# Shared evaluation machinery
# ---------------------------------------------------------------------------


def _content_text(kernel: Kernel, test: TestCase) -> str:
    """Canonical text identity of (kernel, inputs) for dedup/cache keying."""
    cfg = EmitterConfig(fptype=kernel.fptype)
    parts = [render_signature(kernel, cfg), render_kernel_body(kernel, cfg)]
    parts.extend(vec.line for vec in test.inputs)
    return "\n".join(parts)


def _content_id(fptype: FPType, content: str) -> str:
    return f"fuzz-{fptype.value}-{hash_bytes(content.encode('utf-8')):016x}"


class _Evaluator:
    """Runs tests through both arms and condenses discrepancies to signatures."""

    def __init__(self, config: FuzzConfig) -> None:
        self.config = config
        self.runner = DifferentialRunner()
        self.pair_runs = 0
        self.cache_hits = 0

    def evaluate(self, test: TestCase) -> List[Tuple[str, Discrepancy]]:
        """Sweep ``test`` natively (and as its HIPIFY twin) on both platforms.

        The native sweep populates a run cache and the twin replays its
        CUDA half from it — the campaign's fused-arm reuse invariant,
        applied per mutant.  The cache lives one evaluation (like the
        fused campaign walk's): entries could only ever be hit by the
        test's own twin — content dedup already prevents identical
        mutants from re-running — so a session-lifetime cache would just
        be an unbounded memory leak on long ``--max-seconds`` sessions.
        """
        out: List[Tuple[str, Discrepancy]] = []
        cache = RunCache()
        sweep = self.runner.run_sweep(test, self.config.opts, populate_cache=cache)
        for pair in sweep.values():
            self.pair_runs += len(pair.nvcc_runs)
            out.extend(("native", d) for d in pair.discrepancies)
        if self.config.include_hipify:
            twin = test.hipified()
            sweep = self.runner.run_sweep(twin, self.config.opts, nvcc_cache=cache)
            for pair in sweep.values():
                self.pair_runs += len(pair.nvcc_runs)
                out.extend(("hipify", d) for d in pair.discrepancies)
        self.cache_hits += cache.hits
        return out

    def signatures_for(
        self, test: TestCase, found: Sequence[Tuple[str, Discrepancy]]
    ) -> List[Tuple[str, Discrepancy, DiscrepancySignature]]:
        """Triage every discrepancy; keep the first of each signature.

        Triage is per-(opt, input) — two inputs diverging with the same
        outcome pair can implicate different functions or even different
        causes — so dedup happens *after* attribution, on the signature
        itself, never by collapsing discrepancies up front.
        """
        out: List[Tuple[str, Discrepancy, DiscrepancySignature]] = []
        local_seen: Set[str] = set()
        for arm, d in found:
            target = test.hipified() if arm == "hipify" else test
            verdict = triage_discrepancy(
                self.runner, target, OptSetting.from_label(d.opt_label), d.input_index
            )
            sig = DiscrepancySignature.from_verdict(verdict, d)
            if sig.key not in local_seen:
                local_seen.add(sig.key)
                out.append((arm, d, sig))
        return out


class _LazyCorpus:
    """The seed corpus plus on-demand extension to any absolute index.

    Corpus indices are the ledger's program identity: indices below
    ``n_seed_programs`` are the seed pool, larger ones are programs the
    explore arm generated mid-session.  Either kind regenerates
    deterministically from ``(generator config, corpus seed, index)``, so
    a resumed session rebuilds explored pool entries without replaying
    their executions.
    """

    def __init__(self, config: FuzzConfig) -> None:
        self._gen_cfg = config.generator_config()
        self._root_seed = config.corpus_seed
        base = build_corpus(
            self._gen_cfg, config.n_seed_programs, self._root_seed, prefix="fuzzseed"
        )
        self._tests: Dict[int, TestCase] = dict(enumerate(base.tests))
        self.n_seed_programs = config.n_seed_programs

    def get(self, index: int) -> TestCase:
        test = self._tests.get(index)
        if test is None:
            test = build_corpus_slice(
                self._gen_cfg, index, index + 1, self._root_seed, prefix="fuzzseed"
            ).tests[0]
            self._tests[index] = test
        return test

    def seed_tests(self) -> List[TestCase]:
        return [self._tests[i] for i in range(self.n_seed_programs)]


def _replay_lineage(
    corpus: _LazyCorpus, corpus_index: int, lineage: Sequence[LineageStep]
) -> Kernel:
    """Rebuild a mutant kernel from its ledger lineage."""
    kernel = corpus.get(corpus_index).program.kernel
    for step in lineage:
        donor = (
            corpus.get(step.donor_index).program.kernel
            if step.donor_index is not None
            else None
        )
        mutated = apply_mutation(kernel, step.mutation, step.seed, donor)
        if mutated is None:
            raise HarnessError(
                f"ledger lineage does not replay: {step.mutation} produced no mutant"
            )
        kernel = mutated
    return kernel


# ---------------------------------------------------------------------------
# The session
# ---------------------------------------------------------------------------


def run_fuzz(
    config: Optional[FuzzConfig] = None,
    *,
    ledger: Optional[Union[str, Path]] = None,
    resume: Union[bool, str] = False,
    progress=None,
) -> FuzzResult:
    """Run one fuzzing session; returns the findings and the accounting.

    ``ledger`` names the JSONL findings file; ``resume=True`` reloads a
    matching ledger (config fingerprint must agree) and continues the
    iteration stream where it stopped; ``resume="auto"`` falls back to a
    fresh session when the ledger is missing or mismatched.  ``progress``
    is an optional ``(phase, done, total)`` callable.
    """
    config = config or FuzzConfig()
    if resume and ledger is None:
        raise HarnessError("resume requires a ledger path")
    t0 = time.perf_counter()

    corpus = _LazyCorpus(config)
    evaluator = _Evaluator(config)
    triage_runner = evaluator.runner

    book: Optional[FindingsLedger] = None
    state = LedgerState()
    resuming = bool(resume)
    if ledger is not None:
        book = FindingsLedger(ledger)
        if resume:
            try:
                state = book.load(config.fingerprint())
            except HarnessError:
                if resume != "auto":
                    raise
                state = LedgerState()
                resuming = False
        book.open_for_append(config.fingerprint(), fresh=not resuming)

    pool: List[_PoolEntry] = []
    by_key: Dict[Tuple[int, Tuple[LineageStep, ...]], _PoolEntry] = {}
    for index, test in enumerate(corpus.seed_tests()):
        entry = _PoolEntry(
            test=test,
            corpus_index=index,
            lineage=(),
            content=_content_text(test.program.kernel, test),
        )
        pool.append(entry)
        by_key[entry.key] = entry

    seen: Set[str] = set()
    findings: List[Finding] = list(state.findings)
    baseline_signatures: List[DiscrepancySignature]
    hot_indices: List[int]
    baseline_pair_runs: int

    # ---------------------------------------------------------- baseline
    if resuming and state.has_baseline:
        baseline_signatures = state.baseline_signatures
        hot_indices = state.hot_corpus_indices
        baseline_pair_runs = state.baseline_runs
    else:
        baseline_signatures = []
        hot_indices = []
        runs0 = evaluator.pair_runs
        for index, test in enumerate(corpus.seed_tests()):
            found = evaluator.evaluate(test)
            if found:
                hot_indices.append(index)
            for _, _, sig in evaluator.signatures_for(test, found):
                if sig.key not in {s.key for s in baseline_signatures}:
                    baseline_signatures.append(sig)
            if progress is not None:
                progress("baseline", index + 1, config.n_seed_programs)
        baseline_pair_runs = evaluator.pair_runs - runs0
        if book is not None:
            book.append_baseline(baseline_pair_runs, baseline_signatures, hot_indices)

    seen.update(s.key for s in baseline_signatures)
    for index in hot_indices:
        pool[index].energy += config.novelty_bonus

    scheduler = _Scheduler(config)

    # ------------------------------------------- replay prior pool events
    evaluated: Set[str] = set()

    def add_pool_entry(
        corpus_index: int, lineage: Tuple[LineageStep, ...], energy: float
    ) -> None:
        base = corpus.get(corpus_index)
        if lineage:
            kernel = _replay_lineage(corpus, corpus_index, lineage)
            content = _content_text(kernel, base)
            program = Program(
                program_id=_content_id(config.fptype, content),
                kernel=kernel,
                seed=lineage[-1].seed,
                source_note="fuzz mutant",
            )
            test = TestCase(program, base.inputs)
        else:
            test = base  # an explore-arm program: the corpus test itself
            content = _content_text(test.program.kernel, test)
        entry = _PoolEntry(
            test=test,
            corpus_index=corpus_index,
            lineage=lineage,
            content=content,
            energy=energy,
        )
        pool.append(entry)
        by_key[entry.key] = entry
        evaluated.add(_content_id(config.fptype, content))

    promoted_energy = config.promotion_energy
    # Re-simulate the completed iterations' *selections* (cheap: no
    # compilation, no execution) while applying the ledger's findings and
    # promotions at the iterations they occurred — this reconstructs the
    # scheduler's attempt counters and the pool's evolution exactly.
    events_by_iter: Dict[int, List[Tuple[str, object]]] = {}
    for kind, event in state.pool_events:
        events_by_iter.setdefault(event.iteration, []).append((kind, event))  # type: ignore[union-attr]
    for i in range(state.iterations_completed):
        rng = random.Random(derive_seed(config.seed, "select", i))
        scheduler.pick(rng)
        for kind, event in events_by_iter.get(i, ()):
            if kind == "finding":
                f = event  # type: Finding
                seen.add(f.signature.key)
                scheduler.record_win(f.lineage[-1].mutation if f.lineage else "explore")
                if f.lineage:
                    parent = by_key.get((f.corpus_index, f.lineage[:-1]))
                    if parent is not None:
                        parent.energy += config.novelty_bonus
                if (f.corpus_index, f.lineage) not in by_key:
                    add_pool_entry(f.corpus_index, f.lineage, 1.0 + config.novelty_bonus)
            else:
                p = event  # type: Promotion
                if (p.corpus_index, p.lineage) not in by_key:
                    add_pool_entry(p.corpus_index, p.lineage, promoted_energy)

    result = FuzzResult(
        config=config,
        findings=findings,
        baseline_signatures=baseline_signatures,
        hot_seed_indices=hot_indices,
        iterations=state.iterations_completed,
        resumed_iterations=state.iterations_completed,
        baseline_pair_runs=baseline_pair_runs,
    )

    # ------------------------------------------------------ the loop
    runs0 = evaluator.pair_runs
    batch_findings: List[Finding] = []
    batch_promotions: List[Promotion] = []
    batch_start = state.iterations_completed
    batches_written = state.batches_completed
    stopped_by = "budget"

    def flush_batch(stop: int) -> None:
        nonlocal batch_start, batches_written, batch_findings, batch_promotions
        if book is not None and stop > batch_start:
            book.append_batch(
                batches_written, batch_start, stop, batch_findings, batch_promotions
            )
            batches_written += 1
        batch_start = stop
        batch_findings = []
        batch_promotions = []

    def run_iteration(i: int) -> None:
        """One scheduler pick, mutation/exploration, evaluation, feedback."""
        rng = random.Random(derive_seed(config.seed, "select", i))
        arm_choice = scheduler.pick(rng)

        parent: Optional[_PoolEntry] = None
        if arm_choice == "explore":
            # A fresh generated program; its index extends the corpus,
            # so any finding's (corpus_index, lineage=()) replays.
            corpus_index = config.n_seed_programs + i
            test = corpus.get(corpus_index)
            lineage: Tuple[LineageStep, ...] = ()
            content = _content_text(test.program.kernel, test)
            evaluated.add(_content_id(config.fptype, content))
            result.fresh_explored += 1
        else:
            parent = rng.choices(pool, weights=[e.energy for e in pool], k=1)[0]
            donor_index: Optional[int] = None
            donor: Optional[Kernel] = None
            if MUTATORS[arm_choice].needs_donor:
                # Donors come from corpus-backed entries (so the lineage
                # stays a flat recipe) but are drawn energy-weighted:
                # divergence-prone subexpressions travel first.
                candidates = [e for e in pool if not e.lineage]
                donor_entry = rng.choices(
                    candidates, weights=[e.energy for e in candidates], k=1
                )[0]
                donor_index = donor_entry.corpus_index
                donor = donor_entry.test.program.kernel
            mseed = derive_seed(config.seed, "mutant", i)
            kernel = apply_mutation(
                parent.test.program.kernel, arm_choice, mseed, donor
            )
            if kernel is None:
                result.mutants_no_site += 1
                return
            if validate_kernel(kernel):
                result.mutants_invalid += 1
                return
            content = _content_text(kernel, parent.test)
            if content == parent.content:
                result.mutants_noop += 1
                return
            content_id = _content_id(config.fptype, content)
            if content_id in evaluated:
                result.duplicates += 1
                return
            evaluated.add(content_id)
            corpus_index = parent.corpus_index
            lineage = parent.lineage + (LineageStep(arm_choice, mseed, donor_index),)
            program = Program(
                program_id=content_id,
                kernel=kernel,
                seed=mseed,
                source_note="fuzz mutant",
            )
            test = TestCase(program, parent.test.inputs)
            result.mutants_run += 1

        found = evaluator.evaluate(test)
        result.raw_discrepancies += len(found)
        if not found:
            return

        promoted = False
        new_entry = _PoolEntry(
            test=test, corpus_index=corpus_index, lineage=lineage, content=content
        )
        for platform_arm, d, sig in evaluator.signatures_for(test, found):
            if sig.key in seen:
                continue
            seen.add(sig.key)
            target = test.hipified() if platform_arm == "hipify" else test
            reduced_size: Optional[int] = None
            reduced_cuda: Optional[str] = None
            if config.minimize:
                try:
                    reduction = reduce_testcase(
                        target,
                        OptSetting.from_label(d.opt_label),
                        d.input_index,
                        runner=triage_runner,
                    )
                    reduced_size = reduction.reduced_size
                    reduced_cuda = render_cuda(reduction.reduced.program)
                except (ValueError, ReproError):
                    pass  # finding stays unminimized; still novel
            finding = Finding(
                iteration=i,
                arm=platform_arm,
                mutant_id=test.test_id,
                corpus_index=corpus_index,
                lineage=lineage,
                signature=sig,
                discrepancy=d,
                original_size=kernel_size(test.program.kernel),
                reduced_size=reduced_size,
                reduced_cuda=reduced_cuda,
            )
            findings.append(finding)
            batch_findings.append(finding)
            if parent is not None:
                parent.energy += config.novelty_bonus
            scheduler.record_win(arm_choice)
            if not promoted:
                promoted = True
                new_entry.energy = 1.0 + config.novelty_bonus
                pool.append(new_entry)
                by_key[new_entry.key] = new_entry

        if not promoted:
            # Discrepant but nothing novel: still an interesting input.
            # It joins the pool (AFL's queue) — chains of mutations walk
            # the signature space further than one hop can — and the
            # promotion is ledgered so a resume rebuilds the same pool.
            promotion = Promotion(i, corpus_index, lineage)
            batch_promotions.append(promotion)
            new_entry.energy = promoted_energy
            pool.append(new_entry)
            by_key[new_entry.key] = new_entry

    try:
        for i in range(state.iterations_completed, config.max_mutants):
            if (
                config.max_seconds is not None
                and time.perf_counter() - t0 > config.max_seconds
            ):
                stopped_by = "wall-clock"
                break
            result.iterations = i + 1
            run_iteration(i)
            # The flush check runs every iteration — including ones that
            # produced nothing — so batch_size bounds the work a hard
            # kill can lose even through a dry stretch.
            if (i + 1 - batch_start) >= config.batch_size:
                flush_batch(i + 1)
                if progress is not None:
                    progress("fuzz", i + 1, config.max_mutants)
        flush_batch(result.iterations)
        if progress is not None and result.iterations:
            progress("fuzz", result.iterations, config.max_mutants)
    finally:
        if book is not None:
            book.close()

    result.pair_runs = evaluator.pair_runs - runs0
    result.nvcc_executions = evaluator.runner.nvcc_executions
    result.nvcc_cache_hits = evaluator.cache_hits
    result.elapsed_seconds = time.perf_counter() - t0
    result.stopped_by = stopped_by
    return result


def run_random_session(
    config: Optional[FuzzConfig] = None,
    n_programs: int = 0,
    *,
    skip_signatures: Optional[Set[str]] = None,
    progress=None,
) -> RandomSessionResult:
    """Blind Varity generation at a comparable run budget (the control arm).

    Generates ``n_programs`` *fresh* programs — from a control seed
    stream disjoint from both the fuzz seed pool and the explore arm's
    programs, but drawn from the same generator distribution — and
    evaluates them with the same sweep machinery.  ``skip_signatures``
    (typically the fuzz session's baseline keys) defines novelty the same
    way the fuzzer's seen-set does, making the two arms' novel-signature
    yields directly comparable at equal ``pair_runs``.
    """
    config = config or FuzzConfig()
    skip = set(skip_signatures or ())
    evaluator = _Evaluator(config)
    corpus = build_corpus(
        config.generator_config(),
        n_programs,
        derive_seed(config.corpus_seed, "random-control"),
        prefix="fuzzctl",
    )
    result = RandomSessionResult(n_programs=n_programs)
    seen: Set[str] = set(skip)
    for index, test in enumerate(corpus):
        found = evaluator.evaluate(test)
        result.raw_discrepancies += len(found)
        for _, _, sig in evaluator.signatures_for(test, found):
            if sig.key not in seen:
                seen.add(sig.key)
                result.novel_signatures.append(sig)
        if progress is not None:
            progress("random", index + 1, n_programs)
    result.pair_runs = evaluator.pair_runs
    return result
