"""The feedback-guided fuzzing loop.

One *iteration* = pick a seed from the pool (power-scheduled), pick a
mutation, produce a mutant, and — if it is structurally valid and not a
duplicate — run it through the shared execution layer: one
:class:`~repro.exec.units.SweepRequest` per arm submitted to
:class:`~repro.exec.service.ExecutionService`, with the HIPIFY twin's
CUDA half replayed from the content-keyed run store exactly as the
campaign's fused fp64 arms do (a mutant and its twin share one content
id, so the hipify probe costs zero extra nvcc executions).

Feedback: every discrepancy is triaged
(:func:`repro.analysis.triage.triage_discrepancy`) and condensed to a
:class:`~repro.fuzz.signature.DiscrepancySignature`.  A signature not
seen before — neither in the seed pool's own baseline nor in any earlier
finding — is a **novel finding**: it is auto-minimized with
:func:`repro.analysis.reduce.reduce_testcase`, appended to the ledger,
and fed back three ways:

* the mutant joins the seed pool and its parent's energy grows, so the
  power schedule drifts toward regions of program space that keep
  yielding new mechanisms;
* the arm that produced it gains scheduling weight (an AFL-style bandit
  over the seven mutators plus an *explore* arm that evaluates a fresh
  generated program: a session whose novelty comes from call
  substitution spends its budget there; a session whose pool runs dry
  drifts back toward blind generation);
* splice donors are drawn energy-weighted, so divergence-prone
  subexpressions get transplanted into fresh contexts.

That is the difference from the paper's blind generation: runs are spent
*near* known divergence, not uniformly.  All three feedback channels are
functions of the ledger's findings alone, which is what keeps a resumed
session on the same trajectory as an uninterrupted one.

Determinism: every random decision derives from
``derive_seed(config.seed, purpose, iteration)``, the pool evolves only
through ledger-recorded findings, and no wall-clock value feeds back into
scheduling — so a seeded session run twice writes byte-identical ledgers,
and an interrupted session resumed from its ledger produces the same
findings as an uninterrupted one.  (A ``max_seconds`` budget can stop a
session early between iterations; the *prefix* of findings is still
deterministic.)

Parallelism (``config.workers``): iteration *i*'s selection depends only
on scheduler wins, the pool, and the dedup set — none of which change
while evaluations come back clean — so the engine *speculates* a window
of upcoming iterations against the frozen state, evaluates their mutants
concurrently through the service's process-pool backend, and commits the
results in iteration order.  The first discrepant iteration changes the
pool, invalidating everything speculated after it; those outcomes are
discarded (their runs are not counted) and speculation restarts from the
updated state.  The committed trajectory is therefore *exactly* the
serial one: the ledger is byte-identical at every worker count.  Triage
of a discrepant mutant's findings fans out over the same pool.
Speculation pays off in proportion to how rarely mutants diverge — an
FP64 session parallelizes almost perfectly, a divergence-rich FP32
session mainly gains on the seed-pool baseline and triage.

Accounting: ``pair_runs`` counts compared record pairs in baseline and
mutation sweeps of *committed* iterations; discarded speculation, triage
probes, and minimization reruns are excluded, mirroring how the paper's
run totals count campaign runs, not debugging reruns.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.reduce import kernel_size, reduce_testcase
from repro.analysis.triage import Cause, TriageVerdict, triage_discrepancy
from repro.codegen.cuda import render_cuda
from repro.compilers.options import OptSetting, PAPER_OPT_SETTINGS
from repro.errors import HarnessError, ReproError
from repro.exec import (
    CHUNK_CACHE,
    DerivedTestSpec,
    ExecutionService,
    SweepOutcome,
    SweepRequest,
    content_id,
    content_text,
    resolve_backend,
)
from repro.exec.units import RunnerSpec
from repro.fp.classify import OutcomeClass
from repro.fp.types import FPType
from repro.fuzz.ledger import (
    Finding,
    FindingsLedger,
    LedgerState,
    LineageStep,
    Promotion,
    SearchTrace,
)
from repro.fuzz.mutators import MUTATION_NAMES, MUTATORS, apply_mutation
from repro.fuzz.search import MctsSearch, PreparedIteration as _Prep
from repro.fuzz.signature import DiscrepancySignature, signature_histogram
from repro.harness.differential import Discrepancy, classify_pair
from repro.harness.runner import DifferentialRunner
from repro.ir.program import Kernel, Program
from repro.ir.validate import validate_kernel
from repro.oracle.engine import build_relation_requests, check_relation_outcomes
from repro.oracle.relations import Relation, RelationViolation, resolve_relations
from repro.stacks import DEFAULT_STACK_PAIR, pair_name, resolve_stacks, stack_pairs
from repro.telemetry.spans import get_tracer
from repro.utils.rng import derive_seed
from repro.utils.tables import Table
from repro.varity.config import GeneratorConfig
from repro.varity.corpus import build_corpus, build_corpus_slice
from repro.varity.testcase import TestCase

__all__ = [
    "FuzzConfig",
    "FuzzResult",
    "RandomSessionResult",
    "run_fuzz",
    "run_random_session",
]


@dataclass(frozen=True)
class FuzzConfig:
    """Size and shape of one fuzzing session."""

    seed: int = 2024
    #: FP32 by default: it is the paper's richest discrepancy surface
    #: (fast-math approximations + FTZ asymmetry exist only there), so a
    #: default session finds material quickly; pass FP64 for the paper's
    #: primary arm.
    fptype: FPType = FPType.FP32
    n_seed_programs: int = 40
    inputs_per_program: int = 3
    #: total mutation iterations for the session (across resumes).
    max_mutants: int = 200
    #: optional wall-clock budget; checked between iterations.
    max_seconds: Optional[float] = None
    batch_size: int = 25
    opts: Tuple[OptSetting, ...] = PAPER_OPT_SETTINGS
    #: probe each mutant's HIPIFY twin too (CUDA half served by the cache).
    include_hipify: bool = True
    #: give the scheduler an "explore" arm that evaluates a brand-new
    #: generated program instead of mutating — the hybrid
    #: generation/mutation strategy.  The bandit decides how much budget
    #: exploration deserves: when the pool's neighborhoods run dry it
    #: degrades gracefully toward blind generation, and when they are
    #: rich it concentrates on mutation.
    explore: bool = True
    #: energy added to a seed for each novel signature it (or its mutant)
    #: produced — the power schedule's feedback term.
    novelty_bonus: float = 8.0
    #: selection energy of promoted (discrepant-but-known-signature)
    #: queue entries; kept near the cold-seed weight so the queue widens
    #: the search without drowning out confirmed-novel regions.
    promotion_energy: float = 1.0
    #: delta-debug every novel finding down to a minimal reproducer.
    minimize: bool = True
    mutations: Tuple[str, ...] = MUTATION_NAMES
    #: metamorphic-oracle relations checked on every evaluated program
    #: (empty = off).  A relation violation is condensed to an
    #: ``oracle:<relation>`` signature, so relation-breaking mutants feed
    #: the same novelty loop — pool energy, bandit wins, ledger — as
    #: cross-vendor discrepancies, steering the search toward them.  The
    #: relations' base sweeps dedup against the mutant's own native
    #: request, so base-reading relations cost zero extra runs.
    oracle_relations: Tuple[str, ...] = ()
    #: Num/Num drift budget (ULPs) for approximate oracle relations.
    oracle_ulp_bound: int = 4
    #: compiler stacks every evaluation sweeps: each 2-combination is one
    #: differential probe per mutant (the legacy pair keeps its "native"/
    #: "hipify" arms; extra pairs are tagged by their pair name and their
    #: nvcc-lhs halves replay from the mutant's chunk store).
    stacks: Tuple[str, ...] = DEFAULT_STACK_PAIR
    #: process-pool size for mutant evaluation (0/1 = serial).  Pure
    #: scheduling: the committed trajectory — and the ledger — is
    #: byte-identical at every worker count, which is why ``workers`` is
    #: excluded from :meth:`fingerprint` exactly like the campaign
    #: checkpoint's.
    workers: int = 0
    #: Execution backend (None = worker-count rule; "serial"/"pool"/
    #: "bridge").  Pure scheduling, like ``workers`` — excluded from the
    #: fingerprint.
    backend: Optional[str] = None
    bridge_url: Optional[str] = None
    #: iteration-selection strategy.  ``"bandit"`` (the default) is the
    #: flat win-count bandit over mutators; ``"mcts"`` is UCB1 tree
    #: search over IR-edit sequences (:mod:`repro.fuzz.search`), whose
    #: reward blends signature novelty, oracle violations, and grammar
    #: coverage.  Result-determining, so part of the fingerprint
    #: (format 5) — but only in mcts mode, keeping bandit ledgers
    #: byte-compatible.
    search: str = "bandit"

    def __post_init__(self) -> None:
        if self.n_seed_programs < 1:
            raise HarnessError("n_seed_programs must be >= 1")
        if self.batch_size < 1:
            raise HarnessError("batch_size must be >= 1")
        if self.max_mutants < 0:
            raise HarnessError("max_mutants must be >= 0")
        if self.workers < 0:
            raise HarnessError("workers must be >= 0")
        unknown = [m for m in self.mutations if m not in MUTATORS]
        if unknown:
            raise HarnessError(f"unknown mutations: {', '.join(unknown)}")
        try:
            resolve_relations(self.oracle_relations)
        except ValueError as exc:
            raise HarnessError(str(exc)) from None
        resolve_stacks(self.stacks)  # raises HarnessError on bad names
        if self.search not in ("bandit", "mcts"):
            raise HarnessError(
                f"unknown search strategy: {self.search!r} (bandit or mcts)"
            )

    @property
    def corpus_seed(self) -> int:
        return derive_seed(self.seed, "fuzz-corpus", self.fptype.value)

    def generator_config(self) -> GeneratorConfig:
        cfg = GeneratorConfig(
            fptype=self.fptype, inputs_per_program=self.inputs_per_program
        )
        cfg.validate()
        return cfg

    def fingerprint(self) -> Dict[str, object]:
        """The result-determining identity of this config.

        Budgets (``max_mutants``, ``max_seconds``) are excluded: they only
        say how *far* to run the deterministic iteration stream, so a
        ledger written under a smaller budget resumes under a larger one —
        the fuzz analogue of the campaign checkpoint's ``workers`` rule.
        ``workers`` is excluded for the same reason it is there: it only
        changes scheduling, never results.

        Compatibility: the ``format`` key versions the ledger record
        vocabulary.  Format 2 (the FP16 lane) added the ``precision-cast``
        mutation to the default set and a ``fptype`` field to every
        signature, so format-1 ledgers no longer resume under default
        configs — strict ``--resume`` reports the mismatch, ``"auto"``
        starts fresh.  A format-1 session can still be *continued* by an
        old checkout; it cannot be continued by this engine, whose
        scheduler would disagree with the recorded trajectory.

        Format 3 is the metamorphic-oracle lane: a session with
        ``oracle_relations`` signs relation violations as
        ``oracle:<relation>`` causes — a signature vocabulary format 2
        cannot express — and its findings feed the scheduler, so its
        trajectory is not replayable by a format-2 engine.  The format-3
        keys (``format: 3``, ``oracle_relations``, ``oracle_ulp_bound``)
        are emitted only when the oracle is on; a config without
        relations fingerprints exactly as format 2, which is why every
        existing format-2 ledger still resumes under non-oracle configs
        (tested explicitly).

        Format 4 is the stack registry: a session with a non-default
        ``stacks`` selection signs per-pair findings (a ``stacks``
        segment in the signature key) and sweeps per-pair requests whose
        discrepancies feed the scheduler, so its trajectory is not
        replayable by a two-stack engine.  The format-4 keys (``format:
        4``, ``stacks``) are emitted only for non-default selections; a
        default-pair config fingerprints exactly as before, so every
        format-2 and format-3 ledger still resumes (tested explicitly).

        Format 5 is tree search: an mcts session's batch lines carry a
        per-iteration ``search`` trace (selected node + reward) that a
        bandit engine cannot replay, and its selection reads tree
        statistics no bandit ledger records.  The format-5 keys
        (``format: 5``, ``search``) are emitted only when ``search`` is
        not the default bandit, so every format-2/3/4 ledger still
        resumes under default-search configs (tested explicitly).
        """
        fp: Dict[str, object] = {
            "format": 2,
            "seed": self.seed,
            "fptype": self.fptype.value,
            "n_seed_programs": self.n_seed_programs,
            "inputs_per_program": self.inputs_per_program,
            "batch_size": self.batch_size,
            "opts": [o.label for o in self.opts],
            "include_hipify": self.include_hipify,
            "explore": self.explore,
            "novelty_bonus": self.novelty_bonus,
            "promotion_energy": self.promotion_energy,
            "minimize": self.minimize,
            "mutations": list(self.mutations),
        }
        if self.oracle_relations:
            fp["format"] = 3
            fp["oracle_relations"] = list(self.oracle_relations)
            fp["oracle_ulp_bound"] = self.oracle_ulp_bound
        if tuple(self.stacks) != DEFAULT_STACK_PAIR:
            fp["format"] = 4
            fp["stacks"] = list(self.stacks)
        if self.search != "bandit":
            fp["format"] = 5
            fp["search"] = self.search
        return fp


class _Scheduler:
    """Win-count bandit over the iteration's action.

    The arms are the registered mutators plus (when enabled) "explore" —
    evaluate a fresh generated program instead of mutating.  An arm's
    selection weight is ``1 + its novel-signature findings so far``, so
    budget flows to whatever is currently paying: a barren pool drifts
    toward blind generation, a rich one concentrates on the mutators that
    keep producing.  (Novelty rewards arrive in bursts — one divergent
    program can yield several signatures across optimization settings —
    which is why the simple win-count rule empirically beats rate-
    normalized and UCB variants at session-sized attempt counts: it
    commits to a paying region immediately instead of waiting for rate
    estimates to stabilize.)

    :meth:`select` is pure — it reads wins but mutates nothing — so the
    speculative window can look several iterations ahead against frozen
    state; attempts are counted at *commit* time, in iteration order.

    Determinism/resume: wins are replayed from ledger findings (a
    finding with an empty lineage is an explore win), and attempts from
    re-simulating the selection sequence — selection at iteration *i*
    depends only on prior selections and prior findings, both of which
    the ledger determines — so a resumed scheduler is in exactly the
    state the interrupted one was.
    """

    def __init__(self, config: "FuzzConfig") -> None:
        self.explore_enabled = config.explore
        self.mutations = config.mutations
        self.arms: Tuple[str, ...] = (
            ("explore",) if config.explore else ()
        ) + config.mutations
        self.attempts: Dict[str, int] = {a: 0 for a in self.arms}
        self.wins: Dict[str, int] = {a: 0 for a in self.arms}

    def select(self, rng: random.Random) -> str:
        """Choose this iteration's action (no state is touched)."""
        return rng.choices(
            self.arms, weights=[1 + self.wins[a] for a in self.arms], k=1
        )[0]

    def count_attempt(self, arm: str) -> None:
        self.attempts[arm] += 1

    def pick(self, rng: random.Random) -> str:
        """Choose and count in one step (the resume-replay path)."""
        arm = self.select(rng)
        self.count_attempt(arm)
        return arm

    def record_win(self, arm: str) -> None:
        if arm in self.wins:
            self.wins[arm] += 1


@dataclass
class _PoolEntry:
    """One power-scheduled seed: a corpus program or a promoted mutant."""

    test: TestCase
    corpus_index: int
    lineage: Tuple[LineageStep, ...]
    content: str
    energy: float = 1.0

    @property
    def key(self) -> Tuple[int, Tuple[LineageStep, ...]]:
        return (self.corpus_index, self.lineage)


@dataclass
class FuzzResult:
    """Everything one fuzz session measured and found."""

    config: FuzzConfig
    findings: List[Finding]
    baseline_signatures: List[DiscrepancySignature]
    hot_seed_indices: List[int]
    iterations: int
    resumed_iterations: int
    mutants_run: int = 0
    fresh_explored: int = 0
    mutants_no_site: int = 0
    mutants_invalid: int = 0
    mutants_noop: int = 0
    duplicates: int = 0
    pair_runs: int = 0
    baseline_pair_runs: int = 0
    raw_discrepancies: int = 0
    #: metamorphic-relation violations observed on committed iterations
    #: (only nonzero when the session ran with oracle relations).
    oracle_violations: int = 0
    nvcc_executions: int = 0
    nvcc_cache_hits: int = 0
    elapsed_seconds: float = 0.0
    stopped_by: str = "budget"
    #: per-batch wall time ``(start_iteration, stop_iteration, seconds)``
    #: from the tracer — populated only when tracing is on; telemetry
    #: only, never serialized into the ledger.
    batch_walls: List[Tuple[int, int, float]] = field(default_factory=list)
    #: execution-service counters (see
    #: :meth:`repro.exec.ExecutionService.stats`), including the
    #: always-on ``phase_seconds`` aggregates.  Out-of-band like
    #: ``elapsed_seconds``.
    exec_metrics: Dict[str, object] = field(default_factory=dict)
    #: tree statistics from :meth:`repro.fuzz.search.MctsSearch.stats`
    #: (mcts sessions only; empty for bandit).  Out-of-band telemetry.
    search_stats: Dict[str, object] = field(default_factory=dict)
    #: grammar-feature coverage summary
    #: (:meth:`repro.fuzz.coverage.CoverageTracker.as_dict`; mcts only).
    coverage: Dict[str, object] = field(default_factory=dict)

    @property
    def novel_signatures(self) -> List[DiscrepancySignature]:
        return [f.signature for f in self.findings]

    @property
    def novel_signature_keys(self) -> Set[str]:
        return {f.signature.key for f in self.findings}

    @property
    def cache_hit_rate(self) -> float:
        attempts = self.nvcc_executions + self.nvcc_cache_hits
        return self.nvcc_cache_hits / attempts if attempts else 0.0

    def histogram(self) -> Table:
        return signature_histogram(
            self.novel_signatures, title="Novel discrepancy signatures (fuzz findings)"
        )


@dataclass
class RandomSessionResult:
    """Pure blind generation at the same run budget, for comparison."""

    n_programs: int
    pair_runs: int = 0
    raw_discrepancies: int = 0
    #: relation violations observed (only nonzero when the shared config
    #: ran with oracle relations — keeps the control arm's oracle signal
    #: comparable to the fuzz session's).
    oracle_violations: int = 0
    novel_signatures: List[DiscrepancySignature] = field(default_factory=list)

    @property
    def novel_signature_keys(self) -> Set[str]:
        return {s.key for s in self.novel_signatures}


# ---------------------------------------------------------------------------
# Shared evaluation machinery
# ---------------------------------------------------------------------------


def _mutant_content_id(fptype: FPType, content: str) -> str:
    """Mutant program ids keep their historical ``fuzz-`` shape."""
    return content_id(fptype, content, prefix="fuzz")


def _triage_verdict_task(
    payload: Tuple[TestCase, str, int, Tuple[str, str]],
) -> TriageVerdict:
    """Triage one discrepancy in a pool worker.

    Runner construction and triage probes are pure functions of the
    payload (including the discrepancy's stack pair), so a worker's
    verdict is identical to the serial path's.  The isolation report
    (execution traces) is stripped before pickling back — nothing
    downstream of signature construction reads it.
    """
    test, opt_label, input_index, stacks = payload
    verdict = triage_discrepancy(
        DifferentialRunner(stacks=stacks),
        test,
        OptSetting.from_label(opt_label),
        input_index,
    )
    verdict.isolation = None
    return verdict


class _Evaluator:
    """Runs tests through the execution service and condenses
    discrepancies (and oracle violations) to signatures."""

    def __init__(self, config: FuzzConfig, service: ExecutionService) -> None:
        self.config = config
        self.service = service
        #: main-process runner for triage and minimization probes only
        #: (their device runs are bookkept by their own tools, not here).
        self.runner = DifferentialRunner()
        self.relations: List[Relation] = (
            resolve_relations(config.oracle_relations)
            if config.oracle_relations
            else []
        )
        #: the stack pairs each evaluation sweeps, in registry order.
        self.pairs: List[Tuple[str, str]] = list(
            stack_pairs(resolve_stacks(config.stacks))
        )
        self._pair_by_arm: Dict[str, Tuple[str, str]] = {
            pair_name(p): p for p in self.pairs if p != DEFAULT_STACK_PAIR
        }
        self._runners: Dict[Tuple[str, str], DifferentialRunner] = {
            DEFAULT_STACK_PAIR: self.runner
        }
        self.pair_runs = 0
        self.cache_hits = 0
        self.executions = 0

    def pair_for_arm(self, arm: str) -> Tuple[str, str]:
        """The stack pair behind an evaluation arm tag ("native"/"hipify"
        are the legacy pair; everything else is its own pair name)."""
        return self._pair_by_arm.get(arm, DEFAULT_STACK_PAIR)

    def runner_for(self, arm: str) -> DifferentialRunner:
        """A triage/minimization runner on the arm's own stack pair."""
        pair = self.pair_for_arm(arm)
        runner = self._runners.get(pair)
        if runner is None:
            runner = self._runners[pair] = DifferentialRunner(stacks=pair)
        return runner

    def chunk_for(self, test: TestCase) -> List[SweepRequest]:
        """One evaluation as one chunk: the native sweep, then the HIPIFY
        twin with its CUDA half replayed from the chunk's run store (the
        campaign's fused-arm reuse invariant, applied per mutant), then —
        with oracle relations on — each relation's base + variant
        requests.  The relations' base requests are content-identical to
        the native one, so the service dedups them to zero extra runs.
        Extra stack pairs (``config.stacks`` beyond the legacy two) add
        one request each, tagged by pair name; nvcc-lhs pairs replay the
        native sweep's CUDA half from the same chunk store.  The store
        lives one chunk: content dedup already prevents identical mutants
        from re-running, so entries could only ever be hit by the test's
        own twin/pair probes, and chunk scope keeps the counters
        identical at every worker count."""
        requests = []
        for pair in self.pairs:
            if pair == DEFAULT_STACK_PAIR:
                requests.append(
                    SweepRequest(
                        test=test,
                        opts=self.config.opts,
                        tag=("native",),
                        cache=CHUNK_CACHE,
                    )
                )
                if self.config.include_hipify:
                    # DerivedTestSpec references the *same* TestCase as
                    # the native request: pickle's memo then ships the
                    # program IR once per chunk to pool workers.
                    requests.append(
                        SweepRequest(
                            test=DerivedTestSpec(base=test),
                            opts=self.config.opts,
                            tag=("hipify",),
                            cache=CHUNK_CACHE,
                        )
                    )
            else:
                requests.append(
                    SweepRequest(
                        test=test,
                        opts=self.config.opts,
                        tag=(pair_name(pair),),
                        cache=CHUNK_CACHE,
                        runner=RunnerSpec(stacks=pair),
                    )
                )
        requests.extend(self._oracle_requests(test))
        return requests

    def _oracle_requests(self, test: TestCase) -> List[SweepRequest]:
        """Per-relation base + variant requests for one test.

        Site choices derive from the test's content-stable id, so a
        resumed (or speculated-and-discarded) evaluation rebuilds the
        identical variants.  Construction and applicability policy are
        the oracle engine's own (:func:`build_relation_requests`).
        """
        requests, _ = build_relation_requests(
            test, "oracle", self.config.seed, test.test_id, self.relations,
            self.config.opts,
        )
        return requests

    def absorb(
        self, outcomes: Sequence[SweepOutcome]
    ) -> Tuple[List[Tuple[str, Discrepancy]], List[RelationViolation]]:
        """Count one committed evaluation; collect its discrepancies and
        its oracle-relation violations.

        Deduped outcomes (a relation's base served from the native
        request) carry rebound copies of already-counted runs, so only
        non-deduped outcomes contribute to the accounting.
        """
        found: List[Tuple[str, Discrepancy]] = []
        oracle_outcomes: List[SweepOutcome] = []
        for outcome in outcomes:
            if not outcome.deduped:
                self.pair_runs += outcome.pair_runs
                self.executions += outcome.nvcc_executions
                self.cache_hits += outcome.nvcc_cache_hits
            arm = outcome.tag[0]
            if arm == "oracle":
                oracle_outcomes.append(outcome)
                continue
            for pair in outcome.pairs.values():
                found.extend((arm, d) for d in pair.discrepancies)
        # The chunk's first outcome is the native sweep, whose test_id is
        # the evaluated program's own id — violations normalize to it.
        canonical = outcomes[0].test_id if outcomes else None
        violations = check_relation_outcomes(
            oracle_outcomes, self.relations, self.config.fptype,
            self.config.oracle_ulp_bound, canonical,
        )
        return found, violations

    def oracle_entries(
        self, violations: Sequence[RelationViolation]
    ) -> List[Tuple[str, Discrepancy, DiscrepancySignature]]:
        """Condense relation violations to signature entries.

        The signature reuses the discrepancy slots under documented
        reinterpretation: cause is ``oracle:<relation>``, the implicated
        platform rides in the functions slot, and the outcome pair is
        (base, variant) instead of (nvcc, hipcc).  First-of-each-key
        dedup matches :meth:`signatures_for`.
        """
        out: List[Tuple[str, Discrepancy, DiscrepancySignature]] = []
        local_seen: Set[str] = set()
        for v in violations:
            dclass = classify_pair(float(v.base_printed), float(v.variant_printed))
            if dclass is None:
                continue  # sign-only difference: not a reportable violation
            sig = DiscrepancySignature(
                cause=Cause.ORACLE_PREFIX + v.relation,
                functions=(v.platform,),
                opt_label=v.opt_label,
                nvcc_outcome=v.base_outcome,
                hipcc_outcome=v.variant_outcome,
                fptype=self.config.fptype.value,
            )
            if sig.key in local_seen:
                continue
            local_seen.add(sig.key)
            d = Discrepancy(
                test_id=v.test_id,
                input_index=v.input_index,
                opt_label=v.opt_label,
                dclass=dclass,
                nvcc_printed=v.base_printed,
                hipcc_printed=v.variant_printed,
                nvcc_outcome=OutcomeClass.from_string(v.base_outcome),
                hipcc_outcome=OutcomeClass.from_string(v.variant_outcome),
            )
            out.append(("oracle", d, sig))
        return out

    def signatures_for(
        self, test: TestCase, found: Sequence[Tuple[str, Discrepancy]]
    ) -> List[Tuple[str, Discrepancy, DiscrepancySignature]]:
        """Triage every discrepancy; keep the first of each signature.

        Triage is per-(opt, input) — two inputs diverging with the same
        outcome pair can implicate different functions or even different
        causes — so dedup happens *after* attribution, on the signature
        itself, never by collapsing discrepancies up front.  With a pool
        backend the independent triage probes fan out to workers;
        verdicts come back in order, so the dedup is unchanged.
        """
        out: List[Tuple[str, Discrepancy, DiscrepancySignature]] = []
        local_seen: Set[str] = set()
        for (arm, d), verdict in zip(found, self._verdicts(test, found)):
            sig = DiscrepancySignature.from_verdict(verdict, d, test.fptype)
            if sig.key not in local_seen:
                local_seen.add(sig.key)
                out.append((arm, d, sig))
        return out

    def _verdicts(
        self, test: TestCase, found: Sequence[Tuple[str, Discrepancy]]
    ) -> List[TriageVerdict]:
        targets = [
            (test.hipified() if arm == "hipify" else test, arm, d)
            for arm, d in found
        ]
        if self.service.backend.remote and len(found) > 1:
            return self.service.map(
                _triage_verdict_task,
                [
                    (t, d.opt_label, d.input_index, self.pair_for_arm(arm))
                    for t, arm, d in targets
                ],
            )
        return [
            triage_discrepancy(
                self.runner_for(arm),
                t,
                OptSetting.from_label(d.opt_label),
                d.input_index,
            )
            for t, arm, d in targets
        ]


class _LazyCorpus:
    """The seed corpus plus on-demand extension to any absolute index.

    Corpus indices are the ledger's program identity: indices below
    ``n_seed_programs`` are the seed pool, larger ones are programs the
    explore arm generated mid-session.  Either kind regenerates
    deterministically from ``(generator config, corpus seed, index)``, so
    a resumed session rebuilds explored pool entries without replaying
    their executions.
    """

    def __init__(self, config: FuzzConfig) -> None:
        self._gen_cfg = config.generator_config()
        self._root_seed = config.corpus_seed
        base = build_corpus(
            self._gen_cfg, config.n_seed_programs, self._root_seed, prefix="fuzzseed"
        )
        self._tests: Dict[int, TestCase] = dict(enumerate(base.tests))
        self.n_seed_programs = config.n_seed_programs

    def get(self, index: int) -> TestCase:
        test = self._tests.get(index)
        if test is None:
            test = build_corpus_slice(
                self._gen_cfg, index, index + 1, self._root_seed, prefix="fuzzseed"
            ).tests[0]
            self._tests[index] = test
        return test

    def seed_tests(self) -> List[TestCase]:
        return [self._tests[i] for i in range(self.n_seed_programs)]


def _replay_lineage(
    corpus: _LazyCorpus, corpus_index: int, lineage: Sequence[LineageStep]
) -> Kernel:
    """Rebuild a mutant kernel from its ledger lineage."""
    kernel = corpus.get(corpus_index).program.kernel
    for step in lineage:
        donor = (
            corpus.get(step.donor_index).program.kernel
            if step.donor_index is not None
            else None
        )
        mutated = apply_mutation(kernel, step.mutation, step.seed, donor)
        if mutated is None:
            raise HarnessError(
                f"ledger lineage does not replay: {step.mutation} produced no mutant"
            )
        kernel = mutated
    return kernel


# The speculated-iteration record (``_Prep``) lives in
# :mod:`repro.fuzz.search` as ``PreparedIteration`` — both strategies
# produce it, and the engine's window loop consumes it identically.


# ---------------------------------------------------------------------------
# The session
# ---------------------------------------------------------------------------


def _service_for(config: "FuzzConfig") -> ExecutionService:
    """The configured execution service: worker-count rule or named backend."""
    if config.backend is None:
        return ExecutionService.for_workers(config.workers)
    return ExecutionService(
        backend=resolve_backend(config.backend, config.workers, config.bridge_url)
    )


def run_fuzz(
    config: Optional[FuzzConfig] = None,
    *,
    ledger: Optional[Union[str, Path]] = None,
    resume: Union[bool, str] = False,
    progress=None,
) -> FuzzResult:
    """Run one fuzzing session; returns the findings and the accounting.

    ``ledger`` names the JSONL findings file; ``resume=True`` reloads a
    matching ledger (config fingerprint must agree) and continues the
    iteration stream where it stopped; ``resume="auto"`` falls back to a
    fresh session when the ledger is missing or mismatched.  ``progress``
    is an optional ``(phase, done, total)`` callable.
    """
    config = config or FuzzConfig()
    if resume and ledger is None:
        raise HarnessError("resume requires a ledger path")
    t0 = time.perf_counter()

    service = _service_for(config)
    corpus = _LazyCorpus(config)
    evaluator = _Evaluator(config, service)

    book: Optional[FindingsLedger] = None
    state = LedgerState()
    resuming = bool(resume)
    if ledger is not None:
        book = FindingsLedger(ledger)
        if resume:
            try:
                state = book.load(config.fingerprint())
            except HarnessError:
                if resume != "auto":
                    raise
                state = LedgerState()
                resuming = False
        book.open_for_append(config.fingerprint(), fresh=not resuming)

    pool: List[_PoolEntry] = []
    by_key: Dict[Tuple[int, Tuple[LineageStep, ...]], _PoolEntry] = {}
    for index, test in enumerate(corpus.seed_tests()):
        entry = _PoolEntry(
            test=test,
            corpus_index=index,
            lineage=(),
            content=content_text(test.program.kernel, test.inputs),
        )
        pool.append(entry)
        by_key[entry.key] = entry

    seen: Set[str] = set()
    findings: List[Finding] = list(state.findings)
    baseline_signatures: List[DiscrepancySignature]
    hot_indices: List[int]
    baseline_pair_runs: int

    try:
        # -------------------------------------------------------- baseline
        if resuming and state.has_baseline:
            baseline_signatures = state.baseline_signatures
            hot_indices = state.hot_corpus_indices
            baseline_pair_runs = state.baseline_runs
        else:
            baseline_signatures = []
            hot_indices = []
            runs0 = evaluator.pair_runs
            tracer = get_tracer()
            base_t0 = time.perf_counter_ns() if tracer.enabled else 0
            seeds = corpus.seed_tests()
            baseline_chunks = (evaluator.chunk_for(t) for t in seeds)
            for index, outcomes in enumerate(service.run_sweeps(baseline_chunks)):
                found, violations = evaluator.absorb(outcomes)
                if found or violations:
                    hot_indices.append(index)
                entries = evaluator.signatures_for(
                    seeds[index], found
                ) + evaluator.oracle_entries(violations)
                for _, _, sig in entries:
                    if sig.key not in {s.key for s in baseline_signatures}:
                        baseline_signatures.append(sig)
                if progress is not None:
                    progress("baseline", index + 1, config.n_seed_programs)
            baseline_pair_runs = evaluator.pair_runs - runs0
            if tracer.enabled:
                tracer.record(
                    "fuzz.baseline",
                    base_t0,
                    time.perf_counter_ns(),
                    seeds=len(seeds),
                    signatures=len(baseline_signatures),
                )
            if book is not None:
                book.append_baseline(
                    baseline_pair_runs, baseline_signatures, hot_indices
                )

        seen.update(s.key for s in baseline_signatures)
        for index in hot_indices:
            pool[index].energy += config.novelty_bonus

        scheduler = _Scheduler(config)
        # The mcts strategy owns its own state (the tree + the coverage
        # map); the bandit state (scheduler wins, pool energies) keeps
        # running but is never consulted when search is active.
        search: Optional[MctsSearch] = None
        if config.search == "mcts":
            search = MctsSearch(config, corpus, hot_indices)

        # --------------------------------------- replay prior pool events
        evaluated: Set[str] = set()

        def add_pool_entry(
            corpus_index: int, lineage: Tuple[LineageStep, ...], energy: float
        ) -> None:
            base = corpus.get(corpus_index)
            if lineage:
                kernel = _replay_lineage(corpus, corpus_index, lineage)
                content = content_text(kernel, base.inputs)
                program = Program(
                    program_id=_mutant_content_id(config.fptype, content),
                    kernel=kernel,
                    seed=lineage[-1].seed,
                    source_note="fuzz mutant",
                )
                test = TestCase(program, base.inputs)
            else:
                test = base  # an explore-arm program: the corpus test itself
                content = content_text(test.program.kernel, test.inputs)
            entry = _PoolEntry(
                test=test,
                corpus_index=corpus_index,
                lineage=lineage,
                content=content,
                energy=energy,
            )
            pool.append(entry)
            by_key[entry.key] = entry
            evaluated.add(_mutant_content_id(config.fptype, content))

        promoted_energy = config.promotion_energy
        if search is not None:
            # Re-run each completed iteration's *selection* against the
            # growing tree (cheap: mutation application only, never
            # execution) and fold in the ledger-recorded rewards.  This
            # rebuilds the tree statistics, the coverage map, and —
            # stricter than the bandit's pool-only reconstruction — the
            # full evaluated-content dedup set, so the continuation is
            # byte-identical to an uninterrupted session.
            for f in state.findings:
                seen.add(f.signature.key)
            trace_by_iter = {t.iteration: t for t in state.search_steps}
            for i in range(state.iterations_completed):
                p = search.prepare(i, evaluated, set())
                rec = trace_by_iter.get(i)
                if p.skip is not None:
                    if rec is not None:
                        raise HarnessError(
                            "ledger search trace does not replay: iteration "
                            f"{i} re-prepared as a {p.skip} skip"
                        )
                    search.commit_skip(p)
                    continue
                if (
                    rec is None
                    or rec.corpus_index != p.corpus_index
                    or rec.lineage != p.lineage
                ):
                    raise HarnessError(
                        f"ledger search trace does not replay at iteration {i}"
                    )
                evaluated.add(p.content_id)
                search.commit_replay(p, rec.reward, rec.diverged)
        else:
            # Re-simulate the completed iterations' *selections* (cheap: no
            # compilation, no execution) while applying the ledger's findings
            # and promotions at the iterations they occurred — this
            # reconstructs the scheduler's counters and the pool's evolution
            # exactly.
            events_by_iter: Dict[int, List[Tuple[str, object]]] = {}
            for kind, event in state.pool_events:
                events_by_iter.setdefault(event.iteration, []).append((kind, event))  # type: ignore[union-attr]
            for i in range(state.iterations_completed):
                rng = random.Random(derive_seed(config.seed, "select", i))
                scheduler.pick(rng)
                for kind, event in events_by_iter.get(i, ()):
                    if kind == "finding":
                        f = event  # type: Finding
                        seen.add(f.signature.key)
                        scheduler.record_win(
                            f.lineage[-1].mutation if f.lineage else "explore"
                        )
                        if f.lineage:
                            parent = by_key.get((f.corpus_index, f.lineage[:-1]))
                            if parent is not None:
                                parent.energy += config.novelty_bonus
                        if (f.corpus_index, f.lineage) not in by_key:
                            add_pool_entry(
                                f.corpus_index, f.lineage, 1.0 + config.novelty_bonus
                            )
                    else:
                        p = event  # type: Promotion
                        if (p.corpus_index, p.lineage) not in by_key:
                            add_pool_entry(p.corpus_index, p.lineage, promoted_energy)

        result = FuzzResult(
            config=config,
            findings=findings,
            baseline_signatures=baseline_signatures,
            hot_seed_indices=hot_indices,
            iterations=state.iterations_completed,
            resumed_iterations=state.iterations_completed,
            baseline_pair_runs=baseline_pair_runs,
        )

        # ---------------------------------------------------- the loop
        runs0 = evaluator.pair_runs
        batch_findings: List[Finding] = []
        batch_promotions: List[Promotion] = []
        batch_search: List[SearchTrace] = []
        batch_start = state.iterations_completed
        batches_written = state.batches_completed
        stopped_by = "budget"
        loop_tracer = get_tracer()
        batch_t0 = time.perf_counter_ns() if loop_tracer.enabled else 0

        def flush_batch(stop: int) -> None:
            nonlocal batch_start, batches_written, batch_findings, batch_promotions
            nonlocal batch_search, batch_t0
            if book is not None and stop > batch_start:
                book.append_batch(
                    batches_written,
                    batch_start,
                    stop,
                    batch_findings,
                    batch_promotions,
                    search=batch_search if search is not None else None,
                )
                batches_written += 1
            if loop_tracer.enabled and stop > batch_start:
                now = time.perf_counter_ns()
                loop_tracer.record(
                    "fuzz.batch",
                    batch_t0,
                    now,
                    start=batch_start,
                    stop=stop,
                    findings=len(batch_findings),
                )
                result.batch_walls.append(
                    (batch_start, stop, (now - batch_t0) / 1e9)
                )
                batch_t0 = now
            batch_start = stop
            batch_findings = []
            batch_promotions = []
            batch_search = []

        def prepare_iteration(i: int, overlay: Set[str]) -> _Prep:
            """Select and mutate against the *current* state, committing
            nothing: scheduler counters, result counters, and the dedup
            set are untouched (``overlay`` carries the window's own
            content ids so speculated iterations dedup against each
            other the way committed ones would).  The mcts strategy's
            prepare additionally applies its prepare-time tree marks,
            every one recorded in an undo delta (see
            :mod:`repro.fuzz.search`)."""
            if search is not None:
                return search.prepare(i, evaluated, overlay)
            rng = random.Random(derive_seed(config.seed, "select", i))
            arm_choice = scheduler.select(rng)

            if arm_choice == "explore":
                # A fresh generated program; its index extends the corpus,
                # so any finding's (corpus_index, lineage=()) replays.
                corpus_index = config.n_seed_programs + i
                test = corpus.get(corpus_index)
                content = content_text(test.program.kernel, test.inputs)
                cid = _mutant_content_id(config.fptype, content)
                overlay.add(cid)
                return _Prep(
                    iteration=i,
                    arm=arm_choice,
                    kind="explore",
                    test=test,
                    content=content,
                    content_id=cid,
                    corpus_index=corpus_index,
                    lineage=(),
                )

            parent = rng.choices(pool, weights=[e.energy for e in pool], k=1)[0]
            donor_index: Optional[int] = None
            donor: Optional[Kernel] = None
            if MUTATORS[arm_choice].needs_donor:
                # Donors come from corpus-backed entries (so the lineage
                # stays a flat recipe) but are drawn energy-weighted:
                # divergence-prone subexpressions travel first.
                candidates = [e for e in pool if not e.lineage]
                donor_entry = rng.choices(
                    candidates, weights=[e.energy for e in candidates], k=1
                )[0]
                donor_index = donor_entry.corpus_index
                donor = donor_entry.test.program.kernel
            mseed = derive_seed(config.seed, "mutant", i)
            kernel = apply_mutation(
                parent.test.program.kernel, arm_choice, mseed, donor
            )
            if kernel is None:
                return _Prep(iteration=i, arm=arm_choice, skip="no_site")
            if validate_kernel(kernel):
                return _Prep(iteration=i, arm=arm_choice, skip="invalid")
            content = content_text(kernel, parent.test.inputs)
            if content == parent.content:
                return _Prep(iteration=i, arm=arm_choice, skip="noop")
            cid = _mutant_content_id(config.fptype, content)
            if cid in evaluated or cid in overlay:
                return _Prep(iteration=i, arm=arm_choice, skip="duplicate")
            overlay.add(cid)
            program = Program(
                program_id=cid,
                kernel=kernel,
                seed=mseed,
                source_note="fuzz mutant",
            )
            return _Prep(
                iteration=i,
                arm=arm_choice,
                kind="mutant",
                test=TestCase(program, parent.test.inputs),
                content=content,
                content_id=cid,
                corpus_index=parent.corpus_index,
                lineage=parent.lineage + (LineageStep(arm_choice, mseed, donor_index),),
                parent=parent,
            )

        def build_finding(
            p: _Prep, platform_arm: str, d: Discrepancy, sig: DiscrepancySignature
        ) -> Finding:
            """Minimize and record one novel signature's finding (shared
            by both strategies)."""
            target = p.test.hipified() if platform_arm == "hipify" else p.test
            reduced_size: Optional[int] = None
            reduced_cuda: Optional[str] = None
            # Oracle findings are single-stack relation verdicts, not
            # cross-vendor discrepancies; the differential delta
            # debugger cannot reproduce them, so they stay unminimized.
            if config.minimize and platform_arm != "oracle":
                try:
                    reduction = reduce_testcase(
                        target,
                        OptSetting.from_label(d.opt_label),
                        d.input_index,
                        runner=evaluator.runner_for(platform_arm),
                    )
                    reduced_size = reduction.reduced_size
                    reduced_cuda = render_cuda(reduction.reduced.program)
                except (ValueError, ReproError):
                    pass  # finding stays unminimized; still novel
            return Finding(
                iteration=p.iteration,
                arm=platform_arm,
                mutant_id=p.test.test_id,
                corpus_index=p.corpus_index,
                lineage=p.lineage,
                signature=sig,
                discrepancy=d,
                original_size=kernel_size(p.test.program.kernel),
                reduced_size=reduced_size,
                reduced_cuda=reduced_cuda,
            )

        def commit_mcts(
            p: _Prep,
            found: List[Tuple[str, Discrepancy]],
            violations: List[RelationViolation],
        ) -> bool:
            """The mcts commit: counters and findings exactly as the
            bandit's, then reward backprop instead of pool/scheduler
            feedback.  True only for a nonzero reward — a zero-reward
            commit adds nothing tree selection reads, so the speculative
            window survives it (the engine's parallelism improves as the
            coverage map saturates)."""
            assert search is not None
            if p.skip is not None:
                if p.skip == "no_site":
                    result.mutants_no_site += 1
                elif p.skip == "invalid":
                    result.mutants_invalid += 1
                elif p.skip == "noop":
                    result.mutants_noop += 1
                else:
                    result.duplicates += 1
                search.commit_skip(p)
                return False
            evaluated.add(p.content_id)
            if p.kind == "explore":
                result.fresh_explored += 1
            else:
                result.mutants_run += 1
            result.raw_discrepancies += len(found)
            result.oracle_violations += len(violations)
            novel = 0
            if found or violations:
                entries = evaluator.signatures_for(
                    p.test, found
                ) + evaluator.oracle_entries(violations)
                for platform_arm, d, sig in entries:
                    if sig.key in seen:
                        continue
                    seen.add(sig.key)
                    novel += 1
                    finding = build_finding(p, platform_arm, d, sig)
                    findings.append(finding)
                    batch_findings.append(finding)
            diverged = bool(found)
            reward = search.commit_evaluated(
                p, novel, len(violations), diverged=diverged
            )
            batch_search.append(
                SearchTrace(p.iteration, p.corpus_index, p.lineage, reward, diverged)
            )
            # A promotion (diverged) grows the tree even at zero reward,
            # so speculation is stale either way.
            return reward != 0.0 or diverged

        def commit_iteration(
            p: _Prep,
            found: List[Tuple[str, Discrepancy]],
            violations: List[RelationViolation],
        ) -> bool:
            """Apply one iteration's results in order; True when it
            changed state a later speculated selection reads (which
            invalidates anything speculated after it)."""
            if search is not None:
                return commit_mcts(p, found, violations)
            scheduler.count_attempt(p.arm)
            if p.skip is not None:
                if p.skip == "no_site":
                    result.mutants_no_site += 1
                elif p.skip == "invalid":
                    result.mutants_invalid += 1
                elif p.skip == "noop":
                    result.mutants_noop += 1
                else:
                    result.duplicates += 1
                return False
            evaluated.add(p.content_id)
            if p.kind == "explore":
                result.fresh_explored += 1
            else:
                result.mutants_run += 1

            result.raw_discrepancies += len(found)
            result.oracle_violations += len(violations)
            if not found and not violations:
                return False

            promoted = False
            new_entry = _PoolEntry(
                test=p.test,
                corpus_index=p.corpus_index,
                lineage=p.lineage,
                content=p.content,
            )
            entries = evaluator.signatures_for(
                p.test, found
            ) + evaluator.oracle_entries(violations)
            for platform_arm, d, sig in entries:
                if sig.key in seen:
                    continue
                seen.add(sig.key)
                finding = build_finding(p, platform_arm, d, sig)
                findings.append(finding)
                batch_findings.append(finding)
                if p.parent is not None:
                    p.parent.energy += config.novelty_bonus
                scheduler.record_win(p.arm)
                if not promoted:
                    promoted = True
                    new_entry.energy = 1.0 + config.novelty_bonus
                    pool.append(new_entry)
                    by_key[new_entry.key] = new_entry

            if not promoted:
                # Discrepant but nothing novel: still an interesting input.
                # It joins the pool (AFL's queue) — chains of mutations walk
                # the signature space further than one hop can — and the
                # promotion is ledgered so a resume rebuilds the same pool.
                promotion = Promotion(p.iteration, p.corpus_index, p.lineage)
                batch_promotions.append(promotion)
                new_entry.energy = promoted_energy
                pool.append(new_entry)
                by_key[new_entry.key] = new_entry
            return True

        # Speculation window: how many candidate evaluations are in
        # flight at once.  1 (serial) trivially matches the reference
        # trajectory; larger windows commit the same trajectory because
        # invalidated speculation is discarded uncounted.
        window = min(config.workers, 16) if config.workers > 1 else 1

        try:
            i = state.iterations_completed
            while i < config.max_mutants:
                if (
                    config.max_seconds is not None
                    and time.perf_counter() - t0 > config.max_seconds
                ):
                    stopped_by = "wall-clock"
                    break
                preps: List[_Prep] = []
                overlay: Set[str] = set()
                n_eval = 0
                j = i
                while j < config.max_mutants and n_eval < window:
                    p = prepare_iteration(j, overlay)
                    preps.append(p)
                    if p.test is not None:
                        n_eval += 1
                    j += 1
                outcome_iter = iter(())  # type: ignore[assignment]
                if n_eval:
                    outcome_iter = service.run_sweeps(
                        [
                            evaluator.chunk_for(p.test)
                            for p in preps
                            if p.test is not None
                        ]
                    )
                for p in preps:
                    found: List[Tuple[str, Discrepancy]] = []
                    violations: List[RelationViolation] = []
                    if p.test is not None:
                        span_mcts = search is not None and loop_tracer.enabled
                        eval_t0 = time.perf_counter_ns() if span_mcts else 0
                        found, violations = evaluator.absorb(next(outcome_iter))
                        if span_mcts:
                            loop_tracer.record(
                                "fuzz.mcts.evaluate",
                                eval_t0,
                                time.perf_counter_ns(),
                                iteration=p.iteration,
                            )
                    changed = commit_iteration(p, found, violations)
                    i = p.iteration + 1
                    result.iterations = i
                    # The flush check runs every iteration — including ones
                    # that produced nothing — so batch_size bounds the work
                    # a hard kill can lose even through a dry stretch.
                    if (i - batch_start) >= config.batch_size:
                        flush_batch(i)
                        if progress is not None:
                            progress("fuzz", i, config.max_mutants)
                    if changed:
                        # The pool (or tree) changed: every later
                        # speculation selected against stale state.  Drain
                        # and discard (their runs are never counted), undo
                        # the tree's speculative prepare-marks, then
                        # re-speculate.
                        for _ in outcome_iter:
                            pass
                        if search is not None:
                            search.invalidate()
                        break
            flush_batch(result.iterations)
            if progress is not None and result.iterations:
                progress("fuzz", result.iterations, config.max_mutants)
        finally:
            if book is not None:
                book.close()

        result.pair_runs = evaluator.pair_runs - runs0
        result.nvcc_executions = evaluator.executions
        result.nvcc_cache_hits = evaluator.cache_hits
        result.elapsed_seconds = time.perf_counter() - t0
        result.stopped_by = stopped_by
        result.exec_metrics = service.stats()
        if search is not None:
            result.search_stats = search.stats()
            result.coverage = search.coverage.as_dict()
        return result
    finally:
        service.close()


def run_random_session(
    config: Optional[FuzzConfig] = None,
    n_programs: int = 0,
    *,
    skip_signatures: Optional[Set[str]] = None,
    progress=None,
) -> RandomSessionResult:
    """Blind Varity generation at a comparable run budget (the control arm).

    Generates ``n_programs`` *fresh* programs — from a control seed
    stream disjoint from both the fuzz seed pool and the explore arm's
    programs, but drawn from the same generator distribution — and
    evaluates them with the same sweep machinery.  ``skip_signatures``
    (typically the fuzz session's baseline keys) defines novelty the same
    way the fuzzer's seen-set does, making the two arms' novel-signature
    yields directly comparable at equal ``pair_runs``.
    """
    config = config or FuzzConfig()
    skip = set(skip_signatures or ())
    # The control arm honors config.workers too: its chunks stream with
    # no feedback loop, so parallelism never changes the result — only
    # the wall clock, keeping the fuzz-vs-blind timing comparison fair.
    service = _service_for(config)
    evaluator = _Evaluator(config, service)
    corpus = build_corpus(
        config.generator_config(),
        n_programs,
        derive_seed(config.corpus_seed, "random-control"),
        prefix="fuzzctl",
    )
    result = RandomSessionResult(n_programs=n_programs)
    seen: Set[str] = set(skip)
    try:
        chunks = (evaluator.chunk_for(t) for t in corpus)
        for index, outcomes in enumerate(service.run_sweeps(chunks)):
            found, violations = evaluator.absorb(outcomes)
            result.raw_discrepancies += len(found)
            result.oracle_violations += len(violations)
            entries = evaluator.signatures_for(
                corpus.tests[index], found
            ) + evaluator.oracle_entries(violations)
            for _, _, sig in entries:
                if sig.key not in seen:
                    seen.add(sig.key)
                    result.novel_signatures.append(sig)
            if progress is not None:
                progress("random", index + 1, n_programs)
    finally:
        service.close()
    result.pair_runs = evaluator.pair_runs
    return result
