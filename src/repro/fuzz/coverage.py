"""Grammar-feature coverage — "under-covered region" as a measurable set.

The search strategy needs a dense reward where raw discrepancies are
sparse.  This module extracts a deterministic *feature set* from a typed
IR kernel — the same grammar dimensions the Varity generator samples —
so "this mutant reached a program shape the session has not seen" is a
set-membership fact, not a vibe:

* ``op:<⊕>`` / ``cmp:<⋈>`` / ``bool:<∧>`` — operators used;
* ``call:<f>`` and ``call:<f>:<variant>`` — math functions (and their
  non-default resolution variants: ``approx``, ``hipify``);
* ``call-depth:<d>`` — deepest call nesting (``d`` capped at 3: beyond
  that the numerical mechanism is the same, so deeper nests should not
  mint fresh reward forever);
* ``loop-depth:<d>`` / ``guard:if`` / ``shape:if-in-for`` /
  ``shape:for-in-if`` — control shape (loop depth capped at 3, the
  generator's own nesting limit);
* ``expr-depth:<d>`` — deepest expression tree (capped at 6);
* ``lit-exp:<bucket>`` — literal exponent decile buckets (eight-decade
  bins over the kernel precision's literal range, plus ``zero``), the
  axis the const-perturb mutator walks;
* ``fma`` / ``demote`` / ``array`` / ``augassign`` — node classes with
  their own divergence mechanisms;
* ``fptype:<p>`` — the kernel precision.

Extraction is **total**: any structurally valid kernel (and any mutant
the engine's validator admits) yields a feature set without raising —
pinned by a hypothesis property test.  Unknown node types contribute a
``node:<ClassName>`` feature rather than an error, so a future IR node
degrades coverage resolution, never the session.

:class:`CoverageTracker` accumulates the union over a session.  Its one
reward-facing query — :meth:`CoverageTracker.observe` returning the
number of *new* features — is deterministic and order-dependent only on
the committed iteration order, which is exactly the order the engine
calls it in at every worker count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.fp.types import FPType
from repro.ir.nodes import (
    ArrayRef,
    Assign,
    AugAssign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    Decl,
    Expr,
    FMA,
    For,
    If,
    Node,
    Stmt,
    UnOp,
)
from repro.ir.program import Kernel
from repro.utils.tables import Table

__all__ = ["kernel_features", "CoverageTracker"]

#: Caps keep the feature space finite: depth-k chains must saturate the
#: map eventually, or coverage reward would never dry up and the search
#: could farm it by nesting forever.
MAX_CALL_DEPTH = 3
MAX_LOOP_DEPTH = 3
MAX_EXPR_DEPTH = 6

#: Literal exponents are bucketed in eight-decade bins (``-320..306`` for
#: fp64 is ~79 buckets unbinned — too fine to ever saturate; too coarse
#: loses the subnormal/huge distinction the input classes care about).
LITERAL_BUCKET_DECADES = 8


def _literal_bucket(value: float) -> str:
    """Deterministic exponent bucket for one literal value."""
    if value == 0.0:
        return "zero"
    mag = abs(value)
    if math.isinf(mag):
        return "inf"
    if math.isnan(mag):
        return "nan"
    exp = math.floor(math.log10(mag))
    lo = (exp // LITERAL_BUCKET_DECADES) * LITERAL_BUCKET_DECADES
    return f"e{lo}..{lo + LITERAL_BUCKET_DECADES - 1}"


def _expr_features(
    expr: object, out: Set[str], call_depth: int, expr_depth: int
) -> Tuple[int, int]:
    """Tally one expression tree; returns (max call depth, max expr depth)."""
    max_call, max_expr = call_depth, expr_depth
    if isinstance(expr, BinOp):
        out.add(f"op:{expr.op}")
    elif isinstance(expr, UnOp):
        out.add(f"op:unary{expr.op}")
    elif isinstance(expr, Compare):
        out.add(f"cmp:{expr.op}")
    elif isinstance(expr, BoolOp):
        out.add(f"bool:{expr.op}")
    elif isinstance(expr, Call):
        out.add(f"call:{expr.func}")
        if expr.variant != "default":
            out.add(f"call:{expr.func}:{expr.variant}")
        call_depth = min(call_depth + 1, MAX_CALL_DEPTH)
        max_call = max(max_call, call_depth)
    elif isinstance(expr, FMA):
        out.add("fma")
    elif isinstance(expr, Const):
        out.add(f"lit-exp:{_literal_bucket(expr.value)}")
    elif isinstance(expr, ArrayRef):
        out.add("array")
    elif not isinstance(expr, Node):
        return max_call, max_expr
    elif not isinstance(expr, Expr):
        out.add(f"node:{type(expr).__name__}")
    children = expr.children() if isinstance(expr, Node) else ()
    for child in children:
        c, e = _expr_features(
            child, out, call_depth, min(expr_depth + 1, MAX_EXPR_DEPTH)
        )
        max_call = max(max_call, c)
        max_expr = max(max_expr, e)
    return max_call, max_expr


def _stmt_features(
    stmts: Iterable[object], out: Set[str], loop_depth: int, in_if: bool
) -> Tuple[int, int, int]:
    """Tally a statement list; returns (call depth, expr depth, loop depth)."""
    max_call = max_expr = 0
    max_loop = loop_depth
    for stmt in stmts:
        exprs: Tuple[object, ...] = ()
        if isinstance(stmt, Decl):
            exprs = (stmt.init,)
        elif isinstance(stmt, Assign):
            exprs = (stmt.target, stmt.expr)
        elif isinstance(stmt, AugAssign):
            out.add("augassign")
            out.add(f"op:{stmt.op}")
            exprs = (stmt.target, stmt.expr)
        elif isinstance(stmt, For):
            out.add("loop")
            depth = min(loop_depth + 1, MAX_LOOP_DEPTH)
            if in_if:
                out.add("shape:for-in-if")
            c, e, l = _stmt_features(stmt.body, out, depth, in_if)
            max_call, max_expr = max(max_call, c), max(max_expr, e)
            max_loop = max(max_loop, l, depth)
            exprs = (stmt.bound,)
        elif isinstance(stmt, If):
            out.add("guard:if")
            if loop_depth:
                out.add("shape:if-in-for")
            c, e, l = _stmt_features(stmt.body, out, loop_depth, True)
            max_call, max_expr = max(max_call, c), max(max_expr, e)
            max_loop = max(max_loop, l)
            exprs = (stmt.cond,)
        elif isinstance(stmt, Node):
            out.add(f"node:{type(stmt).__name__}")
            exprs = tuple(stmt.children())
        for expr in exprs:
            c, e = _expr_features(expr, out, 0, 1)
            max_call, max_expr = max(max_call, c), max(max_expr, e)
    return max_call, max_expr, max_loop


def kernel_features(kernel: Kernel) -> FrozenSet[str]:
    """The deterministic grammar-feature set of one kernel.

    Total over valid kernels: never raises, always returns at least the
    precision and depth features.
    """
    out: Set[str] = set()
    fptype = kernel.fptype
    out.add(f"fptype:{fptype.value if isinstance(fptype, FPType) else fptype}")
    max_call, max_expr, max_loop = _stmt_features(kernel.body, out, 0, False)
    out.add(f"call-depth:{max_call}")
    out.add(f"expr-depth:{max_expr}")
    out.add(f"loop-depth:{max_loop}")
    return frozenset(out)


@dataclass
class CoverageTracker:
    """Session-cumulative feature coverage.

    ``counts`` tallies how many observed programs carried each feature
    (the ``--coverage-report`` histogram); novelty reads only the *set*
    of seen features, so replaying recorded rewards on resume never
    depends on the counts.
    """

    counts: Dict[str, int] = field(default_factory=dict)
    programs_observed: int = 0

    @property
    def seen(self) -> Set[str]:
        return set(self.counts)

    def observe(self, features: FrozenSet[str]) -> int:
        """Fold one program's features in; returns how many were new."""
        new = 0
        for feature in sorted(features):
            if feature not in self.counts:
                new += 1
                self.counts[feature] = 0
            self.counts[feature] += 1
        self.programs_observed += 1
        return new

    def as_dict(self) -> Dict[str, object]:
        return {
            "features": len(self.counts),
            "programs_observed": self.programs_observed,
            "counts": dict(sorted(self.counts.items())),
        }

    def report(self, title: str = "Grammar-feature coverage") -> Table:
        """Rarest-first histogram: the under-covered regions lead."""
        table = Table(title=title, headers=["Feature", "Programs"])
        for feature, count in sorted(
            self.counts.items(), key=lambda item: (item[1], item[0])
        ):
            table.add_row([feature, count])
        return table
