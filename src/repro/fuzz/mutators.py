"""Typed, validity-preserving IR mutations.

Each mutator takes a kernel (and, for the splice, a donor kernel) plus an
RNG and returns a mutated kernel or ``None`` when it has no applicable
site.  Mutations preserve the kernel *signature* — parameters never change,
so the parent test's input vectors remain valid — and they preserve
structural validity: every mutant the engine accepts is re-checked with
:func:`repro.ir.validate.validate_kernel`, and a mutator that produced an
invalid kernel would be a bug, not a fuzzing strategy.

Determinism: a mutation is fully determined by ``(seed, mutation_id)``.
:func:`apply_mutation` derives its RNG with
``derive_seed(seed, "mutation", mutation_id)`` (see :mod:`repro.utils.rng`),
so a findings ledger can record just the lineage ``(mutation_id, seed)``
and replay the exact mutant later.

The seven mutation classes:

``op-swap``          swap one arithmetic / comparison operator;
``const-perturb``    move one literal by a few ULPs (re-round-tripped
                     through the Varity literal format, because the value a
                     test consumes is the parsed text);
``call-mutate``      substitute a math call with another of the same arity,
                     or wrap a float subexpression in a new unary call;
``fma-shape``        rewrite ``x ⊕ y`` into the contractible ``a*b + c``
                     shape the FMA-contraction pass looks for;
``splice``           replace a float subexpression with one lifted from a
                     donor corpus program (names restricted to parameters
                     the target kernel also has in scope);
``guard-toggle``     unwrap an ``if``/``for``, or wrap a top-level statement
                     in a fresh guard;
``precision-cast``   demote/promote one float subexpression through IEEE
                     binary16 (``(T)(__half)(e)``): the round trip is a
                     single correctly-rounded narrowing, identical on both
                     vendors, that overflows moderate values to Inf and
                     flushes small ones toward zero — a targeted probe for
                     reduced-precision outcome-class flips.  A no-op on
                     FP16 kernels (the value is already binary16), so it
                     reports no applicable site there.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.devices.mathlib.base import BINARY_FUNCTIONS, DEMOTE_FP16, UNARY_FUNCTIONS
from repro.fp.literals import format_varity_literal, strip_literal_suffix
from repro.fp.types import FPType
from repro.fp.ulp import perturb_ulps
from repro.ir.nodes import (
    ArrayRef,
    Assign,
    AugAssign,
    BINARY_OPS,
    BinOp,
    BoolOp,
    COMPARE_OPS,
    Call,
    Compare,
    Const,
    Decl,
    Expr,
    FMA,
    For,
    If,
    Node,
    Stmt,
    UnOp,
    VarRef,
)
from repro.ir.program import Kernel
from repro.ir.rewrite import float_sites, replace_site
from repro.ir.types import IRType
from repro.ir.visitor import walk
from repro.utils.rng import derive_seed

__all__ = ["MUTATION_NAMES", "MUTATORS", "Mutator", "apply_mutation"]

#: Unary calls the wrap mode may introduce — smooth everywhere-defined
#: functions plus a few with restricted domains, which is exactly what
#: bait NaN/Inf-class divergences.
_WRAP_FUNCTIONS = ("sin", "cos", "exp", "log", "sqrt", "tanh", "fabs", "ceil", "floor")


# Site enumeration / targeted rewriting live in repro.ir.rewrite (the
# metamorphic oracle's program transforms share them — both subsystems
# must number sites identically).


# ---------------------------------------------------------------------------
# Mutators
# ---------------------------------------------------------------------------


def _mutate_op_swap(kernel: Kernel, rng: random.Random, donor: Optional[Kernel]) -> Optional[Kernel]:
    """Swap one arithmetic (BinOp / AugAssign) or comparison operator."""
    sites: List[Node] = []
    for stmt in kernel.body:
        for node in walk(stmt):
            if isinstance(node, (BinOp, Compare)) or (
                isinstance(node, AugAssign) and node.op in BINARY_OPS
            ):
                sites.append(node)
    if not sites:
        return None
    victim = rng.choice(sites)
    table = COMPARE_OPS if isinstance(victim, Compare) else BINARY_OPS
    new_op = rng.choice([op for op in table if op != victim.op])

    class _Swap:
        done = False

    def rebuild_expr(expr: Expr) -> Expr:
        if expr is victim and not _Swap.done:
            _Swap.done = True
            assert isinstance(expr, (BinOp, Compare))
            ctor = BinOp if isinstance(expr, BinOp) else Compare
            return ctor(new_op, expr.left, expr.right)
        if isinstance(expr, UnOp):
            return UnOp(expr.op, rebuild_expr(expr.operand))
        if isinstance(expr, BinOp):
            return BinOp(expr.op, rebuild_expr(expr.left), rebuild_expr(expr.right))
        if isinstance(expr, FMA):
            return FMA(
                rebuild_expr(expr.a), rebuild_expr(expr.b), rebuild_expr(expr.c),
                expr.negate_product,
            )
        if isinstance(expr, Call):
            return Call(expr.func, [rebuild_expr(a) for a in expr.args], expr.variant)
        if isinstance(expr, Compare):
            return Compare(expr.op, rebuild_expr(expr.left), rebuild_expr(expr.right))
        if isinstance(expr, BoolOp):
            return BoolOp(expr.op, rebuild_expr(expr.left), rebuild_expr(expr.right))
        if isinstance(expr, ArrayRef):
            return ArrayRef(expr.name, rebuild_expr(expr.index))
        return expr

    def rebuild_body(stmts: Sequence[Stmt]) -> List[Stmt]:
        out: List[Stmt] = []
        for stmt in stmts:
            if isinstance(stmt, Decl):
                out.append(Decl(stmt.name, rebuild_expr(stmt.init)))
            elif isinstance(stmt, Assign):
                out.append(Assign(stmt.target, rebuild_expr(stmt.expr)))
            elif isinstance(stmt, AugAssign):
                op = stmt.op
                if stmt is victim and not _Swap.done:
                    _Swap.done = True
                    op = new_op
                out.append(AugAssign(stmt.target, op, rebuild_expr(stmt.expr)))
            elif isinstance(stmt, For):
                out.append(For(stmt.var, stmt.bound, rebuild_body(stmt.body)))
            elif isinstance(stmt, If):
                out.append(If(rebuild_expr(stmt.cond), rebuild_body(stmt.body)))
            else:
                out.append(stmt)
        return out

    return kernel.with_body(rebuild_body(kernel.body))


def _mutate_const_perturb(
    kernel: Kernel, rng: random.Random, donor: Optional[Kernel]
) -> Optional[Kernel]:
    """Move one literal a few ULPs in the kernel precision.

    The new constant is round-tripped through a full-precision Varity
    literal (17 significant digits for FP64) so the rendered source, the
    parsed value, and the interpreted value stay a single number.
    """
    sites = float_sites(kernel.body)
    consts = [i for i, e in enumerate(sites) if isinstance(e, Const)]
    if not consts:
        return None
    target = rng.choice(consts)
    old = sites[target]
    assert isinstance(old, Const)
    steps = rng.choice([-8, -4, -2, -1, 1, 2, 4, 8])
    new_value = perturb_ulps(old.value, steps, kernel.fptype)
    if new_value == old.value:
        # Saturated (e.g. the constant was already at a range boundary);
        # fall back to a sign flip, which is always a real change.
        new_value = -old.value
    text = format_varity_literal(new_value, kernel.fptype, digits=16)
    parsed = float(strip_literal_suffix(text))
    body = replace_site(kernel.body, target, Const(parsed, text))
    return kernel.with_body(body)


def _mutate_call(kernel: Kernel, rng: random.Random, donor: Optional[Kernel]) -> Optional[Kernel]:
    """Substitute one math call's function, or wrap a subexpression."""
    sites = float_sites(kernel.body)
    if not sites:
        return None
    calls = [i for i, e in enumerate(sites) if isinstance(e, Call)]
    substitute = bool(calls) and rng.random() < 0.6
    if substitute:
        target = rng.choice(calls)
        call = sites[target]
        assert isinstance(call, Call)
        pool = BINARY_FUNCTIONS if len(call.args) == 2 else UNARY_FUNCTIONS
        choices = [f for f in pool if f != call.func]
        func = rng.choice(choices)
        repl: Expr = Call(func, call.args, call.variant)
    else:
        target = rng.randrange(len(sites))
        func = rng.choice(_WRAP_FUNCTIONS)
        repl = Call(func, [sites[target]])
    return kernel.with_body(replace_site(kernel.body, target, repl))


def _mutate_fma_shape(
    kernel: Kernel, rng: random.Random, donor: Optional[Kernel]
) -> Optional[Kernel]:
    """Rewrite one additive node into the ``a*b + c`` contractible shape.

    The FMA-contraction pass fires on exactly this pattern at -O1 and
    above (and only on one of the modeled compilers under some settings),
    so introducing it is a targeted probe for optimization-induced
    divergence.
    """
    sites = float_sites(kernel.body)
    adds = [
        i for i, e in enumerate(sites) if isinstance(e, BinOp) and e.op in ("+", "-")
    ]
    if not adds:
        return None
    target = rng.choice(adds)
    node = sites[target]
    assert isinstance(node, BinOp)
    x, y = node.left, node.right
    # x ⊕ y  →  x*y + x   |   x*y + y   (operand reuse keeps names in scope)
    c = x if rng.random() < 0.5 else y
    repl = BinOp("+", BinOp("*", x, y), c)
    return kernel.with_body(replace_site(kernel.body, target, repl))


def _donor_expr_candidates(donor: Kernel, target_scalars: frozenset) -> List[Expr]:
    """Donor float subexpressions whose free names the target resolves.

    Restricted to names that are FLOAT parameters of the *target* kernel
    (in scope everywhere); donor expressions touching arrays or loop
    variables are rejected rather than renamed.
    """
    out: List[Expr] = []
    for expr in float_sites(donor.body):
        if isinstance(expr, (Const, VarRef)):
            continue  # trivial splices add nothing over other mutators
        ok = True
        for node in walk(expr):
            if isinstance(node, VarRef) and node.name not in target_scalars:
                ok = False
                break
            if isinstance(node, ArrayRef):
                ok = False
                break
        if ok:
            out.append(expr)
    return out


def _mutate_splice(kernel: Kernel, rng: random.Random, donor: Optional[Kernel]) -> Optional[Kernel]:
    """Replace one float subexpression with one lifted from the donor."""
    if donor is None:
        return None
    target_scalars = frozenset(
        p.name for p in kernel.params if p.type is IRType.FLOAT
    )
    candidates = _donor_expr_candidates(donor, target_scalars)
    sites = float_sites(kernel.body)
    if not candidates or not sites:
        return None
    repl = rng.choice(candidates)
    target = rng.randrange(len(sites))
    return kernel.with_body(replace_site(kernel.body, target, repl))


def _mutate_guard_toggle(
    kernel: Kernel, rng: random.Random, donor: Optional[Kernel]
) -> Optional[Kernel]:
    """Unwrap an ``if``/``for``, or wrap a top-level statement in a guard."""
    body = list(kernel.body)
    unwrappable = [i for i, s in enumerate(body) if isinstance(s, (If, For))]
    wrap = not unwrappable or rng.random() < 0.4
    if wrap:
        # Never wrap a Decl: the declared name would vanish from the outer
        # scope and any later use would (correctly) fail validation.
        wrappable = [i for i, s in enumerate(body) if not isinstance(s, Decl)]
        scalars = [p.name for p in kernel.params if p.type is IRType.FLOAT]
        if not wrappable or not scalars:
            return None
        i = rng.choice(wrappable)
        cond = Compare(
            rng.choice(COMPARE_OPS),
            VarRef(rng.choice(scalars)),
            Const(0.0, format_varity_literal(0.0, kernel.fptype)),
        )
        new_body = body[:i] + [If(cond, [body[i]])] + body[i + 1 :]
    else:
        i = rng.choice(unwrappable)
        stmt = body[i]
        assert isinstance(stmt, (If, For))
        inner = list(stmt.body)
        # A For body may declare nothing but reference the loop variable;
        # unwrapping would orphan those references.  Reject that case.
        if isinstance(stmt, For):
            for s in inner:
                for node in walk(s):
                    if isinstance(node, VarRef) and node.name == stmt.var:
                        return None
        new_body = body[:i] + inner + body[i + 1 :]
    return kernel.with_body(new_body)


def _mutate_precision_cast(
    kernel: Kernel, rng: random.Random, donor: Optional[Kernel]
) -> Optional[Kernel]:
    """Round-trip one float subexpression through IEEE binary16.

    Wraps the site in the ``__demote_fp16`` internal function, which the
    vendor models evaluate as a single correctly-rounded narrowing to
    binary16 followed by an exact widening — both real toolchains convert
    ``__half``/``_Float16`` correctly rounded, so the mutation itself is
    vendor-neutral; what it changes is which *downstream* operations see a
    coarsened (possibly Inf/zero-flushed) operand.  Sites where the round
    trip would be the identity are excluded: an existing demote wrapper
    (wrapping it again) and a wrapper's direct argument (nesting inside
    it) both yield ``demote(demote(e))`` ≡ ``demote(e)``.
    """
    if kernel.fptype is FPType.FP16:
        return None  # already binary16: the round trip cannot change anything
    sites = float_sites(kernel.body)
    already_demoted = {
        id(e.args[0])
        for e in sites
        if isinstance(e, Call) and e.func == DEMOTE_FP16
    }
    candidates = [
        i
        for i, e in enumerate(sites)
        if not (isinstance(e, Call) and e.func == DEMOTE_FP16)
        and id(e) not in already_demoted
    ]
    if not candidates:
        return None
    target = rng.choice(candidates)
    repl = Call(DEMOTE_FP16, [sites[target]])
    return kernel.with_body(replace_site(kernel.body, target, repl))


@dataclass(frozen=True)
class Mutator:
    """One registered mutation class."""

    name: str
    fn: Callable[[Kernel, random.Random, Optional[Kernel]], Optional[Kernel]]
    needs_donor: bool = False
    doc: str = ""


MUTATORS: Dict[str, Mutator] = {
    m.name: m
    for m in (
        Mutator("op-swap", _mutate_op_swap, doc="swap one arithmetic/compare operator"),
        Mutator("const-perturb", _mutate_const_perturb, doc="move one literal by ±1..8 ULPs"),
        Mutator("call-mutate", _mutate_call, doc="substitute or wrap a math call"),
        Mutator("fma-shape", _mutate_fma_shape, doc="introduce the contractible a*b+c shape"),
        Mutator("splice", _mutate_splice, needs_donor=True, doc="graft a donor subexpression"),
        Mutator("guard-toggle", _mutate_guard_toggle, doc="wrap/unwrap an if or for"),
        Mutator(
            "precision-cast",
            _mutate_precision_cast,
            doc="round-trip a subexpression through binary16",
        ),
    )
}

#: Registry order is the canonical mutation_id order used by the engine.
MUTATION_NAMES: Tuple[str, ...] = tuple(MUTATORS)


def apply_mutation(
    kernel: Kernel,
    mutation_id: str,
    seed: int,
    donor: Optional[Kernel] = None,
) -> Optional[Kernel]:
    """Apply one registered mutation, fully determined by ``(seed, mutation_id)``.

    Returns the mutated kernel, or ``None`` when the mutation has no
    applicable site in this kernel (or needs a donor and got none).
    """
    try:
        mutator = MUTATORS[mutation_id]
    except KeyError:
        raise ValueError(f"unknown mutation {mutation_id!r}") from None
    rng = random.Random(derive_seed(seed, "mutation", mutation_id))
    return mutator.fn(kernel, rng, donor)
