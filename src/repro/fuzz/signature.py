"""Discrepancy signatures — the fuzzer's notion of novelty.

Two discrepancies are *the same finding* when they share a signature:
triage cause × implicated math functions × optimization label ×
directional outcome-class pair × campaign precision.  (Precision joined
the key with the FP16 lane: the same mechanism surfacing in binary16 and
binary32 is two distinct findings, exactly as the paper's FP64 and FP32
tables are reported separately.)  The fuzzer keeps one finding per
signature, which is what turns a stream of raw divergent runs into a
bounded, human-triageable ledger — the paper's 652k-run campaign produced
thousands of discrepancies but only a handful of *mechanisms* (§V/§VI),
and the signature is the in-model encoding of "mechanism".

Built on :func:`repro.analysis.triage.triage_discrepancy`: the cause and
function attribution come straight from its probes.

The signature key is also the search strategies' reward currency: the
bandit credits the mutation arm one win per unseen key, and the mcts
strategy (:mod:`repro.fuzz.search`) backpropagates the count of unseen
keys — weighted against oracle violations and grammar-coverage gains —
through the tree of IR-edit sequences that produced the mutant.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.analysis.triage import TriageVerdict
from repro.fp.types import FPType
from repro.harness.differential import Discrepancy
from repro.stacks import DEFAULT_STACK_PAIR
from repro.utils.tables import Table

__all__ = ["DiscrepancySignature", "signature_histogram"]


@dataclass(frozen=True)
class DiscrepancySignature:
    """The dedup key of one finding.

    ``functions`` is the sorted tuple of math functions triage implicated
    (empty for optimization-induced or unknown causes); the outcome pair
    is directional (lhs stack first) because the adjacency tables treat
    ``Num→NaN`` and ``NaN→Num`` as different cells.  ``fptype`` is the
    campaign precision the discrepancy was observed in (``"fp64"`` /
    ``"fp32"`` / ``"fp16"``).  ``stacks`` is the compared stack pair:
    the same mechanism observed between different pairs is two distinct
    findings.  The legacy nvcc/hipcc pair contributes nothing to
    :attr:`key` or the JSON form, so pre-registry ledgers parse and
    dedup unchanged.
    """

    cause: str
    functions: Tuple[str, ...]
    opt_label: str
    nvcc_outcome: str
    hipcc_outcome: str
    fptype: str
    stacks: Tuple[str, str] = DEFAULT_STACK_PAIR

    @classmethod
    def from_verdict(
        cls,
        verdict: TriageVerdict,
        discrepancy: Discrepancy,
        fptype: FPType,
    ) -> "DiscrepancySignature":
        return cls(
            cause=verdict.cause,
            functions=tuple(sorted(verdict.functions)),
            opt_label=discrepancy.opt_label,
            nvcc_outcome=discrepancy.lhs_outcome.value,
            hipcc_outcome=discrepancy.rhs_outcome.value,
            fptype=fptype.value,
            stacks=tuple(discrepancy.stacks),
        )

    @property
    def key(self) -> str:
        """Canonical string form (stable across runs; used by the ledger).

        The stack-pair segment appears only for non-legacy pairs, so
        every pre-registry key — on disk and in seen-sets — is unchanged.
        """
        funcs = "+".join(self.functions) or "-"
        key = (
            f"{self.cause}|{funcs}|{self.opt_label}|"
            f"{self.nvcc_outcome}/{self.hipcc_outcome}|{self.fptype}"
        )
        if self.stacks != DEFAULT_STACK_PAIR:
            key += f"|{self.stacks[0]}-{self.stacks[1]}"
        return key

    def describe(self) -> str:
        funcs = f" via {', '.join(self.functions)}" if self.functions else ""
        pair = (
            f" [{self.stacks[0]} vs {self.stacks[1]}]"
            if self.stacks != DEFAULT_STACK_PAIR
            else ""
        )
        return (
            f"{self.cause}{funcs} @ {self.opt_label}/{self.fptype} "
            f"({self.nvcc_outcome} vs {self.hipcc_outcome}){pair}"
        )

    def to_json_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "cause": self.cause,
            "functions": list(self.functions),
            "opt": self.opt_label,
            "nvcc_outcome": self.nvcc_outcome,
            "hipcc_outcome": self.hipcc_outcome,
            "fptype": self.fptype,
        }
        if self.stacks != DEFAULT_STACK_PAIR:
            data["stacks"] = list(self.stacks)
        return data

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "DiscrepancySignature":
        return cls(
            cause=str(data["cause"]),
            functions=tuple(data["functions"]),  # type: ignore[arg-type]
            opt_label=str(data["opt"]),
            nvcc_outcome=str(data["nvcc_outcome"]),
            hipcc_outcome=str(data["hipcc_outcome"]),
            fptype=str(data["fptype"]),
            stacks=tuple(data.get("stacks", DEFAULT_STACK_PAIR)),  # type: ignore[arg-type]
        )


def signature_histogram(
    signatures: Iterable[DiscrepancySignature],
    title: str = "Discrepancy signatures",
    counts: Optional[Counter] = None,
) -> Table:
    """Histogram table of signatures (``--report`` output).

    ``counts`` optionally supplies per-signature occurrence counts (e.g.
    raw discrepancies per signature); without it every signature counts
    once.
    """
    sigs = list(signatures)
    tally: Counter = Counter()
    for sig in sigs:
        tally[sig] += counts.get(sig, 1) if counts is not None else 1  # type: ignore[union-attr]
    table = Table(
        title=title,
        headers=["Cause", "Functions", "Opt", "Prec", "Outcomes (nvcc/hipcc)", "Count"],
    )
    for sig, n in sorted(
        tally.items(), key=lambda item: (-item[1], item[0].key)
    ):
        table.add_row(
            [
                sig.cause,
                ", ".join(sig.functions) or "—",
                sig.opt_label,
                sig.fptype,
                f"{sig.nvcc_outcome}/{sig.hipcc_outcome}",
                n,
            ]
        )
    return table
