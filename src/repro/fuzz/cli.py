"""Command-line interface: ``repro-fuzz``.

Runs a feedback-guided fuzzing session against the modeled CUDA/HIP
stacks and prints the novel findings.  Examples::

    repro-fuzz --mutants 200
    repro-fuzz --fptype fp64 --seed 7 --mutants 500 --report
    repro-fuzz --mutants 400 --ledger findings.jsonl
    repro-fuzz --mutants 800 --ledger findings.jsonl --resume
    repro-fuzz --max-seconds 120 --mutants 100000 --ledger findings.jsonl
    repro-fuzz --mutants 400 --workers 4      # same ledger, less wall clock
    repro-fuzz --stacks nvcc,hipcc,cpu        # per-pair findings, format-4 ledger
    repro-fuzz --search mcts --coverage-report  # tree search, format-5 ledger
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.cliutil import add_execution_args, resolve_execution_args
from repro.errors import HarnessError
from repro.fp.types import FPType
from repro.fuzz.engine import FuzzConfig, run_fuzz
from repro.fuzz.mutators import MUTATION_NAMES
from repro.fuzz.signature import signature_histogram
from repro.oracle.relations import RELATION_NAMES
from repro.stacks import DEFAULT_STACK_PAIR, STACK_NAMES, resolve_stacks
from repro.telemetry.session import TelemetrySession
from repro.utils.tables import Table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description="Feedback-guided discrepancy fuzzing (SC'24 reproduction)",
    )
    parser.add_argument("--seed", type=int, default=2024, help="session root seed")
    parser.add_argument(
        "--fptype",
        choices=["fp16", "fp32", "fp64"],
        default="fp32",
        help="kernel precision (default fp32 — the richest discrepancy "
        "surface; fp16 fuzzes the reduced-precision lane)",
    )
    parser.add_argument(
        "--seed-programs", type=int, default=None, help="seed-pool size (default 40)"
    )
    parser.add_argument(
        "--inputs", type=int, default=None, help="inputs per program (default 3)"
    )
    parser.add_argument(
        "--mutants", type=int, default=None,
        help="mutation-iteration budget for the session (default 200)",
    )
    parser.add_argument(
        "--max-seconds", type=float, default=None,
        help="optional wall-clock budget (checked between iterations)",
    )
    parser.add_argument(
        "--batch", type=int, default=None, help="ledger batch size (default 25)"
    )
    parser.add_argument(
        "--no-hipify", action="store_true", help="skip each mutant's HIPIFY twin"
    )
    parser.add_argument(
        "--no-minimize", action="store_true", help="skip delta-debugging of findings"
    )
    parser.add_argument(
        "--mutations", default=None,
        help=f"comma-separated mutation subset (default: {','.join(MUTATION_NAMES)})",
    )
    parser.add_argument(
        "--oracle", action="store_true",
        help="also check every evaluated program against the metamorphic "
        "relations; violations become oracle:<relation> findings "
        "(bumps the ledger fingerprint to format 3)",
    )
    parser.add_argument(
        "--oracle-relations", default=None,
        help="comma-separated relation subset (implies --oracle; "
        f"default with --oracle: {','.join(RELATION_NAMES)})",
    )
    parser.add_argument(
        "--stacks",
        metavar="NAMES",
        default=None,
        help="comma-separated compiler stacks every evaluation sweeps "
        f"(registry: {', '.join(STACK_NAMES)}; default nvcc,hipcc); "
        "non-default selections bump the ledger fingerprint to format 4",
    )
    parser.add_argument(
        "--search",
        choices=["bandit", "mcts"],
        default="bandit",
        help="iteration-selection strategy: the flat mutation bandit "
        "(default) or UCB1 tree search over IR-edit sequences, whose "
        "reward blends signature novelty, oracle violations, and grammar "
        "coverage (bumps the ledger fingerprint to format 5)",
    )
    parser.add_argument(
        "--coverage-report", action="store_true",
        help="print the grammar-feature coverage histogram after the "
        "session (requires --search mcts, which tracks coverage)",
    )
    parser.add_argument(
        "--coverage-out", metavar="PATH", default=None,
        help="write the grammar-feature coverage summary as JSON "
        "(requires --search mcts)",
    )
    parser.add_argument(
        "--ledger", metavar="PATH", default=None,
        help="append findings to this JSONL ledger",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="reload --ledger and continue the session where it stopped",
    )
    parser.add_argument(
        "--report", action="store_true",
        help="also print the signature histogram of all findings",
    )
    add_execution_args(
        parser,
        workers_help="process-pool size for mutant evaluation (0 = serial; "
        "the ledger is byte-identical at any worker count)",
    )
    return parser


def _config_from_args(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> FuzzConfig:
    # `is not None` guards: an explicit 0 must error, not silently fall
    # back to the default (the falsy-zero bug class PR 1 fixed).
    for name, value, minimum in (
        ("--seed-programs", args.seed_programs, 1),
        ("--inputs", args.inputs, 1),
        ("--mutants", args.mutants, 0),
        ("--batch", args.batch, 1),
    ):
        if value is not None and value < minimum:
            parser.error(f"{name} must be >= {minimum} (got {value})")
    resolve_execution_args(parser, args)
    if args.max_seconds is not None and args.max_seconds <= 0:
        parser.error(f"--max-seconds must be positive (got {args.max_seconds})")
    if args.resume and args.ledger is None:
        parser.error("--resume requires --ledger")
    if args.coverage_report and args.search != "mcts":
        parser.error("--coverage-report requires --search mcts")
    if args.coverage_out is not None and args.search != "mcts":
        parser.error("--coverage-out requires --search mcts")

    base = FuzzConfig()
    mutations = base.mutations
    if args.mutations is not None:
        mutations = tuple(m.strip() for m in args.mutations.split(",") if m.strip())
        unknown = [m for m in mutations if m not in MUTATION_NAMES]
        if unknown:
            parser.error(
                f"unknown mutations: {', '.join(unknown)} "
                f"(known: {', '.join(MUTATION_NAMES)})"
            )
        if not mutations:
            parser.error("--mutations must name at least one mutation")
    oracle_relations: tuple = ()
    if args.oracle_relations is not None:
        oracle_relations = tuple(
            r.strip() for r in args.oracle_relations.split(",") if r.strip()
        )
        unknown_rel = [r for r in oracle_relations if r not in RELATION_NAMES]
        if unknown_rel:
            parser.error(
                f"unknown relations: {', '.join(unknown_rel)} "
                f"(known: {', '.join(RELATION_NAMES)})"
            )
        if not oracle_relations:
            parser.error("--oracle-relations must name at least one relation")
    elif args.oracle:
        oracle_relations = RELATION_NAMES
    stacks = DEFAULT_STACK_PAIR
    if args.stacks is not None:
        try:
            stacks = resolve_stacks(args.stacks)
        except HarnessError as exc:
            parser.error(str(exc))
    return FuzzConfig(
        seed=args.seed,
        fptype=FPType.from_string(args.fptype),
        n_seed_programs=args.seed_programs if args.seed_programs is not None else base.n_seed_programs,
        inputs_per_program=args.inputs if args.inputs is not None else base.inputs_per_program,
        max_mutants=args.mutants if args.mutants is not None else base.max_mutants,
        max_seconds=args.max_seconds,
        batch_size=args.batch if args.batch is not None else base.batch_size,
        include_hipify=not args.no_hipify,
        minimize=not args.no_minimize,
        mutations=mutations,
        oracle_relations=oracle_relations,
        stacks=stacks,
        workers=args.workers if args.workers is not None else base.workers,
        backend=args.backend,
        bridge_url=args.bridge_url,
        search=args.search,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    config = _config_from_args(parser, args)

    def progress(phase: str, done: int, total: int) -> None:
        print(f"\r[{phase}] {done}/{total}", end="", file=sys.stderr, flush=True)
        if done == total:
            print(file=sys.stderr)

    telemetry = TelemetrySession.from_args(args)
    with telemetry:
        try:
            result = run_fuzz(
                config, ledger=args.ledger, resume=args.resume, progress=progress
            )
        except HarnessError as exc:
            print(f"repro-fuzz: error: {exc}", file=sys.stderr)
            return 2

    if result.resumed_iterations:
        print(
            f"resumed {result.resumed_iterations} iterations from {args.ledger}",
            file=sys.stderr,
        )
    print(
        f"fuzz session: {result.iterations} iterations, "
        f"{result.mutants_run} mutants executed "
        f"({result.mutants_no_site} no-site, {result.mutants_invalid} invalid, "
        f"{result.mutants_noop} no-op, {result.duplicates} duplicate), "
        f"{result.pair_runs} run pairs (+{result.baseline_pair_runs} baseline)"
    )
    print(
        f"seed pool: {config.n_seed_programs} programs, "
        f"{len(result.hot_seed_indices)} already divergent, "
        f"{len(result.baseline_signatures)} baseline signatures"
    )
    print(
        f"nvcc executions {result.nvcc_executions}, "
        f"cache hits {result.nvcc_cache_hits} "
        f"({100.0 * result.cache_hit_rate:.0f}% of the CUDA side served from cache)"
    )
    if config.oracle_relations:
        print(
            f"oracle: {result.oracle_violations} relation violations on "
            f"committed iterations"
        )
    if config.search == "mcts":
        stats = result.search_stats
        print(
            f"mcts tree: {stats.get('nodes', 0)} nodes "
            f"(max depth {stats.get('max_depth', 0)}, "
            f"{stats.get('dead_nodes', 0)} dead, "
            f"{stats.get('explore_programs', 0)} explore programs), "
            f"{result.coverage.get('features', 0)} grammar features covered"
        )
    if args.coverage_out is not None:
        with open(args.coverage_out, "w", encoding="utf-8") as fh:
            json.dump(result.coverage, fh, indent=2, sort_keys=True)
            fh.write("\n")
    print(f"novel findings: {len(result.findings)} (stopped by {result.stopped_by})")
    for finding in result.findings:
        print(f"  {finding.describe()}")
    if args.coverage_report:
        counts = result.coverage.get("counts", {})
        coverage_table = Table(
            title="Grammar-feature coverage (rarest first)",
            headers=["Feature", "Programs"],
        )
        for feature, count in sorted(counts.items(), key=lambda kv: (kv[1], kv[0])):  # type: ignore[union-attr]
            coverage_table.add_row([feature, count])
        print()
        print(coverage_table.render())
    if args.report:
        print()
        print(
            signature_histogram(
                result.baseline_signatures + result.novel_signatures,
                title="Signature histogram (baseline + findings)",
            ).render()
        )
        # Execution metrics for committed work only — invariant across
        # --workers, like the ledger (mirrors repro-campaign --json's
        # exec block).
        print()
        print("Execution service (committed work):")
        print(f"  pair runs            {result.pair_runs}")
        print(f"  baseline pair runs   {result.baseline_pair_runs}")
        # Per-input accounting: every executed input is a cache miss,
        # every replayed one a hit, so executions ARE the miss count.
        print(f"  nvcc cache misses    {result.nvcc_executions}  (= executions)")
        print(f"  nvcc cache hits      {result.nvcc_cache_hits}")
        print(f"  cache hit rate       {100.0 * result.cache_hit_rate:.0f}%")
        print(f"  duplicates avoided   {result.duplicates}")
        if result.batch_walls:
            wall = Table(
                title="Per-batch wall time (traced)",
                headers=["iterations", "seconds"],
            )
            for start, stop, seconds in result.batch_walls:
                wall.add_row([f"{start}..{stop}", seconds])
            print()
            print(wall.render())
    telemetry.write(exec_metrics=result.exec_metrics)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
