"""MCTS/UCB1 tree search over IR-edit sequences.

The bandit strategy picks a *single* mutation of an energy-weighted pool
entry each iteration; its unit of learning is the mutation operator.
This module's unit of learning is the **edit sequence**: tree nodes are
``(corpus_index, lineage)`` programs — exactly the identity the ledger
already uses — rooted at the seed pool.  Selection walks the tree by
UCB1; at the selected node the search *expands*: it applies one of the
registered mutators (chosen by a per-node UCB1 over mutation arms, each
arm re-triable with every iteration's fresh derived seed — a fertile
program can be re-mutated indefinitely, which is what the flat bandit's
pool promotions do well).  A mutant that earns reward is promoted to a
child node, so paying edit sequences compound into deeper chains; a
zero-reward mutant leaves only arm statistics behind.  A root-level
*explore arm* generates a fresh corpus program, competing with the seed
subtrees on the same UCB terms.  Reward is a deterministic blend of what
the session actually wants:

* novel discrepancy signatures (weight 1.0) — the paper's currency;
* oracle-relation violations (0.25) — dense single-stack signal the
  tree can steer toward (violations are program-structural, so they
  cluster in subtrees);
* new grammar-coverage features (0.125, :mod:`repro.fuzz.coverage`) —
  densest early, steering toward under-covered program shapes before
  any signature has been seen.

``reward = raw / (1 + raw)`` keeps every simulation's reward in
``[0, 1)`` so UCB1's exploration term stays calibrated.

Determinism and the speculative window
--------------------------------------

The engine evaluates a window of upcoming iterations concurrently and
commits in order (see :mod:`repro.fuzz.engine`).  Classic MCTS breaks
that — every simulation touches the tree.  The resolution here is to
split each simulation's state changes by *what they depend on*:

* **Prepare-time** (``prepare``): visit increments (path, root, explore,
  per-arm) and dead marks (a mutation with no applicable site, a node
  with nothing left to try).  These depend only on the tree as it
  stands — never on the new program's evaluation — so speculated
  iterations may apply them eagerly.  Every change is recorded in an
  undo delta.
* **Commit-time** (``commit_evaluated`` / ``commit_replay``): reward
  backpropagation, child-node promotion, coverage observation.  These
  need the evaluation's results and run strictly in iteration order.

A commit whose reward is ``0.0`` changes nothing any later ``prepare``
reads (no promotion, nothing added to any reward sum), so the engine
keeps its speculation.  A nonzero reward invalidates the window; the
engine calls :meth:`MctsSearch.invalidate`, which unwinds the
outstanding deltas in reverse order, and re-prepares against the updated
tree.  The committed trajectory is therefore exactly the serial one and
the ledger stays byte-identical at every worker count.

Resume
------

The ledger's per-iteration ``search`` trace (format 5) records
``(iteration, corpus_index, lineage, reward)`` for every *evaluated*
iteration.  Skipped iterations need no record: ``prepare`` is a pure
function of the tree state and the iteration's derived rng, so replaying
``prepare`` reproduces the same skips, the same dead marks, and the same
visit counts.  Replay therefore re-runs ``prepare`` for each completed
iteration, checks the prepared ``(corpus_index, lineage)`` against the
recorded one, and commits the *recorded* reward — rebuilding the tree
statistics, the promoted nodes, the coverage map, and the full
evaluated-content dedup set without re-executing anything.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import HarnessError
from repro.exec import content_id, content_text
from repro.fuzz.coverage import CoverageTracker, kernel_features
from repro.fuzz.ledger import LineageStep
from repro.fuzz.mutators import MUTATORS, apply_mutation
from repro.ir.program import Program
from repro.ir.validate import validate_kernel
from repro.telemetry.spans import get_tracer
from repro.utils.rng import derive_seed
from repro.varity.testcase import TestCase

__all__ = [
    "MAX_DEPTH",
    "EXPLORATION_C",
    "MctsSearch",
    "PreparedIteration",
    "blend_reward",
]

#: Edit-sequence depth cap.  Deep chains are the point of tree search,
#: but mutants further than this from any seed are mostly mutation noise;
#: the cap also bounds the ledger's lineage records.
MAX_DEPTH = 8

#: UCB1 exploration constant.  Rewards live in [0, 1) but most
#: simulations score 0, so the empirical means UCB compares are small;
#: a sub-1 constant keeps selection exploitative enough to re-mutate
#: paying programs instead of sweeping the whole frontier round-robin.
EXPLORATION_C = 0.5

#: The explore arm's optimistic prior (virtual wins): fresh programs
#: stay competitive until the seed subtrees prove they pay better.
EXPLORE_PRIOR = 2.0

#: Each node's expand action starts with one virtual win too, so a
#: freshly promoted node gets re-mutated before its subtree must win
#: selection on real evidence.
EXPAND_PRIOR = 1.0

#: How much global (cross-node) arm evidence seeds a node's own
#: mutation bandit — virtual pulls at the global mean, so a fresh node
#: starts from what the whole session has learned about each mutator
#: instead of re-sampling all arms in registry order.
GLOBAL_PRIOR_WEIGHT = 2.0

#: Reward blend weights (see module docstring).
REWARD_NOVEL = 1.0
REWARD_ORACLE = 0.25
REWARD_COVERAGE = 0.125

#: A diverged-but-stale mutant (known signature) earns no backprop —
#: otherwise a discrepancy-rich subtree addicts selection while minting
#: nothing new — but it IS promoted into the tree, seeded with this
#: prior, because discrepant programs are fertile ground for further
#: edits (the flat bandit's pool promotions exploit exactly this).
DIVERGED_PRIOR = 0.125


def blend_reward(novel: int, violations: int, new_features: int) -> float:
    """The deterministic reward for one evaluated program."""
    raw = (
        REWARD_NOVEL * novel
        + REWARD_ORACLE * violations
        + REWARD_COVERAGE * new_features
    )
    return raw / (1.0 + raw)


@dataclass
class PreparedIteration:
    """One speculated iteration: everything selection decided, nothing
    committed.  ``skip`` names the counter a non-evaluable iteration
    lands in; otherwise ``test`` is the candidate to evaluate.  (Shared
    with the bandit strategy, whose ``parent`` field carries its pool
    entry; the mcts strategy leaves it ``None``.)"""

    iteration: int
    arm: str
    skip: Optional[str] = None  # "no_site" | "invalid" | "noop" | "duplicate"
    kind: str = ""  # "explore" | "mutant"
    test: Optional[TestCase] = None
    content: str = ""
    content_id: str = ""
    corpus_index: int = -1
    lineage: Tuple[LineageStep, ...] = ()
    parent: Optional[object] = None


@dataclass
class _Node:
    """One *rewarded* edit sequence: a corpus program plus zero or more
    mutations, promoted into the tree because it paid.

    ``arm_visits``/``arm_reward`` are the node's own mutation bandit:
    every arm may be tried any number of times (each iteration derives a
    fresh mutation seed), so a fertile program keeps producing distinct
    mutants.  ``dead_arms`` holds mutations with no applicable site in
    this program — a property of the content, not of the seed, so one
    failure retires the arm."""

    corpus_index: int
    lineage: Tuple[LineageStep, ...]
    test: TestCase
    content: str
    parent: Optional["_Node"]
    visits: int = 1
    reward_sum: float = 0.0
    arm_visits: Dict[str, int] = field(default_factory=dict)
    arm_reward: Dict[str, float] = field(default_factory=dict)
    dead_arms: Set[str] = field(default_factory=set)
    children: List["_Node"] = field(default_factory=list)
    dead: bool = False

    @property
    def depth(self) -> int:
        return len(self.lineage)

    @property
    def mean(self) -> float:
        return self.reward_sum / self.visits


#: Sentinel for the root's fresh-generation arm.
_EXPLORE = object()


@dataclass
class _Outstanding:
    """A prepared-but-uncommitted iteration's tree bookkeeping: the undo
    delta, the selection path, and everything commit needs to credit the
    arm and (when the reward is nonzero) promote the mutant."""

    delta: List[Tuple[str, object]]
    path: List[_Node] = field(default_factory=list)
    node: Optional[_Node] = None  # the expansion site (mutants only)
    arm: str = ""
    test: Optional[TestCase] = None
    content: str = ""
    corpus_index: int = -1
    lineage: Tuple[LineageStep, ...] = ()
    explore: bool = False


class MctsSearch:
    """The ``search="mcts"`` strategy behind :func:`repro.fuzz.engine.run_fuzz`."""

    def __init__(self, config, corpus, hot_indices: Sequence[int]) -> None:
        self.config = config
        self.corpus = corpus
        self.coverage = CoverageTracker()
        self.mutations: Tuple[str, ...] = config.mutations
        self.explore_enabled: bool = config.explore
        #: root children, in creation order: the seed pool, then every
        #: rewarded program the explore arm generated.
        self.children: List[_Node] = []
        self.root_visits = 0
        self.explore_visits = 0
        self.explore_reward = 0.0
        #: cross-node mutation-arm evidence: visits accrue at prepare
        #: (undo-able), reward only at commit — the prior every node's
        #: own arm bandit shrinks toward.
        self.global_arm_visits: Dict[str, int] = {}
        self.global_arm_reward: Dict[str, float] = {}
        self._outstanding: Dict[int, _Outstanding] = {}
        hot = set(hot_indices)
        for index, test in enumerate(corpus.seed_tests()):
            node = _Node(
                corpus_index=index,
                lineage=(),
                test=test,
                content=content_text(test.program.kernel, test.inputs),
                parent=None,
                reward_sum=1.0 if index in hot else 0.0,
            )
            self.children.append(node)
            self.coverage.observe(kernel_features(test.program.kernel))
            self.root_visits += 1
        if self.explore_enabled:
            self.explore_visits = 1
            self.explore_reward = EXPLORE_PRIOR
            self.root_visits += 1

    # ------------------------------------------------------------ selection
    def _ucb(self, mean: float, visits: int, parent_visits: int) -> float:
        return mean + EXPLORATION_C * math.sqrt(
            math.log(parent_visits + 1.0) / visits
        )

    def _select_root(self):
        """The root action: a live child subtree, ``_EXPLORE``, or None
        (everything dead and exploration disabled).  Deterministic:
        strict-greater comparison makes the earliest-created winner of a
        tie stable, and the explore arm yields ties to subtrees."""
        best = None
        best_value = -math.inf
        for node in self.children:
            if node.dead:
                continue
            value = self._ucb(node.mean, node.visits, self.root_visits)
            if value > best_value:
                best, best_value = node, value
        if self.explore_enabled:
            value = self._ucb(
                self.explore_reward / self.explore_visits,
                self.explore_visits,
                self.root_visits,
            )
            if value > best_value:
                return _EXPLORE
        return best

    def _expand_stats(self, node: _Node) -> Tuple[float, int]:
        """The node's expand action as (mean, visits): its own mutation
        bandit's aggregate, under one optimistic virtual win."""
        visits = 1 + sum(node.arm_visits.values())
        total = EXPAND_PRIOR + sum(node.arm_reward.values())
        return total / visits, visits

    def _live_arms(self, node: _Node) -> List[str]:
        if node.depth >= MAX_DEPTH:
            return []
        return [m for m in self.mutations if m not in node.dead_arms]

    def _global_mean(self, arm: str) -> float:
        visits = self.global_arm_visits.get(arm, 0)
        if visits == 0:
            return 1.0  # optimistic: globally untried arms get sampled
        return self.global_arm_reward.get(arm, 0.0) / visits

    def _select_arm(self, node: _Node, live: Sequence[str]) -> str:
        """Per-node UCB1 over mutation arms, each node's sparse evidence
        shrunk toward the global arm means; registry order breaks ties,
        so the choice is deterministic."""
        _, expand_visits = self._expand_stats(node)
        best = None
        best_value = -math.inf
        for arm in live:
            visits = node.arm_visits.get(arm, 0)
            mean = (
                node.arm_reward.get(arm, 0.0)
                + GLOBAL_PRIOR_WEIGHT * self._global_mean(arm)
            ) / (visits + GLOBAL_PRIOR_WEIGHT)
            value = self._ucb(mean, visits + 1, expand_visits)
            if value > best_value:
                best, best_value = arm, value
        assert best is not None
        return best

    def _content_id(self, content: str) -> str:
        return content_id(self.config.fptype, content, prefix="fuzz")

    # -------------------------------------------------------------- prepare
    def prepare(
        self, i: int, evaluated: Set[str], overlay: Set[str]
    ) -> PreparedIteration:
        """One simulation's select+expand, against the current tree.

        Mutates only prepare-time state (visit counts, dead marks), all
        recorded in an undo delta; commit-time state (rewards, promoted
        nodes, coverage, counters) is untouched.  ``overlay`` carries
        the window's own content ids so speculated iterations dedup
        against each other exactly as committed ones would.
        """
        tracer = get_tracer()
        t0 = time.perf_counter_ns() if tracer.enabled else 0
        rng = random.Random(derive_seed(self.config.seed, "select", i))
        delta: List[Tuple[str, object]] = []
        while True:
            choice = self._select_root()
            if choice is None:
                # Exploration disabled and every subtree exhausted: the
                # iteration is deterministically unproductive.
                self._outstanding[i] = _Outstanding(delta=delta)
                return PreparedIteration(
                    iteration=i, arm=self.mutations[0], skip="no_site"
                )
            if choice is _EXPLORE:
                if tracer.enabled:
                    tracer.record(
                        "fuzz.mcts.select", t0, time.perf_counter_ns(),
                        iteration=i, action="explore",
                    )
                return self._prepare_explore(i, evaluated, overlay, delta)
            node = choice
            path = [node]
            while True:
                live = self._live_arms(node)
                # The expand action (mutate *this* program, one more
                # time) competes with descending into each child
                # subtree on the same UCB terms; children must strictly
                # beat it, so a paying node is milked before its
                # descendants take over.
                descend: Optional[_Node] = None
                best_value = -math.inf
                if live:
                    mean, visits = self._expand_stats(node)
                    best_value = self._ucb(mean, visits, node.visits)
                for child in node.children:
                    if child.dead:
                        continue
                    value = self._ucb(child.mean, child.visits, node.visits)
                    if value > best_value:
                        descend, best_value = child, value
                if descend is not None:
                    node = descend
                    path.append(node)
                    continue
                if live:
                    if tracer.enabled:
                        tracer.record(
                            "fuzz.mcts.select", t0, time.perf_counter_ns(),
                            iteration=i, action="expand", depth=node.depth,
                        )
                    return self._prepare_expansion(
                        i, node, path, live, rng, evaluated, overlay, delta
                    )
                # No live arm and no live child: the subtree is spent.
                # Prune and restart from the root — each restart kills
                # one node, so the walk terminates.
                node.dead = True
                delta.append(("dead", node))
                break

    def _bump_visits(
        self, path: Sequence[_Node], delta: List[Tuple[str, object]]
    ) -> None:
        self.root_visits += 1
        delta.append(("root-visit", None))
        for node in path:
            node.visits += 1
            delta.append(("visit", node))

    def _prepare_explore(
        self,
        i: int,
        evaluated: Set[str],
        overlay: Set[str],
        delta: List[Tuple[str, object]],
    ) -> PreparedIteration:
        """The fresh-generation arm: corpus program ``n_seed_programs + i``
        (the same index rule as the bandit's explore arm, so a finding's
        ``(corpus_index, ())`` replays); promoted to a root child at
        commit if it earns reward."""
        corpus_index = self.config.n_seed_programs + i
        test = self.corpus.get(corpus_index)
        content = content_text(test.program.kernel, test.inputs)
        cid = self._content_id(content)
        self._bump_visits((), delta)
        self.explore_visits += 1
        delta.append(("explore-visit", None))
        if cid in evaluated or cid in overlay:
            self._outstanding[i] = _Outstanding(delta=delta)
            return PreparedIteration(iteration=i, arm="explore", skip="duplicate")
        overlay.add(cid)
        self._outstanding[i] = _Outstanding(
            delta=delta,
            test=test,
            content=content,
            corpus_index=corpus_index,
            lineage=(),
            explore=True,
        )
        return PreparedIteration(
            iteration=i,
            arm="explore",
            kind="explore",
            test=test,
            content=content,
            content_id=cid,
            corpus_index=corpus_index,
            lineage=(),
        )

    def _prepare_expansion(
        self,
        i: int,
        node: _Node,
        path: List[_Node],
        live: List[str],
        rng: random.Random,
        evaluated: Set[str],
        overlay: Set[str],
        delta: List[Tuple[str, object]],
    ) -> PreparedIteration:
        """Apply one mutation at ``node`` with this iteration's derived
        seed.  A mutation with no applicable site retires that arm (a
        property of the program text); any other failure just costs the
        arm one unrewarded visit."""
        tracer = get_tracer()
        t0 = time.perf_counter_ns() if tracer.enabled else 0
        arm = self._select_arm(node, live)
        node.arm_visits[arm] = node.arm_visits.get(arm, 0) + 1
        delta.append(("arm-visit", (node, arm)))
        self.global_arm_visits[arm] = self.global_arm_visits.get(arm, 0) + 1
        delta.append(("global-arm-visit", arm))
        mseed = derive_seed(self.config.seed, "mutant", i)
        donor_index: Optional[int] = None
        donor = None
        if MUTATORS[arm].needs_donor:
            # Donors are corpus-backed root children (flat lineages),
            # drawn reward-weighted: paying subtrees' material travels.
            candidates = [c for c in self.children if not c.lineage]
            donor_node = rng.choices(
                candidates, weights=[1.0 + c.reward_sum for c in candidates], k=1
            )[0]
            donor_index = donor_node.corpus_index
            donor = donor_node.test.program.kernel
        kernel = apply_mutation(node.test.program.kernel, arm, mseed, donor)
        skip: Optional[str] = None
        content = ""
        cid = ""
        if kernel is None:
            skip = "no_site"
            node.dead_arms.add(arm)
            delta.append(("dead-arm", (node, arm)))
        elif validate_kernel(kernel):
            skip = "invalid"
        else:
            content = content_text(kernel, node.test.inputs)
            if content == node.content:
                skip = "noop"
            else:
                cid = self._content_id(content)
                if cid in evaluated or cid in overlay:
                    skip = "duplicate"
        self._bump_visits(path, delta)
        if tracer.enabled:
            tracer.record(
                "fuzz.mcts.expand", t0, time.perf_counter_ns(),
                iteration=i, mutation=arm, outcome=skip or "mutant",
            )
        if skip is not None:
            self._outstanding[i] = _Outstanding(delta=delta)
            return PreparedIteration(iteration=i, arm=arm, skip=skip)
        overlay.add(cid)
        program = Program(
            program_id=cid, kernel=kernel, seed=mseed, source_note="fuzz mutant"
        )
        lineage = node.lineage + (LineageStep(arm, mseed, donor_index),)
        test = TestCase(program, node.test.inputs)
        self._outstanding[i] = _Outstanding(
            delta=delta,
            path=path,
            node=node,
            arm=arm,
            test=test,
            content=content,
            corpus_index=node.corpus_index,
            lineage=lineage,
        )
        return PreparedIteration(
            iteration=i,
            arm=arm,
            kind="mutant",
            test=test,
            content=content,
            content_id=cid,
            corpus_index=node.corpus_index,
            lineage=lineage,
        )

    # --------------------------------------------------------------- commit
    def commit_evaluated(
        self,
        prep: PreparedIteration,
        novel: int,
        violations: int,
        diverged: bool = False,
    ) -> float:
        """Fold one evaluated iteration's results in, in iteration order;
        returns the blended reward (nonzero ⇒ later speculation is stale)."""
        rec = self._pop(prep)
        assert rec.test is not None
        new_features = self.coverage.observe(
            kernel_features(rec.test.program.kernel)
        )
        reward = blend_reward(novel, violations, new_features)
        self._absorb(rec, reward, diverged, prep.iteration)
        return reward

    def commit_replay(
        self, prep: PreparedIteration, reward: float, diverged: bool = False
    ) -> None:
        """Resume path: commit the ledger-recorded reward and re-observe
        coverage, rebuilding the exact live-run state."""
        rec = self._pop(prep)
        assert rec.test is not None
        self.coverage.observe(kernel_features(rec.test.program.kernel))
        self._absorb(rec, reward, diverged, prep.iteration)

    def commit_skip(self, prep: PreparedIteration) -> None:
        """A skipped iteration's prepare-time marks simply stand."""
        self._pop(prep)

    def _pop(self, prep: PreparedIteration) -> _Outstanding:
        rec = self._outstanding.pop(prep.iteration, None)
        if rec is None:
            raise HarnessError(
                f"mcts commit without prepare at iteration {prep.iteration}"
            )
        return rec

    def _absorb(
        self, rec: _Outstanding, reward: float, diverged: bool, iteration: int
    ) -> None:
        """Backpropagate the reward and promote the mutant to a tree node
        when it paid — or when it merely diverged, in which case it joins
        the tree (fertile material for deeper chains) without crediting
        its ancestors (a stale discrepancy is not evidence the subtree
        will mint anything new)."""
        tracer = get_tracer()
        t0 = time.perf_counter_ns() if tracer.enabled else 0
        if reward:
            for node in rec.path:
                node.reward_sum += reward
            if rec.explore:
                self.explore_reward += reward
            else:
                site = rec.node
                assert site is not None
                site.arm_reward[rec.arm] = (
                    site.arm_reward.get(rec.arm, 0.0) + reward
                )
                self.global_arm_reward[rec.arm] = (
                    self.global_arm_reward.get(rec.arm, 0.0) + reward
                )
        if reward or diverged:
            assert rec.test is not None
            child = _Node(
                corpus_index=rec.corpus_index,
                lineage=rec.lineage,
                test=rec.test,
                content=rec.content,
                parent=rec.node,
                reward_sum=reward if reward else DIVERGED_PRIOR,
            )
            if rec.explore:
                self.children.append(child)
            elif len(rec.lineage) <= MAX_DEPTH:
                assert rec.node is not None
                rec.node.children.append(child)
        if tracer.enabled:
            tracer.record(
                "fuzz.mcts.backprop", t0, time.perf_counter_ns(),
                iteration=iteration, reward=reward, depth=len(rec.path),
            )

    # ----------------------------------------------------------- invalidate
    def invalidate(self) -> None:
        """Unwind every prepared-but-uncommitted iteration, newest first,
        restoring the tree to the last committed state."""
        for i in sorted(self._outstanding, reverse=True):
            rec = self._outstanding.pop(i)
            for kind, payload in reversed(rec.delta):
                if kind == "visit":
                    payload.visits -= 1  # type: ignore[union-attr]
                elif kind == "root-visit":
                    self.root_visits -= 1
                elif kind == "explore-visit":
                    self.explore_visits -= 1
                elif kind == "arm-visit":
                    node, arm = payload  # type: ignore[misc]
                    node.arm_visits[arm] -= 1
                    if node.arm_visits[arm] == 0:
                        del node.arm_visits[arm]
                elif kind == "global-arm-visit":
                    self.global_arm_visits[payload] -= 1  # type: ignore[index]
                    if self.global_arm_visits[payload] == 0:  # type: ignore[index]
                        del self.global_arm_visits[payload]  # type: ignore[arg-type]
                elif kind == "dead-arm":
                    node, arm = payload  # type: ignore[misc]
                    node.dead_arms.discard(arm)
                else:  # "dead"
                    payload.dead = False  # type: ignore[union-attr]

    # ---------------------------------------------------------------- stats
    def stats(self) -> Dict[str, object]:
        nodes = 0
        dead = 0
        max_depth = 0
        stack = list(self.children)
        while stack:
            node = stack.pop()
            nodes += 1
            dead += 1 if node.dead else 0
            max_depth = max(max_depth, node.depth)
            stack.extend(node.children)
        return {
            "nodes": nodes,
            "dead_nodes": dead,
            "max_depth": max_depth,
            "root_visits": self.root_visits,
            "explore_visits": self.explore_visits,
            "explore_programs": len(self.children) - self.corpus.n_seed_programs,
            "coverage_features": len(self.coverage.counts),
        }
