"""repro.fuzz — feedback-guided discrepancy fuzzing.

The paper's campaigns (§IV-B) generate programs *blindly*; its future-work
section (§VII) asks for tooling that finds inconsistencies with less manual
effort.  This package is that tool for the modeled stacks: a mutation
fuzzer that starts from a seed corpus, mutates programs already known (or
suspected) to trigger discrepancies, and keeps only findings whose triage
*signature* — root cause × implicated functions × optimization setting ×
outcome-class pair — has not been seen before.

Layers:

* :mod:`repro.fuzz.mutators`  — typed, validity-preserving IR mutations,
  each fully determined by ``(seed, mutation_id)``;
* :mod:`repro.fuzz.signature` — the discrepancy signature used for novelty
  detection and dedup, built on :mod:`repro.analysis.triage`;
* :mod:`repro.fuzz.ledger`    — the append-only JSONL findings ledger with
  campaign-checkpoint-style resume semantics;
* :mod:`repro.fuzz.engine`    — the loop: power-scheduled seed pool,
  batched execution through the campaign's sweep/cache machinery,
  auto-minimization of novel findings via :mod:`repro.analysis.reduce`;
* :mod:`repro.fuzz.cli`       — the ``repro-fuzz`` console entry point.
"""

from repro.fuzz.engine import FuzzConfig, FuzzResult, run_fuzz, run_random_session
from repro.fuzz.ledger import Finding, FindingsLedger
from repro.fuzz.mutators import MUTATION_NAMES, apply_mutation
from repro.fuzz.signature import DiscrepancySignature, signature_histogram

__all__ = [
    "FuzzConfig",
    "FuzzResult",
    "run_fuzz",
    "run_random_session",
    "Finding",
    "FindingsLedger",
    "MUTATION_NAMES",
    "apply_mutation",
    "DiscrepancySignature",
    "signature_histogram",
]
