"""First-class compiler stacks.

The paper's methodology — generate a kernel once, compile it through
multiple stacks, differentially compare across optimization levels —
was hardcoded here as exactly two stacks (nvcc/hipcc) threaded through
a ``hipify: bool``.  This registry makes a stack a value: each entry
bundles the codegen dialect, the source extension, the compiler model
with its pass pipeline, and the device (vendor math library + FTZ
policy) it targets.  Adding a fourth stack is one :class:`Stack` entry
plus its compiler/device modules — every layer above (exec, harness,
campaign, fuzz, oracle, CLIs) consumes the registry.

The third registered stack is the CPU lane (ROADMAP item (c)): clang
with ``-ffast-math``/autovectorization-flavoured passes executing the
plain-C dialect, so the harness has a stack pair that runs on any CI
box with no GPU stack model involved.

Compatibility invariants the registry preserves:

* ``DEFAULT_STACK_PAIR`` is ``("nvcc", "hipcc")`` — everything keyed on
  the legacy pair (content keys, checkpoint fingerprints, ledger
  formats, discrepancy JSON) serializes byte-identically to the
  pre-registry layout when only the legacy pair is in play.
* Stack order is canonical: ``STACK_NAMES`` order decides pair order,
  so ``stack_pairs(...)`` always yields (nvcc, hipcc) before
  (nvcc, cpu) before (hipcc, cpu).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple, Union

from repro.errors import HarnessError
from repro.codegen.c import render_c
from repro.codegen.cuda import render_cuda
from repro.codegen.hip import render_hip
from repro.compilers.clang import ClangCompiler
from repro.compilers.compiler import Compiler
from repro.compilers.hipcc import HipccCompiler
from repro.compilers.nvcc import NvccCompiler
from repro.devices.amd import amd_mi250x
from repro.devices.cpu import cpu_host
from repro.devices.device import Device
from repro.devices.nvidia import nvidia_v100
from repro.devices.vendor import Vendor
from repro.ir.program import Program

__all__ = [
    "Stack",
    "STACKS",
    "STACK_NAMES",
    "DEFAULT_STACK_PAIR",
    "get_stack",
    "resolve_stacks",
    "stack_pairs",
    "pair_name",
]


@dataclass(frozen=True)
class Stack:
    """One compiler stack: dialect + compiler model + device model."""

    name: str
    vendor: Vendor
    dialect: str
    source_extension: str
    mathlib_name: str
    render: Callable[[Program], str]
    compiler_factory: Callable[[], Compiler]
    device_factory: Callable[[int], Device]

    def compiler(self) -> Compiler:
        """A fresh compiler model for this stack."""
        return self.compiler_factory()

    def device(self, salt: int = 0) -> Device:
        """A fresh device model for this stack."""
        return self.device_factory(salt)

    def __str__(self) -> str:
        return self.name


#: Registry, in canonical order (decides pair ordering everywhere).
STACKS: Dict[str, Stack] = {
    "nvcc": Stack(
        name="nvcc",
        vendor=Vendor.NVIDIA,
        dialect="cuda",
        source_extension=".cu",
        mathlib_name="libdevice",
        render=render_cuda,
        compiler_factory=NvccCompiler,
        device_factory=nvidia_v100,
    ),
    "hipcc": Stack(
        name="hipcc",
        vendor=Vendor.AMD,
        dialect="hip",
        source_extension=".hip",
        mathlib_name="ocml",
        render=render_hip,
        compiler_factory=HipccCompiler,
        device_factory=amd_mi250x,
    ),
    "cpu": Stack(
        name="cpu",
        vendor=Vendor.CPU,
        dialect="c",
        source_extension=".c",
        mathlib_name="libm",
        render=render_c,
        compiler_factory=ClangCompiler,
        device_factory=cpu_host,
    ),
}

STACK_NAMES: Tuple[str, ...] = tuple(STACKS)

#: The paper's pair; the legacy serialization default everywhere.
DEFAULT_STACK_PAIR: Tuple[str, str] = ("nvcc", "hipcc")


def get_stack(name: str) -> Stack:
    """Look up one stack by name (raises :class:`HarnessError` if unknown)."""
    try:
        return STACKS[name]
    except KeyError:
        raise HarnessError(
            f"unknown stack {name!r} (registered: {', '.join(STACK_NAMES)})"
        ) from None


def resolve_stacks(spec: Union[str, Sequence[str], None]) -> Tuple[str, ...]:
    """Normalize a stack selection to a canonically-ordered name tuple.

    Accepts a comma-separated string (the CLI spelling), a sequence of
    names, or ``None`` (→ the default pair).  Duplicates collapse;
    order is always registry order, so equal selections are equal
    tuples no matter how they were spelled.
    """
    if spec is None:
        return DEFAULT_STACK_PAIR
    if isinstance(spec, str):
        names: List[str] = [s.strip() for s in spec.split(",") if s.strip()]
    else:
        names = [str(s) for s in spec]
    if not names:
        raise HarnessError("stack selection must name at least one stack")
    for name in names:
        get_stack(name)  # validate
    resolved = tuple(n for n in STACK_NAMES if n in names)
    if len(resolved) < 2:
        raise HarnessError(
            f"differential testing needs at least two stacks (got {names!r})"
        )
    return resolved


def stack_pairs(names: Iterable[str]) -> Tuple[Tuple[str, str], ...]:
    """All 2-combinations of ``names``, in canonical registry order."""
    ordered = [n for n in STACK_NAMES if n in set(names)]
    return tuple(
        (ordered[i], ordered[j])
        for i in range(len(ordered))
        for j in range(i + 1, len(ordered))
    )


def pair_name(pair: Tuple[str, str]) -> str:
    """Stable short name of a stack pair (``"nvcc-cpu"``)."""
    return f"{pair[0]}-{pair[1]}"
