"""Render and diff metrics snapshots (the ``repro-report`` entry point).

::

    repro-report render snapshot.json
    repro-report diff old.json new.json

``render`` prints the counters/gauges/histograms as tables; ``diff``
prints per-metric old/new/delta rows — for ``*_seconds`` counters these
are exactly the per-phase wall-time deltas the nightly gate cares
about.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

from repro.utils.tables import Table


def load_snapshot(path: Path) -> Dict[str, object]:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict):
        raise ValueError(f"{path}: snapshot is not a JSON object")
    return data


def _section(snapshot: Dict[str, object], key: str) -> Dict[str, object]:
    value = snapshot.get(key, {})
    return value if isinstance(value, dict) else {}


def render_snapshot(snapshot: Dict[str, object]) -> str:
    blocks: List[str] = []
    counters = _section(snapshot, "counters")
    if counters:
        t = Table(title="Counters", headers=["name", "value"])
        for name in sorted(counters):
            t.add_row([name, float(counters[name])])
        blocks.append(t.render())
    gauges = _section(snapshot, "gauges")
    if gauges:
        t = Table(title="Gauges", headers=["name", "value"])
        for name in sorted(gauges):
            t.add_row([name, float(gauges[name])])
        blocks.append(t.render())
    histograms = _section(snapshot, "histograms")
    if histograms:
        t = Table(title="Histograms", headers=["name", "count", "sum", "mean"])
        for name in sorted(histograms):
            h = histograms[name]
            if not isinstance(h, dict):
                continue
            count = int(h.get("count", 0))
            total = float(h.get("sum", 0.0))
            mean = total / count if count else 0.0
            t.add_row([name, count, total, mean])
        blocks.append(t.render())
    if not blocks:
        return "(empty snapshot)"
    return "\n\n".join(blocks)


def diff_snapshots(
    old: Dict[str, object], new: Dict[str, object]
) -> str:
    """Per-metric old/new/delta table across both snapshots.

    ``*_seconds`` counter rows are the per-phase deltas; histogram rows
    compare count and sum.
    """
    t = Table(title="Snapshot diff", headers=["metric", "old", "new", "delta"])
    for section in ("counters", "gauges"):
        olds = _section(old, section)
        news = _section(new, section)
        for name in sorted(set(olds) | set(news)):
            a = float(olds.get(name, 0.0))  # type: ignore[arg-type]
            b = float(news.get(name, 0.0))  # type: ignore[arg-type]
            if a == b:
                continue
            t.add_row([name, a, b, b - a])
    old_h = _section(old, "histograms")
    new_h = _section(new, "histograms")
    for name in sorted(set(old_h) | set(new_h)):
        a = old_h.get(name, {})
        b = new_h.get(name, {})
        a = a if isinstance(a, dict) else {}
        b = b if isinstance(b, dict) else {}
        for stat in ("count", "sum"):
            va = float(a.get(stat, 0.0))
            vb = float(b.get(stat, 0.0))
            if va == vb:
                continue
            t.add_row([f"{name}.{stat}", va, vb, vb - va])
    if not t.rows:
        return "Snapshots are identical."
    return t.render()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-report", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_render = sub.add_parser("render", help="print one snapshot as tables")
    p_render.add_argument("snapshot", type=Path)
    p_diff = sub.add_parser("diff", help="per-phase deltas between snapshots")
    p_diff.add_argument("old", type=Path)
    p_diff.add_argument("new", type=Path)
    args = parser.parse_args(argv)
    try:
        if args.command == "render":
            print(render_snapshot(load_snapshot(args.snapshot)))
        else:
            print(diff_snapshots(load_snapshot(args.old), load_snapshot(args.new)))
    except BrokenPipeError:
        # `repro-report render ... | head` closing stdout early is not
        # an error worth reporting (stderr may be gone too).
        return 0
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"repro-report: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
