"""Zero-dependency tracing spans + metrics for the repro engines.

The package is strictly out-of-band: nothing here may influence ledger
bytes, checkpoints, fingerprints, or content keys.  The default tracer
is a no-op (``NullTracer``), so uninstrumented runs pay one attribute
lookup per would-be span.  Workers ship span batches back with their
results and the parent merges them **by chunk index**, never by arrival
time, so traces are deterministic at any worker count.

Layout:

* :mod:`repro.telemetry.spans` — ``Tracer`` / ``NullTracer`` and the
  module-level active-tracer slot (``get_tracer`` / ``set_tracer``).
* :mod:`repro.telemetry.metrics` — process-local ``MetricsRegistry``
  of counters, gauges, and fixed-bucket histograms.
* :mod:`repro.telemetry.export` — JSONL span log, Chrome
  trace-event-format export (loadable in ``chrome://tracing`` or
  Perfetto), and flat metrics snapshot JSON.
* :mod:`repro.telemetry.report` — render a snapshot as a table, diff
  two snapshots with per-phase deltas (the ``repro-report`` entry
  point).
"""

from repro.telemetry.metrics import (
    DEFAULT_TIME_EDGES,
    MetricsRegistry,
    get_metrics,
    reset_metrics,
)
from repro.telemetry.spans import (
    NullTracer,
    SpanRecord,
    Tracer,
    get_tracer,
    set_tracer,
)

__all__ = [
    "DEFAULT_TIME_EDGES",
    "MetricsRegistry",
    "NullTracer",
    "SpanRecord",
    "Tracer",
    "get_metrics",
    "get_tracer",
    "reset_metrics",
    "set_tracer",
]
