"""CLI wiring shared by the three entry points.

``repro-campaign``, ``repro-fuzz`` and ``repro-oracle`` all surface the
same two flags:

* ``--trace-out FILE`` — span trace; ``.jsonl`` gets the raw span log,
  any other suffix the Chrome trace-event JSON (``chrome://tracing`` /
  Perfetto).
* ``--metrics-out FILE`` — flat metrics snapshot (span totals + the
  exec phase aggregates), the input to ``repro-report render``/``diff``.

When either flag is present a real :class:`~repro.telemetry.spans
.Tracer` is installed for the run and restored afterwards; with neither,
the null tracer stays active and the run is the untraced fast path.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, Optional

from repro.telemetry.export import (
    fold_exec_metrics,
    fold_spans,
    write_metrics_snapshot,
    write_trace,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Tracer, set_tracer

__all__ = ["add_telemetry_args", "TelemetrySession"]


def add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="write a span trace (.jsonl: span log; otherwise Chrome "
        "trace-event JSON for chrome://tracing / Perfetto)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write a flat metrics snapshot JSON (render/diff it with "
        "repro-report)",
    )


class TelemetrySession:
    """Installs a tracer for the duration of a CLI run when requested."""

    def __init__(
        self, trace_out: Optional[str], metrics_out: Optional[str]
    ) -> None:
        self.trace_out = trace_out
        self.metrics_out = metrics_out
        self.active = bool(trace_out or metrics_out)
        self.tracer: Optional[Tracer] = Tracer() if self.active else None
        self._previous = None

    @classmethod
    def from_args(cls, args: argparse.Namespace) -> "TelemetrySession":
        return cls(
            getattr(args, "trace_out", None), getattr(args, "metrics_out", None)
        )

    def __enter__(self) -> "TelemetrySession":
        if self.tracer is not None:
            self._previous = set_tracer(self.tracer)
        return self

    def __exit__(self, *exc) -> None:
        if self.tracer is not None:
            set_tracer(self._previous)

    def write(self, exec_metrics: Optional[Dict[str, object]] = None) -> None:
        """Write the requested outputs (call after the run succeeds)."""
        if self.tracer is None:
            return
        records = self.tracer.records()
        if self.trace_out:
            write_trace(records, Path(self.trace_out))
            print(f"trace written to {self.trace_out}", file=sys.stderr)
        if self.metrics_out:
            registry = MetricsRegistry()
            fold_spans(registry, records)
            if exec_metrics:
                fold_exec_metrics(registry, exec_metrics)
            write_metrics_snapshot(registry.snapshot(), Path(self.metrics_out))
            print(
                f"metrics snapshot written to {self.metrics_out}",
                file=sys.stderr,
            )
