"""Process-local metrics: counters, gauges, fixed-bucket histograms.

Bucket edges are fixed at construction (``DEFAULT_TIME_EDGES`` spans
1 µs → ~4000 s in powers of four), so two runs observing the same
values produce byte-identical snapshots — ``repro-report diff`` then
shows real deltas, not bucket-boundary noise.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Sequence, Tuple

#: Deterministic seconds-scale edges: 1e-6 * 4**i for i in 0..11.
DEFAULT_TIME_EDGES: Tuple[float, ...] = tuple(1e-6 * 4**i for i in range(12))


class Counter:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram: ``counts[i]`` counts values <= edges[i];
    the final bucket is the overflow (> last edge)."""

    __slots__ = ("edges", "counts", "sum", "count")

    def __init__(self, edges: Sequence[float] = DEFAULT_TIME_EDGES) -> None:
        self.edges: Tuple[float, ...] = tuple(edges)
        self.counts: List[int] = [0] * (len(self.edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.edges, value)] += 1
        self.sum += value
        self.count += 1

    def observe_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.observe(v)


class MetricsRegistry:
    """Named counters/gauges/histograms with a deterministic snapshot."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            c = self._counters[name] = Counter()
            return c

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            g = self._gauges[name] = Gauge()
            return g

    def histogram(
        self, name: str, edges: Sequence[float] = DEFAULT_TIME_EDGES
    ) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            h = self._histograms[name] = Histogram(edges)
            return h

    def snapshot(self) -> Dict[str, object]:
        """Flat, sorted, JSON-ready snapshot (diffs cleanly run-to-run)."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: {
                    "edges": list(self._histograms[name].edges),
                    "counts": list(self._histograms[name].counts),
                    "sum": self._histograms[name].sum,
                    "count": self._histograms[name].count,
                }
                for name in sorted(self._histograms)
            },
        }


_registry = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global registry."""
    return _registry


def reset_metrics() -> MetricsRegistry:
    """Replace the global registry with a fresh one (tests, CLI runs)."""
    global _registry
    _registry = MetricsRegistry()
    return _registry
