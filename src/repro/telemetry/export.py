"""Trace and metrics serialization.

Three output shapes:

* **JSONL span log** — one span per line, stable field order; the raw
  material for ad-hoc analysis (``jq``-able).
* **Chrome trace-event format** — ``{"traceEvents": [...]}`` of
  ``"ph": "X"`` complete events, loadable in ``chrome://tracing`` or
  https://ui.perfetto.dev.  Nesting is inferred by the viewer from
  interval containment per (pid, tid) track, so no parent pointers are
  needed.  Timestamps are normalized to the earliest span so traces
  start at t=0.
* **Metrics snapshot JSON** — the flat ``MetricsRegistry.snapshot()``
  dict, sorted keys, for ``repro-report render``/``diff``.

``write_trace`` dispatches on the output suffix: ``.jsonl`` gets the
span log, anything else the Chrome trace.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import SpanRecord


def span_dict(rec: SpanRecord) -> Dict[str, object]:
    return {
        "name": rec.name,
        "start_ns": rec.start_ns,
        "dur_ns": rec.dur_ns,
        "pid": rec.pid,
        "tid": rec.tid,
        "depth": rec.depth,
        "chunk": rec.chunk,
        "args": dict(rec.args),
    }


def write_span_jsonl(records: Sequence[SpanRecord], path: Path) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        for rec in records:
            fh.write(json.dumps(span_dict(rec), sort_keys=True) + "\n")


def chrome_trace(records: Sequence[SpanRecord]) -> Dict[str, object]:
    """Records → Chrome trace-event JSON dict (complete "X" events)."""
    events: List[Dict[str, object]] = []
    t0 = min((rec.start_ns for rec in records), default=0)
    for rec in records:
        events.append(
            {
                "name": rec.name,
                "ph": "X",
                "ts": (rec.start_ns - t0) / 1000.0,  # microseconds
                "dur": rec.dur_ns / 1000.0,
                "pid": rec.pid,
                "tid": rec.tid,
                "args": {**dict(rec.args), "chunk": rec.chunk},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(records: Sequence[SpanRecord], path: Path) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(chrome_trace(records), sort_keys=True) + "\n",
        encoding="utf-8",
    )


def write_trace(records: Sequence[SpanRecord], path: Path) -> None:
    """Suffix dispatch: ``.jsonl`` → span log, else Chrome trace JSON."""
    path = Path(path)
    if path.suffix == ".jsonl":
        write_span_jsonl(records, path)
    else:
        write_chrome_trace(records, path)


def write_metrics_snapshot(snapshot: Dict[str, object], path: Path) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def fold_exec_metrics(
    registry: MetricsRegistry, exec_metrics: Dict[str, object]
) -> None:
    """Fold an ``ExecMetrics.as_dict()`` into counters.

    Phase seconds land as ``phase.<name>_seconds`` (the names the
    nightly regression gate blames); scalar counters keep their names
    under ``exec.``.
    """
    phases = exec_metrics.get("phase_seconds", {})
    if isinstance(phases, dict):
        for name, seconds in sorted(phases.items()):
            if isinstance(seconds, (int, float)):
                registry.counter(f"phase.{name}_seconds").inc(float(seconds))
    for key, value in sorted(exec_metrics.items()):
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            registry.counter(f"exec.{key}").inc(float(value))


def fold_spans(
    registry: MetricsRegistry, records: Iterable[SpanRecord]
) -> None:
    """Fold span totals into counters + an exec.chunk histogram."""
    totals: Dict[str, float] = {}
    for rec in records:
        seconds = rec.dur_ns / 1e9
        totals[rec.name] = totals.get(rec.name, 0.0) + seconds
        if rec.name == "exec.chunk":
            registry.histogram("span.exec.chunk_seconds").observe(seconds)
    for name in sorted(totals):
        registry.counter(f"span.{name}_seconds").inc(totals[name])
