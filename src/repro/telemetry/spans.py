"""Nested timed spans with deterministic cross-process merge.

A ``Tracer`` hands out ``span("compile", stack="nvcc")`` context
managers; each records a ``SpanRecord`` with monotonic start/duration
nanoseconds (``time.perf_counter_ns`` — CLOCK_MONOTONIC on Linux, so
parent- and worker-recorded timestamps share one clock).  The default
active tracer is a ``NullTracer`` whose ``span``/``record`` are no-ops,
so instrumented hot paths pay one attribute lookup
(``get_tracer().enabled``) when tracing is off.

Determinism contract: pool workers run with their own local tracer,
``drain()`` its records, and ship them back alongside chunk results;
the parent calls ``merge(chunk_index, records)``.  Export order is
``(chunk, seq)`` — submission order — never arrival order, so the same
run traced at any worker count yields the same span sequence (only the
timestamps differ).
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Soft cap on retained records; past it new records are counted in
#: ``dropped`` instead of stored, so a runaway loop cannot eat the heap.
DEFAULT_MAX_RECORDS = 1_000_000


@dataclass(frozen=True)
class SpanRecord:
    """One completed span.

    ``args`` is a sorted tuple of ``(key, value)`` pairs rather than a
    dict: picklable, hashable, and deterministic in iteration order.
    ``chunk`` is -1 for spans recorded directly in the parent process
    and the submission-order chunk index for merged worker spans;
    ``seq`` is the record's position within its origin tracer.
    """

    name: str
    start_ns: int
    dur_ns: int
    pid: int
    tid: int = 0
    depth: int = 0
    args: Tuple[Tuple[str, object], ...] = ()
    chunk: int = -1
    seq: int = 0


class _NullSpan:
    """The no-op context manager ``NullTracer.span`` returns."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Default tracer: every operation is a no-op.

    ``enabled`` is False so call sites can guard even the argument
    construction: ``if tracer.enabled: tracer.record(...)``.
    """

    enabled = False

    def span(self, name: str, **args):
        return _NULL_SPAN

    def record(self, name, start_ns, end_ns, *, chunk=-1, pid=None, **args):
        return None

    def merge(self, chunk, records) -> None:
        return None

    def drain(self) -> List[SpanRecord]:
        return []

    def records(self) -> List[SpanRecord]:
        return []


class Tracer:
    """Collects nested timed spans; thread-safe record/merge.

    The lock matters: ``mp.Pool.imap`` consumes its payload iterable on
    a feeder thread, so pickle-measurement spans arrive from a thread
    other than the one absorbing results.
    """

    enabled = True

    def __init__(self, max_records: int = DEFAULT_MAX_RECORDS) -> None:
        self._records: List[SpanRecord] = []
        self._lock = threading.Lock()
        self._depth = 0
        self._seq = 0
        self._max_records = max_records
        self.dropped = 0

    @contextmanager
    def span(self, name: str, **args) -> Iterator[None]:
        depth = self._depth
        self._depth = depth + 1
        start = time.perf_counter_ns()
        try:
            yield
        finally:
            end = time.perf_counter_ns()
            self._depth = depth
            self._append(
                SpanRecord(
                    name=name,
                    start_ns=start,
                    dur_ns=end - start,
                    pid=os.getpid(),
                    depth=depth,
                    args=tuple(sorted(args.items())),
                )
            )

    def record(
        self,
        name: str,
        start_ns: int,
        end_ns: int,
        *,
        chunk: int = -1,
        pid: Optional[int] = None,
        **args,
    ) -> None:
        """Record a span from explicit timestamps (no nesting tracking)."""
        self._append(
            SpanRecord(
                name=name,
                start_ns=start_ns,
                dur_ns=end_ns - start_ns,
                pid=os.getpid() if pid is None else pid,
                depth=self._depth,
                args=tuple(sorted(args.items())),
                chunk=chunk,
            )
        )

    def merge(self, chunk: int, records: Sequence[SpanRecord]) -> None:
        """Absorb a worker's span batch, stamping its chunk index.

        Callers pass the *submission-order* chunk index; export sorts by
        it, which is what makes traces worker-count-invariant.
        """
        with self._lock:
            for rec in records:
                self._store(replace(rec, chunk=chunk, seq=self._seq))

    def drain(self) -> List[SpanRecord]:
        """Return and clear all records (worker → parent shipping)."""
        with self._lock:
            out, self._records = self._records, []
            return out

    def records(self) -> List[SpanRecord]:
        """All records in deterministic ``(chunk, seq)`` order.

        Parent-local records (``chunk == -1``) sort first; merged worker
        batches follow in submission order.  ``seq`` is assigned at
        append/merge time, so within a chunk the worker's own recording
        order is preserved.
        """
        with self._lock:
            return sorted(self._records, key=lambda r: (r.chunk, r.seq))

    def totals_by_name(self) -> Dict[str, float]:
        """Total seconds per span name (overlap not deduplicated)."""
        totals: Dict[str, float] = {}
        for rec in self.records():
            totals[rec.name] = totals.get(rec.name, 0.0) + rec.dur_ns / 1e9
        return totals

    def seconds_by_chunk(self, name: str = "exec.chunk") -> Dict[int, float]:
        """Seconds per chunk index for spans called ``name``."""
        out: Dict[int, float] = {}
        for rec in self.records():
            if rec.name == name and rec.chunk >= 0:
                out[rec.chunk] = out.get(rec.chunk, 0.0) + rec.dur_ns / 1e9
        return out

    # -- internals ---------------------------------------------------

    def _append(self, rec: SpanRecord) -> None:
        with self._lock:
            self._store(replace(rec, seq=self._seq))

    def _store(self, rec: SpanRecord) -> None:
        # Caller holds the lock.
        self._seq += 1
        if len(self._records) >= self._max_records:
            self.dropped += 1
            return
        self._records.append(rec)


_NULL_TRACER = NullTracer()
_active: "Tracer | NullTracer" = _NULL_TRACER


def get_tracer() -> "Tracer | NullTracer":
    """The active tracer (the shared ``NullTracer`` by default)."""
    return _active


def set_tracer(tracer: "Tracer | NullTracer | None"):
    """Install ``tracer`` (None restores the null tracer); returns the
    previous one so callers can restore it in a ``finally``."""
    global _active
    previous = _active
    _active = _NULL_TRACER if tracer is None else tracer
    return previous
