"""Shared argparse plumbing for the execution-facing CLIs.

``repro-campaign``, ``repro-fuzz``, and ``repro-oracle`` all drive the
same :class:`~repro.exec.service.ExecutionService`, so they share one
flag block — worker count, backend selection, bridge address, and the
telemetry outputs — declared once here instead of three diverging
copies.  :func:`add_execution_args` installs the flags;
:func:`resolve_execution_args` applies the cross-flag validation every
CLI must agree on (consistent error text included).
"""

from __future__ import annotations

import argparse

from repro.telemetry.session import add_telemetry_args

__all__ = ["add_execution_args", "resolve_execution_args"]


def add_execution_args(
    parser: argparse.ArgumentParser,
    *,
    workers_help: str = "process-pool size (0 = serial)",
) -> None:
    """Add the execution flags every service-backed CLI shares.

    ``--workers``, ``--backend``, ``--bridge-url``, plus the telemetry
    pair (``--trace-out`` / ``--metrics-out``).  ``workers_help`` stays
    per-CLI because each tool documents its own determinism guarantee.
    """
    parser.add_argument(
        "--workers", type=int, default=None, help=workers_help
    )
    parser.add_argument(
        "--backend",
        choices=["serial", "pool", "bridge"],
        default=None,
        help="execution backend (default: serial or pool from --workers; "
        "bridge routes chunks through a repro-bridge server fleet)",
    )
    parser.add_argument(
        "--bridge-url",
        metavar="URL",
        default=None,
        help="address of a running `repro-bridge serve` (with --backend bridge)",
    )
    add_telemetry_args(parser)


def resolve_execution_args(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    """Validate the shared execution flags (``parser.error`` on misuse)."""
    if args.workers is not None and args.workers < 0:
        parser.error(f"--workers must be >= 0 (got {args.workers})")
    if args.backend == "bridge" and not args.bridge_url:
        parser.error("--backend bridge requires --bridge-url")
    if args.bridge_url and args.backend != "bridge":
        parser.error("--bridge-url requires --backend bridge")
