"""HIP (.hip) rendering — the native-HIP artifact our Varity extension
emits (§III-D).

HIP is close to a subset of CUDA: the kernel is declared ``__global__`` in
both; the differences are the runtime header, the runtime-call prefix, and
the launch syntax (``hipLaunchKernelGGL`` instead of ``<<< >>>``) — exactly
the items listed in the paper.
"""

from __future__ import annotations

from repro.ir.program import Program
from repro.codegen.base import (
    EmitterConfig,
    kernel_needs_fp16_header,
    render_kernel_body,
    render_signature,
)
from repro.codegen.cuda import ARRAY_EXTENT_MACRO, _host_setup, _host_teardown

__all__ = ["render_hip"]


def render_hip(program: Program) -> str:
    """Render a complete self-contained .hip test file."""
    kernel = program.kernel
    cfg = EmitterConfig(fptype=kernel.fptype, dialect="hip")
    args = ", ".join(p.name for p in kernel.params)
    nparams = len(kernel.params)
    lines = [
        f"/* Varity test {program.program_id} ({kernel.fptype.value}) */",
        "#include <stdio.h>",
        "#include <stdlib.h>",
        "#include <hip/hip_runtime.h>",
    ]
    if kernel_needs_fp16_header(kernel):
        lines.append("#include <hip/hip_fp16.h>")
    lines += [
        "",
        f"#define {ARRAY_EXTENT_MACRO} 64",
        "",
        "__global__",
        f"void {kernel.name}({render_signature(kernel, cfg)}) {{",
        render_kernel_body(kernel, cfg),
        "}",
        "",
        "int main(int argc, char** argv) {",
        f"  if (argc != {nparams + 1}) return 1;",
    ]
    lines.extend(_host_setup(kernel, cfg, api="hip"))
    lines.append(
        f"  hipLaunchKernelGGL({kernel.name}, dim3(1), dim3(1), 0, 0, {args});"
    )
    lines.extend(_host_teardown(kernel, api="hip"))
    lines.append("}")
    return "\n".join(lines) + "\n"
