"""Language-neutral C-family emission of kernel bodies.

CUDA, HIP and plain C share the body syntax; they differ in kernel
qualifiers, headers, memory management, launch syntax, and the spelling of
the half-precision type (``__half`` vs ``_Float16``), which the
per-language modules select via :attr:`EmitterConfig.dialect`.  FP32
campaigns emit ``f``-suffixed math calls and ``F``-suffixed literals
(§III-C); FP16 campaigns emit ``h``-suffixed math calls and C23
``F16``-suffixed literals, both handled here via the exhaustive
:class:`~repro.fp.types.FPType` suffix properties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import CodegenError
from repro.fp.literals import format_varity_literal
from repro.fp.types import FPType
from repro.ir.nodes import (
    ArrayRef,
    Assign,
    AugAssign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    Decl,
    Expr,
    FMA,
    For,
    If,
    IntConst,
    Stmt,
    UnOp,
    VarRef,
)
from repro.ir.program import Kernel

__all__ = [
    "EmitterConfig",
    "render_kernel_body",
    "render_expr",
    "render_signature",
    "kernel_needs_fp16_header",
]

_PRECEDENCE = {"||": 1, "&&": 2, "==": 3, "!=": 3, "<": 4, "<=": 4, ">": 4, ">=": 4,
               "+": 5, "-": 5, "*": 6, "/": 6}

#: Functions that keep their name in every precision (no suffix variant is
#: used by either toolchain for these in generated code).
_NO_SUFFIX = frozenset({"__fdividef"})

#: The precision-cast internal function (introduced by the fuzz mutator of
#: the same name; canonical registration lives in
#: ``repro.devices.mathlib.base.INTERNAL_FUNCTIONS``).  Rendered as a
#: round-trip cast through the dialect's half type, not as a call.
_DEMOTE_FP16 = "__demote_fp16"


@dataclass(frozen=True)
class EmitterConfig:
    """Per-language emission knobs.

    ``dialect`` selects the type-name spelling where the languages differ
    (FP16: ``__half`` under ``cuda``, ``_Float16`` under ``hip``/``c``).
    """

    fptype: FPType
    indent: str = "  "
    dialect: str = "cuda"

    @property
    def fp_name(self) -> str:
        return self.fptype.c_name_for(self.dialect)

    def math_name(self, func: str, variant: str = "default") -> str:
        """Source spelling of a math call.

        FP32's ``f`` marker is a suffix (``cosf``); FP16's ``h`` marker is
        a *prefix* (``hsin``, ``hexp`` — CUDA's real half-math spellings),
        because suffixing would collide with existing functions
        (``sin`` + ``h`` is hyperbolic sine).  Both read the exhaustive
        :attr:`FPType.math_suffix` table, so an unknown precision raises
        instead of silently emitting the FP64 name.
        """
        if func in _NO_SUFFIX:
            return func
        if variant == "approx" and self.fptype is FPType.FP32:
            # Fast-math intrinsic spelling (__cosf, __expf, ...).
            return f"__{func}f"
        marker = self.fptype.math_suffix
        if self.fptype is FPType.FP16:
            return f"{marker}{func}"
        return f"{func}{marker}"

    def literal(self, node: Const) -> str:
        if node.text is not None:
            text = node.text
        else:
            try:
                text = format_varity_literal(node.value, self.fptype)
            except ValueError as exc:
                raise CodegenError(f"cannot emit literal {node.value!r}") from exc
        suffix = self.fptype.literal_suffix
        if suffix and not text.upper().endswith(suffix):
            text += suffix
        return text


def render_expr(expr: Expr, cfg: EmitterConfig, parent_prec: int = 0) -> str:
    """Emit one expression with minimal parentheses."""
    if isinstance(expr, Const):
        return cfg.literal(expr)
    if isinstance(expr, IntConst):
        return str(expr.value)
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, ArrayRef):
        return f"{expr.name}[{render_expr(expr.index, cfg)}]"
    if isinstance(expr, UnOp):
        inner = render_expr(expr.operand, cfg, 7)
        # Avoid `--x` (decrement token) when negating a negative literal.
        if inner.startswith("-"):
            return f"{expr.op}({inner})" if expr.op == "-" else inner
        return f"{expr.op}{inner}" if expr.op == "-" else inner
    if isinstance(expr, (BinOp, Compare, BoolOp)):
        prec = _PRECEDENCE[expr.op]
        left = render_expr(expr.left, cfg, prec)
        right_prec = prec + 1 if expr.op in ("-", "/") else prec
        right = render_expr(expr.right, cfg, right_prec)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, FMA):
        # fma / fmaf / __hfma — the half spelling is CUDA's intrinsic name.
        name = "__hfma" if cfg.fptype is FPType.FP16 else f"fma{cfg.fptype.math_suffix}"
        a = render_expr(expr.a, cfg)
        if expr.negate_product:
            a = f"-({a})"
        return f"{name}({a}, {render_expr(expr.b, cfg)}, {render_expr(expr.c, cfg)})"
    if isinstance(expr, Call):
        if expr.func == _DEMOTE_FP16:
            # The precision-cast round-trip: narrow to binary16, widen back.
            half = FPType.FP16.c_name_for(cfg.dialect)
            inner = render_expr(expr.args[0], cfg)
            return f"({cfg.fp_name})({half})({inner})"
        args = ", ".join(render_expr(a, cfg) for a in expr.args)
        return f"{cfg.math_name(expr.func, expr.variant)}({args})"
    raise CodegenError(f"cannot emit {type(expr).__name__}")


def _stmt_lines(stmt: Stmt, cfg: EmitterConfig, depth: int) -> List[str]:
    pad = cfg.indent * depth
    if isinstance(stmt, Decl):
        return [f"{pad}{cfg.fp_name} {stmt.name} = {render_expr(stmt.init, cfg)};"]
    if isinstance(stmt, Assign):
        return [f"{pad}{render_expr(stmt.target, cfg)} = {render_expr(stmt.expr, cfg)};"]
    if isinstance(stmt, AugAssign):
        return [
            f"{pad}{render_expr(stmt.target, cfg)} {stmt.op}= {render_expr(stmt.expr, cfg)};"
        ]
    if isinstance(stmt, For):
        lines = [
            f"{pad}for (int {stmt.var} = 0; {stmt.var} < "
            f"{render_expr(stmt.bound, cfg)}; ++{stmt.var}) {{"
        ]
        for inner in stmt.body:
            lines.extend(_stmt_lines(inner, cfg, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, If):
        lines = [f"{pad}if ({render_expr(stmt.cond, cfg)}) {{"]
        for inner in stmt.body:
            lines.extend(_stmt_lines(inner, cfg, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    raise CodegenError(f"cannot emit {type(stmt).__name__}")


def kernel_needs_fp16_header(kernel: Kernel) -> bool:
    """True when the rendered source references the half type.

    Either the whole kernel is FP16, or a precision-cast mutation left a
    ``__demote_fp16`` wrapper (rendered as a cast through the half type)
    inside an FP64/FP32 kernel — both need ``cuda_fp16.h`` /
    ``hip/hip_fp16.h`` for the artifact to stand alone.
    """
    if kernel.fptype is FPType.FP16:
        return True
    from repro.ir.visitor import walk

    for stmt in kernel.body:
        for node in walk(stmt):
            if isinstance(node, Call) and node.func == _DEMOTE_FP16:
                return True
    return False


def render_signature(kernel: Kernel, cfg: EmitterConfig) -> str:
    """Parameter list of the compute kernel."""
    return ", ".join(p.c_decl(cfg.fp_name) for p in kernel.params)


def render_kernel_body(kernel: Kernel, cfg: EmitterConfig, depth: int = 1) -> str:
    """Body statements plus the final %.17g printf (§III-B).

    A half-precision accumulator is widened explicitly — ``__half`` /
    ``_Float16`` do not promote through printf varargs on their own.
    """
    lines: List[str] = []
    for stmt in kernel.body:
        lines.extend(_stmt_lines(stmt, cfg, depth))
    comp = "(double)comp" if kernel.fptype is FPType.FP16 else "comp"
    lines.append(f'{cfg.indent * depth}printf("%.17g\\n", {comp});')
    return "\n".join(lines)
