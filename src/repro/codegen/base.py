"""Language-neutral C-family emission of kernel bodies.

CUDA, HIP and plain C share the body syntax; they differ in kernel
qualifiers, headers, memory management, and launch syntax, which the
per-language modules provide.  FP32 campaigns emit ``f``-suffixed math
calls and ``F``-suffixed literals (§III-C), both handled here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import CodegenError
from repro.fp.literals import format_varity_literal
from repro.fp.types import FPType
from repro.ir.nodes import (
    ArrayRef,
    Assign,
    AugAssign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    Decl,
    Expr,
    FMA,
    For,
    If,
    IntConst,
    Stmt,
    UnOp,
    VarRef,
)
from repro.ir.program import Kernel

__all__ = ["EmitterConfig", "render_kernel_body", "render_expr", "render_signature"]

_PRECEDENCE = {"||": 1, "&&": 2, "==": 3, "!=": 3, "<": 4, "<=": 4, ">": 4, ">=": 4,
               "+": 5, "-": 5, "*": 6, "/": 6}

#: Functions that keep their name in FP32 (no ``f`` suffix variant is used
#: by either toolchain for these in generated code).
_NO_SUFFIX = frozenset({"__fdividef"})


@dataclass(frozen=True)
class EmitterConfig:
    """Per-language emission knobs."""

    fptype: FPType
    indent: str = "  "

    @property
    def fp_name(self) -> str:
        return self.fptype.c_name

    def math_name(self, func: str, variant: str = "default") -> str:
        """Source spelling of a math call."""
        if func in _NO_SUFFIX:
            return func
        if variant == "approx" and self.fptype is FPType.FP32:
            # Fast-math intrinsic spelling (__cosf, __expf, ...).
            return f"__{func}f"
        if self.fptype is FPType.FP32:
            return f"{func}f"
        return func

    def literal(self, node: Const) -> str:
        if node.text is not None:
            text = node.text
        else:
            try:
                text = format_varity_literal(node.value, self.fptype)
            except ValueError as exc:
                raise CodegenError(f"cannot emit literal {node.value!r}") from exc
        if self.fptype is FPType.FP32 and not text.upper().endswith("F"):
            text += "F"
        return text


def render_expr(expr: Expr, cfg: EmitterConfig, parent_prec: int = 0) -> str:
    """Emit one expression with minimal parentheses."""
    if isinstance(expr, Const):
        return cfg.literal(expr)
    if isinstance(expr, IntConst):
        return str(expr.value)
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, ArrayRef):
        return f"{expr.name}[{render_expr(expr.index, cfg)}]"
    if isinstance(expr, UnOp):
        inner = render_expr(expr.operand, cfg, 7)
        # Avoid `--x` (decrement token) when negating a negative literal.
        if inner.startswith("-"):
            return f"{expr.op}({inner})" if expr.op == "-" else inner
        return f"{expr.op}{inner}" if expr.op == "-" else inner
    if isinstance(expr, (BinOp, Compare, BoolOp)):
        prec = _PRECEDENCE[expr.op]
        left = render_expr(expr.left, cfg, prec)
        right_prec = prec + 1 if expr.op in ("-", "/") else prec
        right = render_expr(expr.right, cfg, right_prec)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, FMA):
        name = "fmaf" if cfg.fptype is FPType.FP32 else "fma"
        a = render_expr(expr.a, cfg)
        if expr.negate_product:
            a = f"-({a})"
        return f"{name}({a}, {render_expr(expr.b, cfg)}, {render_expr(expr.c, cfg)})"
    if isinstance(expr, Call):
        args = ", ".join(render_expr(a, cfg) for a in expr.args)
        return f"{cfg.math_name(expr.func, expr.variant)}({args})"
    raise CodegenError(f"cannot emit {type(expr).__name__}")


def _stmt_lines(stmt: Stmt, cfg: EmitterConfig, depth: int) -> List[str]:
    pad = cfg.indent * depth
    if isinstance(stmt, Decl):
        return [f"{pad}{cfg.fp_name} {stmt.name} = {render_expr(stmt.init, cfg)};"]
    if isinstance(stmt, Assign):
        return [f"{pad}{render_expr(stmt.target, cfg)} = {render_expr(stmt.expr, cfg)};"]
    if isinstance(stmt, AugAssign):
        return [
            f"{pad}{render_expr(stmt.target, cfg)} {stmt.op}= {render_expr(stmt.expr, cfg)};"
        ]
    if isinstance(stmt, For):
        lines = [
            f"{pad}for (int {stmt.var} = 0; {stmt.var} < "
            f"{render_expr(stmt.bound, cfg)}; ++{stmt.var}) {{"
        ]
        for inner in stmt.body:
            lines.extend(_stmt_lines(inner, cfg, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, If):
        lines = [f"{pad}if ({render_expr(stmt.cond, cfg)}) {{"]
        for inner in stmt.body:
            lines.extend(_stmt_lines(inner, cfg, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    raise CodegenError(f"cannot emit {type(stmt).__name__}")


def render_signature(kernel: Kernel, cfg: EmitterConfig) -> str:
    """Parameter list of the compute kernel."""
    return ", ".join(p.c_decl(cfg.fp_name) for p in kernel.params)


def render_kernel_body(kernel: Kernel, cfg: EmitterConfig, depth: int = 1) -> str:
    """Body statements plus the final %.17g printf (§III-B)."""
    lines: List[str] = []
    for stmt in kernel.body:
        lines.extend(_stmt_lines(stmt, cfg, depth))
    lines.append(f'{cfg.indent * depth}printf("%.17g\\n", comp);')
    return "\n".join(lines)
