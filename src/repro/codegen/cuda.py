"""CUDA (.cu) rendering — the artifact nvcc compiles on System 1."""

from __future__ import annotations

from typing import List

from repro.ir.program import Kernel, Program
from repro.ir.types import IRType
from repro.codegen.base import (
    EmitterConfig,
    kernel_needs_fp16_header,
    render_kernel_body,
    render_signature,
)

__all__ = ["render_cuda", "ARRAY_EXTENT_MACRO"]

#: Compile-time array extent of generated tests (ample for var_1 ≤ 8).
ARRAY_EXTENT_MACRO = "VARITY_ARRAY_N"


def _host_setup(kernel: Kernel, cfg: EmitterConfig, *, api: str) -> List[str]:
    """Input parsing + array allocation, shared by CUDA and HIP mains.

    ``api`` is "cuda" or "hip" — the only difference is the runtime-call
    prefix, which is exactly what HIPIFY rewrites.
    """
    fp = cfg.fp_name
    lines: List[str] = []
    argi = 1
    for p in kernel.params:
        if p.type is IRType.INT:
            lines.append(f"  int {p.name} = atoi(argv[{argi}]);")
        elif p.type is IRType.FLOAT:
            lines.append(f"  {fp} {p.name} = ({fp})atof(argv[{argi}]);")
        else:
            lines.append(f"  {fp} {p.name}_fill = ({fp})atof(argv[{argi}]);")
        argi += 1
    for p in kernel.array_params:
        n = ARRAY_EXTENT_MACRO
        lines.append(f"  {fp}* {p.name}_h = ({fp}*)malloc({n} * sizeof({fp}));")
        lines.append(f"  for (int _i = 0; _i < {n}; ++_i) {p.name}_h[_i] = {p.name}_fill;")
        lines.append(f"  {fp}* {p.name};")
        lines.append(f"  {api}Malloc((void**)&{p.name}, {n} * sizeof({fp}));")
        lines.append(
            f"  {api}Memcpy({p.name}, {p.name}_h, {n} * sizeof({fp}), "
            f"{api}MemcpyHostToDevice);"
        )
    return lines


def _host_teardown(kernel: Kernel, *, api: str) -> List[str]:
    lines: List[str] = [f"  {api}DeviceSynchronize();"]
    for p in kernel.array_params:
        lines.append(f"  {api}Free({p.name});")
        lines.append(f"  free({p.name}_h);")
    lines.append("  return 0;")
    return lines


def render_cuda(program: Program) -> str:
    """Render a complete self-contained .cu test file."""
    kernel = program.kernel
    cfg = EmitterConfig(fptype=kernel.fptype, dialect="cuda")
    args = ", ".join(p.name for p in kernel.params)
    nparams = len(kernel.params)
    lines = [
        f"/* Varity test {program.program_id} ({kernel.fptype.value}) */",
        "#include <stdio.h>",
        "#include <stdlib.h>",
        "#include <cuda_runtime.h>",
    ]
    if kernel_needs_fp16_header(kernel):
        lines.append("#include <cuda_fp16.h>")
    lines += [
        "",
        f"#define {ARRAY_EXTENT_MACRO} 64",
        "",
        "__global__",
        f"void {kernel.name}({render_signature(kernel, cfg)}) {{",
        render_kernel_body(kernel, cfg),
        "}",
        "",
        "int main(int argc, char** argv) {",
        f"  if (argc != {nparams + 1}) return 1;",
    ]
    lines.extend(_host_setup(kernel, cfg, api="cuda"))
    lines.append(f"  {kernel.name}<<<1, 1>>>({args});")
    lines.extend(_host_teardown(kernel, api="cuda"))
    lines.append("}")
    return "\n".join(lines) + "\n"
