"""Plain-C rendering — the executed dialect of the ``cpu`` stack.

Varity's original host-vs-device mode compiles the same computation as
plain C.  Since the stack registry landed, this renderer is no longer a
reference-only artifact: it is the source dialect of the ``cpu`` stack
(:mod:`repro.stacks`), whose clang fast-math compiler model executes
this exact text's IR through the interpreter, so the rendered ``.c``
files participate in content keys and metadata trails the same way the
``.cu``/``.hip`` dialects do (and are pinned by byte-exact goldens in
``tests/test_codegen_c.py``).  The kernel becomes an ordinary function
(array parameters stay pointers; the caller owns allocation).
"""

from __future__ import annotations

from repro.ir.program import Program
from repro.ir.types import IRType
from repro.codegen.base import EmitterConfig, render_kernel_body, render_signature
from repro.codegen.cuda import ARRAY_EXTENT_MACRO

__all__ = ["render_c"]


def render_c(program: Program) -> str:
    """Render a complete self-contained .c test file."""
    kernel = program.kernel
    # Plain C spells half precision _Float16 (C23), like the HIP dialect.
    cfg = EmitterConfig(fptype=kernel.fptype, dialect="c")
    fp = cfg.fp_name
    nparams = len(kernel.params)
    lines = [
        f"/* Varity test {program.program_id} ({kernel.fptype.value}) — host build */",
        "#include <stdio.h>",
        "#include <stdlib.h>",
        "#include <math.h>",
        "",
        f"#define {ARRAY_EXTENT_MACRO} 64",
        "",
        f"void {kernel.name}({render_signature(kernel, cfg)}) {{",
        render_kernel_body(kernel, cfg),
        "}",
        "",
        "int main(int argc, char** argv) {",
        f"  if (argc != {nparams + 1}) return 1;",
    ]
    argi = 1
    for p in kernel.params:
        if p.type is IRType.INT:
            lines.append(f"  int {p.name} = atoi(argv[{argi}]);")
        elif p.type is IRType.FLOAT:
            lines.append(f"  {fp} {p.name} = ({fp})atof(argv[{argi}]);")
        else:
            lines.append(f"  {fp} {p.name}_fill = ({fp})atof(argv[{argi}]);")
        argi += 1
    for p in kernel.array_params:
        n = ARRAY_EXTENT_MACRO
        lines.append(f"  {fp}* {p.name} = ({fp}*)malloc({n} * sizeof({fp}));")
        lines.append(f"  for (int _i = 0; _i < {n}; ++_i) {p.name}[_i] = {p.name}_fill;")
    args = ", ".join(p.name for p in kernel.params)
    lines.append(f"  {kernel.name}({args});")
    for p in kernel.array_params:
        lines.append(f"  free({p.name});")
    lines.append("  return 0;")
    lines.append("}")
    return "\n".join(lines) + "\n"
