"""Source-code rendering of IR programs.

Varity writes each test to disk as a self-contained source file —
``.cu`` for CUDA, ``.hip`` for HIP (§III: "Compiler matching is done
automatically depending on the program extensions").  These renderers
produce those artifacts: the ``compute`` kernel plus a ``main()`` that
parses inputs from ``argv``, allocates/initializes arrays, launches the
kernel, and synchronizes.  The C renderer emits the host-side reference
used by the Table I mini-app.
"""

from repro.codegen.base import EmitterConfig, render_kernel_body
from repro.codegen.cuda import render_cuda
from repro.codegen.hip import render_hip
from repro.codegen.c import render_c

__all__ = [
    "EmitterConfig",
    "render_kernel_body",
    "render_cuda",
    "render_hip",
    "render_c",
]
