"""Command-line interface: ``repro-campaign``.

Runs a differential-testing campaign at a chosen scale and prints the
paper's tables.  Examples::

    repro-campaign --scale tiny
    repro-campaign --scale default --workers 4
    repro-campaign --scale paper --workers 8 --json results.json
    repro-campaign --fp64-programs 500 --inputs 5 --no-hipify
    repro-campaign --scale tiny --include-fp16          # + fp16/fp16_hipify arms
    repro-campaign --include-fp16 --fp16-programs 400
    repro-campaign --scale paper --checkpoint grid.jsonl
    repro-campaign --scale paper --checkpoint grid.jsonl --resume
    repro-campaign --stacks nvcc,hipcc,cpu       # 3-choose-2 stack-pair matrix
    repro-campaign --stacks nvcc,cpu             # CPU lane, no AMD stack model
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import render_campaign_report
from repro.cliutil import add_execution_args, resolve_execution_args
from repro.errors import HarnessError
from repro.harness.campaign import CampaignConfig, run_campaign
from repro.stacks import DEFAULT_STACK_PAIR, STACK_NAMES, resolve_stacks
from repro.telemetry.session import TelemetrySession
from repro.utils.jsonio import dump_json
from repro.utils.tables import Table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Differential GPU-numerics testing campaign (SC'24 reproduction)",
    )
    parser.add_argument(
        "--scale",
        choices=["tiny", "default", "paper"],
        default="tiny",
        help="preset campaign size (tiny: seconds; default: minutes; paper: full 652k-run grid)",
    )
    parser.add_argument("--seed", type=int, default=2024, help="campaign root seed")
    parser.add_argument("--fp64-programs", type=int, default=None, help="override FP64 program count")
    parser.add_argument("--fp32-programs", type=int, default=None, help="override FP32 program count")
    parser.add_argument("--fp16-programs", type=int, default=None, help="override FP16 program count")
    parser.add_argument("--inputs", type=int, default=None, help="inputs per program")
    parser.add_argument("--no-hipify", action="store_true", help="skip the HIPIFY arm")
    parser.add_argument("--no-fp32", action="store_true", help="skip the FP32 arm")
    parser.add_argument(
        "--include-fp16",
        action="store_true",
        help="add the reduced-precision fp16 + fp16_hipify arm pair "
        "(half precision; not part of the paper's grid)",
    )
    parser.add_argument(
        "--oracle",
        action="store_true",
        help="add the metamorphic-oracle arm (single-stack relation "
        "checking over an FP32 corpus; see repro-oracle for a "
        "standalone session)",
    )
    parser.add_argument(
        "--oracle-programs", type=int, default=None,
        help="override the oracle arm's program count (default 60)",
    )
    parser.add_argument(
        "--stacks",
        metavar="NAMES",
        default=None,
        help="comma-separated compiler stacks to sweep "
        f"(registry: {', '.join(STACK_NAMES)}; default nvcc,hipcc); every "
        "2-combination becomes one arm per precision lane",
    )
    parser.add_argument("--no-adjacency", action="store_true", help="omit adjacency matrices")
    parser.add_argument("--json", metavar="PATH", default=None, help="also dump results as JSON")
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="stream completed plan steps into this JSONL file",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="reload completed steps from --checkpoint and run only the rest",
    )
    add_execution_args(parser)
    return parser


def _config_from_args(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> CampaignConfig:
    # Explicit `is not None` checks: `--fp64-programs 0` must be rejected
    # loudly, not silently replaced by the preset (0 is falsy).
    for name, value, minimum in (
        ("--fp64-programs", args.fp64_programs, 1),
        ("--fp32-programs", args.fp32_programs, 1),
        ("--fp16-programs", args.fp16_programs, 1),
        ("--oracle-programs", args.oracle_programs, 1),
        ("--inputs", args.inputs, 1),
    ):
        if value is not None and value < minimum:
            parser.error(f"{name} must be >= {minimum} (got {value})")
    resolve_execution_args(parser, args)
    if args.resume and args.checkpoint is None:
        parser.error("--resume requires --checkpoint")
    if args.oracle_programs is not None and not args.oracle:
        parser.error("--oracle-programs requires --oracle")
    stacks = DEFAULT_STACK_PAIR
    if args.stacks is not None:
        try:
            stacks = resolve_stacks(args.stacks)
        except HarnessError as exc:
            parser.error(str(exc))

    if args.scale == "paper":
        base = CampaignConfig.paper_scale(seed=args.seed, workers=args.workers)
    elif args.scale == "default":
        base = CampaignConfig.default(
            seed=args.seed, workers=args.workers if args.workers is not None else 0
        )
    else:
        base = CampaignConfig.tiny(seed=args.seed)
    return CampaignConfig(
        seed=base.seed,
        n_programs_fp64=args.fp64_programs if args.fp64_programs is not None else base.n_programs_fp64,
        n_programs_fp32=args.fp32_programs if args.fp32_programs is not None else base.n_programs_fp32,
        n_programs_fp16=args.fp16_programs if args.fp16_programs is not None else base.n_programs_fp16,
        inputs_per_program=args.inputs if args.inputs is not None else base.inputs_per_program,
        include_hipify=not args.no_hipify,
        include_fp32=not args.no_fp32,
        include_fp16=args.include_fp16,
        include_oracle=args.oracle,
        n_programs_oracle=(
            args.oracle_programs
            if args.oracle_programs is not None
            else base.n_programs_oracle
        ),
        stacks=stacks,
        workers=args.workers if args.workers is not None else base.workers,
        backend=args.backend,
        bridge_url=args.bridge_url,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    config = _config_from_args(parser, args)

    def progress(group: str, done: int, total: int) -> None:
        print(f"\r[{group}] {done}/{total} steps", end="", file=sys.stderr, flush=True)
        if done == total:
            print(file=sys.stderr)

    telemetry = TelemetrySession.from_args(args)
    with telemetry:
        try:
            result = run_campaign(
                config, progress=progress, checkpoint=args.checkpoint, resume=args.resume
            )
        except HarnessError as exc:
            print(f"repro-campaign: error: {exc}", file=sys.stderr)
            return 2
    if result.resumed_steps:
        print(
            f"resumed {result.resumed_steps} completed steps from {args.checkpoint}",
            file=sys.stderr,
        )
    print(render_campaign_report(result, include_adjacency=not args.no_adjacency))
    if result.group_wall_seconds:
        wall = Table(title="Per-arm wall time (traced)", headers=["arm group", "seconds"])
        for label, seconds in result.group_wall_seconds.items():
            wall.add_row([label, seconds])
        print()
        print(wall.render())
    telemetry.write(exec_metrics=result.exec_metrics)

    if args.json:
        payload = {
            "config": {
                "seed": config.seed,
                "n_programs_fp64": config.n_programs_fp64,
                "n_programs_fp32": config.n_programs_fp32,
                "n_programs_fp16": config.n_programs_fp16,
                "inputs_per_program": config.inputs_per_program,
                "include_hipify": config.include_hipify,
                "include_fp32": config.include_fp32,
                "include_fp16": config.include_fp16,
                "include_oracle": config.include_oracle,
                "stacks": list(config.stacks),
                "workers": config.workers,
            },
            "elapsed_seconds": result.elapsed_seconds,
            "resumed_steps": result.resumed_steps,
            "nvcc_cache_hits": result.nvcc_cache_hits,
            # Execution-service counters.  Every count here is a function
            # of the executed plan alone, never of scheduling, so this
            # block is identical at any --workers (the backend name is
            # deliberately omitted for that reason).  The one exception:
            # "phase_seconds" is wall time (lookup/execute/commit) and is
            # legitimately scheduling-dependent, like elapsed_seconds.
            "exec": {
                "stacks": list(config.stacks),
                "nvcc_executions": result.nvcc_executions,
                "nvcc_cache_hits": result.nvcc_cache_hits,
                "executions_by_stack": result.exec_metrics.get(
                    "executions_by_stack", {}
                ),
                "sweep_requests": result.exec_metrics.get("requests", 0),
                "deduped_requests": result.exec_metrics.get("deduped", 0),
                "store": result.exec_metrics.get("store", {}),
                "phase_seconds": result.exec_metrics.get("phase_seconds", {}),
            },
            "arms": {
                name: {
                    "stacks": list(arm.stacks),
                    "total_runs": arm.total_runs,
                    "runs_by_opt": dict(arm.runs_by_opt),
                    "skipped_by_opt": dict(arm.skipped_by_opt),
                    "nvcc_executions": arm.nvcc_executions,
                    "nvcc_cache_hits": arm.nvcc_cache_hits,
                    "discrepancies": [d.to_json_dict() for d in arm.discrepancies],
                    **(
                        {
                            "oracle_checked": dict(arm.oracle_checked),
                            "violations_by_relation": arm.violations_by_relation,
                            "oracle_violations": [
                                v.to_json_dict() for v in arm.oracle_violations
                            ],
                        }
                        if name == "oracle"
                        else {}
                    ),
                }
                for name, arm in result.arms.items()
            },
        }
        dump_json(payload, args.json)
        print(f"JSON results written to {args.json}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
