"""Translation rule table (the subset generated tests exercise).

Modeled after hipify-perl's substitution tables: straight identifier
renames plus one structural rule (kernel launch).  Rules are ordered;
longer/more specific names first so e.g. ``cudaMemcpyHostToDevice`` is not
half-rewritten by the ``cudaMemcpy`` rule.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Tuple

__all__ = ["HipifyRule", "HIPIFY_RULES", "LAUNCH_RE"]


@dataclass(frozen=True)
class HipifyRule:
    """One identifier rename."""

    cuda: str
    hip: str

    def apply(self, source: str) -> str:
        return re.sub(rf"\b{re.escape(self.cuda)}\b", self.hip, source)


#: Ordered rename table.
HIPIFY_RULES: Tuple[HipifyRule, ...] = (
    HipifyRule("cuda_runtime.h", "hip/hip_runtime.h"),
    HipifyRule("cuda_fp16.h", "hip/hip_fp16.h"),
    # HIP spells the half type _Float16 in our model (hipify-clang maps
    # __half to the hip_fp16.h type; generated FP16 tests only use the
    # scalar type, for which the C23 spelling compiles under hipcc).
    HipifyRule("__half", "_Float16"),
    HipifyRule("cudaMemcpyHostToDevice", "hipMemcpyHostToDevice"),
    HipifyRule("cudaMemcpyDeviceToHost", "hipMemcpyDeviceToHost"),
    HipifyRule("cudaDeviceSynchronize", "hipDeviceSynchronize"),
    HipifyRule("cudaMallocManaged", "hipMallocManaged"),
    HipifyRule("cudaMemcpy", "hipMemcpy"),
    HipifyRule("cudaMalloc", "hipMalloc"),
    HipifyRule("cudaFree", "hipFree"),
    HipifyRule("cudaGetLastError", "hipGetLastError"),
    HipifyRule("cudaSuccess", "hipSuccess"),
    HipifyRule("cudaError_t", "hipError_t"),
    HipifyRule("cudaStream_t", "hipStream_t"),
    HipifyRule("cudaEvent_t", "hipEvent_t"),
    HipifyRule("cudaEventCreate", "hipEventCreate"),
    HipifyRule("cudaEventRecord", "hipEventRecord"),
    HipifyRule("cudaEventSynchronize", "hipEventSynchronize"),
    HipifyRule("cudaEventElapsedTime", "hipEventElapsedTime"),
)

#: ``name<<<grid, block>>>(args);`` → ``hipLaunchKernelGGL``.  Generated
#: tests always launch with integer literals and no shared-mem/stream
#: arguments, which this pattern covers (hipify-perl handles the general
#: case; we translate what our generator emits plus simple variations).
LAUNCH_RE = re.compile(
    r"(?P<name>\w+)\s*<<<\s*(?P<grid>[^,>]+?)\s*,\s*(?P<block>[^,>]+?)\s*>>>\s*"
    r"\((?P<args>.*?)\)\s*;",
    re.DOTALL,
)
