"""HIPIFY model: CUDA → HIP source translation (§III-F).

Two cooperating pieces, mirroring how the paper uses AMD's tool:

* :func:`repro.hipify.translator.hipify_source` — a rule-table,
  text-level translator in the style of ``hipify-perl`` (runtime-call
  renames, header swap, ``<<< >>>`` launch rewriting);
* the *semantic* marker :meth:`repro.ir.program.Program.marked_hipify`,
  consumed by the hipcc compiler model, which resolves a small set of math
  calls through a compatibility wrapper with one extra modeled rounding —
  producing the slightly-elevated discrepancy counts of Tables VII/VIII
  relative to native-HIP FP64 (the paper measures the effect but leaves
  its root cause to future work; DESIGN.md documents our stand-in
  mechanism).
"""

from repro.hipify.rules import HIPIFY_RULES, HipifyRule
from repro.hipify.translator import hipify_source, hipify_program

__all__ = ["HIPIFY_RULES", "HipifyRule", "hipify_source", "hipify_program"]
