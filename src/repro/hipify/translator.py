"""The HIPIFY translator.

``hipify_source`` performs the text-level CUDA→HIP conversion;
``hipify_program`` is the campaign-level operation: it converts the
rendered source (for the artifact trail) and returns the semantically
marked program twin the hipcc model compiles.
"""

from __future__ import annotations

import re
from typing import Match, Tuple

from repro.errors import HipifyError
from repro.ir.program import Program
from repro.hipify.rules import HIPIFY_RULES, LAUNCH_RE

__all__ = ["hipify_source", "hipify_program"]

_BANNER = "/* translated by repro-hipify (model of AMD HIPIFY) */"


def _rewrite_launch(match: Match[str]) -> str:
    name = match.group("name")
    grid = match.group("grid").strip()
    block = match.group("block").strip()
    args = match.group("args").strip()
    def dim(v: str) -> str:
        return v if v.startswith("dim3") else f"dim3({v})"
    call_args = f"{name}, {dim(grid)}, {dim(block)}, 0, 0"
    if args:
        call_args += f", {args}"
    return f"hipLaunchKernelGGL({call_args});"


def hipify_source(cuda_source: str, *, banner: bool = True) -> str:
    """Translate CUDA source text to HIP source text.

    Raises :class:`~repro.errors.HipifyError` if a ``cuda``-prefixed
    identifier survives translation (the analogue of hipify-perl's
    "warning: unsupported identifier" exit).
    """
    hip = cuda_source
    for rule in HIPIFY_RULES:
        hip = rule.apply(hip)
    hip = LAUNCH_RE.sub(_rewrite_launch, hip)
    leftover = re.search(r"\bcuda[A-Z_]\w*", hip)
    if leftover:
        raise HipifyError(
            f"untranslated CUDA identifier {leftover.group(0)!r} "
            "(extend repro.hipify.rules.HIPIFY_RULES)"
        )
    if "<<<" in hip:
        raise HipifyError("untranslated kernel launch (<<< >>> survived)")
    if banner:
        hip = _BANNER + "\n" + hip
    return hip


def hipify_program(program: Program) -> Tuple[Program, str]:
    """Full HIPIFY step for one test: (marked program, translated source).

    The returned program carries ``via_hipify=True`` so the hipcc compiler
    model applies the compatibility-wrapper semantics; the returned string
    is the ``.hip`` source artifact a real campaign would write next to the
    metadata.
    """
    from repro.codegen.cuda import render_cuda

    cuda_src = render_cuda(program)
    hip_src = hipify_source(cuda_src)
    return program.marked_hipify(), hip_src
