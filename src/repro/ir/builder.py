"""Fluent construction helpers for hand-written IR.

The generator builds IR directly; humans (tests, case studies, the BT mini
app) use :class:`IRBuilder`, which provides short factory methods and
handles Varity literal formatting.

Example — the paper's Figure 5 kernel::

    b = IRBuilder(FPType.FP64)
    kernel = b.kernel(
        params=[b.fparam("comp")],
        body=[
            b.decl("tmp_1", b.lit(1.1147e-307)),
            b.aug("comp", "+", b.div(b.var("tmp_1"), b.call("ceil", b.lit(1.5955e-125)))),
        ],
    )
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.fp.literals import format_varity_literal
from repro.fp.types import FPType
from repro.ir.types import IRType
from repro.ir.nodes import (
    ArrayRef,
    Assign,
    AugAssign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    Decl,
    Expr,
    For,
    If,
    IntConst,
    Stmt,
    UnOp,
    VarRef,
)
from repro.ir.program import Kernel, Param, Program

__all__ = ["IRBuilder"]

ExprLike = Union[Expr, float, int, str]


class IRBuilder:
    """Constructs IR nodes for one precision."""

    def __init__(self, fptype: FPType = FPType.FP64) -> None:
        self.fptype = fptype

    # -- coercion -------------------------------------------------------------
    def expr(self, value: ExprLike) -> Expr:
        """Coerce Python values: float → Const, int → IntConst, str → VarRef."""
        if isinstance(value, Expr):
            return value
        if isinstance(value, bool):
            raise TypeError("bool is not an IR value")
        if isinstance(value, float):
            return self.lit(value)
        if isinstance(value, int):
            return IntConst(value)
        if isinstance(value, str):
            return VarRef(value)
        raise TypeError(f"cannot coerce {type(value).__name__} to Expr")

    # -- leaves ---------------------------------------------------------------
    def lit(self, value: float) -> Const:
        """Floating constant with canonical Varity text."""
        return Const(float(value), format_varity_literal(value, self.fptype))

    def raw_lit(self, text: str, value: float) -> Const:
        """Constant with explicit source text (for verbatim paper kernels)."""
        return Const(float(value), text)

    def var(self, name: str) -> VarRef:
        return VarRef(name)

    def idx(self, name: str, index: ExprLike) -> ArrayRef:
        return ArrayRef(name, self.expr(index))

    # -- operators ------------------------------------------------------------
    def neg(self, x: ExprLike) -> UnOp:
        return UnOp("-", self.expr(x))

    def add(self, a: ExprLike, b: ExprLike) -> BinOp:
        return BinOp("+", self.expr(a), self.expr(b))

    def sub(self, a: ExprLike, b: ExprLike) -> BinOp:
        return BinOp("-", self.expr(a), self.expr(b))

    def mul(self, a: ExprLike, b: ExprLike) -> BinOp:
        return BinOp("*", self.expr(a), self.expr(b))

    def div(self, a: ExprLike, b: ExprLike) -> BinOp:
        return BinOp("/", self.expr(a), self.expr(b))

    def call(self, func: str, *args: ExprLike) -> Call:
        return Call(func, [self.expr(a) for a in args])

    def cmp(self, op: str, a: ExprLike, b: ExprLike) -> Compare:
        return Compare(op, self.expr(a), self.expr(b))

    def land(self, a: Expr, b: Expr) -> BoolOp:
        return BoolOp("&&", a, b)

    def lor(self, a: Expr, b: Expr) -> BoolOp:
        return BoolOp("||", a, b)

    # -- statements -----------------------------------------------------------
    def decl(self, name: str, init: ExprLike) -> Decl:
        return Decl(name, self.expr(init))

    def assign(self, target: Union[str, VarRef, ArrayRef], expr: ExprLike) -> Assign:
        if isinstance(target, str):
            target = VarRef(target)
        return Assign(target, self.expr(expr))

    def aug(self, target: Union[str, VarRef, ArrayRef], op: str, expr: ExprLike) -> AugAssign:
        if isinstance(target, str):
            target = VarRef(target)
        return AugAssign(target, op, self.expr(expr))

    def loop(self, var: str, bound: ExprLike, body: Sequence[Stmt]) -> For:
        return For(var, self.expr(bound), list(body))

    def when(self, cond: Expr, body: Sequence[Stmt]) -> If:
        return If(cond, list(body))

    # -- signatures -----------------------------------------------------------
    def fparam(self, name: str) -> Param:
        return Param(name, IRType.FLOAT)

    def iparam(self, name: str) -> Param:
        return Param(name, IRType.INT)

    def aparam(self, name: str) -> Param:
        return Param(name, IRType.FLOAT_PTR)

    def kernel(self, params: Sequence[Param], body: Sequence[Stmt], name: str = "compute") -> Kernel:
        return Kernel(params, body, self.fptype, name)

    def program(
        self,
        kernel: Kernel,
        program_id: str = "manual",
        seed: int = 0,
        note: str = "hand-built",
    ) -> Program:
        return Program(program_id=program_id, kernel=kernel, seed=seed, source_note=note)
