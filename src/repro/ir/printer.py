"""Debug pretty-printer for IR.

Produces a compact C-like rendering with no language specifics — used in
error messages, test assertions, and the case-study reports.  For real
source output use :mod:`repro.codegen`.
"""

from __future__ import annotations

from typing import List

from repro.fp.literals import format_varity_literal
from repro.ir.nodes import (
    ArrayRef,
    Assign,
    AugAssign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    Decl,
    Expr,
    FMA,
    For,
    If,
    IntConst,
    Stmt,
    UnOp,
    VarRef,
)
from repro.ir.program import Kernel

__all__ = ["print_ir", "expr_to_str"]

# Precedence for parenthesization (higher binds tighter).
_PRECEDENCE = {"||": 1, "&&": 2, "==": 3, "!=": 3, "<": 4, "<=": 4, ">": 4, ">=": 4,
               "+": 5, "-": 5, "*": 6, "/": 6}


def expr_to_str(expr: Expr, parent_prec: int = 0) -> str:
    """Render an expression with minimal parentheses."""
    if isinstance(expr, Const):
        if expr.text is not None:
            return expr.text
        try:
            return format_varity_literal(expr.value)
        except ValueError:
            return repr(expr.value)
    if isinstance(expr, IntConst):
        return str(expr.value)
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, ArrayRef):
        return f"{expr.name}[{expr_to_str(expr.index)}]"
    if isinstance(expr, UnOp):
        inner = expr_to_str(expr.operand, 7)
        return f"{expr.op}{inner}"
    if isinstance(expr, (BinOp, Compare, BoolOp)):
        prec = _PRECEDENCE[expr.op]
        left = expr_to_str(expr.left, prec)
        # Right side of - and / needs parens at equal precedence.
        right_prec = prec + 1 if expr.op in ("-", "/") else prec
        right = expr_to_str(expr.right, right_prec)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, FMA):
        fn = "fma" if not expr.negate_product else "fnma"
        return f"{fn}({expr_to_str(expr.a)}, {expr_to_str(expr.b)}, {expr_to_str(expr.c)})"
    if isinstance(expr, Call):
        args = ", ".join(expr_to_str(a) for a in expr.args)
        tag = "" if expr.variant == "default" else f"/*{expr.variant}*/"
        return f"{expr.func}{tag}({args})"
    raise TypeError(f"cannot print {type(expr).__name__}")


def _stmt_lines(stmt: Stmt, indent: int, fp_name: str) -> List[str]:
    pad = "  " * indent
    if isinstance(stmt, Decl):
        return [f"{pad}{fp_name} {stmt.name} = {expr_to_str(stmt.init)};"]
    if isinstance(stmt, Assign):
        return [f"{pad}{expr_to_str(stmt.target)} = {expr_to_str(stmt.expr)};"]
    if isinstance(stmt, AugAssign):
        return [f"{pad}{expr_to_str(stmt.target)} {stmt.op}= {expr_to_str(stmt.expr)};"]
    if isinstance(stmt, For):
        head = (
            f"{pad}for (int {stmt.var} = 0; {stmt.var} < "
            f"{expr_to_str(stmt.bound)}; ++{stmt.var}) {{"
        )
        lines = [head]
        for s in stmt.body:
            lines.extend(_stmt_lines(s, indent + 1, fp_name))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, If):
        lines = [f"{pad}if ({expr_to_str(stmt.cond)}) {{"]
        for s in stmt.body:
            lines.extend(_stmt_lines(s, indent + 1, fp_name))
        lines.append(f"{pad}}}")
        return lines
    raise TypeError(f"cannot print {type(stmt).__name__}")


def print_ir(kernel: Kernel) -> str:
    """Render a whole kernel as readable pseudo-C."""
    fp_name = kernel.fptype.c_name
    params = ", ".join(p.c_decl(fp_name) for p in kernel.params)
    lines = [f"void {kernel.name}({params}) {{"]
    for stmt in kernel.body:
        lines.extend(_stmt_lines(stmt, 1, fp_name))
    lines.append("}")
    return "\n".join(lines)
