"""Structural metrics of generated programs.

Backs the Table III reproduction: the bench audits a generated corpus and
reports how many programs exercise each grammar feature (precisions,
operator mix, math calls, loop-nesting depth, conditionals, temporaries,
arrays) — i.e. it *measures* that the generator covers the characteristics
the paper lists.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable

from repro.ir.nodes import (
    ArrayRef,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    Decl,
    FMA,
    For,
    If,
    Node,
    Stmt,
)
from repro.ir.program import Kernel, Program
from repro.ir.visitor import walk

__all__ = ["ProgramMetrics", "compute_metrics", "aggregate_metrics"]


@dataclass
class ProgramMetrics:
    """Feature counts for one kernel."""

    n_statements: int = 0
    n_binops: Counter = field(default_factory=Counter)
    n_math_calls: Counter = field(default_factory=Counter)
    n_conditionals: int = 0
    n_loops: int = 0
    max_loop_depth: int = 0
    n_temporaries: int = 0
    n_array_params: int = 0
    n_scalar_params: int = 0
    n_array_accesses: int = 0
    n_constants: int = 0
    n_bool_ops: int = 0
    n_compares: int = 0
    n_fma: int = 0

    @property
    def uses_math(self) -> bool:
        return sum(self.n_math_calls.values()) > 0

    @property
    def uses_division(self) -> bool:
        return self.n_binops.get("/", 0) > 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "n_statements": self.n_statements,
            "n_binops": dict(self.n_binops),
            "n_math_calls": dict(self.n_math_calls),
            "n_conditionals": self.n_conditionals,
            "n_loops": self.n_loops,
            "max_loop_depth": self.max_loop_depth,
            "n_temporaries": self.n_temporaries,
            "n_array_params": self.n_array_params,
            "n_scalar_params": self.n_scalar_params,
            "n_array_accesses": self.n_array_accesses,
            "n_constants": self.n_constants,
            "n_bool_ops": self.n_bool_ops,
            "n_compares": self.n_compares,
            "n_fma": self.n_fma,
        }


def _count_stmts(body: Iterable[Stmt]) -> int:
    total = 0
    for stmt in body:
        total += 1
        if isinstance(stmt, (For, If)):
            total += _count_stmts(stmt.body)
    return total


def _loop_depth(body: Iterable[Stmt], depth: int = 0) -> int:
    deepest = depth
    for stmt in body:
        if isinstance(stmt, For):
            deepest = max(deepest, _loop_depth(stmt.body, depth + 1))
        elif isinstance(stmt, If):
            deepest = max(deepest, _loop_depth(stmt.body, depth))
    return deepest


def compute_metrics(kernel: Kernel) -> ProgramMetrics:
    """Walk one kernel and tally grammar-feature usage."""
    m = ProgramMetrics()
    m.n_statements = _count_stmts(kernel.body)
    m.max_loop_depth = _loop_depth(kernel.body)
    m.n_array_params = len(kernel.array_params)
    m.n_scalar_params = len(kernel.float_params) - 1  # exclude comp
    for stmt in kernel.body:
        for node in _walk_body(stmt):
            _tally(node, m)
    return m


def _walk_body(stmt: Stmt):
    yield from walk(stmt)


def _tally(node: Node, m: ProgramMetrics) -> None:
    if isinstance(node, BinOp):
        m.n_binops[node.op] += 1
    elif isinstance(node, Call):
        m.n_math_calls[node.func] += 1
    elif isinstance(node, If):
        m.n_conditionals += 1
    elif isinstance(node, For):
        m.n_loops += 1
    elif isinstance(node, Decl):
        m.n_temporaries += 1
    elif isinstance(node, ArrayRef):
        m.n_array_accesses += 1
    elif isinstance(node, Const):
        m.n_constants += 1
    elif isinstance(node, BoolOp):
        m.n_bool_ops += 1
    elif isinstance(node, Compare):
        m.n_compares += 1
    elif isinstance(node, FMA):
        m.n_fma += 1


def aggregate_metrics(programs: Iterable[Program]) -> Dict[str, object]:
    """Corpus-level audit used by the Table III bench.

    Returns coverage fractions for each Table III characteristic plus
    aggregate operator/math-call histograms.
    """
    n = 0
    with_loops = with_nested_loops = with_conditionals = 0
    with_math = with_arrays = with_temps = with_bool = 0
    binops: Counter = Counter()
    math_calls: Counter = Counter()
    max_depth = 0
    by_precision: Counter = Counter()
    for prog in programs:
        n += 1
        by_precision[prog.fptype.value] += 1
        m = compute_metrics(prog.kernel)
        binops.update(m.n_binops)
        math_calls.update(m.n_math_calls)
        max_depth = max(max_depth, m.max_loop_depth)
        with_loops += m.n_loops > 0
        with_nested_loops += m.max_loop_depth > 1
        with_conditionals += m.n_conditionals > 0
        with_math += m.uses_math
        with_arrays += m.n_array_params > 0
        with_temps += m.n_temporaries > 0
        with_bool += (m.n_bool_ops + m.n_compares) > 0
    if n == 0:
        raise ValueError("empty corpus")
    return {
        "n_programs": n,
        "by_precision": dict(by_precision),
        "frac_with_loops": with_loops / n,
        "frac_with_nested_loops": with_nested_loops / n,
        "frac_with_conditionals": with_conditionals / n,
        "frac_with_math_calls": with_math / n,
        "frac_with_arrays": with_arrays / n,
        "frac_with_temporaries": with_temps / n,
        "frac_with_boolean_exprs": with_bool / n,
        "max_loop_depth": max_depth,
        "binop_histogram": dict(binops),
        "math_call_histogram": dict(math_calls),
    }
