"""Structural validation of kernels.

The generator should only ever produce well-formed kernels; validation is
the safety net run by the harness before compiling (a malformed kernel
would otherwise surface as a confusing interpreter error thousands of tests
into a campaign) and by property-based tests over the generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set

from repro.ir.types import IRType
from repro.ir.nodes import (
    ArrayRef,
    Assign,
    AugAssign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    Decl,
    Expr,
    FMA,
    For,
    If,
    IntConst,
    Stmt,
    UnOp,
    VarRef,
)
from repro.ir.program import Kernel

__all__ = ["ValidationIssue", "validate_kernel"]

#: Math functions the device models implement (superset of what the
#: generator emits; see repro.devices.mathlib.base.SUPPORTED_FUNCTIONS).
_KNOWN_BOOL_PRODUCERS = (Compare, BoolOp)


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found in a kernel."""

    where: str
    message: str

    def __str__(self) -> str:
        return f"{self.where}: {self.message}"


class _Scope:
    def __init__(self) -> None:
        self.scalars: Set[str] = set()
        self.arrays: Set[str] = set()
        self.ints: Set[str] = set()


def validate_kernel(kernel: Kernel, known_functions: Sequence[str] = ()) -> List[ValidationIssue]:
    """Check a kernel; returns a (possibly empty) list of issues.

    Rules enforced:

    * first parameter is the FLOAT accumulator ``comp``;
    * parameter names are unique;
    * every referenced name resolves to a parameter, a prior ``Decl``, or an
      enclosing loop counter;
    * array subscripts only apply to FLOAT_PTR names, scalars never
      subscripted;
    * ``if`` conditions are boolean-producing expressions;
    * loop counters do not shadow parameters or locals;
    * every ``Call`` names a known function when ``known_functions`` given.
    """
    issues: List[ValidationIssue] = []
    known = set(known_functions)

    if not kernel.params:
        issues.append(ValidationIssue("signature", "kernel has no parameters"))
        return issues
    first = kernel.params[0]
    if first.name != "comp" or first.type is not IRType.FLOAT:
        issues.append(
            ValidationIssue(
                "signature",
                f"first parameter must be FLOAT 'comp', got {first.type.value} {first.name!r}",
            )
        )
    seen: Set[str] = set()
    for p in kernel.params:
        if p.name in seen:
            issues.append(ValidationIssue("signature", f"duplicate parameter {p.name!r}"))
        seen.add(p.name)

    scope = _Scope()
    for p in kernel.params:
        if p.type is IRType.FLOAT:
            scope.scalars.add(p.name)
        elif p.type is IRType.FLOAT_PTR:
            scope.arrays.add(p.name)
        else:
            scope.ints.add(p.name)

    _validate_body(kernel.body, scope, [], issues, known)
    return issues


def _validate_body(
    body: Sequence[Stmt],
    scope: _Scope,
    loop_vars: List[str],
    issues: List[ValidationIssue],
    known: Set[str],
) -> None:
    for stmt in body:
        if isinstance(stmt, Decl):
            if stmt.name in scope.scalars or stmt.name in scope.arrays or stmt.name in scope.ints:
                issues.append(ValidationIssue("decl", f"{stmt.name!r} redeclared"))
            _validate_expr(stmt.init, scope, loop_vars, issues, known, want_bool=False)
            scope.scalars.add(stmt.name)
        elif isinstance(stmt, (Assign, AugAssign)):
            target = stmt.target
            if isinstance(target, VarRef):
                if target.name not in scope.scalars:
                    issues.append(
                        ValidationIssue("assign", f"assignment to unknown scalar {target.name!r}")
                    )
            elif isinstance(target, ArrayRef):
                if target.name not in scope.arrays:
                    issues.append(
                        ValidationIssue("assign", f"subscript of non-array {target.name!r}")
                    )
                _validate_expr(target.index, scope, loop_vars, issues, known, want_bool=False)
            else:
                issues.append(ValidationIssue("assign", f"bad target {type(target).__name__}"))
            _validate_expr(stmt.expr, scope, loop_vars, issues, known, want_bool=False)
        elif isinstance(stmt, For):
            if (
                stmt.var in scope.scalars
                or stmt.var in scope.arrays
                or stmt.var in scope.ints
                or stmt.var in loop_vars
            ):
                issues.append(ValidationIssue("for", f"loop var {stmt.var!r} shadows a name"))
            _validate_expr(stmt.bound, scope, loop_vars, issues, known, want_bool=False)
            _validate_body(stmt.body, scope, loop_vars + [stmt.var], issues, known)
        elif isinstance(stmt, If):
            _validate_expr(stmt.cond, scope, loop_vars, issues, known, want_bool=True)
            _validate_body(stmt.body, scope, loop_vars, issues, known)
        else:
            issues.append(ValidationIssue("stmt", f"unknown statement {type(stmt).__name__}"))


def _validate_expr(
    expr: Expr,
    scope: _Scope,
    loop_vars: List[str],
    issues: List[ValidationIssue],
    known: Set[str],
    want_bool: bool,
) -> None:
    if want_bool and not isinstance(expr, _KNOWN_BOOL_PRODUCERS):
        issues.append(
            ValidationIssue("cond", f"{type(expr).__name__} is not a boolean expression")
        )
    if isinstance(expr, (Const, IntConst)):
        return
    if isinstance(expr, VarRef):
        if (
            expr.name not in scope.scalars
            and expr.name not in scope.ints
            and expr.name not in loop_vars
        ):
            if expr.name in scope.arrays:
                issues.append(ValidationIssue("expr", f"array {expr.name!r} used as scalar"))
            else:
                issues.append(ValidationIssue("expr", f"unknown name {expr.name!r}"))
        return
    if isinstance(expr, ArrayRef):
        if expr.name not in scope.arrays:
            issues.append(ValidationIssue("expr", f"subscript of non-array {expr.name!r}"))
        _validate_expr(expr.index, scope, loop_vars, issues, known, want_bool=False)
        return
    if isinstance(expr, UnOp):
        _validate_expr(expr.operand, scope, loop_vars, issues, known, want_bool=False)
        return
    if isinstance(expr, (BinOp,)):
        _validate_expr(expr.left, scope, loop_vars, issues, known, want_bool=False)
        _validate_expr(expr.right, scope, loop_vars, issues, known, want_bool=False)
        return
    if isinstance(expr, FMA):
        for sub in (expr.a, expr.b, expr.c):
            _validate_expr(sub, scope, loop_vars, issues, known, want_bool=False)
        return
    if isinstance(expr, Call):
        if known and expr.func not in known:
            issues.append(ValidationIssue("call", f"unknown function {expr.func!r}"))
        if not expr.args:
            issues.append(ValidationIssue("call", f"{expr.func} called with no arguments"))
        for a in expr.args:
            _validate_expr(a, scope, loop_vars, issues, known, want_bool=False)
        return
    if isinstance(expr, (Compare, BoolOp)):
        sub_bool = isinstance(expr, BoolOp)
        _validate_expr(expr.left, scope, loop_vars, issues, known, want_bool=sub_bool)
        _validate_expr(expr.right, scope, loop_vars, issues, known, want_bool=sub_bool)
        return
    issues.append(ValidationIssue("expr", f"unknown expression {type(expr).__name__}"))
