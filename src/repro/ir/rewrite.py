"""Float-site enumeration and targeted single-site rewriting.

A *site* is one float-valued expression position in a kernel body,
identified by its pre-order index among all float sites.  Sites exclude
int contexts (array subscripts, loop bounds) and boolean contexts
(conditions, BoolOp operands), so a replacement expression of float kind
is always well-typed where it lands.

This discipline started life inside the fuzz mutators; the metamorphic
oracle's program transforms need the identical site numbering (a
relation's transformed variant must land exactly where its seeded RNG
chose), so the helpers live here in the IR layer and both subsystems
import them.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.ir.nodes import (
    ArrayRef,
    Assign,
    AugAssign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    Decl,
    Expr,
    FMA,
    For,
    If,
    IntConst,
    Stmt,
    UnOp,
    VarRef,
)

__all__ = ["float_sites", "replace_site", "site_at"]


def _expr_float_sites(expr: Expr, out: List[Expr]) -> None:
    """Pre-order float-valued positions inside one float-context expr."""
    out.append(expr)
    if isinstance(expr, (Const, IntConst, VarRef)):
        return
    if isinstance(expr, ArrayRef):
        return  # index is int context
    if isinstance(expr, UnOp):
        _expr_float_sites(expr.operand, out)
    elif isinstance(expr, BinOp):
        _expr_float_sites(expr.left, out)
        _expr_float_sites(expr.right, out)
    elif isinstance(expr, FMA):
        for sub in (expr.a, expr.b, expr.c):
            _expr_float_sites(sub, out)
    elif isinstance(expr, Call):
        for a in expr.args:
            _expr_float_sites(a, out)


def _cond_float_sites(cond: Expr, out: List[Expr]) -> None:
    """Float positions inside a boolean expression (Compare operands)."""
    if isinstance(cond, BoolOp):
        _cond_float_sites(cond.left, out)
        _cond_float_sites(cond.right, out)
    elif isinstance(cond, Compare):
        _expr_float_sites(cond.left, out)
        _expr_float_sites(cond.right, out)


def float_sites(body: Sequence[Stmt]) -> List[Expr]:
    """All float-valued expression positions in a body, pre-order."""
    out: List[Expr] = []
    for stmt in body:
        if isinstance(stmt, Decl):
            _expr_float_sites(stmt.init, out)
        elif isinstance(stmt, (Assign, AugAssign)):
            _expr_float_sites(stmt.expr, out)
        elif isinstance(stmt, For):
            out.extend(float_sites(stmt.body))
        elif isinstance(stmt, If):
            _cond_float_sites(stmt.cond, out)
            out.extend(float_sites(stmt.body))
    return out


def _replace_expr(expr: Expr, counter: List[int], target: int, repl: Expr) -> Expr:
    """Rebuild ``expr`` with the ``target``-th float site replaced."""
    index = counter[0]
    counter[0] += 1
    if index == target:
        return repl
    if isinstance(expr, (Const, IntConst, VarRef, ArrayRef)):
        return expr
    if isinstance(expr, UnOp):
        return UnOp(expr.op, _replace_expr(expr.operand, counter, target, repl))
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            _replace_expr(expr.left, counter, target, repl),
            _replace_expr(expr.right, counter, target, repl),
        )
    if isinstance(expr, FMA):
        return FMA(
            _replace_expr(expr.a, counter, target, repl),
            _replace_expr(expr.b, counter, target, repl),
            _replace_expr(expr.c, counter, target, repl),
            expr.negate_product,
        )
    if isinstance(expr, Call):
        return Call(
            expr.func,
            [_replace_expr(a, counter, target, repl) for a in expr.args],
            expr.variant,
        )
    return expr


def _replace_cond(cond: Expr, counter: List[int], target: int, repl: Expr) -> Expr:
    if isinstance(cond, BoolOp):
        return BoolOp(
            cond.op,
            _replace_cond(cond.left, counter, target, repl),
            _replace_cond(cond.right, counter, target, repl),
        )
    if isinstance(cond, Compare):
        return Compare(
            cond.op,
            _replace_expr(cond.left, counter, target, repl),
            _replace_expr(cond.right, counter, target, repl),
        )
    return cond


def replace_site(body: Sequence[Stmt], target: int, repl: Expr) -> List[Stmt]:
    """Body with the ``target``-th float site replaced by ``repl``.

    The counter threads through statements in the same pre-order as
    :func:`float_sites`, so site indices agree between enumeration and
    rewriting.
    """
    counter = [0]

    def rewrite(stmts: Sequence[Stmt]) -> List[Stmt]:
        out: List[Stmt] = []
        for stmt in stmts:
            if isinstance(stmt, Decl):
                out.append(Decl(stmt.name, _replace_expr(stmt.init, counter, target, repl)))
            elif isinstance(stmt, Assign):
                out.append(Assign(stmt.target, _replace_expr(stmt.expr, counter, target, repl)))
            elif isinstance(stmt, AugAssign):
                out.append(
                    AugAssign(stmt.target, stmt.op, _replace_expr(stmt.expr, counter, target, repl))
                )
            elif isinstance(stmt, For):
                out.append(For(stmt.var, stmt.bound, rewrite(stmt.body)))
            elif isinstance(stmt, If):
                cond = _replace_cond(stmt.cond, counter, target, repl)
                out.append(If(cond, rewrite(stmt.body)))
            else:
                out.append(stmt)
        return out

    return rewrite(body)


def site_at(body: Sequence[Stmt], target: int) -> Expr:
    """The ``target``-th float site of a body (pre-order index)."""
    return float_sites(body)[target]
