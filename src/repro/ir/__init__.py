"""Typed intermediate representation for Varity-style test programs.

A generated test is a single GPU kernel named ``compute`` (§III-B of the
paper): it takes a scalar ``comp`` accumulator, an ``int`` loop-bound
parameter, and a list of floating-point scalar/array parameters; it runs
straight-line arithmetic, ``for`` loops, and ``if`` conditions; and it
prints ``comp`` with ``%.17g``.  The IR models exactly that program family,
is rendered to CUDA/HIP/C by :mod:`repro.codegen`, transformed by the
compiler models in :mod:`repro.compilers`, and executed by
:mod:`repro.devices.interpreter`.
"""

from repro.ir.types import IRType
from repro.ir.nodes import (
    Node,
    Expr,
    Const,
    IntConst,
    VarRef,
    ArrayRef,
    UnOp,
    BinOp,
    FMA,
    Call,
    Compare,
    BoolOp,
    Stmt,
    Decl,
    Assign,
    AugAssign,
    For,
    If,
    structurally_equal,
)
from repro.ir.program import Param, Kernel, Program
from repro.ir.visitor import Visitor, Transformer, walk, collect
from repro.ir.printer import print_ir
from repro.ir.builder import IRBuilder
from repro.ir.validate import validate_kernel, ValidationIssue
from repro.ir.metrics import ProgramMetrics, compute_metrics

__all__ = [
    "IRType",
    "Node",
    "Expr",
    "Const",
    "IntConst",
    "VarRef",
    "ArrayRef",
    "UnOp",
    "BinOp",
    "FMA",
    "Call",
    "Compare",
    "BoolOp",
    "Stmt",
    "Decl",
    "Assign",
    "AugAssign",
    "For",
    "If",
    "structurally_equal",
    "Param",
    "Kernel",
    "Program",
    "Visitor",
    "Transformer",
    "walk",
    "collect",
    "print_ir",
    "IRBuilder",
    "validate_kernel",
    "ValidationIssue",
    "ProgramMetrics",
    "compute_metrics",
]
