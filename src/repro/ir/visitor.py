"""Visitors and transformers over the IR.

``Visitor`` is a read-only dispatch walk; ``Transformer`` rebuilds the tree
bottom-up, returning new nodes where a ``visit_X`` hook changed something
and reusing original nodes elsewhere (cheap structural sharing — compiler
passes over thousands of programs rely on not copying unchanged subtrees).
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Sequence, TypeVar

from repro.ir.nodes import (
    ArrayRef,
    Assign,
    AugAssign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    Decl,
    Expr,
    FMA,
    For,
    If,
    IntConst,
    Node,
    Stmt,
    UnOp,
    VarRef,
)

__all__ = ["Visitor", "Transformer", "walk", "collect"]

T = TypeVar("T")


def walk(node: Node) -> Iterator[Node]:
    """Yield ``node`` and all descendants, pre-order."""
    stack: List[Node] = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(current.children()))


def collect(node: Node, predicate: Callable[[Node], bool]) -> List[Node]:
    """All descendants (including ``node``) satisfying ``predicate``."""
    return [n for n in walk(node) if predicate(n)]


class Visitor:
    """Dispatching read-only visitor.

    Subclasses define ``visit_<ClassName>`` methods; unhandled nodes fall
    through to :meth:`generic_visit`, which recurses into children.
    """

    def visit(self, node: Node) -> None:
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            method(node)
        else:
            self.generic_visit(node)

    def generic_visit(self, node: Node) -> None:
        for child in node.children():
            self.visit(child)

    def visit_body(self, body: Sequence[Stmt]) -> None:
        for stmt in body:
            self.visit(stmt)


class Transformer:
    """Bottom-up rebuilding transformer.

    Hooks are ``visit_<ClassName>(self, node)`` and receive a node whose
    children have ALREADY been transformed; they return a replacement node
    (or the same node to keep it).  Statement hooks may also return a list
    of statements (to expand) or ``None`` (to delete the statement) when
    invoked via :meth:`transform_body`.
    """

    # -- expression dispatch --------------------------------------------------
    def transform_expr(self, node: Expr) -> Expr:
        rebuilt = self._rebuild_expr(node)
        hook = getattr(self, f"visit_{type(rebuilt).__name__}", None)
        if hook is not None:
            result = hook(rebuilt)
            if result is None:
                raise TypeError(
                    f"expression hook visit_{type(rebuilt).__name__} returned None"
                )
            return result
        return rebuilt

    def _rebuild_expr(self, node: Expr) -> Expr:
        if isinstance(node, (Const, IntConst, VarRef)):
            return node
        if isinstance(node, ArrayRef):
            index = self.transform_expr(node.index)
            return node if index is node.index else ArrayRef(node.name, index)
        if isinstance(node, UnOp):
            operand = self.transform_expr(node.operand)
            return node if operand is node.operand else UnOp(node.op, operand)
        if isinstance(node, BinOp):
            left = self.transform_expr(node.left)
            right = self.transform_expr(node.right)
            if left is node.left and right is node.right:
                return node
            return BinOp(node.op, left, right)
        if isinstance(node, FMA):
            a = self.transform_expr(node.a)
            b = self.transform_expr(node.b)
            c = self.transform_expr(node.c)
            if a is node.a and b is node.b and c is node.c:
                return node
            return FMA(a, b, c, node.negate_product)
        if isinstance(node, Call):
            args = tuple(self.transform_expr(a) for a in node.args)
            if all(x is y for x, y in zip(args, node.args)):
                return node
            return Call(node.func, args, node.variant)
        if isinstance(node, Compare):
            left = self.transform_expr(node.left)
            right = self.transform_expr(node.right)
            if left is node.left and right is node.right:
                return node
            return Compare(node.op, left, right)
        if isinstance(node, BoolOp):
            left = self.transform_expr(node.left)
            right = self.transform_expr(node.right)
            if left is node.left and right is node.right:
                return node
            return BoolOp(node.op, left, right)
        raise TypeError(f"unknown expression node {type(node).__name__}")

    # -- statement dispatch ---------------------------------------------------
    def transform_stmt(self, stmt: Stmt):
        """Transform one statement; may return Stmt, list of Stmt, or None."""
        rebuilt = self._rebuild_stmt(stmt)
        hook = getattr(self, f"visit_{type(rebuilt).__name__}", None)
        if hook is not None:
            return hook(rebuilt)
        return rebuilt

    def _rebuild_stmt(self, stmt: Stmt) -> Stmt:
        if isinstance(stmt, Decl):
            init = self.transform_expr(stmt.init)
            return stmt if init is stmt.init else Decl(stmt.name, init)
        if isinstance(stmt, Assign):
            target = self.transform_expr(stmt.target)
            expr = self.transform_expr(stmt.expr)
            if target is stmt.target and expr is stmt.expr:
                return stmt
            return Assign(target, expr)
        if isinstance(stmt, AugAssign):
            target = self.transform_expr(stmt.target)
            expr = self.transform_expr(stmt.expr)
            if target is stmt.target and expr is stmt.expr:
                return stmt
            return AugAssign(target, stmt.op, expr)
        if isinstance(stmt, For):
            bound = self.transform_expr(stmt.bound)
            body = self.transform_body(stmt.body)
            if bound is stmt.bound and len(body) == len(stmt.body) and all(
                x is y for x, y in zip(body, stmt.body)
            ):
                return stmt
            return For(stmt.var, bound, body)
        if isinstance(stmt, If):
            cond = self.transform_expr(stmt.cond)
            body = self.transform_body(stmt.body)
            if cond is stmt.cond and len(body) == len(stmt.body) and all(
                x is y for x, y in zip(body, stmt.body)
            ):
                return stmt
            return If(cond, body)
        raise TypeError(f"unknown statement node {type(stmt).__name__}")

    def transform_body(self, body: Sequence[Stmt]) -> List[Stmt]:
        out: List[Stmt] = []
        for stmt in body:
            result = self.transform_stmt(stmt)
            if result is None:
                continue
            if isinstance(result, list):
                out.extend(result)
            else:
                out.append(result)
        return out
