"""IR-level types.

Varity programs only ever contain three kinds of values (§III, Table III):
the campaign's floating-point scalar type, ``int`` (the loop bound
``var_1`` and loop counters), and pointers to the floating-point type
(array parameters).  The *precision* of FLOAT is a property of the whole
kernel (``Kernel.fptype``), not of individual nodes — exactly like Varity,
where a test is generated entirely in FP32 or entirely in FP64.
"""

from __future__ import annotations

import enum

__all__ = ["IRType"]


class IRType(enum.Enum):
    """Type of an IR value or parameter."""

    FLOAT = "float"  # the campaign fp type (float or double)
    INT = "int"
    FLOAT_PTR = "float*"  # array-of-campaign-fp-type parameter

    @property
    def is_pointer(self) -> bool:
        return self is IRType.FLOAT_PTR

    @property
    def is_float(self) -> bool:
        return self is IRType.FLOAT

    @property
    def element(self) -> "IRType":
        """Element type of a pointer type."""
        if self is IRType.FLOAT_PTR:
            return IRType.FLOAT
        raise ValueError(f"{self} is not a pointer type")

    def c_name(self, fp_c_name: str) -> str:
        """C rendering given the campaign fp type's C name."""
        if self is IRType.FLOAT:
            return fp_c_name
        if self is IRType.INT:
            return "int"
        return f"{fp_c_name}*"
