"""AST node definitions.

Nodes are small frozen-ish dataclasses.  Compiler passes build *new* nodes
rather than mutating (see :class:`repro.ir.visitor.Transformer`), so a
kernel can be compiled at several optimization levels from the same source
IR — the harness relies on that when it compiles one program five ways.

Structural equality: ``==`` on nodes compares by structure with float
constants compared by *bit pattern* (so ``-0.0`` and ``+0.0`` differ and a
NaN constant equals itself), which is the right notion for "did this pass
change the program".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.fp.bits import float_to_bits

__all__ = [
    "Node",
    "Expr",
    "Const",
    "IntConst",
    "VarRef",
    "ArrayRef",
    "UnOp",
    "BinOp",
    "FMA",
    "Call",
    "Compare",
    "BoolOp",
    "Stmt",
    "Decl",
    "Assign",
    "AugAssign",
    "For",
    "If",
    "BINARY_OPS",
    "COMPARE_OPS",
    "BOOL_OPS",
    "structurally_equal",
]

#: Arithmetic operators of the Varity grammar (Table III).
BINARY_OPS = ("+", "-", "*", "/")
#: Comparison operators usable in boolean expressions.
COMPARE_OPS = ("<", "<=", ">", ">=", "==", "!=")
#: Short-circuit boolean connectives.
BOOL_OPS = ("&&", "||")


class Node:
    """Common base for expressions and statements."""

    __slots__ = ()

    def children(self) -> Tuple["Node", ...]:
        """Direct child nodes, in evaluation order."""
        return ()

    def __eq__(self, other: object) -> bool:
        return structurally_equal(self, other) if isinstance(other, Node) else NotImplemented

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    def __hash__(self) -> int:
        # Hash by type + child hashes + scalar fields; adequate for memo sets.
        return hash((type(self).__name__,) + tuple(hash(c) for c in self.children()))


class Expr(Node):
    """Base class of expression nodes."""

    __slots__ = ()


class Stmt(Node):
    """Base class of statement nodes."""

    __slots__ = ()


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass(eq=False)
class Const(Expr):
    """A floating-point literal.

    ``text`` is the exact source spelling (Varity format, e.g.
    ``+1.3065E-306``); ``value`` is the double-precision value both real
    compilers would parse from that spelling.  For FP32 kernels the
    interpreter narrows at evaluation time, matching an ``F``-suffixed
    literal.
    """

    value: float
    text: Optional[str] = None

    def children(self) -> Tuple[Node, ...]:
        return ()

    def __hash__(self) -> int:
        return hash(("Const", float_to_bits(self.value)))

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


@dataclass(eq=False)
class IntConst(Expr):
    """An integer literal (loop bounds, array indices)."""

    value: int

    def __hash__(self) -> int:
        return hash(("IntConst", self.value))

    def __repr__(self) -> str:
        return f"IntConst({self.value})"


@dataclass(eq=False)
class VarRef(Expr):
    """Reference to a scalar variable or parameter by name."""

    name: str

    def __hash__(self) -> int:
        return hash(("VarRef", self.name))

    def __repr__(self) -> str:
        return f"VarRef({self.name!r})"


@dataclass(eq=False)
class ArrayRef(Expr):
    """``name[index]`` — array parameter element access."""

    name: str
    index: Expr

    def children(self) -> Tuple[Node, ...]:
        return (self.index,)

    def __hash__(self) -> int:
        return hash(("ArrayRef", self.name, hash(self.index)))

    def __repr__(self) -> str:
        return f"ArrayRef({self.name!r}, {self.index!r})"


@dataclass(eq=False)
class UnOp(Expr):
    """Unary ``+`` or ``-``."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in ("+", "-"):
            raise ValueError(f"bad unary operator {self.op!r}")

    def children(self) -> Tuple[Node, ...]:
        return (self.operand,)

    def __hash__(self) -> int:
        return hash(("UnOp", self.op, hash(self.operand)))


@dataclass(eq=False)
class BinOp(Expr):
    """Binary arithmetic: one of ``+ - * /`` (Table III)."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ValueError(f"bad binary operator {self.op!r}")

    def children(self) -> Tuple[Node, ...]:
        return (self.left, self.right)

    def __hash__(self) -> int:
        return hash(("BinOp", self.op, hash(self.left), hash(self.right)))

    def __repr__(self) -> str:
        return f"BinOp({self.op!r}, {self.left!r}, {self.right!r})"


@dataclass(eq=False)
class FMA(Expr):
    """Fused multiply-add ``fma(a, b, c) = round(a*b + c)``.

    Never produced by the generator — only by the FMA-contraction compiler
    pass (§V of DESIGN.md, mechanism 2).  ``negate_product`` encodes the
    ``c - a*b`` contraction (fused multiply-subtract-reverse).
    """

    a: Expr
    b: Expr
    c: Expr
    negate_product: bool = False

    def children(self) -> Tuple[Node, ...]:
        return (self.a, self.b, self.c)

    def __hash__(self) -> int:
        return hash(("FMA", self.negate_product, hash(self.a), hash(self.b), hash(self.c)))


@dataclass(eq=False)
class Call(Expr):
    """Math-library call, e.g. ``cos(x)`` / ``cosf(x)``.

    ``func`` is the *base* name (``cos``); the FP32 ``f`` suffix is applied
    by codegen from the kernel precision, as Varity does.  ``variant``
    distinguishes library resolution paths:

    * ``"default"`` — the vendor's standard implementation;
    * ``"approx"`` — fast-math approximate intrinsic (``__cosf``-class),
      substituted by the fast-math compiler pass for FP32;
    * ``"hipify"`` — resolved through the HIPIFY compatibility wrapper
      (one extra modeled rounding; DESIGN.md mechanism 5).
    """

    func: str
    args: Tuple[Expr, ...]
    variant: str = "default"

    def __init__(self, func: str, args: Sequence[Expr], variant: str = "default") -> None:
        self.func = func
        self.args = tuple(args)
        self.variant = variant

    def children(self) -> Tuple[Node, ...]:
        return self.args

    def __hash__(self) -> int:
        return hash(("Call", self.func, self.variant) + tuple(hash(a) for a in self.args))

    def __repr__(self) -> str:
        v = "" if self.variant == "default" else f", variant={self.variant!r}"
        return f"Call({self.func!r}, {list(self.args)!r}{v})"


@dataclass(eq=False)
class Compare(Expr):
    """Comparison producing a boolean (used by ``if`` conditions)."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in COMPARE_OPS:
            raise ValueError(f"bad comparison operator {self.op!r}")

    def children(self) -> Tuple[Node, ...]:
        return (self.left, self.right)

    def __hash__(self) -> int:
        return hash(("Compare", self.op, hash(self.left), hash(self.right)))


@dataclass(eq=False)
class BoolOp(Expr):
    """Short-circuit ``&&`` / ``||`` of two boolean expressions."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in BOOL_OPS:
            raise ValueError(f"bad boolean operator {self.op!r}")

    def children(self) -> Tuple[Node, ...]:
        return (self.left, self.right)

    def __hash__(self) -> int:
        return hash(("BoolOp", self.op, hash(self.left), hash(self.right)))


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass(eq=False)
class Decl(Stmt):
    """Local declaration with initializer: ``double tmp_1 = <expr>;``."""

    name: str
    init: Expr

    def children(self) -> Tuple[Node, ...]:
        return (self.init,)

    def __hash__(self) -> int:
        return hash(("Decl", self.name, hash(self.init)))


@dataclass(eq=False)
class Assign(Stmt):
    """Plain assignment to a scalar or array element."""

    target: Union[VarRef, ArrayRef]
    expr: Expr

    def children(self) -> Tuple[Node, ...]:
        return (self.target, self.expr)

    def __hash__(self) -> int:
        return hash(("Assign", hash(self.target), hash(self.expr)))


@dataclass(eq=False)
class AugAssign(Stmt):
    """Compound assignment ``target op= expr`` (Varity's accumulator idiom)."""

    target: Union[VarRef, ArrayRef]
    op: str
    expr: Expr

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ValueError(f"bad compound-assignment operator {self.op!r}")

    def children(self) -> Tuple[Node, ...]:
        return (self.target, self.expr)

    def __hash__(self) -> int:
        return hash(("AugAssign", self.op, hash(self.target), hash(self.expr)))


@dataclass(eq=False)
class For(Stmt):
    """``for (int i = 0; i < <bound>; ++i) { body }``.

    ``bound`` is an expression evaluating to an int (in generated programs
    always a reference to the ``var_1`` parameter or an ``IntConst``).
    """

    var: str
    bound: Expr
    body: Tuple[Stmt, ...]

    def __init__(self, var: str, bound: Expr, body: Sequence[Stmt]) -> None:
        self.var = var
        self.bound = bound
        self.body = tuple(body)

    def children(self) -> Tuple[Node, ...]:
        return (self.bound,) + self.body

    def __hash__(self) -> int:
        return hash(("For", self.var, hash(self.bound)) + tuple(hash(s) for s in self.body))


@dataclass(eq=False)
class If(Stmt):
    """``if (<cond>) { body }`` — Varity's grammar has no ``else``."""

    cond: Expr
    body: Tuple[Stmt, ...]

    def __init__(self, cond: Expr, body: Sequence[Stmt]) -> None:
        self.cond = cond
        self.body = tuple(body)

    def children(self) -> Tuple[Node, ...]:
        return (self.cond,) + self.body

    def __hash__(self) -> int:
        return hash(("If", hash(self.cond)) + tuple(hash(s) for s in self.body))


# --------------------------------------------------------------------------
# Structural equality
# --------------------------------------------------------------------------

_SCALAR_FIELDS = {
    "Const": ("value",),
    "IntConst": ("value",),
    "VarRef": ("name",),
    "ArrayRef": ("name",),
    "UnOp": ("op",),
    "BinOp": ("op",),
    "FMA": ("negate_product",),
    "Call": ("func", "variant"),
    "Compare": ("op",),
    "BoolOp": ("op",),
    "Decl": ("name",),
    "Assign": (),
    "AugAssign": ("op",),
    "For": ("var",),
    "If": (),
}


def _scalar_key(node: Node) -> tuple:
    name = type(node).__name__
    fields = _SCALAR_FIELDS.get(name, ())
    key: List[object] = [name]
    for f in fields:
        v = getattr(node, f)
        if isinstance(v, float):
            v = float_to_bits(v)
        key.append(v)
    return tuple(key)


def structurally_equal(a: object, b: object) -> bool:
    """Deep structural comparison with bit-exact float constants."""
    if a is b:
        return True
    if not isinstance(a, Node) or not isinstance(b, Node):
        return False
    if type(a) is not type(b):
        return False
    if _scalar_key(a) != _scalar_key(b):
        return False
    ca, cb = a.children(), b.children()
    if len(ca) != len(cb):
        return False
    return all(structurally_equal(x, y) for x, y in zip(ca, cb))
