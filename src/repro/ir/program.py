"""Kernel and Program containers.

A :class:`Kernel` is the ``compute`` function of one generated test.  A
:class:`Program` wraps the kernel with campaign identity (program id, the
generator seed, precision) — the unit the metadata store tracks (Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.fp.types import FPType
from repro.ir.types import IRType
from repro.ir.nodes import Stmt

__all__ = ["Param", "Kernel", "Program"]


@dataclass(frozen=True)
class Param:
    """One kernel parameter.

    Varity kernels always start with ``comp`` (the FLOAT accumulator whose
    final value is printed) followed by ``var_1`` (INT loop bound) and then
    FLOAT or FLOAT_PTR parameters ``var_2 .. var_N`` (§III-B, Fig. 2).
    """

    name: str
    type: IRType

    def c_decl(self, fp_c_name: str) -> str:
        if self.type is IRType.FLOAT_PTR:
            return f"{fp_c_name}* {self.name}"
        return f"{self.type.c_name(fp_c_name)} {self.name}"


@dataclass
class Kernel:
    """The ``compute`` kernel of one test program."""

    name: str
    params: Tuple[Param, ...]
    body: Tuple[Stmt, ...]
    fptype: FPType

    def __init__(
        self,
        params: Sequence[Param],
        body: Sequence[Stmt],
        fptype: FPType,
        name: str = "compute",
    ) -> None:
        self.name = name
        self.params = tuple(params)
        self.body = tuple(body)
        self.fptype = fptype

    # -- parameter queries ---------------------------------------------------
    def param(self, name: str) -> Param:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"kernel has no parameter {name!r}")

    @property
    def param_names(self) -> List[str]:
        return [p.name for p in self.params]

    @property
    def float_params(self) -> List[Param]:
        return [p for p in self.params if p.type is IRType.FLOAT]

    @property
    def array_params(self) -> List[Param]:
        return [p for p in self.params if p.type is IRType.FLOAT_PTR]

    @property
    def int_params(self) -> List[Param]:
        return [p for p in self.params if p.type is IRType.INT]

    def with_body(self, body: Sequence[Stmt]) -> "Kernel":
        """A new kernel sharing signature/precision with a different body."""
        return Kernel(self.params, body, self.fptype, self.name)

    def __repr__(self) -> str:
        return (
            f"Kernel({self.name!r}, {len(self.params)} params, "
            f"{len(self.body)} stmts, {self.fptype.value})"
        )


@dataclass
class Program:
    """A generated test program with campaign identity.

    ``via_hipify`` marks programs whose HIP side was produced by the HIPIFY
    translator rather than by the native HIP generator (§III-F); the hipcc
    compiler model consults this to apply the compatibility-wrapper
    semantics.
    """

    program_id: str
    kernel: Kernel
    seed: int = 0
    via_hipify: bool = False
    source_note: str = ""
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def fptype(self) -> FPType:
        return self.kernel.fptype

    def with_kernel(self, kernel: Kernel) -> "Program":
        return Program(
            program_id=self.program_id,
            kernel=kernel,
            seed=self.seed,
            via_hipify=self.via_hipify,
            source_note=self.source_note,
            extra=dict(self.extra),
        )

    def marked_hipify(self) -> "Program":
        """Copy of this program flagged as HIPIFY-converted."""
        p = self.with_kernel(self.kernel)
        p.via_hipify = True
        p.source_note = (self.source_note + " [hipify]").strip()
        return p

    def __repr__(self) -> str:
        tag = " via_hipify" if self.via_hipify else ""
        return f"Program({self.program_id!r}, {self.kernel!r}{tag})"
