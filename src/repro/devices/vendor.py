"""GPU vendor identity."""

from __future__ import annotations

import enum

__all__ = ["Vendor"]


class Vendor(enum.Enum):
    """The two GPU classes the paper studies."""

    NVIDIA = "nvidia"
    AMD = "amd"

    @property
    def compiler_name(self) -> str:
        return "nvcc" if self is Vendor.NVIDIA else "hipcc"

    @property
    def mathlib_name(self) -> str:
        """Name of the vendor device math library modeled here."""
        return "libdevice" if self is Vendor.NVIDIA else "ocml"

    @property
    def source_extension(self) -> str:
        return ".cu" if self is Vendor.NVIDIA else ".hip"

    def __str__(self) -> str:
        return self.value
