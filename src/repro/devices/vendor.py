"""Vendor identity of a compiler/device stack."""

from __future__ import annotations

import enum

__all__ = ["Vendor"]


class Vendor(enum.Enum):
    """The two GPU classes the paper studies, plus the CPU host lane.

    The CPU vendor backs the third compiler stack (ROADMAP item (c)): a
    clang-style host build of the same kernels through the plain-C
    dialect, so the differential harness has a lane that runs on any CI
    box with no GPU stack model involved.
    """

    NVIDIA = "nvidia"
    AMD = "amd"
    CPU = "cpu"

    @property
    def compiler_name(self) -> str:
        if self is Vendor.NVIDIA:
            return "nvcc"
        if self is Vendor.AMD:
            return "hipcc"
        return "clang"

    @property
    def mathlib_name(self) -> str:
        """Name of the vendor math library modeled here."""
        if self is Vendor.NVIDIA:
            return "libdevice"
        if self is Vendor.AMD:
            return "ocml"
        return "libm"

    @property
    def source_extension(self) -> str:
        if self is Vendor.NVIDIA:
            return ".cu"
        if self is Vendor.AMD:
            return ".hip"
        return ".c"

    def __str__(self) -> str:
        return self.value
