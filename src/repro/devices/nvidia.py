"""The simulated NVIDIA system (paper §IV-A1: Lassen, V100, CUDA 12.2.2)."""

from __future__ import annotations

from repro.devices.device import Device, DeviceSpec
from repro.devices.mathlib.libdevice import LibdeviceMath
from repro.devices.vendor import Vendor

__all__ = ["nvidia_v100", "LASSEN_SPEC"]

LASSEN_SPEC = DeviceSpec(
    name="lassen-sim",
    vendor=Vendor.NVIDIA,
    gpu_model="NVIDIA V100 (model)",
    cluster="Lassen (LLNL) — simulated",
    toolchain="nvcc / CUDA 12.2.2 (model)",
)


def nvidia_v100(salt: int = 0) -> Device:
    """A fresh simulated V100 device."""
    return Device(LASSEN_SPEC, LibdeviceMath(salt=salt))
