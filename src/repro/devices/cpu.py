"""The simulated CPU host system (the third-stack lane, ROADMAP item (c)).

Not one of the paper's two clusters: this device models an ordinary x86
login/CI node building the plain-C rendering of the same kernels with
clang.  It lets the differential harness exercise the paper's cross-stack
methodology on machines with no GPU stack model at all.
"""

from __future__ import annotations

from repro.devices.device import Device, DeviceSpec
from repro.devices.mathlib.libm import HostLibm
from repro.devices.vendor import Vendor

__all__ = ["cpu_host", "HOST_SPEC"]

HOST_SPEC = DeviceSpec(
    name="host-sim",
    vendor=Vendor.CPU,
    gpu_model="x86-64 host (model)",
    cluster="CI node — simulated",
    toolchain="clang 17 / glibc libm (model)",
)


def cpu_host(salt: int = 0) -> Device:
    """A fresh simulated CPU host."""
    return Device(HOST_SPEC, HostLibm(salt=salt))
