"""IEEE-754 IR interpreter — the simulated GPU execution engine.

Executes a (possibly compiler-transformed) kernel with:

* per-operation rounding in the campaign precision (NumPy scalar ops);
  **FP16 arithmetic follows the GPU ``__half`` promotion model**: each
  operand is rounded to binary16, the operation is computed in binary32
  (NumPy evaluates ``float16`` arithmetic in ``float32`` internally,
  matching how both real stacks promote ``__half``/``_Float16`` scalar
  math to their FP32 pipelines), and the result is rounded once back to
  binary16.  For ``+ - *`` the compute-in-fp32-round-to-fp16 result is
  identical to a correctly-rounded native half operation (22 significand
  bits fit binary32 exactly); for ``/`` and fused ops a double-rounding
  corner is possible, shared by both vendors;
* a vendor math library for every ``Call`` node;
* exact fused multiply-add for ``FMA`` nodes (rational-arithmetic
  reference, shared by both vendors — contraction *pattern* differences,
  not fma fidelity, are the modeled divergence source);
* flush-to-zero per :class:`repro.fp.env.FlushMode`;
* IEEE-754 exception tracking (Table II events);
* optional per-statement tracing used by the case-study isolation tooling
  (the in-model analogue of the paper's intermediate-value analysis).

The final ``printf("%.17g", comp)`` of a Varity kernel is modeled by
formatting the accumulator with ``%.17g``, which is exactly what the real
harness compares between platforms.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ExecutionError, TrapError
from repro.telemetry.spans import get_tracer
from repro.fp.classify import OutcomeClass, classify_value
from repro.fp.env import FlushMode, FPEnv
from repro.fp.types import FPType
from repro.devices.mathlib.base import MathLibrary
from repro.ir.nodes import (
    ArrayRef,
    Assign,
    AugAssign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    Decl,
    Expr,
    FMA,
    For,
    If,
    IntConst,
    Stmt,
    UnOp,
    VarRef,
)
from repro.ir.program import Kernel
from repro.ir.types import IRType

__all__ = [
    "ExecOptions",
    "TraceEntry",
    "ExecutionResult",
    "Interpreter",
    "fma_exact",
    "CostModel",
]


@dataclass(frozen=True)
class CostModel:
    """Modeled per-operation issue cost, in abstract device cycles.

    The Table I reproduction needs a runtime measure that reflects what
    optimization levels actually change in the emitted code; wall-clock of
    a Python interpreter does not (an exact-rational FMA is *slower* to
    simulate than the mul+add it replaces).  Executions therefore also
    accumulate modeled cycles: fused ops cost less than the pair they
    replace, approximate intrinsics cost less than full-precision library
    calls, divisions are expensive — the standard GPU cost structure.
    Vendors may carry different tables (set on the Device).
    """

    add: int = 2
    mul: int = 2
    div: int = 14
    fma: int = 3
    compare: int = 1
    load_store: int = 2
    #: full-precision math library call (sin, cos, exp, ...)
    call: int = 28
    #: cheap library functions (fabs, fmin/fmax, ceil/floor/trunc)
    call_cheap: int = 3
    #: software remainder loop
    call_fmod: int = 44
    #: square root unit
    call_sqrt: int = 16
    #: fast-math approximate intrinsics (__cosf etc.)
    call_approx: int = 6
    #: __fdividef
    call_fdividef: int = 5

    _CHEAP = frozenset(
        {"fabs", "fmin", "fmax", "ceil", "floor", "trunc", "__demote_fp16"}
    )

    def call_cost(self, func: str, variant: str) -> int:
        if func == "__fdividef":
            return self.call_fdividef
        if variant == "approx":
            return self.call_approx
        if func in self._CHEAP:
            return self.call_cheap
        if func == "fmod":
            return self.call_fmod
        if func == "sqrt":
            return self.call_sqrt
        return self.call


@dataclass(frozen=True)
class ExecOptions:
    """Execution-environment knobs a compiled kernel carries."""

    flush: FlushMode = FlushMode.NONE
    trace: bool = False
    max_steps: int = 5_000_000
    min_array_size: int = 32


@dataclass(frozen=True)
class TraceEntry:
    """One traced store: which statement wrote which value where."""

    path: str  # statement path, e.g. "b2.f0[i=3].s1"
    target: str  # variable or array element written
    value: float

    def __str__(self) -> str:
        return f"{self.path}: {self.target} = {self.value!r}"


@dataclass
class ExecutionResult:
    """Outcome of running one kernel on one device."""

    value: float
    printed: str
    outcome: OutcomeClass
    flags: Dict[str, int]
    steps: int
    trace: Tuple[TraceEntry, ...] = ()
    #: modeled device cycles (see CostModel)
    cost_cycles: int = 0

    @property
    def is_exceptional(self) -> bool:
        return self.outcome in (OutcomeClass.NAN, OutcomeClass.INF)


def fma_exact(a: float, b: float, c: float) -> float:
    """Correctly-rounded-to-binary64 fused multiply-add.

    Exceptional operands follow IEEE-754 fusedMultiplyAdd; finite operands
    use exact rational arithmetic, and ``float(Fraction)`` performs correct
    round-to-nearest-even (CPython's int/int true division is correctly
    rounded).
    """
    if math.isnan(a) or math.isnan(b) or math.isnan(c):
        return math.nan
    if math.isinf(a) or math.isinf(b):
        if a == 0.0 or b == 0.0:
            return math.nan  # inf * 0
        prod_sign = math.copysign(1.0, a) * math.copysign(1.0, b)
        prod = math.inf * prod_sign
        if math.isinf(c) and math.copysign(1.0, c) != prod_sign:
            return math.nan  # inf - inf
        return prod
    if math.isinf(c):
        return c
    exact = Fraction(a) * Fraction(b) + Fraction(c)
    try:
        return float(exact)
    except OverflowError:
        return math.inf if exact > 0 else -math.inf


class _Frame:
    """Mutable execution state: scalar bindings, arrays, loop counters."""

    __slots__ = ("scalars", "ints", "arrays")

    def __init__(self) -> None:
        self.scalars: Dict[str, float] = {}
        self.ints: Dict[str, int] = {}
        self.arrays: Dict[str, np.ndarray] = {}


class Interpreter:
    """Executes kernels under one vendor math library."""

    def __init__(self, mathlib: MathLibrary, cost_model: Optional[CostModel] = None) -> None:
        self.mathlib = mathlib
        self.cost_model = cost_model or CostModel()

    # ------------------------------------------------------------------ run
    def run(
        self,
        kernel: Kernel,
        inputs: Sequence[Union[float, int]],
        options: ExecOptions = ExecOptions(),
    ) -> ExecutionResult:
        """Run ``kernel`` with positional ``inputs`` (one per parameter).

        FLOAT parameters take a float; INT parameters an int; FLOAT_PTR
        parameters a float *fill value* — the harness models Varity's
        ``main()``, which allocates the array and initializes every element
        with the scalar input (§III-B).
        """
        if len(inputs) != len(kernel.params):
            raise ExecutionError(
                f"kernel {kernel.name!r} takes {len(kernel.params)} inputs, "
                f"got {len(inputs)}"
            )
        tracer = get_tracer()
        t0 = time.perf_counter_ns() if tracer.enabled else 0
        env = FPEnv(fptype=kernel.fptype, flush=options.flush)
        dtype = kernel.fptype.dtype
        frame = _Frame()

        # Array extent: large enough for every loop bound in the input.
        int_values = [int(v) for v, p in zip(inputs, kernel.params) if p.type is IRType.INT]
        array_size = max([options.min_array_size] + [v + 1 for v in int_values if v >= 0])

        for value, param in zip(inputs, kernel.params):
            if param.type is IRType.FLOAT:
                frame.scalars[param.name] = float(dtype.type(value))
            elif param.type is IRType.INT:
                frame.ints[param.name] = int(value)
            else:
                fill = dtype.type(value)
                frame.arrays[param.name] = np.full(array_size, fill, dtype=dtype)

        state = _RunState(options)
        trace: List[TraceEntry] = []
        with np.errstate(all="ignore"):
            for i, stmt in enumerate(kernel.body):
                self._exec_stmt(stmt, frame, env, state, trace, f"s{i}")

        comp = frame.scalars.get("comp")
        if comp is None:
            raise ExecutionError("kernel has no 'comp' accumulator")
        if tracer.enabled:
            tracer.record(
                "device.eval",
                t0,
                time.perf_counter_ns(),
                mathlib=self.mathlib.name,
                fptype=kernel.fptype.name.lower(),
            )
        printed = format_printf_g17(comp)
        return ExecutionResult(
            value=float(comp),
            printed=printed,
            outcome=classify_value(comp),
            flags=env.snapshot(),
            steps=state.steps,
            trace=tuple(trace),
            cost_cycles=state.cost,
        )

    # ------------------------------------------------------------ run_batch
    def run_batch(
        self,
        kernel: Kernel,
        rows: Sequence[Sequence[Union[float, int]]],
        options: ExecOptions = ExecOptions(),
        *,
        vectorize: bool = True,
    ) -> List[Optional[ExecutionResult]]:
        """Run ``kernel`` once per input row; ``None`` marks a trapped row.

        Bit-identical per row to calling :meth:`run` row by row (catching
        :class:`TrapError` as ``None``), but the common straight-line case
        is vectorized over the row axis — see :mod:`repro.devices.batch`.
        """
        from repro.devices.batch import run_batch

        return run_batch(self, kernel, rows, options, vectorize=vectorize)

    # ---------------------------------------------------------------- stmts
    def _exec_stmt(
        self,
        stmt: Stmt,
        frame: _Frame,
        env: FPEnv,
        state: "_RunState",
        trace: List[TraceEntry],
        path: str,
    ) -> None:
        state.tick()
        if isinstance(stmt, Decl):
            value = self._eval(stmt.init, frame, env, state)
            frame.scalars[stmt.name] = value
            if state.options.trace:
                trace.append(TraceEntry(path, stmt.name, value))
        elif isinstance(stmt, Assign):
            value = self._eval(stmt.expr, frame, env, state)
            label = self._store(stmt.target, value, frame, env, state)
            if state.options.trace:
                trace.append(TraceEntry(path, label, value))
        elif isinstance(stmt, AugAssign):
            rhs = self._eval(stmt.expr, frame, env, state)
            current = self._load_target(stmt.target, frame, env, state)
            value = self._binop(stmt.op, current, rhs, env, state)
            label = self._store(stmt.target, value, frame, env, state)
            if state.options.trace:
                trace.append(TraceEntry(path, label, value))
        elif isinstance(stmt, For):
            bound = self._eval_int(stmt.bound, frame, state)
            for i in range(bound):
                frame.ints[stmt.var] = i
                for j, inner in enumerate(stmt.body):
                    self._exec_stmt(
                        inner, frame, env, state, trace, f"{path}.f[{stmt.var}={i}].s{j}"
                    )
            frame.ints.pop(stmt.var, None)
        elif isinstance(stmt, If):
            if self._eval_bool(stmt.cond, frame, env, state):
                for j, inner in enumerate(stmt.body):
                    self._exec_stmt(inner, frame, env, state, trace, f"{path}.t.s{j}")
        else:
            raise ExecutionError(f"cannot execute {type(stmt).__name__}")

    def _store(
        self,
        target: Union[VarRef, ArrayRef],
        value: float,
        frame: _Frame,
        env: FPEnv,
        state: "_RunState",
    ) -> str:
        if isinstance(target, VarRef):
            if target.name not in frame.scalars:
                raise ExecutionError(f"store to unknown scalar {target.name!r}")
            frame.scalars[target.name] = value
            return target.name
        index = self._eval_int(target.index, frame, state)
        arr = frame.arrays.get(target.name)
        if arr is None:
            raise ExecutionError(f"store to unknown array {target.name!r}")
        state.charge(self.cost_model.load_store)
        idx = index % arr.shape[0]  # modeled allocation is always big enough
        arr[idx] = env.cast(value)
        return f"{target.name}[{idx}]"

    def _load_target(
        self,
        target: Union[VarRef, ArrayRef],
        frame: _Frame,
        env: FPEnv,
        state: "_RunState",
    ) -> float:
        if isinstance(target, VarRef):
            try:
                return frame.scalars[target.name]
            except KeyError:
                raise ExecutionError(f"read of unknown scalar {target.name!r}") from None
        index = self._eval_int(target.index, frame, state)
        arr = frame.arrays.get(target.name)
        if arr is None:
            raise ExecutionError(f"read of unknown array {target.name!r}")
        state.charge(self.cost_model.load_store)
        return float(arr[index % arr.shape[0]])

    # ---------------------------------------------------------------- exprs
    def _eval(self, expr: Expr, frame: _Frame, env: FPEnv, state: "_RunState") -> float:
        state.tick()
        if isinstance(expr, Const):
            return float(env.cast(expr.value))
        if isinstance(expr, IntConst):
            return float(expr.value)
        if isinstance(expr, VarRef):
            if expr.name in frame.scalars:
                return frame.scalars[expr.name]
            if expr.name in frame.ints:
                # int used in arithmetic context: converted like C would.
                return float(frame.ints[expr.name])
            raise ExecutionError(f"unknown name {expr.name!r}")
        if isinstance(expr, ArrayRef):
            return self._load_target(expr, frame, env, state)
        if isinstance(expr, UnOp):
            value = self._eval(expr.operand, frame, env, state)
            return float(-env.cast(value)) if expr.op == "-" else value
        if isinstance(expr, BinOp):
            left = self._eval(expr.left, frame, env, state)
            right = self._eval(expr.right, frame, env, state)
            return self._binop(expr.op, left, right, env, state)
        if isinstance(expr, FMA):
            return self._fma(expr, frame, env, state)
        if isinstance(expr, Call):
            args = [
                float(env.flush_input(env.cast(self._eval(a, frame, env, state))))
                for a in expr.args
            ]
            state.charge(self.cost_model.call_cost(expr.func, expr.variant))
            result = self.mathlib.call(expr.func, args, env.fptype, expr.variant)
            result = float(env.cast(result))
            env.observe_result(result, *args)
            return float(env.flush_output(env.cast(result)))
        if isinstance(expr, (Compare, BoolOp)):
            return 1.0 if self._eval_bool(expr, frame, env, state) else 0.0
        raise ExecutionError(f"cannot evaluate {type(expr).__name__}")

    def _binop(self, op: str, left: float, right: float, env: FPEnv, state: "_RunState") -> float:
        l = env.flush_input(env.cast(left))
        r = env.flush_input(env.cast(right))
        if op == "+":
            state.charge(self.cost_model.add)
            raw = l + r
        elif op == "-":
            state.charge(self.cost_model.add)
            raw = l - r
        elif op == "*":
            state.charge(self.cost_model.mul)
            raw = l * r
        elif op == "/":
            state.charge(self.cost_model.div)
            raw = l / r
            env.observe_division(raw, l, r)
            return float(env.flush_output(raw))
        else:
            raise ExecutionError(f"bad operator {op!r}")
        env.observe_result(raw, l, r)
        return float(env.flush_output(raw))

    def _fma(self, expr: FMA, frame: _Frame, env: FPEnv, state: "_RunState") -> float:
        a = float(env.flush_input(env.cast(self._eval(expr.a, frame, env, state))))
        b = float(env.flush_input(env.cast(self._eval(expr.b, frame, env, state))))
        c = float(env.flush_input(env.cast(self._eval(expr.c, frame, env, state))))
        state.charge(self.cost_model.fma)
        if expr.negate_product:
            a = -a
        with np.errstate(all="ignore"):
            if env.fptype is FPType.FP64:
                raw = np.float64(fma_exact(a, b, c))
            elif env.fptype is FPType.FP32:
                # 24-bit operands: the double product is exact; one more
                # double add then a single narrowing keeps error below 1/2
                # ULP except double-rounding corners shared by both vendors.
                raw = np.float32(np.float64(a) * np.float64(b) + np.float64(c))
            elif env.fptype is FPType.FP16:
                # 11-bit operands: the float32 product is exact (22 bits),
                # one float32 add then a single narrowing to binary16 — the
                # same compute-in-fp32-round-to-fp16 model as plain FP16
                # arithmetic (module docstring), shared by both vendors.
                raw = np.float16(np.float32(a) * np.float32(b) + np.float32(c))
            else:
                raise ExecutionError(f"FMA is not defined for {env.fptype!r}")
        env.observe_result(raw, a, b, c)
        return float(env.flush_output(env.cast(raw)))

    def _eval_bool(self, expr: Expr, frame: _Frame, env: FPEnv, state: "_RunState") -> bool:
        state.tick()
        if isinstance(expr, Compare):
            state.charge(self.cost_model.compare)
            left = self._eval(expr.left, frame, env, state)
            right = self._eval(expr.right, frame, env, state)
            l, r = float(env.cast(left)), float(env.cast(right))
            if expr.op == "<":
                return l < r
            if expr.op == "<=":
                return l <= r
            if expr.op == ">":
                return l > r
            if expr.op == ">=":
                return l >= r
            if expr.op == "==":
                return l == r
            return l != r  # "!="
        if isinstance(expr, BoolOp):
            left = self._eval_bool(expr.left, frame, env, state)
            if expr.op == "&&":
                return left and self._eval_bool(expr.right, frame, env, state)
            return left or self._eval_bool(expr.right, frame, env, state)
        # C truthiness of a float expression.
        return self._eval(expr, frame, env, state) != 0.0

    def _eval_int(self, expr: Expr, frame: _Frame, state: "_RunState") -> int:
        state.tick()
        if isinstance(expr, IntConst):
            return expr.value
        if isinstance(expr, VarRef):
            if expr.name in frame.ints:
                return frame.ints[expr.name]
            if expr.name in frame.scalars:
                return int(frame.scalars[expr.name])
            raise ExecutionError(f"unknown int name {expr.name!r}")
        if isinstance(expr, BinOp):
            # Integer index arithmetic (i + 1, 2*j, ...), C semantics with
            # truncating division.
            left = self._eval_int(expr.left, frame, state)
            right = self._eval_int(expr.right, frame, state)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if right == 0:
                raise ExecutionError("integer division by zero")
            quotient = abs(left) // abs(right)
            return quotient if (left >= 0) == (right >= 0) else -quotient
        if isinstance(expr, UnOp):
            value = self._eval_int(expr.operand, frame, state)
            return -value if expr.op == "-" else value
        raise ExecutionError(
            f"{type(expr).__name__} not supported in integer context"
        )


class _RunState:
    """Step budget enforcement and modeled cycle accounting."""

    __slots__ = ("options", "steps", "cost")

    def __init__(self, options: ExecOptions) -> None:
        self.options = options
        self.steps = 0
        self.cost = 0

    def tick(self) -> None:
        self.steps += 1
        if self.steps > self.options.max_steps:
            raise TrapError(
                f"kernel exceeded step budget ({self.options.max_steps})",
                steps=self.steps,
            )

    def charge(self, cycles: int) -> None:
        self.cost += cycles


def format_printf_g17(value: float) -> str:
    """Model of ``printf("%.17g\\n", comp)`` (without the newline).

    Python's ``%.17g`` matches C for finite doubles; C prints
    ``nan``/``-nan``/``inf``/``-inf``, which Python spells differently, so
    those are fixed up explicitly.
    """
    v = float(value)
    if math.isnan(v):
        return "-nan" if math.copysign(1.0, v) < 0 else "nan"
    if math.isinf(v):
        return "inf" if v > 0 else "-inf"
    return "%.17g" % v
