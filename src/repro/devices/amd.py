"""The simulated AMD system (paper §IV-A2: Tioga, MI250X, ROCm 6.1.2)."""

from __future__ import annotations

from repro.devices.device import Device, DeviceSpec
from repro.devices.interpreter import CostModel
from repro.devices.mathlib.ocml import OcmlMath
from repro.devices.vendor import Vendor

__all__ = ["amd_mi250x", "TIOGA_SPEC", "MI250X_COST_MODEL"]

#: MI250X-flavoured issue costs: OCML calls go through a real call (not
#: inlined SASS), divisions are a touch pricier; plain ALU ops match.
MI250X_COST_MODEL = CostModel(call=34, call_fmod=38, call_sqrt=18, div=16)

TIOGA_SPEC = DeviceSpec(
    name="tioga-sim",
    vendor=Vendor.AMD,
    gpu_model="AMD MI250X (model)",
    cluster="Tioga (LLNL) — simulated",
    toolchain="hipcc / ROCm 6.1.2 (model)",
)


def amd_mi250x(salt: int = 0) -> Device:
    """A fresh simulated MI250X device."""
    return Device(TIOGA_SPEC, OcmlMath(salt=salt), MI250X_COST_MODEL)
