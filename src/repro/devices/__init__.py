"""Simulated GPU devices.

Substitute for the paper's Lassen (NVIDIA V100) and Tioga (AMD MI250X)
clusters: each device couples an IEEE-754 IR interpreter with a vendor
math-library model.  See DESIGN.md §2 for the substitution argument and §5
for the divergence mechanisms.
"""

from repro.devices.vendor import Vendor
from repro.devices.device import Device, DeviceSpec, ExecutionResult
from repro.devices.nvidia import nvidia_v100
from repro.devices.amd import amd_mi250x
from repro.devices.interpreter import Interpreter, ExecOptions, TraceEntry
from repro.devices.batch import batch_stats, reset_batch_stats, run_batch

__all__ = [
    "Vendor",
    "Device",
    "DeviceSpec",
    "ExecutionResult",
    "nvidia_v100",
    "amd_mi250x",
    "Interpreter",
    "ExecOptions",
    "TraceEntry",
    "run_batch",
    "batch_stats",
    "reset_batch_stats",
]
