"""Row-vectorized batch execution of the IR interpreter.

:func:`run_batch` evaluates one kernel over a whole grid of input rows in
a single pass, carrying every value as either a NumPy scalar (when it is
identical across rows — constants, loop counters, anything derived only
from them) or a ``(n_rows,)`` array in the campaign dtype.  Statement
evaluation is vectorized over the row axis; divergent control flow is
handled with boolean row masks:

* ``If`` bodies execute under ``parent_mask & cond`` — values are
  computed speculatively for every row and committed with ``np.where``;
* ``For`` loops iterate to the maximum bound over the rows, each
  iteration masked by ``i < bound_of_row`` (bounds may differ per row
  when they reference an INT parameter);
* ``&&``/``||`` evaluate their right side under the short-circuit
  submask, so per-row step counts and exception flags match the scalar
  interpreter's sequential semantics exactly.

**The hard invariant is bit-equality with** :meth:`Interpreter.run`:
every arithmetic op runs through the same NumPy ufunc machinery on the
same dtype (including the FP16 compute-in-fp32-round-to-fp16 model),
math-library calls and the FP64 exact-rational FMA stay per-row scalar
calls into the very same code, and flags / steps / modeled cycles are
per-row integer arrays whose increments are masked by the rows actually
executing each node.  Printed ``%.17g`` strings, outcome classes,
exception-flag snapshots, step counts and cost cycles are all identical
per row to a scalar run.

Step-budget traps are detected from the per-row step totals (all loops
have compile-time-bounded trip counts, so a row's total is exact); a
trapped row's slot in the result list is ``None`` — the same shape the
runner produces when :class:`~repro.errors.TrapError` is caught per row.

Rows fall back to per-row scalar ``run`` for trace mode, single-row
batches, and kernels the static analysis cannot prove safe to vectorize
(e.g. loop bounds or array indices derived from float values).  Repeated
math-library calls with identical arguments within one batch are served
from a memo — the library models are pure functions, so this is
observationally invisible, and it collapses the loop-invariant calls
that dominate generated kernels.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.errors import ExecutionError, TrapError
from repro.fp.classify import classify_value
from repro.fp.env import FlushMode, FPExceptionFlags
from repro.fp.types import FPType
from repro.devices.interpreter import (
    ExecOptions,
    ExecutionResult,
    fma_exact,
    format_printf_g17,
)
from repro.ir.nodes import (
    ArrayRef,
    Assign,
    AugAssign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    Decl,
    Expr,
    FMA,
    For,
    If,
    IntConst,
    Stmt,
    UnOp,
    VarRef,
)
from repro.ir.program import Kernel
from repro.ir.types import IRType
from repro.telemetry.spans import get_tracer

__all__ = ["run_batch", "batch_stats", "reset_batch_stats", "vectorizable"]


#: Process-local counters tests use to prove the fast path engaged.
_STATS = {
    "vector_batches": 0,
    "vector_rows": 0,
    "fallback_batches": 0,
    "fallback_rows": 0,
}


def batch_stats() -> Dict[str, int]:
    return dict(_STATS)


def reset_batch_stats() -> None:
    for key in _STATS:
        _STATS[key] = 0


# --------------------------------------------------------------------------
# Static vectorizability analysis
# --------------------------------------------------------------------------


def vectorizable(kernel: Kernel) -> bool:
    """True when the masked vector evaluator covers every construct.

    Rejects (falling back to per-row scalar runs, never wrong answers):

    * integer contexts (loop bounds, array indices) that reference
      anything but INT parameters, enclosing loop counters, or integer
      literals — the scalar path truncates floats there, which the
      vector path does not model;
    * *bare* integer-valued stores (``x = 5`` with an IntConst, or
      ``x = i``): the scalar interpreter stores those uncast as binary64,
      outside the dtype grid the vector path uses for frames;
    * any statement or expression type this module does not know.
    """
    int_names = {p.name for p in kernel.params if p.type is IRType.INT}
    float_names = {p.name for p in kernel.params if p.type is IRType.FLOAT}
    array_names = {p.name for p in kernel.params if p.type is IRType.FLOAT_PTR}

    def int_expr_ok(expr: Expr) -> bool:
        if isinstance(expr, IntConst):
            return True
        if isinstance(expr, VarRef):
            return expr.name in int_names
        if isinstance(expr, BinOp):
            return (
                expr.op in ("+", "-", "*", "/")
                and int_expr_ok(expr.left)
                and int_expr_ok(expr.right)
            )
        if isinstance(expr, UnOp):
            return int_expr_ok(expr.operand)
        return False

    def bare_int_valued(expr: Expr) -> bool:
        # Expression whose *top-level* value would be stored uncast by
        # the scalar interpreter while holding an integer-derived value.
        if isinstance(expr, IntConst):
            return True
        if isinstance(expr, VarRef):
            return expr.name in int_names
        if isinstance(expr, UnOp) and expr.op != "-":
            return bare_int_valued(expr.operand)
        return False

    def expr_ok(expr: Expr) -> bool:
        if isinstance(expr, (Const, IntConst)):
            return True
        if isinstance(expr, VarRef):
            return True
        if isinstance(expr, ArrayRef):
            return expr.name in array_names and int_expr_ok(expr.index)
        if isinstance(expr, UnOp):
            return expr_ok(expr.operand)
        if isinstance(expr, (BinOp, Compare, BoolOp)):
            return expr_ok(expr.left) and expr_ok(expr.right)
        if isinstance(expr, FMA):
            return expr_ok(expr.a) and expr_ok(expr.b) and expr_ok(expr.c)
        if isinstance(expr, Call):
            return all(expr_ok(a) for a in expr.args)
        return False

    def target_ok(target) -> bool:
        if isinstance(target, VarRef):
            return True
        if isinstance(target, ArrayRef):
            return target.name in array_names and int_expr_ok(target.index)
        return False

    def stmts_ok(body: Sequence[Stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, Decl):
                if bare_int_valued(stmt.init) or not expr_ok(stmt.init):
                    return False
                float_names.add(stmt.name)
            elif isinstance(stmt, Assign):
                if not target_ok(stmt.target):
                    return False
                if bare_int_valued(stmt.expr) or not expr_ok(stmt.expr):
                    return False
            elif isinstance(stmt, AugAssign):
                if not (target_ok(stmt.target) and expr_ok(stmt.expr)):
                    return False
            elif isinstance(stmt, For):
                if not int_expr_ok(stmt.bound):
                    return False
                if stmt.var in float_names or stmt.var in array_names:
                    return False  # counter shadowing a float: bail out
                added = stmt.var not in int_names
                int_names.add(stmt.var)
                ok = stmts_ok(stmt.body)
                if added:
                    int_names.discard(stmt.var)
                if not ok:
                    return False
            elif isinstance(stmt, If):
                if not expr_ok(stmt.cond) or not stmts_ok(stmt.body):
                    return False
            else:
                return False
        return True

    return stmts_ok(kernel.body)


# --------------------------------------------------------------------------
# Vector run machinery
# --------------------------------------------------------------------------


class _AllRowsTrapped(Exception):
    """Internal: every row exceeded the step budget — abort the batch."""


class _Ctx:
    """One mask context: the rows executing the current region.

    ``mask is None`` means "all rows".  Step ticks and cycle charges are
    accumulated as plain ints and flushed into the per-row arrays when
    the context closes (or at budget checkpoints), so the common
    straight-line case pays Python-int increments, not array ops, per
    node.
    """

    __slots__ = ("mask", "ticks", "cost")

    def __init__(self, mask: Optional[np.ndarray]) -> None:
        self.mask = mask
        self.ticks = 0
        self.cost = 0


class _BatchState:
    """Per-row step budget and modeled cycle accounting."""

    __slots__ = ("options", "n", "steps", "cost", "live", "any_trapped")

    def __init__(self, options: ExecOptions, n: int) -> None:
        self.options = options
        self.n = n
        self.steps = np.zeros(n, dtype=np.int64)
        self.cost = np.zeros(n, dtype=np.int64)
        self.live = np.ones(n, dtype=bool)
        self.any_trapped = False

    def flush(self, ctx: _Ctx) -> None:
        if ctx.ticks:
            if ctx.mask is None:
                self.steps += ctx.ticks
            else:
                self.steps += ctx.ticks * ctx.mask
            ctx.ticks = 0
        if ctx.cost:
            if ctx.mask is None:
                self.cost += ctx.cost
            else:
                self.cost += ctx.cost * ctx.mask
            ctx.cost = 0

    def check_budget(self) -> None:
        """Mark rows past the budget; abort when none remain.

        Called at loop-iteration boundaries and at the end of the run.
        Detection may lag the scalar interpreter's mid-statement
        :class:`TrapError` by up to one iteration of extra (masked,
        discarded) work, but the trap *decision* is identical: a row
        traps iff its final step total exceeds the budget.
        """
        over = self.steps > self.options.max_steps
        if not over.any():
            return
        newly = over & self.live
        if newly.any():
            self.live &= ~over
            self.any_trapped = True
            if not self.live.any():
                raise _AllRowsTrapped()


def _scalarize(value):
    """0-d arrays (np.where of scalars) back to NumPy scalars."""
    if isinstance(value, np.ndarray) and value.ndim == 0:
        return value[()]
    return value


#: Below this row count, IEEE-event observation runs as a per-row Python
#: loop on extracted floats (same code shape as FPEnv) — at a handful of
#: rows that is several times cheaper than ~15 small-array ufunc calls.
SMALL_N = 32

_INF = float("inf")


def _flag_for_result(r: float, ops, sn: float) -> Optional[str]:
    # Verbatim mirror of FPEnv.observe_result's elif chain on floats.
    if r != r:
        for o in ops:
            if o != o:
                return None
        return "invalid"
    if r == _INF or r == -_INF:
        for o in ops:
            if o - o != 0.0:  # NaN or Inf operand
                return None
        for o in ops:
            if o == 0.0:
                return "divide_by_zero"
        return "overflow"
    if r != 0.0 and -sn < r < sn:
        return "underflow"
    return None


def _flag_for_result_at(r: float, ext, i: int, sn: float) -> Optional[str]:
    # Same chain as _flag_for_result, indexing row ``i`` of each operand
    # extract (a list for array operands, a bare float for uniform ones).
    if r != r:
        for e in ext:
            o = e[i] if type(e) is list else e
            if o != o:
                return None
        return "invalid"
    if r == _INF or r == -_INF:
        zero = False
        for e in ext:
            o = e[i] if type(e) is list else e
            if o - o != 0.0:  # NaN or Inf operand
                return None
            if o == 0.0:
                zero = True
        return "divide_by_zero" if zero else "overflow"
    if r != 0.0 and -sn < r < sn:
        return "underflow"
    return None


def _flag_for_division(r: float, num: float, den: float, sn: float) -> Optional[str]:
    # Verbatim mirror of FPEnv.observe_division's elif chain on floats.
    if den == 0.0 and num != 0.0 and num == num:
        return "divide_by_zero"
    if r != r:
        if num == num and den == den:
            return "invalid"
        return None
    if (r == _INF or r == -_INF) and num - num == 0.0 and den - den == 0.0:
        return "overflow"
    if r != 0.0 and -sn < r < sn:
        return "underflow"
    return None


class _BatchEnv:
    """Vectorized mirror of :class:`repro.fp.env.FPEnv`.

    Flags are per-row ``int64`` arrays; every raise is masked by the
    rows actually executing the op.  Observation has two modes: at or
    below :data:`SMALL_N` rows, results are pulled into Python floats
    and classified by the same elif chains as the scalar env; above it,
    the chains are restated as explicitly disjoint vectorized masks.

    ``nan_seen`` is a sound monotone flag: it is set the moment a NaN
    can exist anywhere in the run (inputs, a NaN literal, any observed
    result, any math-library return), and gates the both-operands-NaN
    repair in :func:`_nan_exact` — until a NaN exists, no lane can have
    two NaN operands.
    """

    __slots__ = (
        "fptype",
        "flush",
        "dtype",
        "scalar_type",
        "flags",
        "smallest_normal",
        "_zero",
        "small",
        "nan_seen",
        "flush_in",
        "flush_out",
    )

    def __init__(self, fptype: FPType, flush: FlushMode, n: int) -> None:
        self.fptype = fptype
        self.flush = flush
        self.dtype = fptype.dtype
        self.scalar_type = self.dtype.type
        self.smallest_normal = fptype.smallest_normal
        self.flags = {
            name: np.zeros(n, dtype=np.int64) for name in FPExceptionFlags.EVENTS
        }
        self._zero = self.dtype.type(0.0)
        self.small = n <= SMALL_N
        self.nan_seen = False
        self.flush_in = flush.flushes_inputs
        self.flush_out = flush.flushes_outputs

    def cast(self, value):
        if type(value) is self.scalar_type:  # the overwhelmingly common case
            return value
        if isinstance(value, np.ndarray):
            if value.dtype == self.dtype:
                return value
            return value.astype(self.dtype)
        return self.scalar_type(value)

    def _is_subnormal(self, value):
        return (
            np.not_equal(value, 0)
            & np.isfinite(value)
            & (np.abs(value) < self.smallest_normal)
        )

    def _raise_where(self, name: str, cond, mask) -> None:
        if mask is not None:
            cond = cond & mask
        if not np.any(cond):
            return
        self.flags[name] += cond

    def flush_input(self, value):
        sn = self.smallest_normal
        if not isinstance(value, np.ndarray):
            v = float(value)
            if v != 0.0 and -sn < v < sn:
                return np.copysign(self._zero, value)
            return value
        if self.small:
            vals = value.tolist()
            hits = [i for i, v in enumerate(vals) if v != 0.0 and -sn < v < sn]
            if not hits:
                return value
            out = value.copy()
            for i in hits:
                out[i] = np.copysign(self._zero, value[i])
            return out
        sub = self._is_subnormal(value)
        if not np.any(sub):
            return value
        return np.where(sub, np.copysign(self._zero, value), value)

    def flush_output(self, value, mask):
        sn = self.smallest_normal
        if not isinstance(value, np.ndarray):
            v = float(value)
            if v != 0.0 and -sn < v < sn:
                if mask is None:
                    self.flags["underflow"] += 1
                else:
                    self.flags["underflow"] += mask
                return np.copysign(self._zero, value)
            return value
        if self.small:
            vals = value.tolist()
            mrows = None if mask is None else mask.tolist()
            hits = [
                i
                for i, v in enumerate(vals)
                if v != 0.0 and -sn < v < sn and (mrows is None or mrows[i])
            ]
            # Rows outside the mask still flush (the scalar path never
            # computed them at all — the junk value is unobservable) but
            # must not raise.
            flushed = [i for i, v in enumerate(vals) if v != 0.0 and -sn < v < sn]
            if not flushed:
                return value
            underflow = self.flags["underflow"]
            for i in hits:
                underflow[i] += 1
            out = value.copy()
            for i in flushed:
                out[i] = np.copysign(self._zero, value[i])
            return out
        sub = self._is_subnormal(value)
        if not np.any(sub):
            return value
        self._raise_where("underflow", sub, mask)
        return np.where(sub, np.copysign(self._zero, value), value)

    # -- observation, per-row mode ----------------------------------------
    def _observe_result_rows(self, result, mask, operands) -> None:
        sn = self.smallest_normal
        if not isinstance(result, np.ndarray):
            # Uniform result implies uniform operands (ufuncs with any
            # array operand produce an array result).
            r = float(result)
            if r != r:
                self.nan_seen = True
            flag = _flag_for_result(r, [float(o) for o in operands], sn)
            if flag is not None:
                if mask is None:
                    self.flags[flag] += 1
                else:
                    self.flags[flag] += mask
            return
        res = result.tolist()
        mrows = None if mask is None else mask.tolist()
        ext = None
        flags = self.flags
        for i, r in enumerate(res):
            if mrows is not None and not mrows[i]:
                continue
            if r - r == 0.0 and not (r != 0.0 and -sn < r < sn):
                continue  # finite, non-subnormal: no event possible
            if r != r:
                self.nan_seen = True
            if ext is None:
                ext = [
                    o.tolist() if isinstance(o, np.ndarray) else float(o)
                    for o in operands
                ]
            flag = _flag_for_result_at(r, ext, i, sn)
            if flag is not None:
                flags[flag][i] += 1

    def _observe_division_rows(self, result, num, den, mask) -> None:
        sn = self.smallest_normal
        if not isinstance(result, np.ndarray):
            r = float(result)
            if r != r:
                self.nan_seen = True
            flag = _flag_for_division(r, float(num), float(den), sn)
            if flag is not None:
                if mask is None:
                    self.flags[flag] += 1
                else:
                    self.flags[flag] += mask
            return
        res = result.tolist()
        mrows = None if mask is None else mask.tolist()
        nums = dens = None
        flags = self.flags
        for i, r in enumerate(res):
            if mrows is not None and not mrows[i]:
                continue
            if r - r == 0.0 and not (r != 0.0 and -sn < r < sn):
                continue
            if r != r:
                self.nan_seen = True
            if nums is None:
                nums = num.tolist() if isinstance(num, np.ndarray) else None
                numf = float(num) if nums is None else 0.0
                dens = den.tolist() if isinstance(den, np.ndarray) else None
                denf = float(den) if dens is None else 0.0
            flag = _flag_for_division(
                r,
                nums[i] if nums is not None else numf,
                dens[i] if dens is not None else denf,
                sn,
            )
            if flag is not None:
                flags[flag][i] += 1

    # -- observation, vectorized mode -------------------------------------
    def observe_result(self, result, mask, *operands) -> None:
        if self.small:
            self._observe_result_rows(result, mask, operands)
            return
        r_nan = np.isnan(result)
        if np.any(r_nan):
            self.nan_seen = True
        ops_nan = np.isnan(operands[0])
        for op in operands[1:]:
            ops_nan = ops_nan | np.isnan(op)
        invalid = r_nan & ~ops_nan
        r_inf = np.isinf(result)
        ops_fin = np.isfinite(operands[0])
        for op in operands[1:]:
            ops_fin = ops_fin & np.isfinite(op)
        inf_case = r_inf & ops_fin
        any_zero = np.equal(operands[0], 0)
        for op in operands[1:]:
            any_zero = any_zero | np.equal(op, 0)
        self._raise_where("invalid", invalid, mask)
        self._raise_where("divide_by_zero", inf_case & any_zero, mask)
        self._raise_where("overflow", inf_case & ~any_zero, mask)
        self._raise_where("underflow", self._is_subnormal(result), mask)

    def observe_division(self, result, num, den, mask) -> None:
        if self.small:
            self._observe_division_rows(result, num, den, mask)
            return
        r_nan = np.isnan(result)
        if np.any(r_nan):
            self.nan_seen = True
        dbz = np.equal(den, 0) & np.not_equal(num, 0) & ~np.isnan(num)
        invalid = ~dbz & r_nan & ~(np.isnan(num) | np.isnan(den))
        overflow = (
            ~dbz & ~invalid & np.isinf(result) & np.isfinite(num) & np.isfinite(den)
        )
        underflow = ~dbz & ~invalid & ~overflow & self._is_subnormal(result)
        self._raise_where("divide_by_zero", dbz, mask)
        self._raise_where("invalid", invalid, mask)
        self._raise_where("overflow", overflow, mask)
        self._raise_where("underflow", underflow, mask)

    def snapshot_row(self, row: int) -> Dict[str, int]:
        # Same key order as FPExceptionFlags.as_dict().
        return {name: int(self.flags[name][row]) for name in FPExceptionFlags.EVENTS}


class _VectorRun:
    """One vectorized batch execution of one kernel."""

    def __init__(
        self,
        interpreter,
        kernel: Kernel,
        rows: Sequence[Sequence[Union[float, int]]],
        options: ExecOptions,
    ) -> None:
        self.interpreter = interpreter
        self.mathlib = interpreter.mathlib
        self.cost_model = interpreter.cost_model
        self.kernel = kernel
        self.rows = rows
        self.options = options
        self.n = len(rows)
        self.env = _BatchEnv(kernel.fptype, options.flush, self.n)
        self.state = _BatchState(options, self.n)
        self.scalars: Dict[str, object] = {}
        self.ints: Dict[str, object] = {}
        self.arrays: Dict[str, np.ndarray] = {}
        self.array_size: object = 0  # int, or (n,) int64 per-row extents
        self.row_index = np.arange(self.n)
        # The math-library models and fma_exact are pure, so memo hits
        # are observationally invisible; the memo lives on the
        # interpreter to capture the heavy cross-batch redundancy (the
        # same test executed under every opt setting repeats most call
        # sites with identical arguments).  Keys embed the argument
        # dtype via byte length, so fptypes never collide.
        memo = getattr(interpreter, "_batch_call_memo", None)
        if memo is None:
            memo = {}
            interpreter._batch_call_memo = memo
        elif len(memo) > 200_000:
            memo.clear()
        self.memo: Dict[object, float] = memo

    # ------------------------------------------------------------- set-up
    def _bind_params(self) -> None:
        kernel, rows, n = self.kernel, self.rows, self.n
        dtype = self.env.dtype
        # Per-row array extents mirror the scalar rule: large enough for
        # every non-negative INT input, never below the floor.
        extents = []
        for row in rows:
            ints = [
                int(v)
                for v, p in zip(row, kernel.params)
                if p.type is IRType.INT
            ]
            extents.append(
                max(
                    [self.options.min_array_size]
                    + [v + 1 for v in ints if v >= 0]
                )
            )
        self.array_size = _uniform_int(extents)
        max_extent = max(extents)

        for pos, param in enumerate(kernel.params):
            column = [row[pos] for row in rows]
            if param.type is IRType.INT:
                values = [int(v) for v in column]
                self.ints[param.name] = _uniform_int(values)
            elif param.type is IRType.FLOAT:
                fills = np.asarray([float(v) for v in column], dtype=np.float64)
                if np.isnan(fills).any():
                    self.env.nan_seen = True
                cast = fills.astype(dtype)
                self.scalars[param.name] = (
                    cast[0] if _all_same_bits(cast) else cast
                )
            else:
                fills = np.asarray([float(v) for v in column], dtype=np.float64)
                if np.isnan(fills).any():
                    self.env.nan_seen = True
                cast = fills.astype(dtype)
                arr = np.empty((n, max_extent), dtype=dtype)
                arr[...] = cast[:, None]
                self.arrays[param.name] = arr

    # ------------------------------------------------------------ execute
    def execute(self) -> List[Optional[ExecutionResult]]:
        self._bind_params()
        base = _Ctx(None)
        try:
            with np.errstate(all="ignore"):
                for stmt in self.kernel.body:
                    self._exec_stmt(stmt, base)
            self.state.flush(base)
            self.state.check_budget()
        except _AllRowsTrapped:
            return [None] * self.n
        comp = self.scalars.get("comp")
        if comp is None:
            raise ExecutionError("kernel has no 'comp' accumulator")
        comp_col = (
            comp
            if isinstance(comp, np.ndarray)
            else np.full(self.n, comp, dtype=self.env.dtype)
        )
        results: List[Optional[ExecutionResult]] = []
        steps, cost, live = self.state.steps, self.state.cost, self.state.live
        for row in range(self.n):
            if not live[row]:
                results.append(None)
                continue
            value = float(comp_col[row])
            results.append(
                ExecutionResult(
                    value=value,
                    printed=format_printf_g17(value),
                    outcome=classify_value(value),
                    flags=self.env.snapshot_row(row),
                    steps=int(steps[row]),
                    trace=(),
                    cost_cycles=int(cost[row]),
                )
            )
        return results

    # ---------------------------------------------------------- statements
    def _exec_stmt(self, stmt: Stmt, ctx: _Ctx) -> None:
        ctx.ticks += 1
        cls = type(stmt)
        if cls is Decl:
            value = self._eval(stmt.init, ctx)
            self._commit_scalar(stmt.name, value, ctx.mask)
        elif cls is Assign:
            value = self._eval(stmt.expr, ctx)
            self._store(stmt.target, value, ctx)
        elif cls is AugAssign:
            rhs = self._eval(stmt.expr, ctx)
            current = self._load_target(stmt.target, ctx)
            value = self._binop(stmt.op, current, rhs, ctx)
            self._store(stmt.target, value, ctx)
        elif cls is For:
            self._exec_for(stmt, ctx)
        elif cls is If:
            cond = self._eval_bool(stmt.cond, ctx)
            if isinstance(cond, np.ndarray):
                mask = cond if ctx.mask is None else (ctx.mask & cond)
                if mask.any():
                    sub = _Ctx(mask)
                    for inner in stmt.body:
                        self._exec_stmt(inner, sub)
                    self.state.flush(sub)
            elif cond:
                for inner in stmt.body:
                    self._exec_stmt(inner, ctx)
        else:
            raise ExecutionError(f"cannot execute {cls.__name__}")

    def _exec_for(self, stmt: For, ctx: _Ctx) -> None:
        bound = self._eval_int(stmt.bound, ctx)
        if isinstance(bound, np.ndarray):
            top = int(bound.max()) if bound.size else 0
        else:
            top = bound
        for i in range(top):
            if isinstance(bound, np.ndarray):
                active = bound > i
                mask = active if ctx.mask is None else (ctx.mask & active)
                if not mask.any():
                    break
            else:
                mask = ctx.mask
            self.ints[stmt.var] = i
            sub = _Ctx(mask)
            for inner in stmt.body:
                self._exec_stmt(inner, sub)
            self.state.flush(sub)
            self.state.check_budget()
        self.ints.pop(stmt.var, None)

    def _commit_scalar(self, name: str, value, mask) -> None:
        old = self.scalars.get(name)
        if mask is None or old is None:
            # A first declaration under a mask commits speculatively for
            # every row: rows outside the mask never had the name in the
            # scalar interpreter and any later read would have been a
            # scoping error there, so the placeholder is unobservable.
            self.scalars[name] = value
        else:
            self.scalars[name] = np.where(mask, value, old)

    def _store(self, target, value, ctx: _Ctx) -> None:
        if type(target) is VarRef:
            if target.name not in self.scalars:
                raise ExecutionError(f"store to unknown scalar {target.name!r}")
            old = self.scalars[target.name]
            if ctx.mask is None:
                self.scalars[target.name] = value
            else:
                self.scalars[target.name] = np.where(ctx.mask, value, old)
            return
        index = self._eval_int(target.index, ctx)
        arr = self.arrays.get(target.name)
        if arr is None:
            raise ExecutionError(f"store to unknown array {target.name!r}")
        ctx.cost += self.cost_model.load_store
        idx = index % self.array_size
        cast = self.env.cast(value)
        mask = ctx.mask
        if isinstance(idx, np.ndarray):
            if mask is None:
                arr[self.row_index, idx] = cast
            else:
                rows = np.nonzero(mask)[0]
                arr[rows, idx[rows]] = (
                    cast[rows] if isinstance(cast, np.ndarray) else cast
                )
        else:
            if mask is None:
                arr[:, idx] = cast
            else:
                arr[mask, idx] = cast[mask] if isinstance(cast, np.ndarray) else cast

    def _load_target(self, target, ctx: _Ctx):
        if type(target) is VarRef:
            try:
                return self.scalars[target.name]
            except KeyError:
                raise ExecutionError(
                    f"read of unknown scalar {target.name!r}"
                ) from None
        index = self._eval_int(target.index, ctx)
        arr = self.arrays.get(target.name)
        if arr is None:
            raise ExecutionError(f"read of unknown array {target.name!r}")
        ctx.cost += self.cost_model.load_store
        idx = index % self.array_size
        if isinstance(idx, np.ndarray):
            return arr[self.row_index, idx]
        column = arr[:, idx]
        if _all_same_bits(column):
            return column[0]
        return column.copy()  # the slice is a view; later stores must not alias

    # --------------------------------------------------------- expressions
    def _eval(self, expr: Expr, ctx: _Ctx):
        ctx.ticks += 1
        cls = type(expr)
        if cls is VarRef:
            value = self.scalars.get(expr.name)
            if value is not None:
                return value
            ivalue = self.ints.get(expr.name)
            if ivalue is not None:
                # int in arithmetic context: C-style conversion through
                # binary64, exactly like the scalar interpreter's
                # float(int) before the consumer's cast.
                if isinstance(ivalue, np.ndarray):
                    return ivalue.astype(np.float64)
                return np.float64(ivalue)
            raise ExecutionError(f"unknown name {expr.name!r}")
        if cls is Const:
            if expr.value != expr.value:  # folded NaN literal
                self.env.nan_seen = True
            return self.env.cast(expr.value)
        if cls is BinOp:
            left = self._eval(expr.left, ctx)
            right = self._eval(expr.right, ctx)
            return self._binop(expr.op, left, right, ctx)
        if cls is Call:
            return self._call(expr, ctx)
        if cls is FMA:
            return self._fma(expr, ctx)
        if cls is ArrayRef:
            return self._load_target(expr, ctx)
        if cls is UnOp:
            value = self._eval(expr.operand, ctx)
            return -self.env.cast(value) if expr.op == "-" else value
        if cls is IntConst:
            return np.float64(expr.value)
        if cls is Compare or cls is BoolOp:
            cond = self._eval_bool(expr, ctx)
            one, zero = self.env.dtype.type(1.0), self.env.dtype.type(0.0)
            if isinstance(cond, np.ndarray):
                return np.where(cond, one, zero)
            return one if cond else zero
        raise ExecutionError(f"cannot evaluate {cls.__name__}")

    def _binop(self, op: str, left, right, ctx: _Ctx):
        env = self.env
        l = env.cast(left)
        r = env.cast(right)
        if env.flush_in:
            l = env.flush_input(l)
            r = env.flush_input(r)
        if op == "+":
            ctx.cost += self.cost_model.add
            raw = l + r
            if env.nan_seen:
                raw = _nan_exact(raw, l, r, _OP_ADD)
        elif op == "-":
            ctx.cost += self.cost_model.add
            raw = l - r
        elif op == "*":
            ctx.cost += self.cost_model.mul
            raw = l * r
            if env.nan_seen:
                raw = _nan_exact(raw, l, r, _OP_MUL)
        elif op == "/":
            ctx.cost += self.cost_model.div
            raw = l / r
            env.observe_division(raw, l, r, ctx.mask)
            if env.flush_out:
                return env.flush_output(raw, ctx.mask)
            return raw
        else:
            raise ExecutionError(f"bad operator {op!r}")
        env.observe_result(raw, ctx.mask, l, r)
        if env.flush_out:
            return env.flush_output(raw, ctx.mask)
        return raw

    def _fma(self, expr: FMA, ctx: _Ctx):
        env = self.env
        a = env.cast(self._eval(expr.a, ctx))
        b = env.cast(self._eval(expr.b, ctx))
        c = env.cast(self._eval(expr.c, ctx))
        if env.flush_in:
            a = env.flush_input(a)
            b = env.flush_input(b)
            c = env.flush_input(c)
        ctx.cost += self.cost_model.fma
        if expr.negate_product:
            a = -a
        fptype = env.fptype
        if fptype is FPType.FP64:
            raw = self._fma64(a, b, c)
        elif fptype is FPType.FP32:
            # The double product of 24-bit operands is exact; one double
            # add then one narrowing — elementwise identical to the
            # scalar np.float32(np.float64(a) * np.float64(b) + ...).
            raw = self._fused_widened(a, b, c, np.float64, np.float32)
        elif fptype is FPType.FP16:
            raw = self._fused_widened(a, b, c, np.float32, np.float16)
        else:
            raise ExecutionError(f"FMA is not defined for {fptype!r}")
        env.observe_result(raw, ctx.mask, a, b, c)
        raw = env.cast(raw)
        if env.flush_out:
            return env.flush_output(raw, ctx.mask)
        return raw

    def _fused_widened(self, a, b, c, wide, narrow):
        if not (
            isinstance(a, np.ndarray)
            or isinstance(b, np.ndarray)
            or isinstance(c, np.ndarray)
        ):
            return narrow(wide(a) * wide(b) + wide(c))
        aw = a.astype(wide) if isinstance(a, np.ndarray) else wide(a)
        bw = b.astype(wide) if isinstance(b, np.ndarray) else wide(b)
        cw = c.astype(wide) if isinstance(c, np.ndarray) else wide(c)
        prod = aw * bw
        if self.env.nan_seen:
            prod = _nan_exact(prod, aw, bw, _OP_MUL)
        total = prod + cw
        if self.env.nan_seen:
            total = _nan_exact(total, prod, cw, _OP_ADD)
        return total.astype(narrow)

    def _fma64(self, a, b, c):
        if not (
            isinstance(a, np.ndarray)
            or isinstance(b, np.ndarray)
            or isinstance(c, np.ndarray)
        ):
            key = ("fma64", a.tobytes(), b.tobytes(), c.tobytes())
            hit = self.memo.get(key)
            if hit is None:
                hit = fma_exact(float(a), float(b), float(c))
                self.memo[key] = hit
            if hit != hit:
                self.env.nan_seen = True
            return np.float64(hit)
        chunks = [
            (v.tobytes(), isinstance(v, np.ndarray)) for v in (a, b, c)
        ]
        floats = [
            v.tolist() if isinstance(v, np.ndarray) else float(v)
            for v in (a, b, c)
        ]
        out = np.empty(self.n, dtype=np.float64)
        memo = self.memo
        for i in range(self.n):
            lo = i * 8
            key = ("fma64",) + tuple(
                buf[lo : lo + 8] if per_row else buf for buf, per_row in chunks
            )
            hit = memo.get(key)
            if hit is None:
                hit = fma_exact(
                    *(f[i] if type(f) is list else f for f in floats)
                )
                memo[key] = hit
            if hit != hit:
                self.env.nan_seen = True
            out[i] = hit
        return out

    def _call(self, expr: Call, ctx: _Ctx):
        env = self.env
        args = [env.cast(self._eval(a, ctx)) for a in expr.args]
        if env.flush_in:
            args = [env.flush_input(a) for a in args]
        ctx.cost += self.cost_model.call_cost(expr.func, expr.variant)
        memo = self.memo
        if not any(isinstance(a, np.ndarray) for a in args):
            key = (expr.func, expr.variant) + tuple(a.tobytes() for a in args)
            raw = memo.get(key)
            if raw is None:
                raw = self.mathlib.call(
                    expr.func, [float(a) for a in args], env.fptype, expr.variant
                )
                memo[key] = raw
            result = env.cast(raw)
        else:
            # Per-row keys without broadcasting: one tobytes per column,
            # sliced per row (scalar args contribute one shared chunk).
            size = env.dtype.itemsize
            chunks = [
                (a.tobytes(), True) if isinstance(a, np.ndarray) else
                (a.tobytes(), False)
                for a in args
            ]
            floats = None
            result = np.empty(self.n, dtype=env.dtype)
            for i in range(self.n):
                lo = i * size
                key = (expr.func, expr.variant) + tuple(
                    buf[lo : lo + size] if per_row else buf
                    for buf, per_row in chunks
                )
                raw = memo.get(key)
                if raw is None:
                    if floats is None:
                        floats = [
                            a.tolist() if isinstance(a, np.ndarray) else float(a)
                            for a in args
                        ]
                    raw = self.mathlib.call(
                        expr.func,
                        [
                            f[i] if type(f) is list else f
                            for f in floats
                        ],
                        env.fptype,
                        expr.variant,
                    )
                    memo[key] = raw
                result[i] = raw
        env.observe_result(result, ctx.mask, *args)
        result = env.cast(result)
        if env.flush_out:
            return env.flush_output(result, ctx.mask)
        return result

    def _eval_bool(self, expr: Expr, ctx: _Ctx):
        ctx.ticks += 1
        cls = type(expr)
        if cls is Compare:
            ctx.cost += self.cost_model.compare
            left = self._eval(expr.left, ctx)
            right = self._eval(expr.right, ctx)
            l, r = self.env.cast(left), self.env.cast(right)
            op = expr.op
            if op == "<":
                return l < r
            if op == "<=":
                return l <= r
            if op == ">":
                return l > r
            if op == ">=":
                return l >= r
            if op == "==":
                return l == r
            return l != r  # "!="
        if cls is BoolOp:
            left = self._eval_bool(expr.left, ctx)
            if not isinstance(left, np.ndarray):
                # Row-uniform left side: ordinary short-circuit.
                if expr.op == "&&":
                    if not left:
                        return left
                    return self._eval_bool(expr.right, ctx)
                if left:
                    return left
                return self._eval_bool(expr.right, ctx)
            need = left if expr.op == "&&" else ~left
            mask = need if ctx.mask is None else (ctx.mask & need)
            if not mask.any():
                return left
            sub = _Ctx(mask)
            right = self._eval_bool(expr.right, sub)
            self.state.flush(sub)
            if expr.op == "&&":
                return left & right
            return left | right
        # C truthiness of a float expression.
        return np.not_equal(self._eval(expr, ctx), 0.0)

    def _eval_int(self, expr: Expr, ctx: _Ctx):
        ctx.ticks += 1
        cls = type(expr)
        if cls is IntConst:
            return expr.value
        if cls is VarRef:
            value = self.ints.get(expr.name)
            if value is None:
                raise ExecutionError(f"unknown int name {expr.name!r}")
            return value
        if cls is BinOp:
            left = self._eval_int(expr.left, ctx)
            right = self._eval_int(expr.right, ctx)
            if not isinstance(left, np.ndarray) and not isinstance(
                right, np.ndarray
            ):
                if expr.op == "+":
                    return left + right
                if expr.op == "-":
                    return left - right
                if expr.op == "*":
                    return left * right
                if right == 0:
                    self._int_div_zero(None, ctx)
                quotient = abs(left) // abs(right)
                return quotient if (left >= 0) == (right >= 0) else -quotient
            l = np.asarray(left, dtype=np.int64)
            r = np.asarray(right, dtype=np.int64)
            if expr.op == "+":
                return l + r
            if expr.op == "-":
                return l - r
            if expr.op == "*":
                return l * r
            zero = np.equal(r, 0)
            if np.any(zero):
                self._int_div_zero(zero, ctx)
                r = np.where(zero, np.int64(1), r)  # trapped rows: junk quotient
            quotient = np.abs(l) // np.abs(r)
            return np.where((l >= 0) == (r >= 0), quotient, -quotient)
        if cls is UnOp:
            value = self._eval_int(expr.operand, ctx)
            return -value if expr.op == "-" else value
        raise ExecutionError(f"{cls.__name__} not supported in integer context")

    def _int_div_zero(self, zero_mask, ctx: _Ctx) -> None:
        """Raise exactly when a row the scalar path would execute divides
        by zero; rows already trapped (or outside the mask) stay silent,
        matching the scalar interpreter never reaching the statement."""
        self.state.flush(ctx)
        self.state.check_budget()  # sharpen `live` before deciding to raise
        effective = self.state.live if ctx.mask is None else (self.state.live & ctx.mask)
        if zero_mask is not None:
            effective = effective & zero_mask
        if np.any(effective):
            raise ExecutionError("integer division by zero")


def _OP_ADD(x, y):
    return x + y


def _OP_MUL(x, y):
    return x * y


def _nan_exact(raw, l, r, op):
    """Mirror the scalar path's NaN choice for commutative ufuncs.

    When *both* operands of ``+``/``*`` are NaN, NumPy's scalar math and
    its vector inner loops propagate *different* operands — observable as
    the sign bit of the resulting NaN (``nan`` vs ``-nan`` under
    ``%.17g``).  Recompute exactly those lanes with NumPy scalar ops so
    the batch result carries the same bits the scalar interpreter
    produces.  Non-commutative ``-``/``/`` agree between the two paths.
    """
    if not isinstance(raw, np.ndarray):
        return raw
    if raw.shape[0] <= SMALL_N:
        # A both-NaN lane necessarily yields a NaN result, so scan the
        # (usually NaN-free) result in Python before touching operands.
        res = raw.tolist()
        lt = rt = None
        for i, v in enumerate(res):
            if v == v:
                continue
            if lt is None:
                lt = l.tolist() if isinstance(l, np.ndarray) else float(l)
                rt = r.tolist() if isinstance(r, np.ndarray) else float(r)
            lv = lt[i] if type(lt) is list else lt
            rv = rt[i] if type(rt) is list else rt
            if lv != lv and rv != rv:
                raw[i] = op(
                    l[i] if isinstance(l, np.ndarray) else l,
                    r[i] if isinstance(r, np.ndarray) else r,
                )
        return raw
    both = np.isnan(l) & np.isnan(r)
    if not np.any(both):
        return raw
    lv = np.broadcast_to(np.asarray(l), raw.shape)
    rv = np.broadcast_to(np.asarray(r), raw.shape)
    for i in np.nonzero(np.broadcast_to(both, raw.shape))[0]:
        raw[i] = op(lv[i], rv[i])
    return raw


def _uniform_int(values: Sequence[int]):
    """A Python int when all rows agree, else an int64 column."""
    first = values[0]
    for v in values[1:]:
        if v != first:
            return np.asarray(values, dtype=np.int64)
    return first


def _all_same_bits(column: np.ndarray) -> bool:
    """True when every row holds the same bit pattern (NaN-safe)."""
    view = np.ascontiguousarray(column).view(np.uint8).reshape(column.shape[0], -1)
    return bool((view == view[0]).all())


# --------------------------------------------------------------------------
# Entry point
# --------------------------------------------------------------------------


def run_batch(
    interpreter,
    kernel: Kernel,
    rows: Sequence[Sequence[Union[float, int]]],
    options: ExecOptions = ExecOptions(),
    *,
    vectorize: bool = True,
) -> List[Optional[ExecutionResult]]:
    """Run ``kernel`` once per input row; ``None`` marks a trapped row.

    Bit-identical per row to calling :meth:`Interpreter.run` row by row
    (catching :class:`TrapError` as ``None``).  ``vectorize=False``
    forces the per-row scalar path — the reference the property tests
    compare against, and the bench's legacy lane.
    """
    rows = [tuple(r) for r in rows]
    if not rows:
        return []
    for r in rows:
        if len(r) != len(kernel.params):
            raise ExecutionError(
                f"kernel {kernel.name!r} takes {len(kernel.params)} inputs, "
                f"got {len(r)}"
            )
    if (
        vectorize
        and not options.trace
        and len(rows) > 1
        and vectorizable(kernel)
    ):
        tracer = get_tracer()
        t0 = time.perf_counter_ns() if tracer.enabled else 0
        results = _VectorRun(interpreter, kernel, rows, options).execute()
        if tracer.enabled:
            tracer.record(
                "device.eval_batch",
                t0,
                time.perf_counter_ns(),
                mathlib=interpreter.mathlib.name,
                fptype=kernel.fptype.name.lower(),
                rows=len(rows),
            )
        _STATS["vector_batches"] += 1
        _STATS["vector_rows"] += len(rows)
        return results
    _STATS["fallback_batches"] += 1
    _STATS["fallback_rows"] += len(rows)
    results = []
    for r in rows:
        try:
            results.append(interpreter.run(kernel, r, options))
        except TrapError:
            results.append(None)
    return results
