"""Vendor rounding-function models — the root cause of Case Study 2.

The paper (§IV-D2) finds ``ceil(+1.5955E-125)`` evaluates to ``0`` under
nvcc but ``1`` under hipcc, turning a division into a divide-by-zero on the
NVIDIA side (output ``Inf`` vs ``1.34887e-306``).

Model: the NVIDIA path computes ``ceil`` for positive inputs with the
classic magic-add fast path ``trunc(x + (1 - ulp))``.  For ordinary
magnitudes that is correct, but when ``x`` is many orders of magnitude
below 1 ULP of 1, the addition absorbs ``x`` entirely and the path returns
``trunc(1 - ulp) = 0`` — reproducing the paper's quirk bit-exactly.  The
AMD path is IEEE-correct (``__ocml_ceil_f64``).

``floor``/``trunc``/``round`` are modeled IEEE-correct on both vendors.
"""

from __future__ import annotations

import math

import numpy as np

from repro.fp.types import FPType

__all__ = ["nvidia_ceil", "amd_ceil", "exact_floor", "exact_trunc"]

#: The largest value below 1.0 in each precision — the "magic" addend of
#: the fast path.
_MAGIC = {
    FPType.FP64: float(np.nextafter(np.float64(1.0), np.float64(0.0))),
    FPType.FP32: float(np.nextafter(np.float32(1.0), np.float32(0.0))),
    FPType.FP16: float(np.nextafter(np.float16(1.0), np.float16(0.0))),
}

#: Magnitude at which every value of the precision is an integer, so the
#: fast path short-circuits (mirrors the real inlined sequence's guard).
_INTEGRAL_LIMIT = {
    FPType.FP64: 2.0**52,
    FPType.FP32: 2.0**23,
    FPType.FP16: 2.0**10,
}


def _lookup(table, fptype: FPType, what: str):
    try:
        return table[fptype]
    except KeyError:
        raise ValueError(f"no {what} constant for {fptype!r}") from None


def nvidia_ceil(x: float, fptype: FPType = FPType.FP64) -> float:
    """Magic-add ``ceil`` fast path (libdevice model)."""
    dtype = fptype.dtype
    xv = float(dtype.type(x))
    if math.isnan(xv) or math.isinf(xv):
        return xv
    limit = _lookup(_INTEGRAL_LIMIT, fptype, "integral-limit")
    if abs(xv) >= limit or xv == 0.0:
        return xv
    if xv == float(np.trunc(dtype.type(xv))):
        # Already integral: the real inlined sequence tests this first
        # (the magic add would otherwise round integers up by one).
        return xv
    if xv < 0.0:
        # ceil of a negative value is truncation toward zero — exact.
        return float(np.trunc(dtype.type(xv)))
    magic = _lookup(_MAGIC, fptype, "magic-addend")
    with np.errstate(all="ignore"):
        shifted = dtype.type(xv) + dtype.type(magic)  # rounds: may absorb x
        return float(np.trunc(shifted))


def amd_ceil(x: float, fptype: FPType = FPType.FP64) -> float:
    """IEEE-correct ceil (OCML model)."""
    dtype = fptype.dtype
    with np.errstate(all="ignore"):
        return float(np.ceil(dtype.type(x)))


def exact_floor(x: float, fptype: FPType = FPType.FP64) -> float:
    dtype = fptype.dtype
    with np.errstate(all="ignore"):
        return float(np.floor(dtype.type(x)))


def exact_trunc(x: float, fptype: FPType = FPType.FP64) -> float:
    dtype = fptype.dtype
    with np.errstate(all="ignore"):
        return float(np.trunc(dtype.type(x)))
