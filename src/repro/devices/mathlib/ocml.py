"""AMD math library model ("OCML", the ``__ocml_*`` device library).

Composition of:

* the shared exact IEEE functions;
* vendor algorithms: chunked-reduction ``fmod`` (diverges from NVIDIA for
  extreme exponent gaps — Case Study 1) and IEEE-correct ``ceil`` (which
  *differs* from NVIDIA's quirky fast path for tiny positive operands —
  Case Study 2);
* bounded-ULP error placement with the AMD key (independent missed-input
  set from NVIDIA's);
* ``approx`` variants used under ``-DHIP_FAST_MATH`` (native OCML fast
  paths, with their own — different — large-ULP profile);
* the ``hipify`` variant: the library result passed through the modeled
  HIPIFY compatibility wrapper's extra rounding (DESIGN.md mechanism 5).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.fp.types import FPType
from repro.devices.mathlib.base import (
    DEMOTE_FP16,
    EXACT_FUNCTIONS,
    MathLibrary,
    demote_through_fp16,
    reference_call,
)
from repro.devices.mathlib.accuracy import AccuracyModel
from repro.devices.mathlib.fmod import amd_fmod
from repro.devices.mathlib.rounding_ops import amd_ceil

__all__ = ["OcmlMath"]

#: Functions HIPIFY routes through its compatibility wrapper in our model.
HIPIFY_WRAPPED = frozenset({"fmod", "pow", "cosh", "sinh", "tanh", "exp", "log"})


class OcmlMath(MathLibrary):
    """AMD device math library model."""

    name = "ocml"

    def __init__(self, salt: int = 0) -> None:
        self.accuracy = AccuracyModel("amd-ocml", salt=salt)

    def call(
        self,
        func: str,
        args: Sequence[float],
        fptype: FPType,
        variant: str = "default",
    ) -> float:
        hipify = variant == "hipify"
        base_variant = "default" if hipify else variant

        if func == DEMOTE_FP16:
            # Correctly-rounded _Float16 conversion: identical on both
            # vendors, and never routed through the HIPIFY wrapper.
            return demote_through_fp16(args[0], fptype)
        if func == "__fdividef":
            # hipcc has no __fdividef; HIPIFY maps it to plain division.
            with np.errstate(all="ignore"):
                result = float(fptype.dtype.type(args[0]) / fptype.dtype.type(args[1]))
        elif func == "fmod":
            result = amd_fmod(args[0], args[1], fptype)
        elif func == "ceil":
            result = amd_ceil(args[0], fptype)
        else:
            reference = reference_call(func, args, fptype)
            if func in EXACT_FUNCTIONS or math.isnan(reference) or math.isinf(reference):
                result = reference
            else:
                result = self.accuracy.apply(func, args, reference, fptype, base_variant)

        if hipify and func in HIPIFY_WRAPPED:
            result = self.accuracy.apply_hipify_wrapper(func, args, result, fptype)
        return result
