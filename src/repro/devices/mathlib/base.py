"""Math library interface and the correctly-rounded reference.

``reference_call`` is the library-independent "ideal" result: the operation
evaluated in binary64 and rounded once into the campaign precision.  Vendor
models start from it and apply their modeled algorithm/error.  The
differential harness never compares against the reference — only vendor
against vendor, as the paper does — but the analysis layer uses it to say
*which* vendor moved.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from repro.fp.types import FPType

__all__ = [
    "MathLibrary",
    "reference_call",
    "demote_through_fp16",
    "SUPPORTED_FUNCTIONS",
    "UNARY_FUNCTIONS",
    "BINARY_FUNCTIONS",
    "EXACT_FUNCTIONS",
    "APPROX_CAPABLE",
    "DEMOTE_FP16",
]


def _exp2(x: np.float64) -> np.float64:
    return np.exp2(x)


def _cbrt(x: np.float64) -> np.float64:
    return np.cbrt(x)


#: func name -> binary64 implementation (NumPy: returns NaN/Inf silently).
_UNARY_IMPL: Dict[str, Callable[[np.float64], np.float64]] = {
    "sin": np.sin,
    "cos": np.cos,
    "tan": np.tan,
    "asin": np.arcsin,
    "acos": np.arccos,
    "atan": np.arctan,
    "sinh": np.sinh,
    "cosh": np.cosh,
    "tanh": np.tanh,
    "exp": np.exp,
    "exp2": _exp2,
    "log": np.log,
    "log2": np.log2,
    "log10": np.log10,
    "sqrt": np.sqrt,
    "cbrt": _cbrt,
    "fabs": np.fabs,
    "ceil": np.ceil,
    "floor": np.floor,
    "trunc": np.trunc,
}

_BINARY_IMPL: Dict[str, Callable[[np.float64, np.float64], np.float64]] = {
    "fmod": lambda x, y: np.fmod(x, y),
    "pow": lambda x, y: np.power(x, y),
    "fmin": lambda x, y: np.fmin(x, y),
    "fmax": lambda x, y: np.fmax(x, y),
    "atan2": lambda x, y: np.arctan2(x, y),
}

#: Functions the generator may emit and both device models implement.
UNARY_FUNCTIONS: Tuple[str, ...] = tuple(sorted(_UNARY_IMPL))
BINARY_FUNCTIONS: Tuple[str, ...] = tuple(sorted(_BINARY_IMPL))
SUPPORTED_FUNCTIONS: Tuple[str, ...] = UNARY_FUNCTIONS + BINARY_FUNCTIONS

#: Correctly rounded on both real GPU stacks (IEEE-754 required operations
#: or trivially exact) — modeled identically for both vendors.
EXACT_FUNCTIONS = frozenset({"sqrt", "fabs", "floor", "trunc", "fmin", "fmax"})

#: Functions with fast-math approximate variants (FP32 intrinsics like
#: ``__cosf``): the fast-math compiler pass substitutes these.
APPROX_CAPABLE = frozenset(
    {"sin", "cos", "tan", "exp", "exp2", "log", "log2", "log10", "pow"}
)

#: The precision-cast round trip introduced by the fuzz mutator of the
#: same name: narrow a value to binary16, widen it back.  Both real
#: toolchains convert correctly rounded (__half/_Float16 conversions are
#: IEEE), so both vendor models implement it identically and exactly.
DEMOTE_FP16 = "__demote_fp16"

#: Internal names introduced by compiler passes or mutators (not in the
#: generator grammar).  ``__fdividef`` is nvcc's fast FP32 division
#: intrinsic.
INTERNAL_FUNCTIONS: Tuple[str, ...] = ("__fdividef", "rsqrt", DEMOTE_FP16)


def demote_through_fp16(value: float, fptype: FPType) -> float:
    """Round ``value`` to binary16 and widen back to the campaign precision.

    Widening binary16 into binary32/binary64 is exact, so the round trip
    is a single correctly-rounded narrowing — NaN propagates, values above
    the binary16 range overflow to ±Inf, and tiny values flush through the
    binary16 subnormal range, which is exactly what makes the precision-
    cast mutation a rich source of outcome-class flips.
    """
    with np.errstate(all="ignore"):
        return float(fptype.dtype.type(np.float16(value)))


def reference_call(func: str, args: Sequence[float], fptype: FPType) -> float:
    """Evaluate ``func`` in binary64, then round once to ``fptype``.

    This is the model's notion of the correctly-rounded result.  (For FP32
    and FP16 a double-evaluation + single rounding can differ from true
    correct rounding only in double-rounding corner cases, which is far
    below the ULP budgets of either vendor model.)
    """
    with np.errstate(all="ignore"):
        if len(args) == 1:
            try:
                impl = _UNARY_IMPL[func]
            except KeyError:
                raise KeyError(f"unknown unary math function {func!r}") from None
            result = impl(np.float64(args[0]))
        elif len(args) == 2:
            try:
                impl2 = _BINARY_IMPL[func]
            except KeyError:
                raise KeyError(f"unknown binary math function {func!r}") from None
            result = impl2(np.float64(args[0]), np.float64(args[1]))
        else:
            raise ValueError(f"{func} called with {len(args)} arguments")
        # Exhaustive final rounding into the campaign precision.
        if fptype is FPType.FP64:
            return float(result)
        if fptype is FPType.FP32:
            return float(np.float32(result))
        if fptype is FPType.FP16:
            return float(np.float16(result))
        raise ValueError(f"reference_call is not defined for {fptype!r}")


class MathLibrary(abc.ABC):
    """Interface of a vendor device math library model."""

    #: Human-readable library name ("libdevice" / "ocml").
    name: str = "abstract"

    @abc.abstractmethod
    def call(
        self,
        func: str,
        args: Sequence[float],
        fptype: FPType,
        variant: str = "default",
    ) -> float:
        """Evaluate one math call with this vendor's semantics.

        ``variant`` is one of ``"default"``, ``"approx"`` (fast-math
        intrinsic) or ``"hipify"`` (HIPIFY compatibility wrapper; only
        meaningful on the AMD library).
        """

    def supports(self, func: str) -> bool:
        return func in _UNARY_IMPL or func in _BINARY_IMPL or func in INTERNAL_FUNCTIONS

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
