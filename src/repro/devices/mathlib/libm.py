"""CPU host math library model ("libm").

The third stack's library: a glibc-flavoured libm.  Host libms are the
best-behaved of the three — most transcendentals are within 1 ULP and a
large subset is correctly rounded — so the profile key ``cpu-libm``
places a sparser, *independent* missed-input set than either GPU model
(the placement hash includes the vendor key, so no table changes are
needed for the errors to decorrelate).

Differences from the GPU models:

* no fast-math division intrinsic: clang's ``-ffast-math`` rewrites
  division as multiply-by-reciprocal (a compiler pass), it does not call
  a library routine, so there is no ``__fdividef`` analogue here;
* ``fmod``/``ceil`` use the correctly-rounded reference directly — host
  libms implement both exactly (C99 requires fmod exact), unlike the
  magic-number vendor algorithms modeled for the GPUs;
* ``approx`` variants resolve through the same placement model: clang's
  fast-math math calls stay calls into libm/vector-libm with relaxed
  accuracy, which the ``approx`` error tier already expresses.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.fp.types import FPType
from repro.devices.mathlib.base import (
    DEMOTE_FP16,
    EXACT_FUNCTIONS,
    MathLibrary,
    demote_through_fp16,
    reference_call,
)
from repro.devices.mathlib.accuracy import AccuracyModel

__all__ = ["HostLibm"]


class HostLibm(MathLibrary):
    """CPU host math library model (glibc-style libm)."""

    name = "libm"

    def __init__(self, salt: int = 0) -> None:
        self.accuracy = AccuracyModel("cpu-libm", salt=salt)

    def call(
        self,
        func: str,
        args: Sequence[float],
        fptype: FPType,
        variant: str = "default",
    ) -> float:
        if func == DEMOTE_FP16:
            # Correctly-rounded _Float16 conversion: identical on all stacks.
            return demote_through_fp16(args[0], fptype)
        if func == "__fdividef":
            raise ValueError("__fdividef is an NVIDIA-only intrinsic")
        reference = reference_call(func, args, fptype)
        if func in EXACT_FUNCTIONS or func in ("fmod", "ceil"):
            # Host libm: the IEEE-required operations plus exact fmod/ceil.
            return reference
        if math.isnan(reference) or math.isinf(reference):
            # Exceptional results agree across libraries: NaN outside the
            # domain, Inf on overflow.
            return reference
        return self.accuracy.apply(func, args, reference, fptype, variant)
