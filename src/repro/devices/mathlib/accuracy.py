"""Deterministic bounded-ULP error placement for vendor math models.

Vendor documentation states transcendental accuracy as a maximum error in
ULPs (e.g. CUDA's appendix "Mathematical Functions" and ROCm's OCML docs).
Two libraries that are each within budget still disagree on a sparse,
value-dependent set of inputs — exactly the behaviour the paper's
differential testing surfaces at ``-O0``.

We model that with a deterministic placement function: for each
``(vendor, function, precision, operand bits)`` a stable hash decides
whether this operand is one of the vendor's "missed" points, the error
direction, and its magnitude (≤ the budget).  Properties preserved:

* a vendor is *deterministic*: same input → same output, every run
  (real GPUs are run-to-run deterministic for these scalar ops);
* the two vendors' missed points are *independent* (different hash keys);
* errors are rare for default FP64 (budget 1–2 ULP, low rate) and common
  plus large for fast-math approximations (``__cosf``-class intrinsics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.fp.types import FPType
from repro.fp.bits import float16_to_bits, float32_to_bits, float_to_bits
from repro.fp.ulp import perturb_ulps
from repro.utils.hashing import stable_hash

__all__ = ["ErrorProfile", "AccuracyModel"]


@dataclass(frozen=True)
class ErrorProfile:
    """Error statistics of one function in one precision/variant.

    ``rate_num``/``rate_den``: fraction of operands where the library's
    result deviates from the correctly-rounded one.  ``max_ulps``: bound on
    the deviation when it happens.
    """

    max_ulps: int
    rate_num: int
    rate_den: int = 64

    def __post_init__(self) -> None:
        if self.max_ulps < 0 or self.rate_num < 0 or self.rate_den <= 0:
            raise ValueError("invalid error profile")
        if self.rate_num > self.rate_den:
            raise ValueError("error rate cannot exceed 1")


#: Profiles keyed by (function, precision, variant).  Budgets are in line
#: with published vendor tables (FP64 transcendentals: 1–2 ULP; FP32: 2–4;
#: fast-math FP32 intrinsics: tens of ULPs over moderate ranges).  FP16
#: library paths are the least accurate lane: with a 10-bit significand the
#: vendors' half-precision routines miss the correctly-rounded result on a
#: visibly larger operand fraction, which is exactly why the FP16 campaign
#: arm widens the discrepancy surface.
_DEFAULT_FP64 = ErrorProfile(max_ulps=1, rate_num=1)  # ~1.6% of operands
_DEFAULT_FP32 = ErrorProfile(max_ulps=2, rate_num=3)  # ~4.7% of operands
_DEFAULT_FP16 = ErrorProfile(max_ulps=2, rate_num=6)  # ~9.4% of operands
_APPROX_FP32 = ErrorProfile(max_ulps=256, rate_num=62)  # nearly always off
_APPROX_FP64 = ErrorProfile(max_ulps=2, rate_num=4)  # fast-math fp64 paths
_APPROX_FP16 = ErrorProfile(max_ulps=16, rate_num=62)  # half fast paths

_DEFAULTS: Dict[Tuple[FPType, str], ErrorProfile] = {
    (FPType.FP64, "default"): _DEFAULT_FP64,
    (FPType.FP32, "default"): _DEFAULT_FP32,
    (FPType.FP16, "default"): _DEFAULT_FP16,
    (FPType.FP64, "approx"): _APPROX_FP64,
    (FPType.FP32, "approx"): _APPROX_FP32,
    (FPType.FP16, "approx"): _APPROX_FP16,
}

_PER_FUNCTION_OVERRIDES: Dict[Tuple[str, FPType, str], ErrorProfile] = {
    # pow is the least accurate commonly-documented function.
    ("pow", FPType.FP64, "default"): ErrorProfile(max_ulps=2, rate_num=2),
    ("pow", FPType.FP32, "default"): ErrorProfile(max_ulps=4, rate_num=5),
    ("pow", FPType.FP32, "approx"): ErrorProfile(max_ulps=1024, rate_num=63),
    # tan's argument reduction is famously hard near multiples of pi/2.
    ("tan", FPType.FP64, "default"): ErrorProfile(max_ulps=2, rate_num=2),
    ("tan", FPType.FP32, "default"): ErrorProfile(max_ulps=4, rate_num=4),
    # hyperbolics: the Fig. 6 family of cases uses cosh near overflow.
    ("cosh", FPType.FP64, "default"): ErrorProfile(max_ulps=2, rate_num=2),
    ("sinh", FPType.FP64, "default"): ErrorProfile(max_ulps=2, rate_num=2),
}

#: Extra rounding applied by the HIPIFY compatibility wrapper (mechanism 5
#: in DESIGN.md): single-ULP deviations on top of the library result for a
#: fifth of operands of the wrapped functions.  Calibrated so converted
#: FP64 campaigns measure at or above native HIP (the paper's Table VII vs
#: Table V: 2,716 vs 2,426, +12%).  Note the asymmetry that makes a high
#: rate necessary: a wrapper deviation only *creates* a discrepancy when it
#: survives to the printed value (most die in NaN/Inf propagation), while
#: on an already-divergent 1-ULP site it can *cancel* the divergence — so
#: low rates can even reduce measured counts.
_HIPIFY_WRAPPER = ErrorProfile(max_ulps=1, rate_num=18, rate_den=96)


class AccuracyModel:
    """Applies a vendor's deterministic error placement to reference results."""

    def __init__(self, vendor_key: str, salt: int = 0) -> None:
        self.vendor_key = vendor_key
        self.salt = salt

    # -- profile lookup -------------------------------------------------------
    def profile(self, func: str, fptype: FPType, variant: str) -> ErrorProfile:
        key = (func, fptype, variant)
        if key in _PER_FUNCTION_OVERRIDES:
            return _PER_FUNCTION_OVERRIDES[key]
        tier = "approx" if variant == "approx" else "default"
        try:
            return _DEFAULTS[(fptype, tier)]
        except KeyError:
            raise ValueError(
                f"no error profile for precision {fptype!r}"
            ) from None

    # -- placement ------------------------------------------------------------
    def _operand_bits(self, args: Sequence[float], fptype: FPType) -> Tuple[int, ...]:
        if fptype is FPType.FP64:
            return tuple(float_to_bits(a) for a in args)
        if fptype is FPType.FP32:
            return tuple(float32_to_bits(a) for a in args)
        if fptype is FPType.FP16:
            return tuple(float16_to_bits(a) for a in args)
        raise ValueError(f"operand bits are not defined for {fptype!r}")

    def error_ulps(
        self,
        func: str,
        args: Sequence[float],
        fptype: FPType,
        variant: str = "default",
    ) -> int:
        """Signed ULP deviation this vendor applies at these operands (0 = exact)."""
        prof = self.profile(func, fptype, variant)
        h = stable_hash(
            self.vendor_key,
            func,
            variant,
            fptype.value,
            *self._operand_bits(args, fptype),
            seed=self.salt,
        )
        if (h % prof.rate_den) >= prof.rate_num:
            return 0
        direction = 1 if (h >> 17) & 1 else -1
        magnitude = 1 + ((h >> 23) % prof.max_ulps) if prof.max_ulps > 1 else 1
        return direction * magnitude

    def apply(
        self,
        func: str,
        args: Sequence[float],
        reference: float,
        fptype: FPType,
        variant: str = "default",
    ) -> float:
        """Perturb a correctly-rounded ``reference`` by this vendor's error."""
        n = self.error_ulps(func, args, fptype, variant)
        if n == 0:
            return reference
        return perturb_ulps(reference, n, fptype)

    def apply_hipify_wrapper(
        self, func: str, args: Sequence[float], result: float, fptype: FPType
    ) -> float:
        """Extra modeled rounding of the HIPIFY compatibility wrapper."""
        h = stable_hash(
            "hipify-wrapper",
            func,
            fptype.value,
            *self._operand_bits(args, fptype),
            seed=self.salt,
        )
        if (h % _HIPIFY_WRAPPER.rate_den) >= _HIPIFY_WRAPPER.rate_num:
            return result
        direction = 1 if (h >> 19) & 1 else -1
        return perturb_ulps(result, direction, fptype)
