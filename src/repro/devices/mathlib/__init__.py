"""Vendor math-library models.

Real divergences in the paper were root-caused to the device math
libraries: NVIDIA's ``libdevice`` (inlined PTX/SASS bit manipulation) vs
AMD's OCML (``__ocml_*_f64`` calls).  We model each library as

* **exact IEEE operations** where both real stacks are correctly rounded
  (``sqrt``, ``fabs``, ``floor``, ``trunc``, ``fmin``, ``fmax``);
* **vendor-specific algorithms** for the functions the paper's case studies
  root-cause (``fmod``: exact bitwise remainder on NVIDIA vs chunked
  scaled-division reduction on AMD; ``ceil``: magic-add fast path on NVIDIA
  that loses tiny operands vs IEEE-correct on AMD);
* a **deterministic bounded-ULP error model** for transcendentals, with
  per-vendor accuracy budgets and error positions keyed to the operand bit
  pattern (so the same input always gives the same answer on a vendor, and
  the two vendors disagree on a sparse, value-dependent input subset — the
  behaviour differential testing observes on real GPUs).
"""

from repro.devices.mathlib.base import (
    MathLibrary,
    reference_call,
    SUPPORTED_FUNCTIONS,
    UNARY_FUNCTIONS,
    BINARY_FUNCTIONS,
    EXACT_FUNCTIONS,
)
from repro.devices.mathlib.libdevice import LibdeviceMath
from repro.devices.mathlib.ocml import OcmlMath

__all__ = [
    "MathLibrary",
    "reference_call",
    "SUPPORTED_FUNCTIONS",
    "UNARY_FUNCTIONS",
    "BINARY_FUNCTIONS",
    "EXACT_FUNCTIONS",
    "LibdeviceMath",
    "OcmlMath",
]
