"""NVIDIA math library model ("libdevice").

Composition of:

* exact IEEE functions (shared with AMD): ``sqrt``, ``fabs``, ``floor``,
  ``trunc``, ``fmin``, ``fmax``;
* vendor algorithms: exact bitwise ``fmod`` (:mod:`.fmod`), magic-add
  ``ceil`` fast path (:mod:`.rounding_ops`);
* bounded-ULP error placement for transcendentals with the NVIDIA key;
* fast-math intrinsics: ``approx`` variants of :data:`APPROX_CAPABLE`
  functions and the FP32 ``__fdividef`` intrinsic, whose documented quirk —
  returning 0 instead of a finite quotient when the divisor's magnitude
  exceeds 2**126 — the model includes (it is one source of the paper's
  FP32 fast-math Num-vs-Zero discrepancies).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.fp.types import FPType
from repro.devices.mathlib.base import (
    DEMOTE_FP16,
    EXACT_FUNCTIONS,
    MathLibrary,
    demote_through_fp16,
    reference_call,
)
from repro.devices.mathlib.accuracy import AccuracyModel
from repro.devices.mathlib.fmod import nvidia_fmod
from repro.devices.mathlib.rounding_ops import nvidia_ceil

__all__ = ["LibdeviceMath"]

#: ``__fdividef(x, y)`` returns 0 for 2**126 < |y| < 2**128 (CUDA docs).
_FDIVIDEF_LIMIT = 2.0**126


class LibdeviceMath(MathLibrary):
    """NVIDIA device math library model."""

    name = "libdevice"

    def __init__(self, salt: int = 0) -> None:
        self.accuracy = AccuracyModel("nvidia-libdevice", salt=salt)

    def call(
        self,
        func: str,
        args: Sequence[float],
        fptype: FPType,
        variant: str = "default",
    ) -> float:
        if func == DEMOTE_FP16:
            # Correctly-rounded __half conversion: identical on both vendors.
            return demote_through_fp16(args[0], fptype)
        if func == "__fdividef":
            return self._fdividef(args[0], args[1], fptype)
        if func == "fmod":
            return nvidia_fmod(args[0], args[1], fptype)
        if func == "ceil":
            return nvidia_ceil(args[0], fptype)
        reference = reference_call(func, args, fptype)
        if func in EXACT_FUNCTIONS:
            return reference
        if math.isnan(reference) or math.isinf(reference):
            # Exceptional library results agree across vendors: both real
            # libraries return NaN outside the domain and Inf on overflow.
            return reference
        return self.accuracy.apply(func, args, reference, fptype, variant)

    # -- intrinsics -----------------------------------------------------------
    def _fdividef(self, x: float, y: float, fptype: FPType) -> float:
        """nvcc's fast FP32 division (``-use_fast_math`` rewrites ``/``)."""
        if fptype is not FPType.FP32:
            raise ValueError("__fdividef is an FP32-only intrinsic")
        xf, yf = np.float32(x), np.float32(y)
        yv = float(yf)
        if not math.isnan(yv) and not math.isinf(yv) and abs(yv) > _FDIVIDEF_LIMIT:
            # Documented quirk: reciprocal underflows, quotient becomes ±0.
            quotient_sign = math.copysign(1.0, float(xf)) * math.copysign(1.0, yv)
            return float(np.float32(math.copysign(0.0, quotient_sign)))
        with np.errstate(all="ignore"):
            # x * (1/y): two roundings instead of one.
            recip = np.float32(np.float32(1.0) / yf)
            return float(np.float32(xf * recip))
