"""Vendor-neutral reference math library.

Used as the high-accuracy baseline for error measurements (the Table I
mini-app's "max relative error" column): every function returns the
correctly-rounded reference with no vendor error placement, and the exact
``fmod``/IEEE ``ceil``.  Never used in differential campaigns — the paper
compares vendor against vendor, not against truth.
"""

from __future__ import annotations

from typing import Sequence

from repro.fp.types import FPType
from repro.devices.mathlib.base import MathLibrary, reference_call
from repro.devices.mathlib.fmod import nvidia_fmod

__all__ = ["ReferenceMath"]


class ReferenceMath(MathLibrary):
    """Correctly-rounded library (model's ground truth)."""

    name = "reference"

    def call(
        self,
        func: str,
        args: Sequence[float],
        fptype: FPType,
        variant: str = "default",
    ) -> float:
        if func == "__fdividef":
            # Reference semantics of division: a single rounding.
            import numpy as np

            with np.errstate(all="ignore"):
                return float(fptype.dtype.type(args[0]) / fptype.dtype.type(args[1]))
        if func == "fmod":
            return nvidia_fmod(args[0], args[1], fptype)  # exact remainder
        return reference_call(func, args, fptype)
