"""Vendor ``fmod`` algorithms — the root cause of the paper's Case Study 1.

The paper (§IV-D1) finds ``fmod(1.5917195493481116e+289, 1.5793E-307)``
returns ``1.4424471839615771e-307`` under nvcc but
``7.1923082856620736e-309`` under hipcc, and attributes the difference to
the implementations: hipcc calls ``__ocml_fmod_f64`` while nvcc inlines a
floating-point/bitwise sequence in SASS/PTX.

The *mathematically exact* truncated remainder of those two operands is
``7.1923082856620736e-309`` — the hipcc value.  So the AMD library computes
the IEEE-exact remainder and NVIDIA's inlined sequence is the approximate
one for extreme exponent gaps.  Our models follow that orientation:

* :func:`fmod_exact` (**AMD/OCML model**) — the exact truncated remainder
  (``math.fmod`` computes it exactly for binary64).
* :func:`fmod_chunked_reduction` (**NVIDIA model**) — exact for ordinary
  exponent gaps (≤ the significand width), but for huge ``x/y`` ratios it
  reduces via scaled division in bounded quotient chunks, and the
  per-chunk ``q * ys`` product **rounds**, drifting the running remainder.
  Running the paper's operands through it yields a value of the same
  magnitude as the paper's nvcc result (ours: ``1.1625964372759588e-307``
  vs the paper's ``1.4424471839615771e-307``) while agreeing with the
  exact remainder everywhere the exponent gap is ordinary — matching the
  paper's observation that only one of ten random inputs diverged.
"""

from __future__ import annotations

import math

import numpy as np

from repro.fp.types import FPType

__all__ = ["fmod_exact", "fmod_chunked_reduction", "nvidia_fmod", "amd_fmod"]

#: Quotient chunk width (bits) of the modeled reduction loop, per
#: precision (roughly half the significand, like the binary64 original).
_CHUNK_BITS = {
    FPType.FP64: 26,
    FPType.FP32: 12,
    FPType.FP16: 6,
}

#: Hard iteration cap; the binary64 exponent range over the chunk width is
#: < 100, so this is generous.
_MAX_STEPS = 4096


def fmod_exact(x: float, y: float, fptype: FPType = FPType.FP64) -> float:
    """Exact truncated remainder (the AMD ``__ocml_fmod`` model)."""
    if math.isnan(x) or math.isnan(y) or math.isinf(x) or y == 0.0:
        return math.nan
    if math.isinf(y) or x == 0.0:
        # fmod(x, inf) = x; fmod(±0, y) = ±0.
        return float(fptype.dtype.type(x))
    # math.fmod is exact for binary64; fp32/fp16 operands are exact in
    # binary64 and their exact remainder is representable in the operand
    # format, so one cast is exact.
    r = math.fmod(float(x), float(y))
    return float(fptype.dtype.type(r))


def fmod_chunked_reduction(x: float, y: float, fptype: FPType = FPType.FP64) -> float:
    """Chunked scaled-division reduction (the NVIDIA inlined-SASS model).

    Exact common path (exponent gap within the significand) and a rounding
    chunk loop beyond it — see the module docstring.
    """
    if math.isnan(x) or math.isnan(y) or math.isinf(x) or y == 0.0:
        return math.nan
    if math.isinf(y) or x == 0.0:
        return float(fptype.dtype.type(x))

    dtype = fptype.dtype
    try:
        chunk_bits = _CHUNK_BITS[fptype]
    except KeyError:
        raise ValueError(f"no fmod chunk width for {fptype!r}") from None
    ax = abs(float(dtype.type(x)))
    ay = abs(float(dtype.type(y)))
    sign = math.copysign(1.0, x)

    if ax < ay:
        return float(dtype.type(x))

    exponent_gap = math.frexp(ax)[1] - math.frexp(ay)[1]
    if exponent_gap <= fptype.mantissa_bits:
        # Exact path: identical to the AMD model by construction.
        return fmod_exact(x, y, fptype)

    steps = 0
    with np.errstate(all="ignore"):
        while ax >= ay and steps < _MAX_STEPS:
            steps += 1
            # Exponent gap between the running remainder and the divisor.
            e = math.frexp(ax)[1] - math.frexp(ay)[1]
            shift = max(0, e - chunk_bits)
            # Scale the divisor up so the quotient chunk fits chunk_bits
            # bits.  Scaling by a power of two is exact (no overflow: the
            # scaled divisor's exponent stays at or below ax's).
            ys = math.ldexp(ay, shift)
            if ys > ax:
                shift -= 1
                ys = math.ldexp(ay, shift)
                if shift < 0:
                    break
            # Rounded division + truncation: the modeled hardware op.
            q = float(dtype.type(math.floor(float(dtype.type(ax / ys)))))
            if q < 1.0:
                q = 1.0
            # THE modeled rounding: q (up to 2^chunk_bits) times a full-
            # precision divisor does not fit the significand, so the product
            # rounds, perturbing the running remainder.
            prod = float(dtype.type(q * ys))
            r = float(dtype.type(ax - prod))
            while r < 0.0 and q >= 1.0:
                # Overshoot from the rounded product: restore one divisor.
                q -= 1.0
                prod = float(dtype.type(q * ys))
                r = float(dtype.type(ax - prod))
            if r < 0.0:
                break
            if r == ax:
                # No progress (rounding swallowed the scaled divisor).
                break
            ax = r

    return float(dtype.type(math.copysign(ax, sign)))


#: Vendor wiring (kept as named aliases so call sites read like the paper).
nvidia_fmod = fmod_chunked_reduction
amd_fmod = fmod_exact
