"""Device abstraction: a vendor math library plus an interpreter.

A :class:`Device` stands in for "a GPU node of one of the two clusters".
The harness compiles a program with the device's matching compiler model
and calls :meth:`Device.execute` with the compiled kernel (anything
exposing ``kernel`` and ``exec_options`` — see
:class:`repro.compilers.compiler.CompiledKernel`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Union

from repro.devices.interpreter import ExecOptions, ExecutionResult, Interpreter
from repro.devices.mathlib.base import MathLibrary
from repro.devices.vendor import Vendor

if TYPE_CHECKING:  # pragma: no cover
    from repro.compilers.compiler import CompiledKernel

__all__ = ["DeviceSpec", "Device", "ExecutionResult"]


@dataclass(frozen=True)
class DeviceSpec:
    """Identity of a simulated GPU (mirrors the paper's §IV-A systems)."""

    name: str
    vendor: Vendor
    gpu_model: str
    cluster: str
    toolchain: str

    def describe(self) -> str:
        return (
            f"{self.name}: {self.gpu_model} ({self.vendor.value}), "
            f"cluster {self.cluster}, toolchain {self.toolchain}"
        )


class Device:
    """One simulated GPU: spec + vendor math library + interpreter."""

    def __init__(
        self,
        spec: DeviceSpec,
        mathlib: MathLibrary,
        cost_model: "CostModel | None" = None,
    ) -> None:
        self.spec = spec
        self.mathlib = mathlib
        self.interpreter = Interpreter(mathlib, cost_model)

    @property
    def vendor(self) -> Vendor:
        return self.spec.vendor

    def execute(
        self,
        compiled: "CompiledKernel",
        inputs: Sequence[Union[float, int]],
        *,
        trace: bool = False,
    ) -> ExecutionResult:
        """Run a compiled kernel on this device.

        The compiled kernel must target this device's vendor — running an
        nvcc binary on an AMD GPU is exactly the mistake real clusters
        reject at load time, so we reject it too.
        """
        if compiled.vendor is not self.vendor:
            raise ValueError(
                f"binary compiled for {compiled.vendor.value} cannot run on "
                f"{self.vendor.value} device {self.spec.name!r}"
            )
        options = compiled.exec_options
        if trace and not options.trace:
            options = dataclasses.replace(options, trace=True)
        return self.interpreter.run(compiled.kernel, inputs, options)

    def execute_batch(
        self,
        compiled: "CompiledKernel",
        input_rows: Sequence[Sequence[Union[float, int]]],
        *,
        vectorize: bool = True,
    ) -> List[Optional[ExecutionResult]]:
        """Run a compiled kernel once per input row (``None`` = trapped).

        Bit-identical per row to calling :meth:`execute` row by row with
        :class:`~repro.errors.TrapError` caught as ``None``; the common
        straight-line case is vectorized over the row axis.
        """
        if compiled.vendor is not self.vendor:
            raise ValueError(
                f"binary compiled for {compiled.vendor.value} cannot run on "
                f"{self.vendor.value} device {self.spec.name!r}"
            )
        return self.interpreter.run_batch(
            compiled.kernel,
            input_rows,
            compiled.exec_options,
            vectorize=vectorize,
        )

    def __repr__(self) -> str:
        return f"Device({self.spec.name!r}, mathlib={self.mathlib.name})"
