#!/usr/bin/env python3
"""Fuzzing session: find *new* numerical discrepancies, not more of the same.

The paper's campaigns generate test programs blindly; its future work
(§VII) asks for tooling that finds and explains inconsistencies with less
manual effort.  This example runs that tool end to end:

1. build a seed pool and measure its own discrepancy signatures;
2. mutate power-scheduled seeds (operator swaps, ULP-scale constant
   nudges, math-call substitution, FMA-shape introduction, cross-program
   splices, guard toggles), probing every mutant natively and through the
   HIPIFY arm;
3. triage each divergence to a root cause and keep one finding per novel
   signature, delta-debugged down to a minimal reproducer;
4. compare the novel-signature yield against blind generation at the
   same run budget.

Usage::

    python examples/fuzzing_session.py [mutants] [seed]
"""

from __future__ import annotations

import sys

from repro.fuzz import FuzzConfig, run_fuzz, run_random_session, signature_histogram


def main() -> int:
    mutants = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 11

    config = FuzzConfig(
        seed=seed,
        n_seed_programs=30,
        inputs_per_program=3,
        max_mutants=mutants,
        batch_size=25,
    )
    print(f"fuzzing session (seed={seed}, budget={mutants} mutants) ...\n")
    result = run_fuzz(config)

    print(
        f"seed pool: {config.n_seed_programs} programs, "
        f"{len(result.hot_seed_indices)} already divergent, "
        f"{len(result.baseline_signatures)} baseline signatures"
    )
    print(
        f"mutants: {result.mutants_run} executed of {result.iterations} attempted "
        f"(+{result.fresh_explored} fresh programs explored); "
        f"{result.raw_discrepancies} raw discrepant runs"
    )
    print(
        f"CUDA side: {result.nvcc_executions} executions, "
        f"{result.nvcc_cache_hits} served from the run cache"
    )
    print(f"\nnovel findings: {len(result.findings)}")
    for finding in result.findings:
        print(f"  {finding.describe()}")

    if result.findings:
        best = min(result.findings, key=lambda f: f.reduced_size or f.original_size)
        if best.reduced_cuda:
            print("\nSmallest minimized reproducer (shippable CUDA source):")
            print(best.reduced_cuda)

    print(signature_histogram(result.novel_signatures, title="Novel signatures").render())

    # The control arm: blind generation at the same run budget.
    random_result = run_random_session(
        config,
        n_programs=result.mutants_run + result.fresh_explored,
        skip_signatures={s.key for s in result.baseline_signatures},
    )
    fuzz_rate = 1000.0 * len(result.findings) / max(1, result.pair_runs)
    rand_rate = 1000.0 * len(random_result.novel_signatures) / max(
        1, random_result.pair_runs
    )
    print("\nfuzzing vs blind generation (equal run budget):")
    print(
        f"  fuzz:   {len(result.findings):3d} novel signatures "
        f"in {result.pair_runs} runs  ({fuzz_rate:.1f} / 1000 runs)"
    )
    print(
        f"  random: {len(random_result.novel_signatures):3d} novel signatures "
        f"in {random_result.pair_runs} runs  ({rand_rate:.1f} / 1000 runs)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
