#!/usr/bin/env python3
"""Acceptance-testing workflow between two clusters (paper Fig. 3).

The scenario §I motivates: a new system arrives and you must check its
numerics against the incumbent before production.  Cluster 1 (NVIDIA) runs
the campaign and saves JSON metadata; the metadata file travels to cluster
2 (AMD), which rebuilds the *identical* tests from it, reruns them, and
saves merged results; the analysis step reads the merged file and reports
every inconsistency.

Usage::

    python examples/acceptance_testing.py [workdir]
"""

from __future__ import annotations

import sys
import tempfile
from collections import Counter
from pathlib import Path

from repro.compilers.options import PAPER_OPT_SETTINGS
from repro.harness.transfer import (
    collect_discrepancies,
    run_system1,
    run_system2,
)
from repro.utils.tables import Table
from repro.varity.config import GeneratorConfig
from repro.varity.corpus import build_corpus


def main() -> int:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp(prefix="repro-fig3-"))
    workdir.mkdir(parents=True, exist_ok=True)
    meta1_path = workdir / "metadata.system1.json"
    merged_path = workdir / "metadata.merged.json"

    print("generating the acceptance-test corpus ...")
    corpus = build_corpus(GeneratorConfig.fp64(inputs_per_program=3), 80, root_seed=1337)

    print(f"[system 1 / NVIDIA] running {len(corpus)} tests × 5 opt levels ...")
    run_system1(corpus, meta1_path, opts=PAPER_OPT_SETTINGS)
    print(f"  metadata saved: {meta1_path} ({meta1_path.stat().st_size} bytes)")

    print("[transfer] shipping metadata to the AMD cluster ...")

    print("[system 2 / AMD] rebuilding the same tests from metadata and rerunning ...")
    meta = run_system2(meta1_path, merged_path, opts=PAPER_OPT_SETTINGS)
    print(f"  merged metadata saved: {merged_path}")

    print("[analysis] comparing the two systems' results ...\n")
    discrepancies = collect_discrepancies(meta)

    by_opt = Counter(d.opt_label for d in discrepancies)
    by_class = Counter(d.dclass.value for d in discrepancies)

    table = Table(
        title="Acceptance-testing report (Fig. 3 workflow)",
        headers=["Quantity", "Value"],
    )
    table.add_row(["Tests", len(corpus)])
    table.add_row(["Runs per system", len(meta.store_for("system1-nvidia"))])
    table.add_row(["Total inconsistencies", len(discrepancies)])
    for opt in [o.label for o in PAPER_OPT_SETTINGS]:
        table.add_row([f"  at {opt}", by_opt.get(opt, 0)])
    for cls, n in sorted(by_class.items()):
        table.add_row([f"  class {cls}", n])
    print(table.render())

    if discrepancies:
        d = discrepancies[0]
        print(
            f"\nexample inconsistency: test {d.test_id}, input #{d.input_index}, "
            f"{d.opt_label}: nvcc={d.nvcc_printed} vs hipcc={d.hipcc_printed} "
            f"({d.dclass.value})"
        )
    print(f"\nartifacts kept in {workdir}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
