#!/usr/bin/env python3
"""Audit a CUDA→HIP port for numerical drift (the HIPIFY study, §III-F).

The scenario: you are porting a CUDA application to an AMD machine with
AMD's HIPIFY translator and want to know whether the *translation itself*
changes numerics, beyond the vendor differences you already expect.

The audit runs the same FP64 tests three ways —

  A. CUDA on NVIDIA            (the incumbent),
  B. native HIP on AMD         (a hand-port),
  C. HIPIFY-converted on AMD   (the automated port)

— and reports where B and C disagree with A, and crucially where C
disagrees with B: drift attributable to the translation.

Usage::

    python examples/porting_audit.py [n_tests]
"""

from __future__ import annotations

import sys
from collections import Counter

from repro.compilers.options import OptLevel, OptSetting
from repro.fp.classify import outcomes_equivalent
from repro.harness.runner import DifferentialRunner
from repro.hipify.translator import hipify_program
from repro.utils.tables import Table
from repro.varity.config import GeneratorConfig
from repro.varity.corpus import build_corpus
from repro.varity.testcase import TestCase


def main() -> int:
    n_tests = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    corpus = build_corpus(GeneratorConfig.fp64(inputs_per_program=3), n_tests, root_seed=99)
    runner = DifferentialRunner()
    opt = OptSetting(OptLevel.O2)

    vs_native = Counter()
    vs_hipify = Counter()
    translation_drift = []

    print(f"auditing {n_tests} tests × {len(corpus.tests[0].inputs)} inputs at {opt.label} ...")
    example_sources = None
    for test in corpus:
        converted_program, hip_source = hipify_program(test.program)
        converted = TestCase(converted_program, test.inputs)
        if example_sources is None:
            example_sources = hip_source
        for idx in range(len(test.inputs)):
            rn, ra_native, _, _ = runner.run_single(test, opt, idx)
            _, ra_conv, _, _ = runner.run_single(converted, opt, idx)
            if not outcomes_equivalent(rn.value, ra_native.value):
                vs_native[test.test_id] += 1
            if not outcomes_equivalent(rn.value, ra_conv.value):
                vs_hipify[test.test_id] += 1
            if not outcomes_equivalent(ra_native.value, ra_conv.value):
                translation_drift.append(
                    (test.test_id, idx, ra_native.printed, ra_conv.printed)
                )

    table = Table(title="CUDA→HIP porting audit", headers=["Comparison", "Discrepant runs"])
    table.add_row(["A (CUDA/NVIDIA) vs B (native HIP/AMD)", sum(vs_native.values())])
    table.add_row(["A (CUDA/NVIDIA) vs C (HIPIFY/AMD)", sum(vs_hipify.values())])
    table.add_row(["B vs C — drift from the translation itself", len(translation_drift)])
    print()
    print(table.render())

    if translation_drift:
        tid, idx, native, conv = translation_drift[0]
        print(
            f"\ntranslation drift example: {tid} input #{idx}: "
            f"native HIP printed {native}, HIPIFY-converted printed {conv}"
        )
    if example_sources:
        print("\nfirst translated file (head):")
        print("\n".join(example_sources.splitlines()[:12]))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
