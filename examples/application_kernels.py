#!/usr/bin/env python3
"""Differential-test realistic application kernels (not random programs).

The paper's intro motivates the study with scientific codes being ported
between GPU vendors.  This example applies the same harness to two
hand-written kernels — the BT.S-style mini solver (Table I) and a 1-D
diffusion stencil — sweeping optimization levels and inputs, the way a
scientist would vet their own numerics before switching clusters.

Usage::

    python examples/application_kernels.py
"""

from __future__ import annotations

from repro.apps.bt import build_bt_program, run_bt_experiment
from repro.apps.stencil import build_stencil_program
from repro.compilers.options import PAPER_OPT_SETTINGS
from repro.fp.classify import outcomes_equivalent
from repro.harness.runner import DifferentialRunner
from repro.utils.tables import Table
from repro.varity.inputs import InputVector
from repro.varity.testcase import TestCase


def sweep_kernel(title: str, test: TestCase) -> None:
    runner = DifferentialRunner()
    table = Table(
        title=title,
        headers=["Opt", "Input #", "nvcc output", "hipcc output", "Consistent?"],
    )
    for opt in PAPER_OPT_SETTINGS:
        for idx in range(len(test.inputs)):
            rn, ra, _, _ = runner.run_single(test, opt, idx)
            same = outcomes_equivalent(rn.value, ra.value)
            table.add_row([opt.label, idx, rn.printed, ra.printed, "yes" if same else "NO"])
    print(table.render())
    print()


def main() -> int:
    # --- Table I: the BT.S-style tradeoff ---------------------------------
    print("BT.S-style mini app (Table I experiment):")
    rows = run_bt_experiment(steps=40, repeats=2)
    t = Table(
        title="runtime/accuracy tradeoff",
        headers=["Compiler", "Options", "Runtime (model)", "Max Rel. Error"],
    )
    for row in rows:
        t.add_row(list(row.cells()))
    print(t.render())
    print()

    # --- BT solver as a differential test ---------------------------------
    bt = build_bt_program()
    bt_inputs = [
        InputVector.from_texts(["+1.0000", "25", "+9.0000E-1", "+1.0000E-3",
                                "+1.0000", "+5.0000E-1"], bt.kernel),
        InputVector.from_texts(["+1.0000", "25", "+9.0000E-1", "+1.0000E-3",
                                "+1.0000E-2", "+2.0000"], bt.kernel),
    ]
    sweep_kernel("mini-BT solver, both platforms", TestCase(bt, bt_inputs))

    # --- diffusion stencil with benign and hostile inputs -----------------
    stencil = build_stencil_program()
    stencil_inputs = [
        InputVector.from_texts(["+0.0", "6", "+1.0000E-1", "+1.0000", "+1.0000"],
                               stencil.kernel),
        # hostile: subnormal field values + huge source scale
        InputVector.from_texts(["+0.0", "6", "+1.0000E-1", "+1.3000E305", "+2.2000E-310"],
                               stencil.kernel),
    ]
    sweep_kernel("diffusion stencil, both platforms", TestCase(stencil, stencil_inputs))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
