#!/usr/bin/env python3
"""Replay and dissect the paper's three case studies (§IV-D).

For each case study the script runs the exact kernel + input from the
paper's figure on both simulated platforms, prints the outputs next to the
paper's published ones, and isolates the first divergent intermediate —
the same methodology (intermediate-value analysis) the authors used with
SASS/GCN disassembly.

Usage::

    python examples/case_study_explorer.py
"""

from __future__ import annotations

from repro.analysis.case_studies import isolate_divergence
from repro.apps.paper_kernels import (
    FIG4_FMOD_X,
    FIG4_FMOD_Y,
    case3_engineered_testcase,
    fig4_testcase,
    fig5_testcase,
    fig6_testcase,
)
from repro.compilers.options import OptLevel, OptSetting
from repro.devices.mathlib.fmod import amd_fmod, nvidia_fmod
from repro.devices.mathlib.rounding_ops import amd_ceil, nvidia_ceil
from repro.harness.runner import DifferentialRunner

O0 = OptSetting(OptLevel.O0)
O1 = OptSetting(OptLevel.O1)


def main() -> int:
    runner = DifferentialRunner()

    print("#" * 72)
    print("# Case Study 1 (Fig. 4): fmod — Num vs Num at -O0")
    print("#" * 72)
    report = isolate_divergence(runner, fig4_testcase(), O0, 0)
    print(report.render())
    print()
    print("isolated expression fmod(1.5917195493481116e+289, 1.5793E-307):")
    print(f"  nvcc model : {nvidia_fmod(FIG4_FMOD_X, FIG4_FMOD_Y)!r}"
          "   (paper: 1.4424471839615771e-307)")
    print(f"  hipcc model: {amd_fmod(FIG4_FMOD_X, FIG4_FMOD_Y)!r}"
          "   (paper: 7.1923082856620736e-309 — matched bit-exactly)")

    print()
    print("#" * 72)
    print("# Case Study 2 (Fig. 5): ceil — Inf vs Num at -O0 (bit-exact)")
    print("#" * 72)
    report = isolate_divergence(runner, fig5_testcase(), O0, 0)
    print(report.render())
    print()
    print(f"ceil(1.5955E-125): nvcc model → {nvidia_ceil(1.5955e-125):g} (paper: 0), "
          f"hipcc model → {amd_ceil(1.5955e-125):g} (paper: 1)")

    print()
    print("#" * 72)
    print("# Case Study 3 (Fig. 6): Inf vs NaN appearing under -O1")
    print("#" * 72)
    verbatim = fig6_testcase()
    for opt in (O0, O1):
        rn, ra, _, _ = runner.run_single(verbatim, opt, 0)
        print(f"verbatim Fig. 6 kernel @ {opt.label}: nvcc={rn.printed}  hipcc={ra.printed}"
              "   (paper: -inf / -inf at O0; -inf / -nan at O1)")
    print("note: pure IEEE evaluation of the published input yields NaN on both")
    print("platforms (see EXPERIMENTS.md); the engineered companion below shows")
    print("the same optimization-induced phenomenon end to end:")
    print()
    engineered = case3_engineered_testcase()
    for opt in (O0, O1):
        report = isolate_divergence(runner, engineered, opt, 0)
        print(f"engineered kernel @ {opt.label}: nvcc={report.nvcc_printed}  "
              f"hipcc={report.hipcc_printed}  "
              f"(nvcc passes: {', '.join(report.nvcc_passes) or 'none'})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
