#!/usr/bin/env python3
"""Quickstart: differential-test GPU numerics in under a minute.

Runs the full paper pipeline (Fig. 1) at demo scale:

1. generate random CUDA/HIP test programs and inputs (Varity-style);
2. compile each with the nvcc and hipcc models at the five optimization
   settings of the paper;
3. run both "binaries" on the simulated V100 and MI250X;
4. classify discrepancies and print the paper's summary tables.

Usage::

    python examples/quickstart.py [seed]
"""

from __future__ import annotations

import sys

from repro import CampaignConfig, run_campaign, render_campaign_report
from repro.analysis.case_studies import isolate_divergence, select_case_studies
from repro.compilers.options import OptSetting
from repro.harness.runner import DifferentialRunner
from repro.varity.corpus import build_corpus


def main() -> int:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2024

    config = CampaignConfig(
        seed=seed,
        n_programs_fp64=60,
        n_programs_fp32=40,
        inputs_per_program=4,
    )
    print(f"running a demo campaign (seed={seed}) ...\n")
    result = run_campaign(config)
    print(render_campaign_report(result, include_adjacency=False))

    # Show one self-contained reproducer, like the paper's case studies.
    arm = result.arms["fp64"]
    picks = select_case_studies(arm, per_class=1)
    if picks:
        d = picks[0]
        corpus = build_corpus(
            config.generator_config(config.arm_fptype("fp64")),
            config.n_programs_fp64,
            config.arm_seed("fp64"),
        )
        test = next(t for t in corpus if t.test_id == d.test_id)
        report = isolate_divergence(
            DifferentialRunner(), test, OptSetting.from_label(d.opt_label), d.input_index
        )
        print()
        print("One reproducer, isolated to its first divergent intermediate:")
        print(report.render())
        print()
        print("Shippable CUDA source of this reproducer:")
        print(report.cuda_source())
    else:
        print("\nNo FP64 discrepancies at this tiny scale — try another seed.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
