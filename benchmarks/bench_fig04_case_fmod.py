"""Figure 4 / Case Study 1 — fmod-rooted Num-vs-Num divergence at -O0.

Paper:

    Input : +0.0 5 +1.7612E-322 ... +1.6782E-321
    nvcc  -O0: 8.6551990944767196e-306
    hipcc -O0: 9.3404611450291972e-306
    fmod(1.5917195493481116e+289, 1.5793E-307):
        nvcc  → 1.4424471839615771e-307
        hipcc → 7.1923082856620736e-309   (the exact remainder)

Our model reproduces the hipcc side bit-exactly (its __ocml_fmod_f64 is the
exact remainder) and the nvcc side as a same-decade different value from
the chunked-reduction model.
"""

from __future__ import annotations

from repro.analysis.case_studies import isolate_divergence
from repro.apps.paper_kernels import FIG4_FMOD_X, FIG4_FMOD_Y, fig4_testcase
from repro.compilers.options import OptLevel, OptSetting
from repro.devices.mathlib.fmod import amd_fmod, nvidia_fmod
from repro.harness.differential import DiscrepancyClass, classify_pair
from repro.harness.runner import DifferentialRunner

from conftest import emit


def test_fig04_case_study_fmod(benchmark, results_dir):
    runner = DifferentialRunner()
    test = fig4_testcase()
    opt = OptSetting(OptLevel.O0)

    report = benchmark.pedantic(
        lambda: isolate_divergence(runner, test, opt, 0), rounds=1, iterations=1
    )

    lines = [
        report.render(),
        "",
        "Isolated expression (paper Fig. 4, third panel):",
        f"  fmod({FIG4_FMOD_X!r}, {FIG4_FMOD_Y!r})",
        f"  nvcc model  : {nvidia_fmod(FIG4_FMOD_X, FIG4_FMOD_Y)!r}",
        f"  hipcc model : {amd_fmod(FIG4_FMOD_X, FIG4_FMOD_Y)!r}",
        "  paper nvcc  : 1.4424471839615771e-307",
        "  paper hipcc : 7.1923082856620736e-309   <- matched bit-exactly",
    ]
    emit(results_dir, "fig04_case_fmod", "\n".join(lines))

    # Shape assertions:
    assert classify_pair(float(report.nvcc_printed), float(report.hipcc_printed)) \
        is DiscrepancyClass.NUM_NUM
    assert report.hipcc_printed == "9.3404611450291972e-306"  # paper's value
    assert amd_fmod(FIG4_FMOD_X, FIG4_FMOD_Y) == 7.1923082856620736e-309
    assert nvidia_fmod(FIG4_FMOD_X, FIG4_FMOD_Y) != amd_fmod(FIG4_FMOD_X, FIG4_FMOD_Y)
    assert report.divergence is not None and report.divergence.kind == "value"
