"""Oracle throughput: metamorphic relation checking vs the differential arm.

The oracle's pitch is that it widens the scenario space *per run*: one
corpus program buys up to six relation checks (base re-requests deduped,
the fast-math relation free-riding on the base sweep), where the
differential arm buys one vendor-vs-vendor comparison.  This bench runs
both at an equal evaluated-program budget and tracks:

* ``runs/sec`` — end-to-end throughput of each arm;
* ``checks per program`` — how many relation verdicts a program yields;
* ``dedup rate`` — fraction of oracle sweep requests served without
  executing (the zero-redundant-runs invariant, asserted);
* ``signals`` — relation violations vs cross-vendor discrepancies at the
  same budget (not comparable 1:1 — different bug classes — but the
  trajectory should show neither collapsing to zero cost-effectiveness).
"""

from __future__ import annotations

import os
import time

from repro.harness.campaign import CampaignConfig, run_campaign
from repro.oracle.engine import OracleConfig, run_oracle

from conftest import emit


def _scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "default")


def _oracle_config() -> OracleConfig:
    scale = _scale()
    if scale == "tiny":
        return OracleConfig(seed=2024, n_programs=10, inputs_per_program=2)
    if scale == "paper":
        return OracleConfig(seed=2024, n_programs=240, inputs_per_program=5)
    return OracleConfig(seed=2024, n_programs=60, inputs_per_program=3)


def test_oracle_throughput(benchmark, results_dir):
    config = _oracle_config()

    t0 = time.perf_counter()
    oracle = benchmark.pedantic(lambda: run_oracle(config), rounds=1, iterations=1)
    oracle_seconds = time.perf_counter() - t0

    # The differential control arm: the same number of FP32 programs and
    # inputs through the plain campaign machinery.  Zero fp64 programs —
    # the campaign supports empty arms — so the fp32 sweep is the only
    # work charged to diff_seconds and the runs/sec comparison is fair.
    diff_config = CampaignConfig(
        seed=2024,
        n_programs_fp64=0,
        n_programs_fp32=config.n_programs,
        inputs_per_program=config.inputs_per_program,
        include_hipify=False,
    )
    t0 = time.perf_counter()
    diff = run_campaign(diff_config)
    diff_seconds = time.perf_counter() - t0
    diff_arm = diff.arms["fp32"]

    # Zero redundant runs: every deduped oracle request executed nothing.
    requests = int(oracle.exec_metrics.get("requests", 0))
    executed = int(oracle.exec_metrics.get("executed", 0))
    deduped = int(oracle.exec_metrics.get("deduped", 0))
    assert requests == executed + deduped
    assert deduped > 0, "oracle chunks should dedup the relations' base requests"

    checks = sum(oracle.checked_by_relation.values())
    oracle_rps = oracle.pair_runs / oracle_seconds if oracle_seconds else 0.0
    diff_rps = diff_arm.total_runs / 2 / diff_seconds if diff_seconds else 0.0
    lines = [
        "oracle arm vs differential arm at equal program budget "
        f"(seed={config.seed}, fp32, {config.n_programs} programs x "
        f"{config.inputs_per_program} inputs)",
        "",
        f"{'arm':<22} {'runs':>8} {'seconds':>8} {'runs/sec':>9} {'signals':>8}",
        f"{'oracle (metamorphic)':<22} {oracle.pair_runs:>8} {oracle_seconds:>8.1f} "
        f"{oracle_rps:>9.1f} {len(oracle.violations):>8}",
        f"{'differential (fp32)':<22} {diff_arm.runs_per_compiler:>8} "
        f"{diff_seconds:>8.1f} {diff_rps:>9.1f} {diff_arm.n_discrepancies:>8}",
        "",
        f"relation checks: {checks} across {oracle.programs_checked} programs "
        f"({checks / max(1, oracle.programs_checked):.1f} per program)",
        f"oracle dedup: {deduped}/{requests} sweep requests served without "
        f"executing ({100.0 * deduped / max(1, requests):.0f}%)",
        "violations by relation: "
        + (
            ", ".join(
                f"{name}={count}"
                for name, count in sorted(oracle.violations_by_relation.items())
            )
            or "none"
        ),
    ]
    emit(results_dir, "oracle_throughput", "\n".join(lines))
