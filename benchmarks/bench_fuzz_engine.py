"""Fuzz-engine throughput and yield: mutation fuzzing vs blind generation.

Tracks the three numbers that justify the subsystem:

* ``mutants/sec`` — engine throughput (mutation + validation + both-arm
  sweeps + triage of whatever diverged);
* ``cache-hit rate`` — fraction of the CUDA side served from the
  content-keyed run cache (each mutant's HIPIFY twin replays its native
  nvcc runs, so the steady state is 50%);
* ``novel-signature yield`` — distinct discrepancy signatures not present
  in the seed pool, against pure random generation at the SAME number of
  campaign runs.

The assertions pin the subsystem's reason to exist: the mutation engine
must discover at least 2 signatures its seed pool did not contain, at a
higher novel-signature-per-run rate than blind generation.
"""

from __future__ import annotations

import os
import time

from repro.fuzz.engine import FuzzConfig, run_fuzz, run_random_session

from conftest import emit


def _fuzz_config() -> FuzzConfig:
    scale = os.environ.get("REPRO_BENCH_SCALE", "default")
    if scale == "tiny":
        return FuzzConfig(
            seed=2024, n_seed_programs=15, inputs_per_program=2,
            max_mutants=40, batch_size=20, minimize=False,
        )
    if scale == "paper":
        return FuzzConfig(
            seed=2024, n_seed_programs=120, inputs_per_program=5,
            max_mutants=1200, batch_size=100, minimize=False,
        )
    return FuzzConfig(
        seed=2024, n_seed_programs=30, inputs_per_program=3,
        max_mutants=120, batch_size=30, minimize=False,
    )


def test_fuzz_engine_yield(benchmark, results_dir):
    config = _fuzz_config()

    t0 = time.perf_counter()
    fuzz = benchmark.pedantic(lambda: run_fuzz(config), rounds=1, iterations=1)
    fuzz_seconds = time.perf_counter() - t0

    # The control arm: fresh blind generation, same number of evaluated
    # programs → same number of campaign runs, same novelty baseline.
    t0 = time.perf_counter()
    random = run_random_session(
        config,
        n_programs=fuzz.mutants_run + fuzz.fresh_explored,
        skip_signatures={s.key for s in fuzz.baseline_signatures},
    )
    random_seconds = time.perf_counter() - t0
    # Equal budget up to per-program trap skips (both arms evaluate the
    # same number of programs through the same sweep machinery).
    assert abs(random.pair_runs - fuzz.pair_runs) <= 0.05 * fuzz.pair_runs

    fuzz_novel = len(fuzz.findings)
    random_novel = len(random.novel_signatures)
    fuzz_rate = fuzz_novel / max(1, fuzz.pair_runs)
    random_rate = random_novel / max(1, random.pair_runs)

    # The acceptance bar: the feedback loop beats blind generation.  A
    # feedback loop needs iterations to learn where to spend its budget,
    # so the yield comparison holds at the default/paper scales; the tiny
    # scale (40 iterations) stays a smoke pass of the engine mechanics.
    if os.environ.get("REPRO_BENCH_SCALE", "default") != "tiny":
        assert fuzz_novel >= 2, "fuzzer found fewer than 2 novel signatures"
        assert fuzz_rate > random_rate, (
            f"mutation fuzzing ({fuzz_novel} novel in {fuzz.pair_runs} runs) "
            f"did not beat blind generation ({random_novel} in {random.pair_runs})"
        )
    # The hipify twin really rides the cache: half the CUDA side is replay.
    assert fuzz.nvcc_cache_hits == fuzz.nvcc_executions

    mutants_per_sec = fuzz.mutants_run / fuzz_seconds if fuzz_seconds else 0.0
    lines = [
        "fuzz engine: mutation fuzzing vs blind generation "
        f"(seed={config.seed}, {config.fptype.value}, budget={config.max_mutants})",
        "",
        f"{'arm':<18} {'programs':>9} {'runs':>8} {'raw discs':>10} "
        f"{'novel sigs':>11} {'novel/krun':>11}",
    ]
    rows = [
        ("fuzz (hybrid)", fuzz.mutants_run + fuzz.fresh_explored, fuzz.pair_runs,
         fuzz.raw_discrepancies, fuzz_novel, 1000.0 * fuzz_rate),
        ("random (blind)", random.n_programs, random.pair_runs,
         random.raw_discrepancies, random_novel, 1000.0 * random_rate),
    ]
    for label, programs, runs, raw, novel, rate in rows:
        lines.append(
            f"{label:<18} {programs:>9} {runs:>8} {raw:>10} {novel:>11} {rate:>11.2f}"
        )
    lines += [
        "",
        f"seed pool: {config.n_seed_programs} programs, "
        f"{len(fuzz.hot_seed_indices)} hot, "
        f"{len(fuzz.baseline_signatures)} baseline signatures "
        f"({fuzz.baseline_pair_runs} baseline runs)",
        f"throughput: {mutants_per_sec:.1f} mutants/sec "
        f"({fuzz_seconds:.1f}s fuzz vs {random_seconds:.1f}s random)",
        f"nvcc cache: {fuzz.nvcc_cache_hits} hits / "
        f"{fuzz.nvcc_executions} executions "
        f"({100.0 * fuzz.cache_hit_rate:.0f}% of the CUDA side replayed)",
    ]
    emit(results_dir, "fuzz_engine_yield", "\n".join(lines))
