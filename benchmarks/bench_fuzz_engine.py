"""Fuzz-engine throughput and yield: mutation fuzzing vs blind generation.

Tracks the three numbers that justify the subsystem:

* ``mutants/sec`` — engine throughput (mutation + validation + both-arm
  sweeps + triage of whatever diverged);
* ``cache-hit rate`` — fraction of the CUDA side served from the
  content-keyed run cache (each mutant's HIPIFY twin replays its native
  nvcc runs, so the steady state is 50%);
* ``novel-signature yield`` — distinct discrepancy signatures not present
  in the seed pool, against pure random generation at the SAME number of
  campaign runs.

The assertions pin the subsystem's reason to exist: the mutation engine
must discover at least 2 signatures its seed pool did not contain, at a
higher novel-signature-per-run rate than blind generation.

The ``search`` lane compares the two iteration-selection strategies —
the default hybrid bandit vs ``search="mcts"`` tree search — plus blind
generation, all at the same iteration budget, in the regime the tree
search was built for: a small fp16 seed pool and a long budget, where
yield comes from re-mutating the discrepant chains the search promotes
into its tree.  Its summary lands in ``fuzz_search_yield.json`` for the
nightly trajectory.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

from repro.fp.types import FPType
from repro.fuzz.engine import FuzzConfig, run_fuzz, run_random_session

from conftest import emit


def _fuzz_config() -> FuzzConfig:
    scale = os.environ.get("REPRO_BENCH_SCALE", "default")
    if scale == "tiny":
        return FuzzConfig(
            seed=2024, n_seed_programs=15, inputs_per_program=2,
            max_mutants=40, batch_size=20, minimize=False,
        )
    if scale == "paper":
        return FuzzConfig(
            seed=2024, n_seed_programs=120, inputs_per_program=5,
            max_mutants=1200, batch_size=100, minimize=False,
        )
    return FuzzConfig(
        seed=2024, n_seed_programs=30, inputs_per_program=3,
        max_mutants=120, batch_size=30, minimize=False,
    )


def test_fuzz_engine_yield(benchmark, results_dir):
    config = _fuzz_config()

    t0 = time.perf_counter()
    fuzz = benchmark.pedantic(lambda: run_fuzz(config), rounds=1, iterations=1)
    fuzz_seconds = time.perf_counter() - t0

    # The control arm: fresh blind generation, same number of evaluated
    # programs → same number of campaign runs, same novelty baseline.
    t0 = time.perf_counter()
    random = run_random_session(
        config,
        n_programs=fuzz.mutants_run + fuzz.fresh_explored,
        skip_signatures={s.key for s in fuzz.baseline_signatures},
    )
    random_seconds = time.perf_counter() - t0
    # Equal budget up to per-program trap skips (both arms evaluate the
    # same number of programs through the same sweep machinery).
    assert abs(random.pair_runs - fuzz.pair_runs) <= 0.05 * fuzz.pair_runs

    fuzz_novel = len(fuzz.findings)
    random_novel = len(random.novel_signatures)
    fuzz_rate = fuzz_novel / max(1, fuzz.pair_runs)
    random_rate = random_novel / max(1, random.pair_runs)

    # The acceptance bar: the feedback loop beats blind generation.  A
    # feedback loop needs iterations to learn where to spend its budget,
    # so the yield comparison holds at the default/paper scales; the tiny
    # scale (40 iterations) stays a smoke pass of the engine mechanics.
    if os.environ.get("REPRO_BENCH_SCALE", "default") != "tiny":
        assert fuzz_novel >= 2, "fuzzer found fewer than 2 novel signatures"
        assert fuzz_rate > random_rate, (
            f"mutation fuzzing ({fuzz_novel} novel in {fuzz.pair_runs} runs) "
            f"did not beat blind generation ({random_novel} in {random.pair_runs})"
        )
    # The hipify twin really rides the cache: half the CUDA side is replay.
    assert fuzz.nvcc_cache_hits == fuzz.nvcc_executions

    mutants_per_sec = fuzz.mutants_run / fuzz_seconds if fuzz_seconds else 0.0
    lines = [
        "fuzz engine: mutation fuzzing vs blind generation "
        f"(seed={config.seed}, {config.fptype.value}, budget={config.max_mutants})",
        "",
        f"{'arm':<18} {'programs':>9} {'runs':>8} {'raw discs':>10} "
        f"{'novel sigs':>11} {'novel/krun':>11}",
    ]
    rows = [
        ("fuzz (hybrid)", fuzz.mutants_run + fuzz.fresh_explored, fuzz.pair_runs,
         fuzz.raw_discrepancies, fuzz_novel, 1000.0 * fuzz_rate),
        ("random (blind)", random.n_programs, random.pair_runs,
         random.raw_discrepancies, random_novel, 1000.0 * random_rate),
    ]
    for label, programs, runs, raw, novel, rate in rows:
        lines.append(
            f"{label:<18} {programs:>9} {runs:>8} {raw:>10} {novel:>11} {rate:>11.2f}"
        )
    lines += [
        "",
        f"seed pool: {config.n_seed_programs} programs, "
        f"{len(fuzz.hot_seed_indices)} hot, "
        f"{len(fuzz.baseline_signatures)} baseline signatures "
        f"({fuzz.baseline_pair_runs} baseline runs)",
        f"throughput: {mutants_per_sec:.1f} mutants/sec "
        f"({fuzz_seconds:.1f}s fuzz vs {random_seconds:.1f}s random)",
        f"nvcc cache: {fuzz.nvcc_cache_hits} hits / "
        f"{fuzz.nvcc_executions} executions "
        f"({100.0 * fuzz.cache_hit_rate:.0f}% of the CUDA side replayed)",
    ]
    emit(results_dir, "fuzz_engine_yield", "\n".join(lines))


def _search_config() -> FuzzConfig:
    """The search-lane regime: small fp16 pool, long budget.

    Chain mining is what separates the strategies — fp16's saturating
    range keeps deep mutation chains productive, and a small pool forces
    both strategies to live off re-mutation rather than seed breadth.
    The budget matters: the tree search spends its early iterations
    building the tree and pays that back with compound interest, so the
    gap over the bandit *widens* with budget (measured on this lane:
    2.2x at 600 iterations, 3.2x at 900).
    """
    scale = os.environ.get("REPRO_BENCH_SCALE", "default")
    if scale == "tiny":
        return FuzzConfig(
            seed=2024, fptype=FPType.FP16, n_seed_programs=4,
            inputs_per_program=2, max_mutants=60, batch_size=20,
            minimize=False,
        )
    if scale == "paper":
        return FuzzConfig(
            seed=2024, fptype=FPType.FP16, n_seed_programs=4,
            inputs_per_program=2, max_mutants=2700, batch_size=100,
            minimize=False,
        )
    return FuzzConfig(
        seed=2024, fptype=FPType.FP16, n_seed_programs=4,
        inputs_per_program=2, max_mutants=900, batch_size=100,
        minimize=False,
    )


def test_fuzz_search_yield(benchmark, results_dir):
    scale = os.environ.get("REPRO_BENCH_SCALE", "default")
    config = _search_config()

    t0 = time.perf_counter()
    mcts = benchmark.pedantic(
        lambda: run_fuzz(dataclasses.replace(config, search="mcts")),
        rounds=1, iterations=1,
    )
    mcts_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    hybrid = run_fuzz(config)
    hybrid_seconds = time.perf_counter() - t0

    # The blind arm evaluates as many fresh programs as the tree search
    # evaluated, skipping the shared baseline signatures — same novelty
    # bar, same number of campaign runs through the same sweep machinery.
    t0 = time.perf_counter()
    blind = run_random_session(
        config,
        n_programs=mcts.mutants_run + mcts.fresh_explored,
        skip_signatures={s.key for s in mcts.baseline_signatures},
    )
    blind_seconds = time.perf_counter() - t0

    def per_krun(novel: int, runs: int) -> float:
        return 1000.0 * novel / max(1, runs)

    arms = {
        "mcts": {
            "novel_signatures": len(mcts.findings),
            "pair_runs": mcts.pair_runs,
            "novel_per_krun": per_krun(len(mcts.findings), mcts.pair_runs),
            "oracle_violations": mcts.oracle_violations,
            "violations_per_krun": per_krun(mcts.oracle_violations, mcts.pair_runs),
            "seconds": round(mcts_seconds, 3),
        },
        "hybrid": {
            "novel_signatures": len(hybrid.findings),
            "pair_runs": hybrid.pair_runs,
            "novel_per_krun": per_krun(len(hybrid.findings), hybrid.pair_runs),
            "oracle_violations": hybrid.oracle_violations,
            "violations_per_krun": per_krun(hybrid.oracle_violations, hybrid.pair_runs),
            "seconds": round(hybrid_seconds, 3),
        },
        "blind": {
            "novel_signatures": len(blind.novel_signatures),
            "pair_runs": blind.pair_runs,
            "novel_per_krun": per_krun(len(blind.novel_signatures), blind.pair_runs),
            "oracle_violations": blind.oracle_violations,
            "violations_per_krun": per_krun(blind.oracle_violations, blind.pair_runs),
            "seconds": round(blind_seconds, 3),
        },
    }
    ratio = (
        arms["mcts"]["novel_per_krun"] / arms["hybrid"]["novel_per_krun"]
        if arms["hybrid"]["novel_per_krun"] else float("inf")
    )
    summary = {
        "scale": scale,
        "seed": config.seed,
        "fptype": config.fptype.value,
        "budget": config.max_mutants,
        "seed_programs": config.n_seed_programs,
        "mcts_vs_hybrid_ratio": round(ratio, 3),
        "tree": {
            "nodes": mcts.search_stats.get("nodes", 0),
            "max_depth": mcts.search_stats.get("max_depth", 0),
            "coverage_features": mcts.coverage.get("features", 0),
        },
        "arms": arms,
    }
    (results_dir / "fuzz_search_yield.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    # The acceptance bar for the tree search's existence: at least 3x
    # the hybrid bandit's novel-signature yield at this lane's budget
    # (the tiny scale keeps the smoke run an assertion-free mechanics
    # pass — 60 iterations is tree-building time, not payoff time).
    if scale != "tiny":
        assert arms["mcts"]["novel_signatures"] >= 2
        assert ratio >= 3.0, (
            f"mcts yield {arms['mcts']['novel_per_krun']:.2f}/krun is only "
            f"{ratio:.2f}x the hybrid bandit's "
            f"{arms['hybrid']['novel_per_krun']:.2f}/krun (needs >= 3x)"
        )
        assert (
            arms["mcts"]["novel_per_krun"] > arms["blind"]["novel_per_krun"]
        ), "tree search did not beat blind generation"

    lines = [
        "fuzz search: mcts tree search vs hybrid bandit vs blind generation "
        f"(seed={config.seed}, {config.fptype.value}, budget={config.max_mutants}, "
        f"{config.n_seed_programs} seeds)",
        "",
        f"{'arm':<16} {'runs':>8} {'novel sigs':>11} {'novel/krun':>11} "
        f"{'viol/krun':>10} {'seconds':>8}",
    ]
    for label in ("mcts", "hybrid", "blind"):
        arm = arms[label]
        lines.append(
            f"{label:<16} {arm['pair_runs']:>8} {arm['novel_signatures']:>11} "
            f"{arm['novel_per_krun']:>11.2f} {arm['violations_per_krun']:>10.2f} "
            f"{arm['seconds']:>8.1f}"
        )
    lines += [
        "",
        f"mcts vs hybrid: {ratio:.2f}x novel-signature yield",
        f"tree: {summary['tree']['nodes']} nodes, "
        f"max depth {summary['tree']['max_depth']}, "
        f"{summary['tree']['coverage_features']} grammar features covered",
    ]
    emit(results_dir, "fuzz_search_yield", "\n".join(lines))
