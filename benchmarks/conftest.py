"""Shared campaign fixture for the benchmark harness.

The table benches (IV through X) analyze ONE shared medium-scale campaign
run (the expensive part), so `pytest benchmarks/ --benchmark-only` finishes
in minutes while still printing every table at a statistically meaningful
scale.  Set ``REPRO_BENCH_SCALE=paper`` to run the full 694,400-run grid
(hours, uses all cores) or ``REPRO_BENCH_SCALE=tiny`` for a smoke pass.

The shared campaign streams into a checkpoint under ``benchmarks/results/``;
an interrupted bench session resumes from it on the next invocation, and a
finished one replays instantly (delete the file to force a fresh run).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness.campaign import CampaignConfig, run_campaign

RESULTS_DIR = Path(__file__).parent / "results"


def _bench_config() -> CampaignConfig:
    scale = os.environ.get("REPRO_BENCH_SCALE", "default")
    if scale == "paper":
        return CampaignConfig.paper_scale(seed=2024)
    if scale == "tiny":
        return CampaignConfig.tiny(seed=2024)
    return CampaignConfig(
        seed=2024,
        n_programs_fp64=220,
        n_programs_fp32=180,
        inputs_per_program=4,
        workers=max(1, (os.cpu_count() or 2) - 1),
    )


@pytest.fixture(scope="session")
def campaign_result(results_dir):
    """The shared campaign all table benches analyze."""
    config = _bench_config()
    checkpoint = results_dir / "campaign.checkpoint.jsonl"
    # "auto": resume a matching checkpoint, restart fresh on a stale one
    # (different scale/seed) without touching mid-campaign errors.
    return run_campaign(config, checkpoint=checkpoint, resume="auto")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a reproduced table and persist it under benchmarks/results/."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
