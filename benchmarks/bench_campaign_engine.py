"""Campaign-engine throughput: serial vs cross-arm-cached vs parallel.

Tracks the perf trajectory of the engine's per-program execution plan:

* ``standalone`` — every arm runs from scratch (the seed engine's
  behavior: the fp64_hipify arm re-executes the whole nvcc/V100 half);
* ``cached``     — fused fp64 + fp64_hipify arms, CUDA side replayed
  from the keyed run cache (the default engine);
* ``parallel``   — the cached engine on a process pool.

All three modes must produce identical discrepancy sets; the cached and
parallel modes must execute the hipify arm's nvcc side zero times.
"""

from __future__ import annotations

import os
from dataclasses import replace

from repro.harness.campaign import CampaignConfig, run_campaign

from conftest import emit


def _engine_config(**overrides) -> CampaignConfig:
    scale = os.environ.get("REPRO_BENCH_SCALE", "default")
    n = 16 if scale == "tiny" else 64
    return CampaignConfig(
        seed=2024,
        n_programs_fp64=n,
        inputs_per_program=3,
        include_fp32=False,
        **overrides,
    )


def _disc_keys(arm):
    return sorted(
        (d.test_id, d.input_index, d.opt_label, d.dclass.value)
        for d in arm.discrepancies
    )


def test_campaign_engine_throughput(benchmark, results_dir):
    standalone = run_campaign(_engine_config(reuse_nvcc_runs=False))
    cached = benchmark.pedantic(
        lambda: run_campaign(_engine_config()), rounds=1, iterations=1
    )
    workers = max(2, (os.cpu_count() or 2) - 1)
    parallel = run_campaign(_engine_config(workers=workers))

    # Correctness first: all three engines find the same discrepancies.
    for name in standalone.arms:
        assert _disc_keys(standalone.arms[name]) == _disc_keys(cached.arms[name])
        assert _disc_keys(standalone.arms[name]) == _disc_keys(parallel.arms[name])
    # The cache really eliminated the hipify arm's CUDA half.
    assert cached.arms["fp64_hipify"].nvcc_executions == 0
    assert parallel.arms["fp64_hipify"].nvcc_executions == 0
    assert standalone.arms["fp64_hipify"].nvcc_executions > 0

    rows = [
        ("standalone", standalone),
        ("cached", cached),
        (f"parallel (workers={workers})", parallel),
    ]
    lines = ["campaign engine throughput (fp64 + fp64_hipify arms)", ""]
    lines.append(
        f"{'mode':<24} {'runs':>8} {'nvcc execs':>11} {'cache hits':>11} "
        f"{'seconds':>8} {'runs/s':>9}"
    )
    for label, result in rows:
        rate = result.total_runs / result.elapsed_seconds if result.elapsed_seconds else 0.0
        lines.append(
            f"{label:<24} {result.total_runs:>8} {result.nvcc_executions:>11} "
            f"{result.nvcc_cache_hits:>11} {result.elapsed_seconds:>8.2f} {rate:>9.0f}"
        )
    emit(results_dir, "campaign_engine_throughput", "\n".join(lines))
