"""Table X — FP32 adjacency matrices."""

from __future__ import annotations

from repro.analysis.adjacency import adjacency_counts, adjacency_tables
from repro.analysis.per_opt import per_opt_counts
from repro.fp.classify import OutcomeClass

from conftest import emit


def test_table10_fp32_adjacency(benchmark, campaign_result, results_dir):
    arm = campaign_result.arms["fp32"]
    tables = benchmark.pedantic(
        lambda: adjacency_tables(arm, "Table X — FP32 adjacency matrix (measured)"),
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "table10_fp32_adj", "\n\n".join(t.render() for t in tables))

    counts = per_opt_counts(arm)
    for opt in arm.opt_labels:
        matrix = adjacency_counts(arm, opt)
        off_diag = sum(a + b for (r, c), (a, b) in matrix.items() if r is not c)
        num_num = matrix[(OutcomeClass.NUMBER, OutcomeClass.NUMBER)][0]
        assert off_diag + num_num == sum(counts[opt].values())
