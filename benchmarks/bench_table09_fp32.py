"""Table IX — FP32 discrepancies per optimization option.

Paper row shape: O0=45, O1=86, O2=O3=90, O3_FM=13,877 — a two-orders-of-
magnitude explosion at fast math, with classes (NaN,Zero / NaN,Num /
Num,Zero) appearing that the lower levels never produce.
"""

from __future__ import annotations

from repro.analysis.per_opt import per_opt_counts, per_opt_table

from conftest import emit


def test_table09_fp32_per_opt(benchmark, campaign_result, results_dir):
    arm = campaign_result.arms["fp32"]
    table = benchmark.pedantic(
        lambda: per_opt_table(
            arm, "Table IX — FP32 discrepancies per optimization option (measured)"
        ),
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "table09_fp32", table.render())

    counts = per_opt_counts(arm)
    fm = sum(counts["O3_FM"].values())
    o3 = sum(counts["O3"].values())
    o0 = sum(counts["O0"].values())
    # The fast-math explosion (paper: 13,877 vs 90).
    assert fm > 3 * max(1, o3)
    assert fm > 3 * max(1, o0)
    # New class diversity at fast math: more distinct classes than at O0.
    classes_fm = sum(1 for c, n in counts["O3_FM"].items() if n > 0)
    classes_o0 = sum(1 for c, n in counts["O0"].items() if n > 0)
    assert classes_fm >= classes_o0
