"""Table VII — HIPIFY-converted FP64 discrepancies per optimization option.

Paper row shape: O0=494, O1=O2=O3=549, O3_FM=575 — uniformly at or above
the native-HIP FP64 rows of Table V (HIPIFY introduces additional
discrepancies), with Num,Num still dominant.
"""

from __future__ import annotations

from repro.analysis.per_opt import per_opt_counts, per_opt_table
from repro.harness.differential import DiscrepancyClass

from conftest import emit


def test_table07_hipify_per_opt(benchmark, campaign_result, results_dir):
    arm = campaign_result.arms["fp64_hipify"]
    native = campaign_result.arms["fp64"]
    table = benchmark.pedantic(
        lambda: per_opt_table(
            arm,
            "Table VII — HIPIFY-converted FP64 discrepancies per optimization option (measured)",
        ),
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "table07_hipify", table.render())

    counts = per_opt_counts(arm)
    assert counts["O1"] == counts["O2"] == counts["O3"]
    # Conversion adds (or at worst preserves) divergence in total.
    assert arm.n_discrepancies >= native.n_discrepancies
    totals = {c: sum(counts[o][c] for o in counts) for c in DiscrepancyClass}
    assert totals[DiscrepancyClass.NUM_NUM] == max(totals.values())
