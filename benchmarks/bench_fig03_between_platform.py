"""Figure 3 — the between-platform metadata workflow.

System 1 (NVIDIA) runs all tests and saves metadata JSON; System 2 (AMD)
loads it, rebuilds the identical tests, runs them, and saves the merged
file; analysis reads the merged file.  This bench executes the whole file
round-trip and checks it finds exactly what an in-process comparison finds.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.compilers.options import OptLevel, OptSetting
from repro.harness.runner import DifferentialRunner
from repro.harness.transfer import between_platform_campaign
from repro.utils.tables import Table
from repro.varity.config import GeneratorConfig
from repro.varity.corpus import build_corpus

from conftest import emit

N_TESTS = 30


def test_fig03_between_platform_workflow(benchmark, results_dir):
    corpus = build_corpus(
        GeneratorConfig.fp64(inputs_per_program=2), N_TESTS, root_seed=303
    )
    opts = [OptSetting(OptLevel.O0), OptSetting(OptLevel.O3, fast_math=True)]

    def round_trip():
        with tempfile.TemporaryDirectory() as workdir:
            meta, discrepancies = between_platform_campaign(corpus, workdir, opts=opts)
            size1 = (Path(workdir) / "metadata.system1.json").stat().st_size
            size2 = (Path(workdir) / "metadata.merged.json").stat().st_size
            return meta, discrepancies, size1, size2

    meta, via_files, size1, size2 = benchmark.pedantic(round_trip, rounds=1, iterations=1)

    # Ground truth: the same comparison without the file workflow.
    runner = DifferentialRunner()
    direct = []
    for opt in opts:
        for test in corpus:
            direct.extend(runner.run_pair(test, opt).discrepancies)
    key = lambda d: (d.test_id, d.input_index, d.opt_label, d.dclass.value)
    assert sorted(map(key, via_files)) == sorted(map(key, direct))

    table = Table(
        title="Figure 3 — between-platform workflow (measured)",
        headers=["Artifact / stage", "Result"],
    )
    table.add_row(["Tests shipped in metadata", str(N_TESTS)])
    table.add_row(["System-1 metadata size", f"{size1} bytes"])
    table.add_row(["Merged metadata size", f"{size2} bytes"])
    table.add_row(["Systems recorded", ", ".join(sorted(meta.systems))])
    table.add_row(["Discrepancies via file workflow", str(len(via_files))])
    table.add_row(["Discrepancies via direct comparison", str(len(direct))])
    emit(results_dir, "fig03_between_platform", table.render())
